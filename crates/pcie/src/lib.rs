//! PCIe interconnect model for the TrainBox reproduction.
//!
//! The paper (§II-C, §III-A, §IV) models a neural-network server as a PCIe
//! tree: the root complex (RC) at the root, switches as internal nodes, and
//! devices (SSDs, neural-network accelerators, data-preparation accelerators)
//! at the leaves. This crate implements that model:
//!
//! * [`topology`] — the tree itself, with typed nodes and per-direction links;
//! * [`addr`] — boot-time address-window assignment and address-based packet
//!   routing exactly as real PCIe switches forward TLPs (§IV-C of the paper);
//! * [`flow`] — a fluid-flow bandwidth model: concurrent DMA transfers share
//!   each link max-min fairly, with an event-driven transfer simulator;
//! * [`boxes`] — the paper's "box" constructions (Fig 7, 13, 15, 18): acc
//!   boxes, SSD boxes, prep boxes, and clustered train boxes chained from the
//!   root complex;
//! * [`bandwidth`] — link-speed types (PCIe Gen3/Gen4 per-lane rates, NVLink
//!   class accelerator fabric, 100 GbE for the prep-pool network).
//!
//! The key architectural behaviour reproduced here is that **peer-to-peer
//! traffic only occupies links up to the lowest common ancestor switch** of
//! the two endpoints. That is the mechanism behind the paper's Step 3
//! (communication-aware clustering): placing SSDs, prep accelerators, and NN
//! accelerators under the same switch keeps all data-preparation traffic off
//! the root complex.
//!
//! # Example
//!
//! ```
//! use trainbox_pcie::bandwidth::Bandwidth;
//! use trainbox_pcie::topology::{EndpointKind, Topology};
//!
//! let mut topo = Topology::new(Bandwidth::gen3_x16());
//! let sw = topo.add_switch(topo.root(), Bandwidth::gen3_x16());
//! let ssd = topo.add_endpoint(sw, EndpointKind::Ssd, Bandwidth::gen3_x4());
//! let acc = topo.add_endpoint(sw, EndpointKind::NnAccel, Bandwidth::gen3_x16());
//! // P2P route between siblings never touches the root complex.
//! let route = topo.route(ssd, acc);
//! assert!(route.iter().all(|&l| !topo.link_touches(l, topo.root())));
//! ```

pub mod addr;
pub mod bandwidth;
pub mod boxes;
pub mod flow;
pub mod topology;

/// Test-only helpers (public so doctests and downstream test suites can build
/// raw ids); not part of the stable API.
#[doc(hidden)]
pub mod test_util {
    use crate::topology::{LinkId, NodeId};

    /// Build a raw [`LinkId`] from an index.
    pub fn link(index: u32) -> LinkId {
        LinkId(index)
    }

    /// Build a raw [`NodeId`] from an index.
    pub fn node(index: u32) -> NodeId {
        NodeId(index)
    }
}

pub use bandwidth::{Bandwidth, Generation};
pub use flow::{FlowDomains, FlowId, FlowNet, FlowSim};
pub use topology::{EndpointKind, LinkId, NodeId, Topology};

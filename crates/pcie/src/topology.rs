//! The PCIe tree: typed nodes, per-direction links, and LCA routing.
//!
//! PCIe forms a strict tree (§II-C): the root complex at the root, switches
//! as internal nodes, devices at the leaves. Each tree edge is a full-duplex
//! link modeled as **two directed links** (up toward the root, down toward
//! the leaves) so that simultaneous transfers in opposite directions do not
//! contend — matching real PCIe, which has independent lanes per direction.

use crate::bandwidth::Bandwidth;
use serde::{Deserialize, Serialize};

/// Identifier of a node in the PCIe tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index (stable for the lifetime of the topology).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a **directed** link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// Raw index (stable for the lifetime of the topology).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a link id from a raw index, e.g. one recorded in a fault
    /// plan. The caller is responsible for the index naming a link of the
    /// topology it is used against (out-of-range ids panic at use sites).
    pub fn from_index(index: usize) -> Self {
        LinkId(u32::try_from(index).expect("link index fits in u32"))
    }
}

/// What kind of device sits at an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EndpointKind {
    /// NVMe SSD (data source).
    Ssd,
    /// Neural-network accelerator (TPU/GPU class).
    NnAccel,
    /// Data-preparation accelerator (FPGA in the paper's implementation).
    PrepAccel,
    /// GPU used as a data-preparation accelerator (Fig 21 comparison).
    GpuPrep,
    /// Network interface (prep-pool Ethernet attach).
    Nic,
}

/// Node payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// The PCIe root complex; DMA to/from host memory terminates here.
    RootComplex,
    /// A PCIe switch.
    Switch,
    /// A leaf device.
    Endpoint(EndpointKind),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
    /// Link from parent down to this node / from this node up to parent.
    down_link: Option<LinkId>,
    up_link: Option<LinkId>,
    children: Vec<NodeId>,
    depth: u32,
}

/// A directed link with its capacity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Link {
    /// Upstream node (closer to the root).
    pub upstream: NodeId,
    /// Downstream node (further from the root).
    pub downstream: NodeId,
    /// `true` if this directed link carries traffic toward the root.
    pub toward_root: bool,
    /// Capacity in this direction.
    pub bandwidth: Bandwidth,
}

/// The PCIe tree.
///
/// Construct with [`Topology::new`], then grow with [`Topology::add_switch`]
/// and [`Topology::add_endpoint`]. Routes are computed over directed links
/// via the lowest common ancestor, which is how PCIe P2P traffic actually
/// flows: up from the source to the LCA switch, then down to the destination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl Topology {
    /// Create a topology containing only the root complex.
    ///
    /// `_rc_bandwidth` documents the RC's own attach bandwidth for display
    /// purposes; capacity limits are carried by the links hanging off the RC.
    pub fn new(_rc_bandwidth: Bandwidth) -> Self {
        Topology {
            nodes: vec![Node {
                kind: NodeKind::RootComplex,
                parent: None,
                down_link: None,
                up_link: None,
                children: Vec::new(),
                depth: 0,
            }],
            links: Vec::new(),
        }
    }

    /// The root complex.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    fn add_node(&mut self, parent: NodeId, kind: NodeKind, bandwidth: Bandwidth) -> NodeId {
        assert!(
            !matches!(self.nodes[parent.index()].kind, NodeKind::Endpoint(_)),
            "cannot attach children to an endpoint"
        );
        let id = NodeId(self.nodes.len() as u32);
        let depth = self.nodes[parent.index()].depth + 1;
        let down = LinkId(self.links.len() as u32);
        self.links.push(Link {
            upstream: parent,
            downstream: id,
            toward_root: false,
            bandwidth,
        });
        let up = LinkId(self.links.len() as u32);
        self.links.push(Link {
            upstream: parent,
            downstream: id,
            toward_root: true,
            bandwidth,
        });
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            down_link: Some(down),
            up_link: Some(up),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Attach a switch under `parent` via a full-duplex link of `bandwidth`
    /// per direction. Returns the new switch's id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is an endpoint.
    pub fn add_switch(&mut self, parent: NodeId, bandwidth: Bandwidth) -> NodeId {
        self.add_node(parent, NodeKind::Switch, bandwidth)
    }

    /// Attach a device endpoint under `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is an endpoint.
    pub fn add_endpoint(
        &mut self,
        parent: NodeId,
        kind: EndpointKind,
        bandwidth: Bandwidth,
    ) -> NodeId {
        self.add_node(parent, NodeKind::Endpoint(kind), bandwidth)
    }

    /// Number of nodes (including the root complex).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node payload kind.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node.index()].kind
    }

    /// Parent of `node` (`None` for the root complex).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// Children of `node`, in attach order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Depth of `node` (root complex = 0).
    pub fn depth(&self, node: NodeId) -> u32 {
        self.nodes[node.index()].depth
    }

    /// Directed link data.
    pub fn link(&self, link: LinkId) -> Link {
        self.links[link.index()]
    }

    /// All directed links.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, Link)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &l)| (LinkId(i as u32), l))
    }

    /// All endpoints of a given kind, in creation order.
    pub fn endpoints_of_kind(&self, kind: EndpointKind) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| self.kind(n) == NodeKind::Endpoint(kind))
            .collect()
    }

    /// Does the directed link attach to `node` on either side?
    pub fn link_touches(&self, link: LinkId, node: NodeId) -> bool {
        let l = self.link(link);
        l.upstream == node || l.downstream == node
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.depth(a) > self.depth(b) {
            a = self.parent(a).expect("non-root node has a parent");
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b).expect("non-root node has a parent");
        }
        while a != b {
            a = self.parent(a).expect("non-root node has a parent");
            b = self.parent(b).expect("non-root node has a parent");
        }
        a
    }

    /// The directed-link route of a transfer from `src` to `dst`: up-links
    /// from `src` to the LCA, then down-links from the LCA to `dst`.
    ///
    /// Either end may be the root complex itself (DMA to/from host memory).
    /// Returns an empty route when `src == dst`.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        let lca = self.lca(src, dst);
        let mut up = Vec::new();
        let mut n = src;
        while n != lca {
            up.push(self.nodes[n.index()].up_link.expect("non-root has up link"));
            n = self.parent(n).expect("non-root has parent");
        }
        let mut down = Vec::new();
        let mut n = dst;
        while n != lca {
            down.push(self.nodes[n.index()].down_link.expect("non-root has down link"));
            n = self.parent(n).expect("non-root has parent");
        }
        down.reverse();
        up.extend(down);
        up
    }

    /// Does the route from `src` to `dst` pass **through** the root complex
    /// (i.e. is the RC the LCA of a transfer between two distinct non-root
    /// nodes, or one end of the transfer)?
    pub fn route_crosses_root(&self, src: NodeId, dst: NodeId) -> bool {
        src == self.root() || dst == self.root() || self.lca(src, dst) == self.root()
    }

    /// The minimum per-direction bandwidth along a route (its static capacity
    /// ignoring contention). Returns `None` for an empty route.
    pub fn route_capacity(&self, route: &[LinkId]) -> Option<Bandwidth> {
        route.iter().map(|&l| self.link(l).bandwidth).min()
    }

    /// Number of physical ports a switch uses: its children plus the uplink
    /// to its parent. Real parts bound this (the paper's PEX8796 has six
    /// links: one up, five down — §V-D).
    pub fn switch_radix(&self, node: NodeId) -> usize {
        let up = usize::from(self.parent(node).is_some());
        self.children(node).len() + up
    }

    /// Every switch whose port count exceeds `max_links` (the root complex
    /// is exempt: it is not a switch part). Empty when the topology is
    /// buildable from `max_links`-port switches.
    pub fn radix_violations(&self, max_links: usize) -> Vec<(NodeId, usize)> {
        (1..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| matches!(self.kind(n), NodeKind::Switch))
            .map(|n| (n, self.switch_radix(n)))
            .filter(|&(_, r)| r > max_links)
            .collect()
    }
}

/// Port budget of the high-end switch part the paper assumes (PEX8796,
/// §V-D: "up to six links (five for downlinks and one for an uplink)").
pub const PEX8796_MAX_LINKS: usize = 6;

#[cfg(test)]
mod tests {
    use super::*;

    fn bw() -> Bandwidth {
        Bandwidth::gen3_x16()
    }

    /// RC -> sw1 -> {ssd, sw2 -> {acc1, acc2}}
    fn sample() -> (Topology, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new(bw());
        let sw1 = t.add_switch(t.root(), bw());
        let ssd = t.add_endpoint(sw1, EndpointKind::Ssd, Bandwidth::gen3_x4());
        let sw2 = t.add_switch(sw1, bw());
        let acc1 = t.add_endpoint(sw2, EndpointKind::NnAccel, bw());
        let acc2 = t.add_endpoint(sw2, EndpointKind::NnAccel, bw());
        (t, sw1, ssd, sw2, acc1, acc2)
    }

    #[test]
    fn tree_structure() {
        let (t, sw1, ssd, sw2, acc1, _) = sample();
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.link_count(), 10); // 5 edges x 2 directions
        assert_eq!(t.parent(sw1), Some(t.root()));
        assert_eq!(t.parent(ssd), Some(sw1));
        assert_eq!(t.children(sw1), &[ssd, sw2]);
        assert_eq!(t.depth(acc1), 3);
        assert_eq!(t.kind(ssd), NodeKind::Endpoint(EndpointKind::Ssd));
    }

    #[test]
    fn lca_cases() {
        let (t, sw1, ssd, sw2, acc1, acc2) = sample();
        assert_eq!(t.lca(acc1, acc2), sw2);
        assert_eq!(t.lca(ssd, acc1), sw1);
        assert_eq!(t.lca(ssd, ssd), ssd);
        assert_eq!(t.lca(t.root(), acc1), t.root());
    }

    #[test]
    fn route_between_siblings_stays_local() {
        let (t, _, _, sw2, acc1, acc2) = sample();
        let route = t.route(acc1, acc2);
        assert_eq!(route.len(), 2);
        // up from acc1 to sw2, down from sw2 to acc2
        let l0 = t.link(route[0]);
        let l1 = t.link(route[1]);
        assert!(l0.toward_root && l0.downstream == acc1 && l0.upstream == sw2);
        assert!(!l1.toward_root && l1.downstream == acc2 && l1.upstream == sw2);
        assert!(!t.route_crosses_root(acc1, acc2));
    }

    #[test]
    fn route_to_host_memory_crosses_root() {
        let (t, _, ssd, _, acc1, _) = sample();
        let route = t.route(ssd, t.root());
        assert_eq!(route.len(), 2); // ssd->sw1, sw1->rc (both up-links)
        assert!(route.iter().all(|&l| t.link(l).toward_root));
        assert!(t.route_crosses_root(ssd, t.root()));
        // P2P ssd -> acc does NOT cross the root (LCA is sw1).
        assert!(!t.route_crosses_root(ssd, acc1));
    }

    #[test]
    fn route_direction_links_are_disjoint() {
        let (t, _, ssd, _, acc1, _) = sample();
        let there = t.route(ssd, acc1);
        let back = t.route(acc1, ssd);
        assert_eq!(there.len(), back.len());
        for l in &there {
            assert!(!back.contains(l), "up and down directions must use distinct links");
        }
    }

    #[test]
    fn route_capacity_is_min_link() {
        let (t, _, ssd, _, acc1, _) = sample();
        let route = t.route(ssd, acc1);
        assert_eq!(t.route_capacity(&route), Some(Bandwidth::gen3_x4()));
        assert_eq!(t.route_capacity(&[]), None);
        assert!(t.route(ssd, ssd).is_empty());
    }

    #[test]
    fn endpoints_of_kind_filters() {
        let (t, ..) = sample();
        assert_eq!(t.endpoints_of_kind(EndpointKind::NnAccel).len(), 2);
        assert_eq!(t.endpoints_of_kind(EndpointKind::Ssd).len(), 1);
        assert!(t.endpoints_of_kind(EndpointKind::PrepAccel).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot attach children to an endpoint")]
    fn endpoint_cannot_have_children() {
        let (mut t, _, ssd, ..) = sample();
        t.add_switch(ssd, bw());
    }
}

//! Link-speed types.
//!
//! Bandwidth figures follow the paper's working numbers: PCIe Gen3 x16 ≈
//! 16 GB/s per direction (§IV-D: "100Gbps=12.5GB/s vs. 16GB/s"), Gen4 doubles
//! that, the DGX-2 class accelerator fabric is 300 GB/s (§III-A), and the
//! prep-pool network is 100 Gb Ethernet.

use serde::{Deserialize, Serialize};
use trainbox_sim::SimTime;

/// A link bandwidth in bytes per second.
///
/// # Example
///
/// ```
/// use trainbox_pcie::Bandwidth;
/// use trainbox_sim::SimTime;
///
/// let bw = Bandwidth::from_gbytes_per_sec(16.0);
/// // 16 MB over a 16 GB/s link takes 1 ms.
/// assert_eq!(bw.transfer_time(16_000_000), SimTime::from_millis(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Construct from raw bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero: a zero-bandwidth link can never transfer data
    /// and always indicates a configuration bug.
    pub fn from_bytes_per_sec(bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        Bandwidth(bps)
    }

    /// Construct from GB/s (decimal gigabytes).
    pub fn from_gbytes_per_sec(gbps: f64) -> Self {
        assert!(gbps.is_finite() && gbps > 0.0, "bandwidth must be positive");
        Bandwidth((gbps * 1e9).round() as u64)
    }

    /// PCIe Gen3 x16: 16 GB/s per direction (the paper's general-purpose link).
    pub fn gen3_x16() -> Self {
        Generation::Gen3.lanes(16)
    }

    /// PCIe Gen3 x8: 8 GB/s per direction.
    pub fn gen3_x8() -> Self {
        Generation::Gen3.lanes(8)
    }

    /// PCIe Gen3 x4: 4 GB/s per direction (typical NVMe SSD attach).
    pub fn gen3_x4() -> Self {
        Generation::Gen3.lanes(4)
    }

    /// PCIe Gen4 x16: 32 GB/s per direction (the paper's `+Gen4` variant).
    pub fn gen4_x16() -> Self {
        Generation::Gen4.lanes(16)
    }

    /// DGX-2 class accelerator fabric: 300 GB/s (§III-A: 9.4× over PCIe... the
    /// datasheet NVLink figure the paper cites).
    pub fn accel_fabric() -> Self {
        Bandwidth::from_gbytes_per_sec(300.0)
    }

    /// 100 Gb Ethernet: 12.5 GB/s (§IV-D, the prep-pool network).
    pub fn ethernet_100g() -> Self {
        Bandwidth::from_gbytes_per_sec(12.5)
    }

    /// Raw bytes per second.
    pub fn bytes_per_sec(self) -> u64 {
        self.0
    }

    /// Bandwidth in GB/s.
    pub fn gbytes_per_sec(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to move `bytes` at this bandwidth (no protocol overhead).
    pub fn transfer_time(self, bytes: u64) -> SimTime {
        // Picoseconds per byte = 1e12 / bps; computed in u128 to avoid overflow.
        let ps = (bytes as u128 * 1_000_000_000_000u128) / self.0 as u128;
        SimTime::from_picos(ps as u64)
    }

    /// Scale by a dimensionless factor (e.g. protocol efficiency).
    pub fn scale(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "scale factor must be positive");
        Bandwidth::from_bytes_per_sec(((self.0 as f64) * factor).round().max(1.0) as u64)
    }
}

impl std::fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} GB/s", self.gbytes_per_sec())
    }
}

/// PCIe generation: determines per-lane throughput.
///
/// Rates are the usable data rates the paper works with (Gen3 x16 = 16 GB/s),
/// i.e. ~1 GB/s per Gen3 lane after encoding overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Generation {
    /// PCIe 3.x — 1 GB/s per lane usable.
    Gen3,
    /// PCIe 4.x — 2 GB/s per lane usable.
    Gen4,
    /// PCIe 5.x — 4 GB/s per lane usable (for forward-looking sweeps).
    Gen5,
}

impl Generation {
    /// Usable bandwidth per lane.
    pub fn per_lane(self) -> Bandwidth {
        match self {
            Generation::Gen3 => Bandwidth::from_gbytes_per_sec(1.0),
            Generation::Gen4 => Bandwidth::from_gbytes_per_sec(2.0),
            Generation::Gen5 => Bandwidth::from_gbytes_per_sec(4.0),
        }
    }

    /// Bandwidth of a link with `n` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn lanes(self, n: u32) -> Bandwidth {
        assert!(n > 0, "a link needs at least one lane");
        Bandwidth::from_bytes_per_sec(self.per_lane().bytes_per_sec() * n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_rates() {
        assert_eq!(Bandwidth::gen3_x16().gbytes_per_sec(), 16.0);
        assert_eq!(Bandwidth::gen4_x16().gbytes_per_sec(), 32.0);
        assert_eq!(Generation::Gen5.lanes(16).gbytes_per_sec(), 64.0);
        assert_eq!(Bandwidth::gen3_x4().gbytes_per_sec(), 4.0);
    }

    #[test]
    fn paper_link_ratios() {
        // §II-C: accelerator interconnect in DGX-2 provides ~9.4x the
        // general-purpose interconnect; with our working numbers 300/32
        // (dual x16 uplinks) or 300/16 both land in the right regime.
        let ratio = Bandwidth::accel_fabric().gbytes_per_sec() / Bandwidth::gen3_x16().gbytes_per_sec();
        assert!(ratio > 9.0);
        // §IV-D: Ethernet is comparable to PCIe (12.5 vs 16 GB/s).
        assert!(Bandwidth::ethernet_100g().gbytes_per_sec() < Bandwidth::gen3_x16().gbytes_per_sec());
        assert!(Bandwidth::ethernet_100g().gbytes_per_sec() > 0.7 * Bandwidth::gen3_x16().gbytes_per_sec());
    }

    #[test]
    fn transfer_time_exact() {
        let bw = Bandwidth::from_gbytes_per_sec(1.0);
        assert_eq!(bw.transfer_time(1_000_000_000), SimTime::from_secs(1));
        assert_eq!(bw.transfer_time(0), SimTime::ZERO);
        assert_eq!(bw.transfer_time(1), SimTime::from_nanos(1));
    }

    #[test]
    fn transfer_time_no_overflow_on_huge_transfers() {
        let bw = Bandwidth::from_gbytes_per_sec(16.0);
        // 1 PB transfer should not overflow intermediate math.
        let t = bw.transfer_time(1_000_000_000_000_000);
        assert!((t.as_secs_f64() - 62500.0).abs() < 1.0);
    }

    #[test]
    fn scale_rounds_and_stays_positive() {
        let bw = Bandwidth::from_bytes_per_sec(10);
        assert_eq!(bw.scale(0.05).bytes_per_sec(), 1);
        assert_eq!(bw.scale(2.0).bytes_per_sec(), 20);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        Bandwidth::from_bytes_per_sec(0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Bandwidth::gen3_x16().to_string(), "16.00 GB/s");
    }
}

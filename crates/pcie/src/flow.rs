//! Fluid bandwidth sharing: max-min fair rates and an event-driven transfer
//! simulator.
//!
//! Concurrent DMA transfers that share a directed link split its capacity.
//! PCIe switches arbitrate per-port roughly fairly, so we model the steady
//! state as the classic **max-min fair allocation** computed by progressive
//! filling: all flows grow at the same rate; when a link saturates, the flows
//! crossing it freeze at their current rate; repeat. Flows can additionally
//! carry a *demand cap* (a device that cannot source data faster than its own
//! throughput), which progressive filling honors by freezing a flow when it
//! reaches its demand.
//!
//! [`FlowSim`] layers finite-size transfers on top: it tracks the remaining
//! bytes of each active flow, recomputes rates whenever the flow set changes,
//! and exposes the next completion instant for a discrete-event driver.

use crate::topology::{LinkId, Topology};
use serde::{Deserialize, Serialize};
use trainbox_sim::{FxHashMap, SimTime, TimeWeighted};

/// Identifier of an active flow in a [`FlowSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(u64);

/// Specification of one flow for a rate computation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Directed links the flow traverses (may be empty for node-local copies).
    pub route: Vec<LinkId>,
    /// Optional source/sink throughput cap in bytes/s.
    pub demand: Option<f64>,
}

impl FlowSpec {
    /// A flow over `route` limited only by the network.
    pub fn new(route: Vec<LinkId>) -> Self {
        FlowSpec { route, demand: None }
    }

    /// A flow over `route` that additionally cannot exceed `demand` bytes/s.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is not finite and positive.
    pub fn with_demand(route: Vec<LinkId>, demand: f64) -> Self {
        assert!(demand.is_finite() && demand > 0.0, "demand must be positive");
        FlowSpec { route, demand: Some(demand) }
    }
}

/// The link-capacity view used for rate computations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowNet {
    /// Capacity of each directed link in bytes/s, indexed by [`LinkId`].
    capacity: Vec<f64>,
}

impl FlowNet {
    /// Capacities taken from a topology's directed links.
    pub fn from_topology(topo: &Topology) -> Self {
        FlowNet {
            capacity: topo
                .links()
                .map(|(_, l)| l.bandwidth.bytes_per_sec() as f64)
                .collect(),
        }
    }

    /// Capacities given directly (mainly for tests).
    ///
    /// # Panics
    ///
    /// Panics if any capacity is not finite and positive.
    pub fn from_capacities(capacity: Vec<f64>) -> Self {
        assert!(
            capacity.iter().all(|&c| c.is_finite() && c > 0.0),
            "link capacities must be positive"
        );
        FlowNet { capacity }
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.capacity.len()
    }

    /// Capacity of one link in bytes/s.
    pub fn capacity(&self, link: LinkId) -> f64 {
        self.capacity[link.index()]
    }

    /// Change one link's capacity — the fault-injection hook for modeling a
    /// degraded PCIe link (e.g. retraining to fewer lanes or a lower rate).
    ///
    /// # Panics
    ///
    /// Panics if `link` is unknown or `bytes_per_sec` is not finite and
    /// positive.
    pub fn set_capacity(&mut self, link: LinkId, bytes_per_sec: f64) {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "link capacity must be positive"
        );
        assert!(link.index() < self.capacity.len(), "unknown link");
        self.capacity[link.index()] = bytes_per_sec;
    }

    /// Batched capacity change: apply every `(link, bytes_per_sec)` update in
    /// one call. The fault-injection hook for a *storm* of link degradations
    /// — callers holding a [`FlowSim`] get a single rate recomputation for
    /// the whole batch instead of one per link.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`FlowNet::set_capacity`].
    pub fn set_capacities(&mut self, updates: &[(LinkId, f64)]) {
        for &(link, bytes_per_sec) in updates {
            self.set_capacity(link, bytes_per_sec);
        }
    }

    /// Partition the links into **flow domains**: connected components of the
    /// "can contend" relation, where two links are coupled when some route in
    /// `routes` crosses both. Rates in one domain are independent of flows
    /// and capacities in every other — max-min progressive filling only
    /// propagates pressure along shared links — so a domain is the unit a
    /// parallel simulation may own exclusively without synchronizing rate
    /// recomputations.
    ///
    /// Deterministic: domain ids are dense and assigned in ascending order of
    /// each domain's smallest link index. Links no route touches belong to no
    /// domain ([`FlowDomains::domain_of`] returns `None`) — they can never
    /// contend with anything.
    ///
    /// # Panics
    ///
    /// Panics if a route references an unknown link.
    pub fn domains<'a>(&self, routes: impl IntoIterator<Item = &'a [LinkId]>) -> FlowDomains {
        // Union-find over link indices, path-halving, union by attaching the
        // larger root index under the smaller so roots stay minimal.
        let n = self.capacity.len();
        let mut parent: Vec<usize> = (0..n).collect();
        let mut used = vec![false; n];
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for route in routes {
            let mut first: Option<usize> = None;
            for l in route {
                assert!(l.index() < n, "route references unknown link");
                used[l.index()] = true;
                match first {
                    None => first = Some(l.index()),
                    Some(f) => {
                        let (a, b) = (find(&mut parent, f), find(&mut parent, l.index()));
                        if a != b {
                            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                            parent[hi] = lo;
                        }
                    }
                }
            }
        }
        let mut domain_of = vec![None; n];
        let mut next = 0usize;
        let mut id_of_root: FxHashMap<usize, usize> = FxHashMap::default();
        for i in 0..n {
            if !used[i] {
                continue;
            }
            let root = find(&mut parent, i);
            let id = *id_of_root.entry(root).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            domain_of[i] = Some(id);
        }
        FlowDomains { domain_of, count: next }
    }

    fn validate(&self, f: &FlowSpec) {
        assert!(
            !f.route.is_empty() || f.demand.is_some(),
            "a flow with an empty route needs a demand cap"
        );
        for l in &f.route {
            assert!(l.index() < self.capacity.len(), "route references unknown link");
        }
    }

    /// Max-min fair rates (bytes/s) for `flows`, honoring demand caps.
    ///
    /// Progressive filling: all unfrozen flows grow together; the binding
    /// constraint each round is either a saturating link or a flow hitting
    /// its demand. Flows with an empty route and no demand are unconstrained
    /// and rejected.
    ///
    /// This is the fast path: flows with identical route and demand are
    /// collapsed into *flow classes* and the waterfill runs at class
    /// granularity. The result is bit-identical to [`FlowNet::max_min_rates_ref`]
    /// (see [`solve_classes`] for why), just cheaper when flows repeat —
    /// which they do heavily in the DES, where every in-flight chunk on the
    /// same leg shares one route.
    ///
    /// # Panics
    ///
    /// Panics if a flow has an empty route and no demand, or if a route
    /// references an unknown link.
    pub fn max_min_rates(&self, flows: &[FlowSpec]) -> Vec<f64> {
        for f in flows {
            self.validate(f);
        }
        // Classes in first-occurrence order.
        let mut index: FxHashMap<ClassKey, usize> = FxHashMap::default();
        let mut classes: Vec<FlowClass> = Vec::new();
        let mut membership = Vec::with_capacity(flows.len());
        for f in flows {
            let key = ClassKey::of(f);
            let c = *index.entry(key).or_insert_with(|| {
                classes.push(FlowClass {
                    route: f.route.clone(),
                    demand: f.demand,
                    members: 0,
                });
                classes.len() - 1
            });
            classes[c].members += 1;
            membership.push(c);
        }
        let mut scratch = AllocScratch::default();
        solve_classes(&self.capacity, &classes, &mut scratch);
        membership.into_iter().map(|c| scratch.rate[c]).collect()
    }

    /// Reference max-min allocator: the direct per-flow progressive-filling
    /// implementation, kept as the semantic (and bit-level) baseline the
    /// fast classed allocator is tested against. Identical contract to
    /// [`FlowNet::max_min_rates`].
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`FlowNet::max_min_rates`].
    pub fn max_min_rates_ref(&self, flows: &[FlowSpec]) -> Vec<f64> {
        for f in flows {
            self.validate(f);
        }
        let n = flows.len();
        let mut rate = vec![0.0f64; n];
        let mut frozen = vec![false; n];
        let mut residual = self.capacity.clone();
        // Flows crossing each link.
        let mut on_link: Vec<Vec<usize>> = vec![Vec::new(); self.capacity.len()];
        for (i, f) in flows.iter().enumerate() {
            for l in &f.route {
                on_link[l.index()].push(i);
            }
        }

        // Per-round unfrozen counts, allocated once and refilled in place.
        let mut unfrozen_on: Vec<usize> = vec![0; self.capacity.len()];
        loop {
            // Unfrozen flow count per link.
            for (li, fl) in on_link.iter().enumerate() {
                unfrozen_on[li] = fl.iter().filter(|&&i| !frozen[i]).count();
            }
            // Smallest head-room per unfrozen flow: link constraint.
            let mut inc = f64::INFINITY;
            for li in 0..self.capacity.len() {
                if unfrozen_on[li] > 0 {
                    inc = inc.min(residual[li] / unfrozen_on[li] as f64);
                }
            }
            // Demand constraints.
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                if let Some(d) = f.demand {
                    inc = inc.min(d - rate[i]);
                }
            }
            if !inc.is_finite() {
                // No unfrozen flow crosses any link and none has a demand gap
                // left: all remaining flows are empty-route demand flows that
                // were already frozen, or there are no unfrozen flows at all.
                break;
            }
            let inc = inc.max(0.0);
            // Apply the increment.
            let mut progressed = false;
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                rate[i] += inc;
                progressed = true;
                for l in &f.route {
                    residual[l.index()] -= inc;
                }
            }
            if !progressed {
                break;
            }
            // Freeze: flows at demand, and flows crossing a saturated link.
            const EPS: f64 = 1e-9;
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                let at_demand = f.demand.is_some_and(|d| rate[i] >= d - EPS * d.max(1.0));
                let on_saturated = f.route.iter().any(|l| {
                    residual[l.index()] <= EPS * self.capacity[l.index()]
                });
                if at_demand || on_saturated {
                    frozen[i] = true;
                }
            }
            if frozen.iter().all(|&f| f) {
                break;
            }
        }
        rate
    }

    /// Total traffic each link carries (bytes/s) under the given rates —
    /// useful for utilization accounting and for checking feasibility.
    pub fn link_loads(&self, flows: &[FlowSpec], rates: &[f64]) -> Vec<f64> {
        assert_eq!(flows.len(), rates.len(), "flows and rates must correspond");
        let mut load = vec![0.0; self.capacity.len()];
        for (f, &r) in flows.iter().zip(rates) {
            for l in &f.route {
                load[l.index()] += r;
            }
        }
        load
    }
}

/// Result of [`FlowNet::domains`]: a dense labeling of links by the flow
/// domain that owns them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowDomains {
    domain_of: Vec<Option<usize>>,
    count: usize,
}

impl FlowDomains {
    /// Number of distinct domains (coupled link groups).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Domain owning `link`, or `None` when no route touches it.
    pub fn domain_of(&self, link: LinkId) -> Option<usize> {
        self.domain_of.get(link.index()).copied().flatten()
    }

    /// Links per domain, indexed by domain id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for d in self.domain_of.iter().flatten() {
            sizes[*d] += 1;
        }
        sizes
    }

    /// True when `a` and `b` can never influence each other's rates: they
    /// belong to different domains (or one is untouched by any route).
    pub fn independent(&self, a: LinkId, b: LinkId) -> bool {
        match (self.domain_of(a), self.domain_of(b)) {
            (Some(da), Some(db)) => da != db,
            _ => true,
        }
    }
}

/// Identity of a flow class: flows sharing a route and demand cap are
/// interchangeable to the max-min allocator. Demand is keyed by its bit
/// pattern so `HashMap` lookups stay exact (the allocator never treats two
/// different f64 values as the same class).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ClassKey {
    route: Vec<LinkId>,
    demand_bits: u64,
}

impl ClassKey {
    fn of(spec: &FlowSpec) -> Self {
        ClassKey {
            route: spec.route.clone(),
            // All NaN/None collisions are impossible: demand is validated
            // finite-positive, and u64::MAX is not a finite f64's bit pattern.
            demand_bits: spec.demand.map_or(u64::MAX, f64::to_bits),
        }
    }
}

/// One equivalence class of flows for the fast allocator.
#[derive(Debug, Clone)]
struct FlowClass {
    route: Vec<LinkId>,
    demand: Option<f64>,
    /// Active flows in this class; 0 marks a tombstoned (reusable) slot.
    members: usize,
}

/// Persistent scratch buffers for [`solve_classes`]: reused across calls so
/// the hot loop allocates nothing.
#[derive(Debug, Clone, Default)]
struct AllocScratch {
    residual: Vec<f64>,
    unfrozen_on: Vec<usize>,
    /// Per-class rate (the solver output).
    rate: Vec<f64>,
    frozen: Vec<bool>,
    /// Per-link load accumulator for utilization accounting.
    load: Vec<f64>,
}

/// Persistent scratch for the domain-incremental solver ([`FlowSim`]'s hot
/// path). The link-indexed vectors are full-size but only the entries of the
/// domain being solved are ever touched, so a recompute costs O(domain), not
/// O(links) — the per-batch reallocation the classed path used to pay on
/// every capacity change is gone.
#[derive(Debug, Clone, Default)]
struct DomainScratch {
    /// Links of the domain under solve (deduplicated via `link_epoch`).
    links: Vec<usize>,
    /// Dedup stamps for `links`; a link is in the current domain's list iff
    /// its stamp equals the current epoch. Never cleared, only outdated.
    link_epoch: Vec<u64>,
    epoch: u64,
    /// Residual capacity, refreshed per solve on domain links only.
    residual: Vec<f64>,
    /// Unfrozen member count per link; zeroed back after every solve so the
    /// next domain starts clean without a full sweep.
    unfrozen_on: Vec<usize>,
    /// Per-domain-class state, indexed by position in the solve's class list.
    rate: Vec<f64>,
    frozen: Vec<bool>,
    /// Class ids of the dirty domains, grouped per root.
    class_ids: Vec<usize>,
    /// Dirty domain roots of the current recompute (deduplicated).
    dirty_roots: Vec<usize>,
    root_epoch: Vec<u64>,
}

/// Monotone union-find over link indices: links sharing a route are merged
/// when a class first appears and never split, so the partition only
/// coarsens. Coarser-than-necessary domains cost extra solve work, never
/// wrong rates — and in the DES the route set is fixed after warm-up, so the
/// partition converges to exactly [`FlowNet::domains`].
#[derive(Debug, Clone, Default)]
struct LinkDomains {
    parent: Vec<usize>,
}

impl LinkDomains {
    fn new(n_links: usize) -> Self {
        LinkDomains { parent: (0..n_links).collect() }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic tie-break: smaller index wins the root, so the
            // domain structure is a pure function of the interning history.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Progressive filling at flow-class granularity.
///
/// Bit-identical to the per-flow reference by construction:
///
/// * within a round every unfrozen flow receives the *same* increment, so a
///   link crossed by `k` unfrozen flows ends the round after `k` identical
///   subtractions — the result depends only on `k`, not on which flows or in
///   what order, and the per-member subtraction loop below replays exactly
///   that chain;
/// * members of a class have bit-equal rates at every round (same start,
///   same increments), so tracking one rate per class loses nothing;
/// * the round increment is a `min` over link head-rooms and demand gaps,
///   which is order-independent for finite f64 values.
///
/// Per-link unfrozen counts are maintained incrementally (decremented when a
/// class freezes) instead of rescanned from the flow list each round, which
/// is where the reference spends most of its time.
fn solve_classes(capacity: &[f64], classes: &[FlowClass], scratch: &mut AllocScratch) {
    let n_links = capacity.len();
    scratch.residual.clear();
    scratch.residual.extend_from_slice(capacity);
    scratch.unfrozen_on.clear();
    scratch.unfrozen_on.resize(n_links, 0);
    scratch.rate.clear();
    scratch.rate.resize(classes.len(), 0.0);
    scratch.frozen.clear();
    scratch.frozen.resize(classes.len(), false);

    let mut unfrozen_classes = 0usize;
    for (c, cl) in classes.iter().enumerate() {
        if cl.members == 0 {
            scratch.frozen[c] = true; // tombstoned slot
            continue;
        }
        unfrozen_classes += 1;
        for l in &cl.route {
            scratch.unfrozen_on[l.index()] += cl.members;
        }
    }

    while unfrozen_classes > 0 {
        // Smallest head-room per unfrozen flow: link constraint, then demand.
        let mut inc = f64::INFINITY;
        for li in 0..n_links {
            if scratch.unfrozen_on[li] > 0 {
                inc = inc.min(scratch.residual[li] / scratch.unfrozen_on[li] as f64);
            }
        }
        for (c, cl) in classes.iter().enumerate() {
            if scratch.frozen[c] {
                continue;
            }
            if let Some(d) = cl.demand {
                inc = inc.min(d - scratch.rate[c]);
            }
        }
        if !inc.is_finite() {
            // No unfrozen flow crosses any link and none has a demand gap
            // left (cannot happen while a validated unfrozen class remains,
            // but mirrors the reference's termination guard).
            break;
        }
        let inc = inc.max(0.0);
        // Apply the increment. A link crossed by k unfrozen members takes k
        // identical subtractions — the reference's exact arithmetic chain.
        for (c, cl) in classes.iter().enumerate() {
            if scratch.frozen[c] {
                continue;
            }
            scratch.rate[c] += inc;
            for l in &cl.route {
                let r = &mut scratch.residual[l.index()];
                for _ in 0..cl.members {
                    *r -= inc;
                }
            }
        }
        // Freeze: classes at demand, and classes crossing a saturated link.
        const EPS: f64 = 1e-9;
        for (c, cl) in classes.iter().enumerate() {
            if scratch.frozen[c] {
                continue;
            }
            let at_demand = cl
                .demand
                .is_some_and(|d| scratch.rate[c] >= d - EPS * d.max(1.0));
            let on_saturated = cl
                .route
                .iter()
                .any(|l| scratch.residual[l.index()] <= EPS * capacity[l.index()]);
            if at_demand || on_saturated {
                scratch.frozen[c] = true;
                unfrozen_classes -= 1;
                for l in &cl.route {
                    scratch.unfrozen_on[l.index()] -= cl.members;
                }
            }
        }
    }
}

/// Progressive filling over a single link domain, touching only the
/// domain's links. `ds.class_ids` names the domain's live classes
/// (ascending class index); rates land in `class_rate`.
///
/// Bit-identical to [`FlowNet::max_min_rates_ref`] run on the domain's flows
/// alone, by the same increment-chain argument as [`solve_classes`]: within
/// a round every unfrozen flow takes the same increment, the round minimum
/// is exact (no rounding), and per-member repeated subtraction replays the
/// reference's residual arithmetic. Restricting the round scan to the
/// domain's links loses nothing — every link with a nonzero unfrozen count
/// is in the domain by construction.
///
/// The link-indexed scratch vectors are refreshed only on the domain's links
/// (epoch-stamped dedup), so a solve costs O(domain), independent of the
/// fabric size — no per-call reallocation, no full-capacity copy.
fn solve_domain(
    capacity: &[f64],
    classes: &[FlowClass],
    ds: &mut DomainScratch,
    class_rate: &mut [f64],
) {
    let n = ds.class_ids.len();
    ds.links.clear();
    ds.rate.clear();
    ds.rate.resize(n, 0.0);
    ds.frozen.clear();
    ds.frozen.resize(n, false);
    for k in 0..n {
        let cl = &classes[ds.class_ids[k]];
        for l in &cl.route {
            let li = l.index();
            if ds.link_epoch[li] != ds.epoch {
                ds.link_epoch[li] = ds.epoch;
                ds.links.push(li);
                ds.residual[li] = capacity[li];
                ds.unfrozen_on[li] = 0;
            }
            ds.unfrozen_on[li] += cl.members;
        }
    }
    let mut unfrozen = n;
    while unfrozen > 0 {
        let mut inc = f64::INFINITY;
        for &li in &ds.links {
            if ds.unfrozen_on[li] > 0 {
                inc = inc.min(ds.residual[li] / ds.unfrozen_on[li] as f64);
            }
        }
        for k in 0..n {
            if ds.frozen[k] {
                continue;
            }
            if let Some(d) = classes[ds.class_ids[k]].demand {
                inc = inc.min(d - ds.rate[k]);
            }
        }
        if !inc.is_finite() {
            // Mirrors the reference's termination guard; unreachable while a
            // validated unfrozen class remains (its links bound the round).
            break;
        }
        let inc = inc.max(0.0);
        for k in 0..n {
            if ds.frozen[k] {
                continue;
            }
            ds.rate[k] += inc;
            let cl = &classes[ds.class_ids[k]];
            for l in &cl.route {
                let r = &mut ds.residual[l.index()];
                for _ in 0..cl.members {
                    *r -= inc;
                }
            }
        }
        const EPS: f64 = 1e-9;
        for k in 0..n {
            if ds.frozen[k] {
                continue;
            }
            let cl = &classes[ds.class_ids[k]];
            let at_demand = cl.demand.is_some_and(|d| ds.rate[k] >= d - EPS * d.max(1.0));
            let on_saturated = cl
                .route
                .iter()
                .any(|l| ds.residual[l.index()] <= EPS * capacity[l.index()]);
            if at_demand || on_saturated {
                ds.frozen[k] = true;
                unfrozen -= 1;
                for l in &cl.route {
                    ds.unfrozen_on[l.index()] -= cl.members;
                }
            }
        }
    }
    for k in 0..n {
        class_rate[ds.class_ids[k]] = ds.rate[k];
    }
    // Leave the unfrozen counts zeroed for the next solve (they already are
    // unless the termination guard broke the loop early).
    for &li in &ds.links {
        ds.unfrozen_on[li] = 0;
    }
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    /// Index into the simulator's class table.
    class: usize,
    remaining: f64,
    /// Current max-min rate, written in place by `recompute` so the hot
    /// advance/next-completion loops touch one map instead of two.
    rate: f64,
}

/// Event-driven finite-transfer simulator over a [`FlowNet`].
///
/// Drive it from a DES loop: add flows as transfers start, query
/// [`FlowSim::next_completion`], advance to that instant, and call
/// [`FlowSim::complete`] on the finished flow.
///
/// # Example
///
/// ```
/// use trainbox_pcie::flow::{FlowNet, FlowSim, FlowSpec};
/// use trainbox_pcie::topology::LinkId;
/// use trainbox_sim::{SimTime, TimeWeighted};
///
/// // One 1 GB/s link shared by two 1 MB transfers: each gets 0.5 GB/s,
/// // both complete at 2 ms.
/// let net = FlowNet::from_capacities(vec![1e9]);
/// let mut sim = FlowSim::new(net);
/// let l = trainbox_pcie::test_util::link(0);
/// let a = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![l]), 1_000_000.0);
/// let b = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![l]), 1_000_000.0);
/// let (t, first) = sim.next_completion().unwrap();
/// assert_eq!(t, SimTime::from_millis(2));
/// assert!(first == a || first == b);
/// ```
#[derive(Debug, Clone)]
pub struct FlowSim {
    net: FlowNet,
    flows: FxHashMap<FlowId, ActiveFlow>,
    order: Vec<FlowId>,
    /// Flow classes (route + demand equivalence); tombstoned slots are
    /// reused so indices stay stable while flows churn.
    classes: Vec<FlowClass>,
    class_index: FxHashMap<ClassKey, usize>,
    free_classes: Vec<usize>,
    scratch: AllocScratch,
    /// Set when the flow set or a capacity changed since the last
    /// recomputation; a clean simulator skips the allocator entirely.
    dirty: bool,
    /// Monotone link partition: which links can currently share a bottleneck.
    domains: LinkDomains,
    /// Links whose domain must be re-solved at the next recomputation
    /// (route links of added/completed flows, links with capacity changes).
    dirty_links: Vec<usize>,
    /// Set when a link-free class (empty route, demand-capped) appeared or
    /// disappeared; such classes form their own pseudo-domains.
    dirty_nolink: bool,
    /// Per-class rate from the last solve of that class's domain; classes in
    /// clean domains keep their rates without any allocator work.
    class_rate: Vec<f64>,
    dscratch: DomainScratch,
    recomputes: u64,
    domain_solves: u64,
    reference: bool,
    now: SimTime,
    next_id: u64,
    utilization: Vec<TimeWeighted>,
    /// When enabled, every allocator recomputation appends one
    /// [`FlowTraceEvent`] here; the trace layer drains it with
    /// [`FlowSim::take_trace`]. Off by default — recording only observes the
    /// rates already computed, never affects them.
    trace: bool,
    trace_log: Vec<FlowTraceEvent>,
}

/// One allocator recomputation observed by [`FlowSim`] rate tracing
/// ([`FlowSim::set_trace`]): the instant, the population, and the spread of
/// the max-min allocation that resulted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowTraceEvent {
    /// Simulated time of the recomputation.
    pub at: SimTime,
    /// Active flows after the triggering change.
    pub active: usize,
    /// Smallest allocated rate, bytes/s (0 when no flows are active).
    pub min_rate: f64,
    /// Largest allocated rate, bytes/s (0 when no flows are active).
    pub max_rate: f64,
}

impl FlowSim {
    /// Create a simulator over `net` at time zero with no flows.
    ///
    /// Per-link utilization tracking starts disabled; call
    /// [`FlowSim::set_track_utilization`] before adding flows to record it.
    pub fn new(net: FlowNet) -> Self {
        let utilization = Vec::new();
        let n_links = net.link_count();
        FlowSim {
            net,
            flows: FxHashMap::default(),
            order: Vec::new(),
            classes: Vec::new(),
            class_index: FxHashMap::default(),
            free_classes: Vec::new(),
            scratch: AllocScratch::default(),
            dirty: false,
            domains: LinkDomains::new(n_links),
            dirty_links: Vec::new(),
            dirty_nolink: false,
            class_rate: Vec::new(),
            dscratch: DomainScratch::default(),
            recomputes: 0,
            domain_solves: 0,
            reference: false,
            now: SimTime::ZERO,
            next_id: 0,
            utilization,
            trace: false,
            trace_log: Vec::new(),
        }
    }

    /// Current simulator time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of active flows.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Borrow the capacity view.
    pub fn net(&self) -> &FlowNet {
        &self.net
    }

    /// Number of rate recomputations performed so far — the simulator-core
    /// cost metric `bench_sim` tracks.
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    /// Number of per-domain allocator solves performed so far. One
    /// recomputation re-solves only the *dirty* domains, so on a server whose
    /// links split into several independent groups this grows slower than
    /// `recomputes × domains` — the domain-incremental win.
    pub fn domain_solves(&self) -> u64 {
        self.domain_solves
    }

    /// Route every recomputation through the per-flow reference allocator
    /// ([`FlowNet::max_min_rates_ref`]) instead of the classed fast path.
    /// Rates are bit-identical either way; this exists so `bench_sim` can
    /// measure the fast path's win on live DES workloads.
    pub fn set_reference_allocator(&mut self, reference: bool) {
        self.reference = reference;
    }

    /// Enable (or disable) per-link time-weighted utilization tracking.
    ///
    /// Off by default: it costs O(links) samples per rate recomputation and
    /// no figure reads it, so the DES pipelines leave it off. Enable before
    /// adding flows — samples only accumulate from that point on.
    pub fn set_track_utilization(&mut self, on: bool) {
        if on && self.utilization.is_empty() {
            self.utilization = (0..self.net.link_count())
                .map(|i| TimeWeighted::new(format!("link-{i}")))
                .collect();
        } else if !on {
            self.utilization = Vec::new();
        }
    }

    /// Enable (or disable) rate-change tracing: each allocator recomputation
    /// appends one [`FlowTraceEvent`] to an internal log. Purely
    /// observational — the rates themselves are identical with tracing on or
    /// off. Disabling clears the log.
    pub fn set_trace(&mut self, on: bool) {
        self.trace = on;
        if !on {
            self.trace_log = Vec::new();
        }
    }

    /// Drain the rate-change trace log accumulated since the last call
    /// (empty unless [`FlowSim::set_trace`] enabled tracing).
    pub fn take_trace(&mut self) -> Vec<FlowTraceEvent> {
        std::mem::take(&mut self.trace_log)
    }

    /// Find or create the class for `spec`, consuming its route. Marks the
    /// class's domain dirty and merges the route's links into one domain
    /// (they now share a potential bottleneck).
    fn intern_class(&mut self, spec: FlowSpec) -> usize {
        let key = ClassKey::of(&spec);
        if let Some(&c) = self.class_index.get(&key) {
            self.classes[c].members += 1;
            self.mark_route_dirty(c);
            return c;
        }
        let class = FlowClass { route: spec.route, demand: spec.demand, members: 1 };
        if let Some((&first, rest)) = class.route.split_first() {
            for l in rest {
                self.domains.union(first.index(), l.index());
            }
        }
        let c = match self.free_classes.pop() {
            Some(slot) => {
                self.classes[slot] = class;
                slot
            }
            None => {
                self.classes.push(class);
                self.classes.len() - 1
            }
        };
        if self.class_rate.len() <= c {
            self.class_rate.resize(c + 1, 0.0);
        }
        self.class_rate[c] = 0.0;
        self.class_index.insert(key, c);
        self.mark_route_dirty(c);
        c
    }

    /// Mark class `c`'s domain dirty (its member set or environment changed).
    fn mark_route_dirty(&mut self, c: usize) {
        let route = &self.classes[c].route;
        if route.is_empty() {
            self.dirty_nolink = true;
        } else {
            // One route link suffices: every link of the route is already in
            // the same domain by the union in `intern_class`.
            self.dirty_links.push(route[0].index());
        }
        self.dirty = true;
    }

    /// Drop one membership from class `c`, tombstoning the slot when empty.
    fn release_class(&mut self, c: usize) {
        self.mark_route_dirty(c);
        let cl = &mut self.classes[c];
        cl.members -= 1;
        if cl.members == 0 {
            let key = ClassKey {
                route: std::mem::take(&mut cl.route),
                demand_bits: cl.demand.map_or(u64::MAX, f64::to_bits),
            };
            self.class_index.remove(&key);
            self.free_classes.push(c);
        }
    }

    /// Re-solve the max-min allocation **incrementally**: only the domains a
    /// change touched since the last recomputation are solved; every other
    /// domain's classes keep their persistent rates untouched. Domains are
    /// max-min-independent by construction (no shared link ⇒ no shared
    /// bottleneck), so solving them separately gives the same allocation a
    /// joint solve would — and both allocator modes (classed fast path and
    /// per-flow reference) decompose identically, keeping them bit-identical
    /// to each other on every history.
    fn recompute(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        self.recomputes += 1;
        self.solve_dirty_domains();
        for id in &self.order {
            // invariant: `order` and `flows` are mutated together (add_flow
            // pushes both, complete removes both), so every ordered id is
            // present in the map.
            let f = self.flows.get_mut(id).expect("ordered flow is active");
            f.rate = self.class_rate[f.class];
        }
        if self.trace {
            let mut min_rate = f64::INFINITY;
            let mut max_rate = 0.0f64;
            for id in &self.order {
                let r = self.flows[id].rate;
                min_rate = min_rate.min(r);
                max_rate = max_rate.max(r);
            }
            if self.order.is_empty() {
                min_rate = 0.0;
            }
            self.trace_log.push(FlowTraceEvent {
                at: self.now,
                active: self.order.len(),
                min_rate,
                max_rate,
            });
        }
        if self.utilization.is_empty() {
            return;
        }
        // Record the new per-link utilization from this instant onward,
        // accumulating loads in flow arrival order (the same summation order
        // as the per-flow reference, so the statistics match bit for bit).
        self.scratch.load.clear();
        self.scratch.load.resize(self.net.capacity.len(), 0.0);
        for id in &self.order {
            let f = &self.flows[id];
            for l in &self.classes[f.class].route {
                self.scratch.load[l.index()] += f.rate;
            }
        }
        for (li, load) in self.scratch.load.iter().enumerate() {
            self.utilization[li].set(self.now, load / self.net.capacity[li]);
        }
    }

    /// Solve every domain marked dirty since the last recomputation,
    /// updating the persistent `class_rate` table in place.
    fn solve_dirty_domains(&mut self) {
        let n_links = self.net.capacity.len();
        let ds = &mut self.dscratch;
        if ds.link_epoch.len() < n_links {
            ds.link_epoch.resize(n_links, 0);
            ds.root_epoch.resize(n_links, 0);
            ds.residual.resize(n_links, 0.0);
            ds.unfrozen_on.resize(n_links, 0);
        }
        ds.epoch += 1;
        ds.dirty_roots.clear();
        for &l in &self.dirty_links {
            let r = self.domains.find(l);
            if ds.root_epoch[r] != ds.epoch {
                ds.root_epoch[r] = ds.epoch;
                ds.dirty_roots.push(r);
            }
        }
        self.dirty_links.clear();
        // Dirty marks arrive in event order; solve in root order so the
        // allocator's work schedule is a function of the state, not the
        // history that produced it.
        ds.dirty_roots.sort_unstable();

        // Link-free classes are their own pseudo-domains: crossing no link,
        // their max-min rate is exactly the (validated, mandatory) demand —
        // the same value the reference allocator assigns them solved alone.
        if self.dirty_nolink {
            self.dirty_nolink = false;
            for (c, cl) in self.classes.iter().enumerate() {
                if cl.members > 0 && cl.route.is_empty() {
                    self.class_rate[c] =
                        cl.demand.expect("validated: a link-free flow carries a demand");
                }
            }
        }

        for ri in 0..self.dscratch.dirty_roots.len() {
            let root = self.dscratch.dirty_roots[ri];
            // The domain's live classes, in class-index order. Finding the
            // root of one route link suffices: `intern_class` unioned every
            // route into a single domain.
            self.dscratch.class_ids.clear();
            for (c, cl) in self.classes.iter().enumerate() {
                if cl.members == 0 || cl.route.is_empty() {
                    continue;
                }
                if self.domains.find(cl.route[0].index()) == root {
                    self.dscratch.class_ids.push(c);
                }
            }
            if self.dscratch.class_ids.is_empty() {
                continue;
            }
            self.domain_solves += 1;
            if self.reference {
                // Per-flow reference restricted to the domain, in arrival
                // order — the same decomposition as the fast path, so the
                // two modes stay bit-identical on every history.
                let mut cids = Vec::new();
                let mut specs = Vec::new();
                for id in &self.order {
                    let c = self.flows[id].class;
                    let cl = &self.classes[c];
                    if cl.route.is_empty() {
                        continue;
                    }
                    if self.domains.find(cl.route[0].index()) == root {
                        cids.push(c);
                        specs.push(FlowSpec { route: cl.route.clone(), demand: cl.demand });
                    }
                }
                let rates = self.net.max_min_rates_ref(&specs);
                for (c, r) in cids.iter().zip(&rates) {
                    // Members of one class get bit-equal rates (same route,
                    // same demand, same increments), so the last write wins
                    // losslessly.
                    self.class_rate[*c] = *r;
                }
            } else {
                solve_domain(
                    &self.net.capacity,
                    &self.classes,
                    &mut self.dscratch,
                    &mut self.class_rate,
                );
                #[cfg(debug_assertions)]
                self.assert_domain_matches_reference(root);
            }
        }
    }

    /// Debug-build cross-check of the domain-incremental fast path: the
    /// domain's rates must match [`FlowNet::max_min_rates_ref`] run on the
    /// domain's flows alone, bit for bit.
    #[cfg(debug_assertions)]
    fn assert_domain_matches_reference(&mut self, root: usize) {
        let mut cids = Vec::new();
        let mut specs = Vec::new();
        for id in &self.order {
            let c = self.flows[id].class;
            let cl = &self.classes[c];
            if cl.route.is_empty() {
                continue;
            }
            if self.domains.find(cl.route[0].index()) == root {
                cids.push(c);
                specs.push(FlowSpec { route: cl.route.clone(), demand: cl.demand });
            }
        }
        let rates = self.net.max_min_rates_ref(&specs);
        for (c, r) in cids.iter().zip(&rates) {
            debug_assert!(
                self.class_rate[*c].to_bits() == r.to_bits(),
                "domain-incremental solve diverged from max_min_rates_ref \
                 (class {c}: fast {} vs reference {r})",
                self.class_rate[*c],
            );
        }
    }

    /// Time-weighted mean utilization of `link` over `[0, now]`, in `[0, 1]`
    /// (zero before any time has elapsed).
    ///
    /// # Panics
    ///
    /// Panics unless [`FlowSim::set_track_utilization`] enabled tracking.
    pub fn mean_utilization(&self, link: LinkId) -> f64 {
        assert!(!self.utilization.is_empty(), "utilization tracking is off");
        if self.now == SimTime::ZERO {
            0.0
        } else {
            self.utilization[link.index()].mean(self.now)
        }
    }

    /// Peak instantaneous utilization observed on `link`.
    ///
    /// # Panics
    ///
    /// Panics unless [`FlowSim::set_track_utilization`] enabled tracking.
    pub fn peak_utilization(&self, link: LinkId) -> f64 {
        assert!(!self.utilization.is_empty(), "utilization tracking is off");
        self.utilization[link.index()].peak()
    }

    /// Advance the clock to `now`, draining bytes at current rates.
    ///
    /// # Panics
    ///
    /// Panics if `now` is in the past.
    pub fn advance(&mut self, now: SimTime) {
        assert!(now >= self.now, "FlowSim cannot go backwards in time");
        let dt = (now - self.now).as_secs_f64();
        if dt > 0.0 {
            for f in self.flows.values_mut() {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.now = now;
    }

    /// Start a transfer of `bytes` over `spec` at time `now` (advancing the
    /// clock there first). Returns the flow's id.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not finite and positive, or `now` is in the past.
    pub fn add_flow(&mut self, now: SimTime, spec: FlowSpec, bytes: f64) -> FlowId {
        assert!(bytes.is_finite() && bytes > 0.0, "transfer size must be positive");
        self.net.validate(&spec);
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let class = self.intern_class(spec);
        self.flows.insert(id, ActiveFlow { class, remaining: bytes, rate: 0.0 });
        self.order.push(id);
        self.recompute();
        id
    }

    /// Change one link's capacity at time `now` and redistribute the active
    /// flows' rates max-min fairly over the new capacities. Bytes already in
    /// flight drain at the old rates up to `now`, then at the new ones — the
    /// fluid analogue of a PCIe link degrading (or recovering) mid-transfer.
    ///
    /// Setting a link to its current capacity is a no-op (no recomputation).
    ///
    /// # Panics
    ///
    /// Panics if `link` is unknown, `bytes_per_sec` is not finite and
    /// positive, or `now` is in the past.
    pub fn set_capacity(&mut self, now: SimTime, link: LinkId, bytes_per_sec: f64) {
        self.set_capacities(now, &[(link, bytes_per_sec)]);
    }

    /// Apply a batch of capacity changes at time `now` with a *single* rate
    /// redistribution — a fault storm degrading N links costs one
    /// recomputation instead of N. Updates that leave a link's capacity
    /// unchanged are ignored; if the whole batch is no-op the allocator is
    /// skipped entirely.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`FlowSim::set_capacity`].
    pub fn set_capacities(&mut self, now: SimTime, updates: &[(LinkId, f64)]) {
        self.advance(now);
        for &(link, bytes_per_sec) in updates {
            assert!(link.index() < self.net.capacity.len(), "unknown link");
            if self.net.capacity(link) != bytes_per_sec {
                self.net.set_capacity(link, bytes_per_sec);
                self.dirty_links.push(link.index());
                self.dirty = true;
            }
        }
        self.recompute();
    }

    /// Remaining bytes of a flow (`None` if unknown/completed).
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }

    /// Current rate of a flow in bytes/s (`None` if unknown).
    pub fn rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// The earliest `(time, flow)` completion under current rates, if any
    /// flow is active. Ties break toward the earliest-started flow.
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        for id in &self.order {
            let f = &self.flows[id];
            if f.rate <= 0.0 {
                continue;
            }
            let dt = f.remaining / f.rate;
            let t = self.now + SimTime::from_secs_f64(dt);
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, *id));
            }
        }
        best
    }

    /// Remove a completed (or cancelled) flow at time `now` and recompute
    /// remaining rates.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not active or `now` is in the past.
    pub fn complete(&mut self, now: SimTime, id: FlowId) {
        self.advance(now);
        let Some(flow) = self.flows.remove(&id) else {
            panic!("unknown flow {id:?}")
        };
        self.release_class(flow.class);
        self.order.retain(|&f| f != id);
        self.recompute();
    }

    /// Run all active flows to completion, returning `(time, flow)` pairs in
    /// completion order.
    pub fn drain(&mut self) -> Vec<(SimTime, FlowId)> {
        let mut done = Vec::new();
        while let Some((t, id)) = self.next_completion() {
            self.complete(t, id);
            done.push((t, id));
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::link;
    use proptest::prelude::*;

    #[test]
    fn equal_flows_split_a_link_evenly() {
        let net = FlowNet::from_capacities(vec![10.0]);
        let flows = vec![FlowSpec::new(vec![link(0)]); 4];
        let rates = net.max_min_rates(&flows);
        for r in rates {
            assert!((r - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn domains_partition_links_by_route_coupling() {
        let net = FlowNet::from_capacities(vec![1.0; 7]);
        // Routes: {0,1}, {1,2} (couples with the first), {4,5}; links 3 and 6
        // are untouched.
        let routes: Vec<Vec<LinkId>> = vec![
            vec![link(0), link(1)],
            vec![link(1), link(2)],
            vec![link(4), link(5)],
        ];
        let d = net.domains(routes.iter().map(Vec::as_slice));
        assert_eq!(d.count(), 2);
        assert_eq!(d.domain_of(link(0)), Some(0));
        assert_eq!(d.domain_of(link(1)), Some(0));
        assert_eq!(d.domain_of(link(2)), Some(0));
        assert_eq!(d.domain_of(link(3)), None);
        assert_eq!(d.domain_of(link(4)), Some(1));
        assert_eq!(d.domain_of(link(5)), Some(1));
        assert_eq!(d.sizes(), vec![3, 2]);
        assert!(d.independent(link(0), link(4)));
        assert!(d.independent(link(0), link(3)));
        assert!(!d.independent(link(0), link(2)));
        // Labeling is insensitive to route order (ids follow smallest link).
        let mut rev = routes.clone();
        rev.reverse();
        assert_eq!(d, net.domains(rev.iter().map(Vec::as_slice)));
    }

    #[test]
    fn domain_rates_are_independent_across_domains() {
        // Two disjoint domains: squeezing a link in one must not move rates
        // in the other — the property that makes domains safe parallel units.
        let net = FlowNet::from_capacities(vec![10.0, 10.0, 8.0, 8.0]);
        let flows = vec![
            FlowSpec::new(vec![link(0), link(1)]),
            FlowSpec::new(vec![link(1)]),
            FlowSpec::new(vec![link(2), link(3)]),
        ];
        let d = net.domains(flows.iter().map(|f| f.route.as_slice()));
        assert_eq!(d.count(), 2);
        let before = net.max_min_rates(&flows);
        let mut squeezed = net.clone();
        squeezed.set_capacity(link(2), 1.0);
        let after = squeezed.max_min_rates(&flows);
        assert_eq!(before[0], after[0]);
        assert_eq!(before[1], after[1]);
        assert!(after[2] < before[2]);
    }

    #[test]
    fn classic_max_min_example() {
        // Links: L0 cap 10 shared by f0,f1,f2; L1 cap 4 crossed by f2 only.
        // f2 is limited to 4 by L1? No: progressive filling freezes at
        // min(10/3, 4/1) = 10/3 on L0 first; all freeze at 10/3.
        let net = FlowNet::from_capacities(vec![10.0, 4.0]);
        let flows = vec![
            FlowSpec::new(vec![link(0)]),
            FlowSpec::new(vec![link(0)]),
            FlowSpec::new(vec![link(0), link(1)]),
        ];
        let rates = net.max_min_rates(&flows);
        for r in &rates {
            assert!((r - 10.0 / 3.0).abs() < 1e-9, "rates={rates:?}");
        }
    }

    #[test]
    fn bottlenecked_flow_releases_capacity_to_others() {
        // L0 cap 10 shared by f0,f1; f1 also crosses L1 cap 2.
        // f1 freezes at 2 (L1 saturates), f0 then takes 8.
        let net = FlowNet::from_capacities(vec![10.0, 2.0]);
        let flows = vec![
            FlowSpec::new(vec![link(0)]),
            FlowSpec::new(vec![link(0), link(1)]),
        ];
        let rates = net.max_min_rates(&flows);
        assert!((rates[1] - 2.0).abs() < 1e-9);
        assert!((rates[0] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn demand_caps_respected_and_redistributed() {
        let net = FlowNet::from_capacities(vec![10.0]);
        let flows = vec![
            FlowSpec::with_demand(vec![link(0)], 1.0),
            FlowSpec::new(vec![link(0)]),
        ];
        let rates = net.max_min_rates(&flows);
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn empty_route_flow_runs_at_demand() {
        let net = FlowNet::from_capacities(vec![10.0]);
        let flows = vec![FlowSpec::with_demand(vec![], 3.5)];
        let rates = net.max_min_rates(&flows);
        assert!((rates[0] - 3.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty route needs a demand cap")]
    fn unconstrained_empty_flow_rejected() {
        let net = FlowNet::from_capacities(vec![10.0]);
        net.max_min_rates(&[FlowSpec::new(vec![])]);
    }

    #[test]
    fn no_link_oversubscribed() {
        let net = FlowNet::from_capacities(vec![7.0, 3.0, 11.0]);
        let flows = vec![
            FlowSpec::new(vec![link(0), link(1)]),
            FlowSpec::new(vec![link(0), link(2)]),
            FlowSpec::new(vec![link(1), link(2)]),
            FlowSpec::with_demand(vec![link(2)], 2.0),
        ];
        let rates = net.max_min_rates(&flows);
        let loads = net.link_loads(&flows, &rates);
        for (li, &l) in loads.iter().enumerate() {
            assert!(
                l <= net.capacity[li] * (1.0 + 1e-6),
                "link {li} oversubscribed: {l} > {}",
                net.capacity[li]
            );
        }
    }

    #[test]
    fn flow_sim_shares_then_speeds_up() {
        // 1 GB/s link; two 1 MB transfers start together. After the first
        // completes at 2ms... they tie; complete one, the other finishes at
        // the same instant since both drained together.
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        let a = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 1e6);
        let b = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 1e6);
        assert!((sim.rate(a).unwrap() - 5e8).abs() < 1.0);
        let done = sim.drain();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].0, SimTime::from_millis(2));
        assert_eq!(done[1].0, SimTime::from_millis(2));
        let _ = b;
    }

    #[test]
    fn late_flow_slows_early_flow() {
        // 1 GB/s link. Flow A (2 MB) alone for 1 ms (1 MB done), then B
        // (0.5 MB) joins: both at 0.5 GB/s. B finishes at 1ms + 1ms = 2ms;
        // A has 0.5 MB left at 2ms, alone again -> finishes at 2.5ms.
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        let a = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 2e6);
        let b = sim.add_flow(SimTime::from_millis(1), FlowSpec::new(vec![link(0)]), 5e5);
        let done = sim.drain();
        assert_eq!(done[0].1, b);
        assert_eq!(done[0].0, SimTime::from_millis(2));
        assert_eq!(done[1].1, a);
        assert_eq!(done[1].0, SimTime::from_micros(2500));
    }

    #[test]
    fn completion_frees_bandwidth() {
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        let a = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 1e6);
        let _b = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 2e6);
        let (t, id) = sim.next_completion().unwrap();
        assert_eq!(id, a);
        sim.complete(t, a);
        // b now runs at full rate.
        let (_tb, idb) = sim.next_completion().unwrap();
        assert!((sim.rate(idb).unwrap() - 1e9).abs() < 1.0);
        assert_eq!(sim.active(), 1);
    }

    #[test]
    fn utilization_tracks_load_over_time() {
        // One 1 GB/s link: a flow saturates it for 1 ms, then idle 1 ms.
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        sim.set_track_utilization(true);
        let f = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 1e6);
        let (t, _) = sim.next_completion().unwrap();
        sim.complete(t, f);
        assert_eq!(sim.peak_utilization(link(0)), 1.0);
        sim.advance(SimTime::from_millis(2));
        let mean = sim.mean_utilization(link(0));
        assert!((mean - 0.5).abs() < 1e-6, "mean={mean}");
    }

    #[test]
    fn utilization_shares_between_flows() {
        // Demand-capped flow uses half the link.
        let net = FlowNet::from_capacities(vec![10.0]);
        let mut sim = FlowSim::new(net);
        sim.set_track_utilization(true);
        let _ = sim.add_flow(SimTime::ZERO, FlowSpec::with_demand(vec![link(0)], 5.0), 50.0);
        sim.advance(SimTime::from_secs(1));
        assert!((sim.mean_utilization(link(0)) - 0.5).abs() < 1e-6);
        assert_eq!(sim.peak_utilization(link(0)), 0.5);
    }

    #[test]
    fn rate_trace_records_recomputes_without_affecting_rates() {
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut traced = FlowSim::new(net.clone());
        traced.set_trace(true);
        let mut plain = FlowSim::new(net);

        for sim in [&mut traced, &mut plain] {
            let a = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 1e6);
            let _b = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 2e6);
            let (t, id) = sim.next_completion().unwrap();
            assert_eq!(id, a);
            sim.complete(t, id);
        }
        // Identical completions either way.
        assert_eq!(traced.next_completion(), plain.next_completion());

        let log = traced.take_trace();
        assert_eq!(log.len(), 3, "add, add, complete each recompute");
        // Two flows sharing 1 GB/s: min == max == 0.5 GB/s.
        assert_eq!(log[1].active, 2);
        assert!((log[1].min_rate - 0.5e9).abs() < 1.0);
        assert!((log[1].max_rate - 0.5e9).abs() < 1.0);
        // Survivor gets the full link.
        assert_eq!(log[2].active, 1);
        assert!((log[2].max_rate - 1e9).abs() < 1.0);
        assert!(traced.take_trace().is_empty(), "drained");
        assert!(plain.take_trace().is_empty(), "off by default");
    }

    #[test]
    fn degrading_a_link_slows_the_flow_crossing_it() {
        // 1 GB/s link, 2 MB transfer. After 1 ms (1 MB done) the link
        // degrades to a quarter: the remaining 1 MB takes 4 ms -> 5 ms total.
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        let f = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 2e6);
        sim.set_capacity(SimTime::from_millis(1), link(0), 0.25e9);
        let (t, id) = sim.next_completion().unwrap();
        assert_eq!(id, f);
        assert_eq!(t, SimTime::from_millis(5));
    }

    #[test]
    fn restoring_a_link_speeds_the_flow_back_up() {
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        let f = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 2e6);
        sim.set_capacity(SimTime::ZERO, link(0), 0.5e9);
        sim.set_capacity(SimTime::from_millis(2), link(0), 1e9);
        // 1 MB drained in the degraded first 2 ms, 1 MB at full rate after.
        let (t, id) = sim.next_completion().unwrap();
        assert_eq!(id, f);
        assert_eq!(t, SimTime::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut net = FlowNet::from_capacities(vec![1e9]);
        net.set_capacity(link(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot go backwards")]
    fn flow_sim_rejects_time_travel() {
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        sim.advance(SimTime::from_millis(5));
        sim.advance(SimTime::from_millis(1));
    }

    #[test]
    fn fast_allocator_is_bit_identical_to_reference() {
        // Not just close: the classed waterfill replays the reference's exact
        // arithmetic, so the DES results it feeds stay byte-identical.
        let net = FlowNet::from_capacities(vec![7.0, 3.0, 11.0, 1e9]);
        let flows = vec![
            FlowSpec::new(vec![link(0), link(1)]),
            FlowSpec::new(vec![link(0), link(1)]), // same class as above
            FlowSpec::new(vec![link(0), link(2)]),
            FlowSpec::with_demand(vec![link(2)], 2.0),
            FlowSpec::with_demand(vec![link(2)], 2.0),
            FlowSpec::with_demand(vec![], 3.5),
            FlowSpec::new(vec![link(3)]),
            FlowSpec::new(vec![link(1), link(2), link(3)]),
        ];
        let fast = net.max_min_rates(&flows);
        let reference = net.max_min_rates_ref(&flows);
        for (i, (f, r)) in fast.iter().zip(&reference).enumerate() {
            assert_eq!(f.to_bits(), r.to_bits(), "flow {i}: fast={f} ref={r}");
        }
    }

    #[test]
    fn batched_capacity_change_recomputes_once() {
        let net = FlowNet::from_capacities(vec![10.0, 10.0, 10.0]);
        let mut sim = FlowSim::new(net);
        let _ = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0), link(1)]), 100.0);
        let _ = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(2)]), 100.0);
        let before = sim.recomputes();
        sim.set_capacities(
            SimTime::ZERO,
            &[(link(0), 5.0), (link(1), 4.0), (link(2), 2.0)],
        );
        assert_eq!(sim.recomputes(), before + 1, "storm must cost one recompute");
        assert!((sim.rate(FlowId(0)).unwrap() - 4.0).abs() < 1e-9);
        assert!((sim.rate(FlowId(1)).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_change_resolves_only_the_dirty_domain() {
        // Two flows on disjoint links form two independent domains. Squeezing
        // link 0 must cost exactly one domain solve, and the untouched
        // domain's rate must come out bit-identical — not merely close.
        let net = FlowNet::from_capacities(vec![1e9, 1e9]);
        let mut sim = FlowSim::new(net);
        let a = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 1e6);
        let b = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(1)]), 1e6);
        let b_rate = sim.rate(b).unwrap();
        let solves = sim.domain_solves();
        sim.set_capacity(SimTime::ZERO, link(0), 0.5e9);
        assert_eq!(
            sim.domain_solves(),
            solves + 1,
            "only link 0's domain is dirty; link 1's must not be re-solved"
        );
        assert_eq!(sim.rate(b).unwrap().to_bits(), b_rate.to_bits());
        assert!((sim.rate(a).unwrap() - 0.5e9).abs() < 1e-9);
    }

    #[test]
    fn noop_capacity_change_skips_the_allocator() {
        let net = FlowNet::from_capacities(vec![10.0]);
        let mut sim = FlowSim::new(net);
        let f = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 100.0);
        let before = sim.recomputes();
        sim.set_capacity(SimTime::from_millis(1), link(0), 10.0);
        sim.set_capacities(SimTime::from_millis(2), &[]);
        assert_eq!(sim.recomputes(), before, "unchanged capacities must be free");
        assert!((sim.rate(f).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn reference_mode_drains_identically() {
        let run = |reference: bool| {
            let net = FlowNet::from_capacities(vec![1e9, 0.5e9]);
            let mut sim = FlowSim::new(net);
            sim.set_reference_allocator(reference);
            let _ = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 2e6);
            let _ = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0), link(1)]), 1e6);
            let _ = sim.add_flow(SimTime::from_millis(1), FlowSpec::new(vec![link(1)]), 3e6);
            sim.set_capacity(SimTime::from_millis(2), link(0), 0.25e9);
            sim.drain()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn class_slots_are_reclaimed() {
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        for _ in 0..100 {
            let f = sim.add_flow(sim.now(), FlowSpec::new(vec![link(0)]), 1e3);
            let (t, _) = sim.next_completion().unwrap();
            sim.complete(t, f);
        }
        assert!(
            sim.classes.len() <= 1,
            "churning one route must reuse its tombstoned class slot"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The tentpole contract: on random topologies and flow sets the
        /// classed fast allocator matches the per-flow reference to 1e-9
        /// relative (in fact bit-for-bit, which is asserted too — the
        /// byte-identical `results/` invariant rides on it).
        #[test]
        fn fast_matches_reference_on_random_inputs(
            caps in proptest::collection::vec(0.5f64..1e4, 1..8),
            flow_picks in proptest::collection::vec(
                (proptest::collection::vec(0u32..8, 0..5), any::<bool>(), 0.1f64..1e3),
                0..24,
            ),
        ) {
            let n_links = caps.len() as u32;
            let net = FlowNet::from_capacities(caps);
            let flows: Vec<FlowSpec> = flow_picks
                .into_iter()
                .map(|(route, capped, d)| {
                    let route: Vec<LinkId> =
                        route.into_iter().map(|l| link(l % n_links)).collect();
                    if capped || route.is_empty() {
                        FlowSpec::with_demand(route, d)
                    } else {
                        FlowSpec::new(route)
                    }
                })
                .collect();
            let fast = net.max_min_rates(&flows);
            let reference = net.max_min_rates_ref(&flows);
            for (i, (f, r)) in fast.iter().zip(&reference).enumerate() {
                let rel = (f - r).abs() / r.abs().max(1.0);
                prop_assert!(rel <= 1e-9, "flow {i}: fast={f} ref={r} rel={rel}");
                prop_assert_eq!(f.to_bits(), r.to_bits(), "flow {}: bit mismatch", i);
            }
            // And no link is oversubscribed under the fast rates.
            let loads = net.link_loads(&flows, &fast);
            for (li, &l) in loads.iter().enumerate() {
                prop_assert!(l <= net.capacity[li] * (1.0 + 1e-6));
            }
        }

        /// An interleaved add/complete/degrade history produces the same
        /// completions under the fast and reference allocators.
        #[test]
        fn flow_sim_histories_match_reference(
            ops in proptest::collection::vec((0u8..3, 0u32..4, 1u64..1_000_000), 1..30),
        ) {
            let run = |reference: bool| {
                let net = FlowNet::from_capacities(vec![1e9, 2e9, 0.5e9, 1e9]);
                let mut sim = FlowSim::new(net);
                sim.set_reference_allocator(reference);
                let mut t = SimTime::ZERO;
                for &(op, l, v) in &ops {
                    t += SimTime::from_nanos(v % 977);
                    match op {
                        0 => {
                            let _ = sim.add_flow(
                                t,
                                FlowSpec::new(vec![link(l), link((l + 1) % 4)]),
                                v as f64,
                            );
                        }
                        1 => {
                            if let Some((ct, id)) = sim.next_completion() {
                                sim.complete(ct.max(t), id);
                                t = ct.max(t);
                            }
                        }
                        _ => {
                            sim.set_capacity(t, link(l), 0.25e9 + v as f64);
                        }
                    }
                }
                let mut done = sim.drain();
                done.truncate(64);
                done
            };
            prop_assert_eq!(run(false), run(true));
        }
    }
}

//! Fluid bandwidth sharing: max-min fair rates and an event-driven transfer
//! simulator.
//!
//! Concurrent DMA transfers that share a directed link split its capacity.
//! PCIe switches arbitrate per-port roughly fairly, so we model the steady
//! state as the classic **max-min fair allocation** computed by progressive
//! filling: all flows grow at the same rate; when a link saturates, the flows
//! crossing it freeze at their current rate; repeat. Flows can additionally
//! carry a *demand cap* (a device that cannot source data faster than its own
//! throughput), which progressive filling honors by freezing a flow when it
//! reaches its demand.
//!
//! [`FlowSim`] layers finite-size transfers on top: it tracks the remaining
//! bytes of each active flow, recomputes rates whenever the flow set changes,
//! and exposes the next completion instant for a discrete-event driver.

use crate::topology::{LinkId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use trainbox_sim::{SimTime, TimeWeighted};

/// Identifier of an active flow in a [`FlowSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(u64);

/// Specification of one flow for a rate computation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Directed links the flow traverses (may be empty for node-local copies).
    pub route: Vec<LinkId>,
    /// Optional source/sink throughput cap in bytes/s.
    pub demand: Option<f64>,
}

impl FlowSpec {
    /// A flow over `route` limited only by the network.
    pub fn new(route: Vec<LinkId>) -> Self {
        FlowSpec { route, demand: None }
    }

    /// A flow over `route` that additionally cannot exceed `demand` bytes/s.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is not finite and positive.
    pub fn with_demand(route: Vec<LinkId>, demand: f64) -> Self {
        assert!(demand.is_finite() && demand > 0.0, "demand must be positive");
        FlowSpec { route, demand: Some(demand) }
    }
}

/// The link-capacity view used for rate computations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowNet {
    /// Capacity of each directed link in bytes/s, indexed by [`LinkId`].
    capacity: Vec<f64>,
}

impl FlowNet {
    /// Capacities taken from a topology's directed links.
    pub fn from_topology(topo: &Topology) -> Self {
        FlowNet {
            capacity: topo
                .links()
                .map(|(_, l)| l.bandwidth.bytes_per_sec() as f64)
                .collect(),
        }
    }

    /// Capacities given directly (mainly for tests).
    ///
    /// # Panics
    ///
    /// Panics if any capacity is not finite and positive.
    pub fn from_capacities(capacity: Vec<f64>) -> Self {
        assert!(
            capacity.iter().all(|&c| c.is_finite() && c > 0.0),
            "link capacities must be positive"
        );
        FlowNet { capacity }
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.capacity.len()
    }

    /// Capacity of one link in bytes/s.
    pub fn capacity(&self, link: LinkId) -> f64 {
        self.capacity[link.index()]
    }

    /// Change one link's capacity — the fault-injection hook for modeling a
    /// degraded PCIe link (e.g. retraining to fewer lanes or a lower rate).
    ///
    /// # Panics
    ///
    /// Panics if `link` is unknown or `bytes_per_sec` is not finite and
    /// positive.
    pub fn set_capacity(&mut self, link: LinkId, bytes_per_sec: f64) {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "link capacity must be positive"
        );
        assert!(link.index() < self.capacity.len(), "unknown link");
        self.capacity[link.index()] = bytes_per_sec;
    }

    /// Max-min fair rates (bytes/s) for `flows`, honoring demand caps.
    ///
    /// Progressive filling: all unfrozen flows grow together; the binding
    /// constraint each round is either a saturating link or a flow hitting
    /// its demand. Flows with an empty route and no demand are unconstrained
    /// and rejected.
    ///
    /// # Panics
    ///
    /// Panics if a flow has an empty route and no demand, or if a route
    /// references an unknown link.
    pub fn max_min_rates(&self, flows: &[FlowSpec]) -> Vec<f64> {
        for f in flows {
            assert!(
                !f.route.is_empty() || f.demand.is_some(),
                "a flow with an empty route needs a demand cap"
            );
            for l in &f.route {
                assert!(l.index() < self.capacity.len(), "route references unknown link");
            }
        }
        let n = flows.len();
        let mut rate = vec![0.0f64; n];
        let mut frozen = vec![false; n];
        let mut residual = self.capacity.clone();
        // Flows crossing each link.
        let mut on_link: Vec<Vec<usize>> = vec![Vec::new(); self.capacity.len()];
        for (i, f) in flows.iter().enumerate() {
            for l in &f.route {
                on_link[l.index()].push(i);
            }
        }

        loop {
            // Unfrozen flow count per link.
            let mut unfrozen_on: Vec<usize> = vec![0; self.capacity.len()];
            for (li, fl) in on_link.iter().enumerate() {
                unfrozen_on[li] = fl.iter().filter(|&&i| !frozen[i]).count();
            }
            // Smallest head-room per unfrozen flow: link constraint.
            let mut inc = f64::INFINITY;
            for li in 0..self.capacity.len() {
                if unfrozen_on[li] > 0 {
                    inc = inc.min(residual[li] / unfrozen_on[li] as f64);
                }
            }
            // Demand constraints.
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                if let Some(d) = f.demand {
                    inc = inc.min(d - rate[i]);
                }
            }
            if !inc.is_finite() {
                // No unfrozen flow crosses any link and none has a demand gap
                // left: all remaining flows are empty-route demand flows that
                // were already frozen, or there are no unfrozen flows at all.
                break;
            }
            let inc = inc.max(0.0);
            // Apply the increment.
            let mut progressed = false;
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                rate[i] += inc;
                progressed = true;
                for l in &f.route {
                    residual[l.index()] -= inc;
                }
            }
            if !progressed {
                break;
            }
            // Freeze: flows at demand, and flows crossing a saturated link.
            const EPS: f64 = 1e-9;
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                let at_demand = f.demand.is_some_and(|d| rate[i] >= d - EPS * d.max(1.0));
                let on_saturated = f.route.iter().any(|l| {
                    residual[l.index()] <= EPS * self.capacity[l.index()]
                });
                if at_demand || on_saturated {
                    frozen[i] = true;
                }
            }
            if frozen.iter().all(|&f| f) {
                break;
            }
        }
        rate
    }

    /// Total traffic each link carries (bytes/s) under the given rates —
    /// useful for utilization accounting and for checking feasibility.
    pub fn link_loads(&self, flows: &[FlowSpec], rates: &[f64]) -> Vec<f64> {
        assert_eq!(flows.len(), rates.len(), "flows and rates must correspond");
        let mut load = vec![0.0; self.capacity.len()];
        for (f, &r) in flows.iter().zip(rates) {
            for l in &f.route {
                load[l.index()] += r;
            }
        }
        load
    }
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    spec: FlowSpec,
    remaining: f64,
}

/// Event-driven finite-transfer simulator over a [`FlowNet`].
///
/// Drive it from a DES loop: add flows as transfers start, query
/// [`FlowSim::next_completion`], advance to that instant, and call
/// [`FlowSim::complete`] on the finished flow.
///
/// # Example
///
/// ```
/// use trainbox_pcie::flow::{FlowNet, FlowSim, FlowSpec};
/// use trainbox_pcie::topology::LinkId;
/// use trainbox_sim::{SimTime, TimeWeighted};
///
/// // One 1 GB/s link shared by two 1 MB transfers: each gets 0.5 GB/s,
/// // both complete at 2 ms.
/// let net = FlowNet::from_capacities(vec![1e9]);
/// let mut sim = FlowSim::new(net);
/// let l = trainbox_pcie::test_util::link(0);
/// let a = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![l]), 1_000_000.0);
/// let b = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![l]), 1_000_000.0);
/// let (t, first) = sim.next_completion().unwrap();
/// assert_eq!(t, SimTime::from_millis(2));
/// assert!(first == a || first == b);
/// ```
#[derive(Debug, Clone)]
pub struct FlowSim {
    net: FlowNet,
    flows: HashMap<FlowId, ActiveFlow>,
    order: Vec<FlowId>,
    rates: HashMap<FlowId, f64>,
    now: SimTime,
    next_id: u64,
    utilization: Vec<TimeWeighted>,
}

impl FlowSim {
    /// Create a simulator over `net` at time zero with no flows.
    pub fn new(net: FlowNet) -> Self {
        let utilization = (0..net.link_count())
            .map(|i| TimeWeighted::new(format!("link-{i}")))
            .collect();
        FlowSim {
            net,
            flows: HashMap::new(),
            order: Vec::new(),
            rates: HashMap::new(),
            now: SimTime::ZERO,
            next_id: 0,
            utilization,
        }
    }

    /// Current simulator time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of active flows.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Borrow the capacity view.
    pub fn net(&self) -> &FlowNet {
        &self.net
    }

    fn recompute(&mut self) {
        let specs: Vec<FlowSpec> = self
            .order
            .iter()
            .map(|id| self.flows[id].spec.clone())
            .collect();
        let rates = self.net.max_min_rates(&specs);
        // Record the new per-link utilization from this instant onward.
        let loads = self.net.link_loads(&specs, &rates);
        for (li, load) in loads.iter().enumerate() {
            self.utilization[li].set(self.now, load / self.net.capacity[li]);
        }
        self.rates = self.order.iter().copied().zip(rates).collect();
    }

    /// Time-weighted mean utilization of `link` over `[0, now]`, in `[0, 1]`
    /// (zero before any time has elapsed).
    pub fn mean_utilization(&self, link: LinkId) -> f64 {
        if self.now == SimTime::ZERO {
            0.0
        } else {
            self.utilization[link.index()].mean(self.now)
        }
    }

    /// Peak instantaneous utilization observed on `link`.
    pub fn peak_utilization(&self, link: LinkId) -> f64 {
        self.utilization[link.index()].peak()
    }

    /// Advance the clock to `now`, draining bytes at current rates.
    ///
    /// # Panics
    ///
    /// Panics if `now` is in the past.
    pub fn advance(&mut self, now: SimTime) {
        assert!(now >= self.now, "FlowSim cannot go backwards in time");
        let dt = (now - self.now).as_secs_f64();
        if dt > 0.0 {
            for (id, f) in self.flows.iter_mut() {
                let r = self.rates.get(id).copied().unwrap_or(0.0);
                f.remaining = (f.remaining - r * dt).max(0.0);
            }
        }
        self.now = now;
    }

    /// Start a transfer of `bytes` over `spec` at time `now` (advancing the
    /// clock there first). Returns the flow's id.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not finite and positive, or `now` is in the past.
    pub fn add_flow(&mut self, now: SimTime, spec: FlowSpec, bytes: f64) -> FlowId {
        assert!(bytes.is_finite() && bytes > 0.0, "transfer size must be positive");
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(id, ActiveFlow { spec, remaining: bytes });
        self.order.push(id);
        self.recompute();
        id
    }

    /// Change one link's capacity at time `now` and redistribute the active
    /// flows' rates max-min fairly over the new capacities. Bytes already in
    /// flight drain at the old rates up to `now`, then at the new ones — the
    /// fluid analogue of a PCIe link degrading (or recovering) mid-transfer.
    ///
    /// # Panics
    ///
    /// Panics if `link` is unknown, `bytes_per_sec` is not finite and
    /// positive, or `now` is in the past.
    pub fn set_capacity(&mut self, now: SimTime, link: LinkId, bytes_per_sec: f64) {
        self.advance(now);
        self.net.set_capacity(link, bytes_per_sec);
        self.recompute();
    }

    /// Remaining bytes of a flow (`None` if unknown/completed).
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }

    /// Current rate of a flow in bytes/s (`None` if unknown).
    pub fn rate(&self, id: FlowId) -> Option<f64> {
        self.rates.get(&id).copied()
    }

    /// The earliest `(time, flow)` completion under current rates, if any
    /// flow is active. Ties break toward the earliest-started flow.
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        for id in &self.order {
            let f = &self.flows[id];
            let r = self.rates.get(id).copied().unwrap_or(0.0);
            if r <= 0.0 {
                continue;
            }
            let dt = f.remaining / r;
            let t = self.now + SimTime::from_secs_f64(dt);
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, *id));
            }
        }
        best
    }

    /// Remove a completed (or cancelled) flow at time `now` and recompute
    /// remaining rates.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not active or `now` is in the past.
    pub fn complete(&mut self, now: SimTime, id: FlowId) {
        self.advance(now);
        assert!(self.flows.remove(&id).is_some(), "unknown flow {id:?}");
        self.order.retain(|&f| f != id);
        self.rates.remove(&id);
        self.recompute();
    }

    /// Run all active flows to completion, returning `(time, flow)` pairs in
    /// completion order.
    pub fn drain(&mut self) -> Vec<(SimTime, FlowId)> {
        let mut done = Vec::new();
        while let Some((t, id)) = self.next_completion() {
            self.complete(t, id);
            done.push((t, id));
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::link;

    #[test]
    fn equal_flows_split_a_link_evenly() {
        let net = FlowNet::from_capacities(vec![10.0]);
        let flows = vec![FlowSpec::new(vec![link(0)]); 4];
        let rates = net.max_min_rates(&flows);
        for r in rates {
            assert!((r - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_max_min_example() {
        // Links: L0 cap 10 shared by f0,f1,f2; L1 cap 4 crossed by f2 only.
        // f2 is limited to 4 by L1? No: progressive filling freezes at
        // min(10/3, 4/1) = 10/3 on L0 first; all freeze at 10/3.
        let net = FlowNet::from_capacities(vec![10.0, 4.0]);
        let flows = vec![
            FlowSpec::new(vec![link(0)]),
            FlowSpec::new(vec![link(0)]),
            FlowSpec::new(vec![link(0), link(1)]),
        ];
        let rates = net.max_min_rates(&flows);
        for r in &rates {
            assert!((r - 10.0 / 3.0).abs() < 1e-9, "rates={rates:?}");
        }
    }

    #[test]
    fn bottlenecked_flow_releases_capacity_to_others() {
        // L0 cap 10 shared by f0,f1; f1 also crosses L1 cap 2.
        // f1 freezes at 2 (L1 saturates), f0 then takes 8.
        let net = FlowNet::from_capacities(vec![10.0, 2.0]);
        let flows = vec![
            FlowSpec::new(vec![link(0)]),
            FlowSpec::new(vec![link(0), link(1)]),
        ];
        let rates = net.max_min_rates(&flows);
        assert!((rates[1] - 2.0).abs() < 1e-9);
        assert!((rates[0] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn demand_caps_respected_and_redistributed() {
        let net = FlowNet::from_capacities(vec![10.0]);
        let flows = vec![
            FlowSpec::with_demand(vec![link(0)], 1.0),
            FlowSpec::new(vec![link(0)]),
        ];
        let rates = net.max_min_rates(&flows);
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn empty_route_flow_runs_at_demand() {
        let net = FlowNet::from_capacities(vec![10.0]);
        let flows = vec![FlowSpec::with_demand(vec![], 3.5)];
        let rates = net.max_min_rates(&flows);
        assert!((rates[0] - 3.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty route needs a demand cap")]
    fn unconstrained_empty_flow_rejected() {
        let net = FlowNet::from_capacities(vec![10.0]);
        net.max_min_rates(&[FlowSpec::new(vec![])]);
    }

    #[test]
    fn no_link_oversubscribed() {
        let net = FlowNet::from_capacities(vec![7.0, 3.0, 11.0]);
        let flows = vec![
            FlowSpec::new(vec![link(0), link(1)]),
            FlowSpec::new(vec![link(0), link(2)]),
            FlowSpec::new(vec![link(1), link(2)]),
            FlowSpec::with_demand(vec![link(2)], 2.0),
        ];
        let rates = net.max_min_rates(&flows);
        let loads = net.link_loads(&flows, &rates);
        for (li, &l) in loads.iter().enumerate() {
            assert!(
                l <= net.capacity[li] * (1.0 + 1e-6),
                "link {li} oversubscribed: {l} > {}",
                net.capacity[li]
            );
        }
    }

    #[test]
    fn flow_sim_shares_then_speeds_up() {
        // 1 GB/s link; two 1 MB transfers start together. After the first
        // completes at 2ms... they tie; complete one, the other finishes at
        // the same instant since both drained together.
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        let a = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 1e6);
        let b = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 1e6);
        assert!((sim.rate(a).unwrap() - 5e8).abs() < 1.0);
        let done = sim.drain();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].0, SimTime::from_millis(2));
        assert_eq!(done[1].0, SimTime::from_millis(2));
        let _ = b;
    }

    #[test]
    fn late_flow_slows_early_flow() {
        // 1 GB/s link. Flow A (2 MB) alone for 1 ms (1 MB done), then B
        // (0.5 MB) joins: both at 0.5 GB/s. B finishes at 1ms + 1ms = 2ms;
        // A has 0.5 MB left at 2ms, alone again -> finishes at 2.5ms.
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        let a = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 2e6);
        let b = sim.add_flow(SimTime::from_millis(1), FlowSpec::new(vec![link(0)]), 5e5);
        let done = sim.drain();
        assert_eq!(done[0].1, b);
        assert_eq!(done[0].0, SimTime::from_millis(2));
        assert_eq!(done[1].1, a);
        assert_eq!(done[1].0, SimTime::from_micros(2500));
    }

    #[test]
    fn completion_frees_bandwidth() {
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        let a = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 1e6);
        let _b = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 2e6);
        let (t, id) = sim.next_completion().unwrap();
        assert_eq!(id, a);
        sim.complete(t, a);
        // b now runs at full rate.
        let (_tb, idb) = sim.next_completion().unwrap();
        assert!((sim.rate(idb).unwrap() - 1e9).abs() < 1.0);
        assert_eq!(sim.active(), 1);
    }

    #[test]
    fn utilization_tracks_load_over_time() {
        // One 1 GB/s link: a flow saturates it for 1 ms, then idle 1 ms.
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        let f = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 1e6);
        let (t, _) = sim.next_completion().unwrap();
        sim.complete(t, f);
        assert_eq!(sim.peak_utilization(link(0)), 1.0);
        sim.advance(SimTime::from_millis(2));
        let mean = sim.mean_utilization(link(0));
        assert!((mean - 0.5).abs() < 1e-6, "mean={mean}");
    }

    #[test]
    fn utilization_shares_between_flows() {
        // Demand-capped flow uses half the link.
        let net = FlowNet::from_capacities(vec![10.0]);
        let mut sim = FlowSim::new(net);
        let _ = sim.add_flow(SimTime::ZERO, FlowSpec::with_demand(vec![link(0)], 5.0), 50.0);
        sim.advance(SimTime::from_secs(1));
        assert!((sim.mean_utilization(link(0)) - 0.5).abs() < 1e-6);
        assert_eq!(sim.peak_utilization(link(0)), 0.5);
    }

    #[test]
    fn degrading_a_link_slows_the_flow_crossing_it() {
        // 1 GB/s link, 2 MB transfer. After 1 ms (1 MB done) the link
        // degrades to a quarter: the remaining 1 MB takes 4 ms -> 5 ms total.
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        let f = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 2e6);
        sim.set_capacity(SimTime::from_millis(1), link(0), 0.25e9);
        let (t, id) = sim.next_completion().unwrap();
        assert_eq!(id, f);
        assert_eq!(t, SimTime::from_millis(5));
    }

    #[test]
    fn restoring_a_link_speeds_the_flow_back_up() {
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        let f = sim.add_flow(SimTime::ZERO, FlowSpec::new(vec![link(0)]), 2e6);
        sim.set_capacity(SimTime::ZERO, link(0), 0.5e9);
        sim.set_capacity(SimTime::from_millis(2), link(0), 1e9);
        // 1 MB drained in the degraded first 2 ms, 1 MB at full rate after.
        let (t, id) = sim.next_completion().unwrap();
        assert_eq!(id, f);
        assert_eq!(t, SimTime::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut net = FlowNet::from_capacities(vec![1e9]);
        net.set_capacity(link(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot go backwards")]
    fn flow_sim_rejects_time_travel() {
        let net = FlowNet::from_capacities(vec![1e9]);
        let mut sim = FlowSim::new(net);
        sim.advance(SimTime::from_millis(5));
        sim.advance(SimTime::from_millis(1));
    }
}

//! Boot-time address assignment and address-based routing.
//!
//! §IV-C of the paper: *"At the boot time, the system assigns a unique PCIe
//! address range to each PCIe device and port of PCIe switches. Later, PCIe
//! switches forward (rather than broadcast) packages based on their
//! destination address and the address range of each port."*
//!
//! This module reproduces that mechanism: a depth-first enumeration assigns
//! each endpoint a BAR window and each switch port the covering range of its
//! subtree, and [`AddressMap::route_by_addr`] forwards a packet hop by hop
//! using only those per-port ranges — never global knowledge. A test in this
//! module (and a property test in the crate's integration suite) checks that
//! address-based forwarding reproduces exactly the LCA route used by the
//! bandwidth model, which is the correctness condition for modeling P2P as
//! LCA-confined traffic.

use crate::topology::{LinkId, NodeId, NodeKind, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A half-open PCIe address window `[base, base + size)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddrRange {
    /// First address in the window.
    pub base: u64,
    /// Window length in bytes.
    pub size: u64,
}

impl AddrRange {
    /// Does the window contain `addr`?
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr - self.base < self.size
    }

    /// Exclusive end of the window.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }
}

/// The result of boot-time enumeration: a window per node.
///
/// Endpoints get a window of `window` bytes; every switch (and the root
/// complex) covers the union of its children — contiguous by construction,
/// exactly like firmware assigns bridge windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressMap {
    ranges: Vec<AddrRange>,
    window: u64,
}

impl AddressMap {
    /// Enumerate `topo`, giving each endpoint a `window`-byte BAR.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn assign(topo: &Topology, window: u64) -> Self {
        assert!(window > 0, "endpoint window must be positive");
        let mut ranges = vec![AddrRange { base: 0, size: 0 }; topo.node_count()];
        let mut cursor = 0x1_0000_0000u64; // start above legacy space, cosmetic
        fn dfs(
            topo: &Topology,
            node: NodeId,
            window: u64,
            cursor: &mut u64,
            ranges: &mut [AddrRange],
        ) {
            let base = *cursor;
            if matches!(topo.kind(node), NodeKind::Endpoint(_)) {
                ranges[node.index()] = AddrRange { base, size: window };
                *cursor += window;
                return;
            }
            for &child in topo.children(node) {
                dfs(topo, child, window, cursor, ranges);
            }
            ranges[node.index()] = AddrRange { base, size: *cursor - base };
        }
        dfs(topo, topo.root(), window, &mut cursor, &mut ranges);
        AddressMap { ranges, window }
    }

    /// The window assigned to `node`.
    pub fn range(&self, node: NodeId) -> AddrRange {
        self.ranges[node.index()]
    }

    /// A representative DMA target address inside `node`'s window.
    pub fn addr_of(&self, node: NodeId) -> u64 {
        self.ranges[node.index()].base
    }

    /// Endpoint BAR window size used at assignment.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Which node owns `addr`, if any endpoint window contains it.
    pub fn resolve(&self, topo: &Topology, addr: u64) -> Option<NodeId> {
        (0..topo.node_count() as u32)
            .map(NodeId)
            .find(|n| matches!(topo.kind(*n), NodeKind::Endpoint(_)) && self.range(*n).contains(addr))
    }

    /// Forward a packet from `src` toward destination address `addr` hop by
    /// hop, using only per-port ranges at each switch — the PCIe switch
    /// forwarding algorithm. Returns the directed links traversed.
    ///
    /// A packet whose address matches no downstream port range is forwarded
    /// upstream (toward the root complex); a packet arriving at the root
    /// complex with an unmatched address targets host memory and terminates
    /// there.
    ///
    /// # Panics
    ///
    /// Panics if `addr` falls inside `src`'s own window (a device does not
    /// send packets to itself).
    pub fn route_by_addr(&self, topo: &Topology, src: NodeId, addr: u64) -> AddrRoute {
        assert!(
            !self.range(src).contains(addr) || matches!(topo.kind(src), NodeKind::RootComplex),
            "packet addressed to its own sender"
        );
        let mut links = Vec::new();
        let mut here = src;
        // A device first sends the TLP up to its parent port.
        loop {
            match topo.kind(here) {
                NodeKind::Endpoint(_) => {
                    // Endpoints have exactly one port: upstream.
                    let parent = topo.parent(here).expect("endpoint has parent");
                    links.push(up_link(topo, here));
                    here = parent;
                }
                NodeKind::Switch | NodeKind::RootComplex => {
                    // Check each downstream port's range.
                    let mut forwarded = false;
                    for &child in topo.children(here) {
                        if self.range(child).contains(addr) {
                            links.push(down_link(topo, child));
                            here = child;
                            forwarded = true;
                            break;
                        }
                    }
                    if forwarded {
                        if matches!(topo.kind(here), NodeKind::Endpoint(_)) {
                            return AddrRoute { links, terminus: Terminus::Endpoint(here) };
                        }
                        continue;
                    }
                    // No downstream match.
                    match topo.parent(here) {
                        Some(parent) => {
                            links.push(up_link(topo, here));
                            here = parent;
                        }
                        None => {
                            // Root complex: unmatched address = host memory.
                            return AddrRoute { links, terminus: Terminus::HostMemory };
                        }
                    }
                }
            }
        }
    }
}

fn up_link(topo: &Topology, node: NodeId) -> LinkId {
    topo.links()
        .find(|(_, l)| l.toward_root && l.downstream == node)
        .map(|(id, _)| id)
        .expect("non-root node has an up link")
}

fn down_link(topo: &Topology, node: NodeId) -> LinkId {
    topo.links()
        .find(|(_, l)| !l.toward_root && l.downstream == node)
        .map(|(id, _)| id)
        .expect("non-root node has a down link")
}

/// Where an address-routed packet ended up, and through which links.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddrRoute {
    /// Directed links traversed, in order.
    pub links: Vec<LinkId>,
    /// Final destination.
    pub terminus: Terminus,
}

/// Terminal of an address-routed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminus {
    /// Delivered to a device endpoint.
    Endpoint(NodeId),
    /// Absorbed by the root complex (host memory DMA).
    HostMemory,
}

/// Convenience: check that address-based routing agrees with LCA routing for
/// every ordered endpoint pair in `topo`. Returns the number of pairs checked.
///
/// This is the invariant that lets the bandwidth model use [`Topology::route`]
/// while the paper's mechanism is per-switch address forwarding.
pub fn verify_addr_routing_matches_lca(topo: &Topology, map: &AddressMap) -> usize {
    let endpoints: Vec<NodeId> = (0..topo.node_count() as u32)
        .map(NodeId)
        .filter(|&n| matches!(topo.kind(n), NodeKind::Endpoint(_)))
        .collect();
    let mut checked = 0;
    let mut by_pair: HashMap<(NodeId, NodeId), Vec<LinkId>> = HashMap::new();
    for &a in &endpoints {
        for &b in &endpoints {
            if a == b {
                continue;
            }
            let lca_route = topo.route(a, b);
            let addr_route = map.route_by_addr(topo, a, map.addr_of(b));
            assert_eq!(
                addr_route.terminus,
                Terminus::Endpoint(b),
                "address routing must deliver to the addressed endpoint"
            );
            assert_eq!(
                addr_route.links, lca_route,
                "address routing must match LCA routing for {a:?}->{b:?}"
            );
            by_pair.insert((a, b), lca_route);
            checked += 1;
        }
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::Bandwidth;
    use crate::topology::EndpointKind;

    fn sample() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new(Bandwidth::gen3_x16());
        let sw1 = t.add_switch(t.root(), Bandwidth::gen3_x16());
        let ssd = t.add_endpoint(sw1, EndpointKind::Ssd, Bandwidth::gen3_x4());
        let sw2 = t.add_switch(sw1, Bandwidth::gen3_x16());
        let acc = t.add_endpoint(sw2, EndpointKind::NnAccel, Bandwidth::gen3_x16());
        let _acc2 = t.add_endpoint(sw2, EndpointKind::NnAccel, Bandwidth::gen3_x16());
        (t, ssd, sw2, acc)
    }

    #[test]
    fn windows_nest_and_do_not_overlap() {
        let (t, ssd, _, acc) = sample();
        let m = AddressMap::assign(&t, 1 << 24);
        let root_range = m.range(t.root());
        // Every endpoint window nests inside the root window.
        for n in [ssd, acc] {
            let r = m.range(n);
            assert!(root_range.contains(r.base));
            assert!(root_range.contains(r.end() - 1));
        }
        // Sibling endpoint windows are disjoint.
        let (a, b) = (m.range(ssd), m.range(acc));
        assert!(a.end() <= b.base || b.end() <= a.base);
        assert_eq!(m.window(), 1 << 24);
    }

    #[test]
    fn resolve_finds_owner() {
        let (t, ssd, _, acc) = sample();
        let m = AddressMap::assign(&t, 4096);
        assert_eq!(m.resolve(&t, m.addr_of(ssd)), Some(ssd));
        assert_eq!(m.resolve(&t, m.addr_of(acc) + 4095), Some(acc));
        assert_eq!(m.resolve(&t, 0), None);
    }

    #[test]
    fn addr_routing_matches_lca_everywhere() {
        let (t, ..) = sample();
        let m = AddressMap::assign(&t, 4096);
        let pairs = verify_addr_routing_matches_lca(&t, &m);
        assert_eq!(pairs, 6); // 3 endpoints, ordered pairs
    }

    #[test]
    fn unmatched_address_terminates_at_host_memory() {
        let (t, ssd, ..) = sample();
        let m = AddressMap::assign(&t, 4096);
        let r = m.route_by_addr(&t, ssd, 0xdead); // below all windows
        assert_eq!(r.terminus, Terminus::HostMemory);
        // Every hop is an up-link ending at the RC.
        assert!(r.links.iter().all(|&l| t.link(l).toward_root));
        assert_eq!(t.link(*r.links.last().unwrap()).upstream, t.root());
    }

    #[test]
    fn p2p_packet_turns_at_lca_switch() {
        let (t, ssd, sw2, acc) = sample();
        let m = AddressMap::assign(&t, 4096);
        let r = m.route_by_addr(&t, ssd, m.addr_of(acc));
        // ssd -> sw1 (up), sw1 -> sw2 (down), sw2 -> acc (down): never reaches RC.
        assert_eq!(r.links.len(), 3);
        assert!(!r.links.iter().any(|&l| t.link_touches(l, t.root())));
        let mid = t.link(r.links[1]);
        assert_eq!(mid.downstream, sw2);
    }

    #[test]
    #[should_panic(expected = "packet addressed to its own sender")]
    fn self_addressed_packet_rejected() {
        let (t, ssd, ..) = sample();
        let m = AddressMap::assign(&t, 4096);
        m.route_by_addr(&t, ssd, m.addr_of(ssd));
    }
}

//! The paper's "box" constructions and chained server topologies.
//!
//! §III-A: *"a box consists of multiple devices and several PCIe switches,
//! and has two external ports (an uplink and a downlink). To scale the number
//! of devices, we chain the boxes from the root complex by connecting the
//! uplink and the downlink of two boxes."*
//!
//! §V-D (train box): *"we place four neural network accelerators and an FPGA
//! under a PCIe switch and connect two of such switches using another switch
//! having two NVMe SSDs."*
//!
//! This module builds the topologies of:
//!
//! * Fig 7 — the baseline: chained accelerator boxes plus SSD boxes;
//! * Fig 13 — Step 1: baseline plus chained preparation boxes;
//! * Fig 15/18 — TrainBox: chained *train boxes* that cluster SSDs, prep
//!   accelerators, and NN accelerators under one switch, plus a separate
//!   Ethernet preparation network to the prep-pool.
//!
//! Chaining matters for the bottleneck analysis: every chained box reaches
//! the root complex through the top switch of each box before it, so the
//! whole chain shares a single root-complex port pair — the "single-point
//! hotspot" of §I that clustering removes.

use crate::bandwidth::{Bandwidth, Generation};
use crate::topology::{EndpointKind, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Devices per train box, following §V-D / DGX-2 conventions.
pub const ACCS_PER_TRAIN_BOX: usize = 8;
/// FPGAs per train box (one per 4-accelerator switch).
pub const PREPS_PER_TRAIN_BOX: usize = 2;
/// NVMe SSDs per train box.
pub const SSDS_PER_TRAIN_BOX: usize = 2;
/// Accelerators per baseline accelerator box.
pub const ACCS_PER_ACC_BOX: usize = 8;
/// Prep accelerators per preparation box.
pub const PREPS_PER_PREP_BOX: usize = 8;
/// SSDs per baseline SSD box.
pub const SSDS_PER_SSD_BOX: usize = 8;
/// PCIe chains hanging off the root complex (DGX-2 style: one per CPU socket).
pub const DEFAULT_CHAINS: usize = 2;

/// What a box contains (for reporting and traffic construction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoxInfo {
    /// The box's top switch (its uplink attaches to the previous box or RC).
    pub top: NodeId,
    /// NN accelerators in the box.
    pub accs: Vec<NodeId>,
    /// Data-preparation accelerators in the box.
    pub preps: Vec<NodeId>,
    /// SSDs in the box.
    pub ssds: Vec<NodeId>,
}

/// A fully built server interconnect plus grouped device ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerTopology {
    /// The PCIe tree.
    pub topo: Topology,
    /// All NN accelerators, in box order.
    pub accs: Vec<NodeId>,
    /// All data-preparation accelerators, in box order.
    pub preps: Vec<NodeId>,
    /// All SSDs, in box order.
    pub ssds: Vec<NodeId>,
    /// Per-box inventory, in chain order.
    pub boxes: Vec<BoxInfo>,
}

impl ServerTopology {
    /// The directed links incident to the root complex (the RC hotspot that
    /// Figure 10c measures pressure on).
    pub fn rc_links(&self) -> Vec<crate::topology::LinkId> {
        self.topo
            .links()
            .filter(|(_, l)| l.upstream == self.topo.root())
            .map(|(id, _)| id)
            .collect()
    }
}

/// Builder for chained-box server topologies.
///
/// # Example
///
/// ```
/// use trainbox_pcie::boxes::ServerBuilder;
/// use trainbox_pcie::Generation;
///
/// let server = ServerBuilder::new(Generation::Gen3).baseline(16, 8);
/// assert_eq!(server.accs.len(), 16);
/// assert_eq!(server.ssds.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct ServerBuilder {
    gen: Generation,
    chains: usize,
}

impl ServerBuilder {
    /// A builder using PCIe generation `gen` and [`DEFAULT_CHAINS`] chains.
    pub fn new(gen: Generation) -> Self {
        ServerBuilder { gen, chains: DEFAULT_CHAINS }
    }

    /// Override the number of chains from the root complex.
    ///
    /// # Panics
    ///
    /// Panics if `chains` is zero.
    pub fn chains(mut self, chains: usize) -> Self {
        assert!(chains > 0, "need at least one chain");
        self.chains = chains;
        self
    }

    fn x16(&self) -> Bandwidth {
        self.gen.lanes(16)
    }

    fn x4(&self) -> Bandwidth {
        self.gen.lanes(4)
    }

    /// Build the Fig 7 baseline: `n_acc` accelerators in acc boxes and
    /// `n_ssd` SSDs in SSD boxes, chained round-robin across the chains.
    ///
    /// # Panics
    ///
    /// Panics if `n_acc` is zero.
    pub fn baseline(&self, n_acc: usize, n_ssd: usize) -> ServerTopology {
        assert!(n_acc > 0, "a training server needs at least one accelerator");
        let mut b = Build::new(self);
        let acc_boxes = n_acc.div_ceil(ACCS_PER_ACC_BOX);
        let ssd_boxes = n_ssd.div_ceil(SSDS_PER_SSD_BOX);
        for i in 0..acc_boxes {
            let take = (n_acc - i * ACCS_PER_ACC_BOX).min(ACCS_PER_ACC_BOX);
            b.acc_box(take);
        }
        for i in 0..ssd_boxes {
            let take = (n_ssd - i * SSDS_PER_SSD_BOX).min(SSDS_PER_SSD_BOX);
            b.ssd_box(take);
        }
        b.finish()
    }

    /// Build the Fig 13 Step-1 server: the baseline plus `n_prep` preparation
    /// accelerators in chained prep boxes. `gpu` selects GPU-style prep
    /// endpoints (Fig 21's comparison arm) instead of FPGAs.
    pub fn with_prep_boxes(
        &self,
        n_acc: usize,
        n_ssd: usize,
        n_prep: usize,
        gpu: bool,
    ) -> ServerTopology {
        assert!(n_acc > 0, "a training server needs at least one accelerator");
        let mut b = Build::new(self);
        let acc_boxes = n_acc.div_ceil(ACCS_PER_ACC_BOX);
        for i in 0..acc_boxes {
            b.acc_box((n_acc - i * ACCS_PER_ACC_BOX).min(ACCS_PER_ACC_BOX));
        }
        let ssd_boxes = n_ssd.div_ceil(SSDS_PER_SSD_BOX);
        for i in 0..ssd_boxes {
            b.ssd_box((n_ssd - i * SSDS_PER_SSD_BOX).min(SSDS_PER_SSD_BOX));
        }
        let prep_boxes = n_prep.div_ceil(PREPS_PER_PREP_BOX);
        for i in 0..prep_boxes {
            b.prep_box((n_prep - i * PREPS_PER_PREP_BOX).min(PREPS_PER_PREP_BOX), gpu);
        }
        b.finish()
    }

    /// Build the Fig 15/18 TrainBox server: `n_boxes` train boxes, each with
    /// 8 NN accelerators, 2 prep FPGAs, and 2 SSDs clustered under one switch.
    ///
    /// # Panics
    ///
    /// Panics if `n_boxes` is zero.
    pub fn train_boxes(&self, n_boxes: usize) -> ServerTopology {
        assert!(n_boxes > 0, "need at least one train box");
        let mut b = Build::new(self);
        for _ in 0..n_boxes {
            b.train_box();
        }
        b.finish()
    }
}

/// In-progress build state.
struct Build<'a> {
    cfg: &'a ServerBuilder,
    topo: Topology,
    /// Tail switch of each chain (next box attaches under it).
    tails: Vec<NodeId>,
    next_chain: usize,
    boxes: Vec<BoxInfo>,
}

impl<'a> Build<'a> {
    fn new(cfg: &'a ServerBuilder) -> Self {
        let topo = Topology::new(cfg.x16());
        let root = topo.root();
        Build {
            cfg,
            topo,
            tails: vec![root; cfg.chains],
            next_chain: 0,
            boxes: Vec::new(),
        }
    }

    /// Attach a new box top switch to the shortest chain (round-robin).
    fn attach_top(&mut self) -> NodeId {
        let chain = self.next_chain;
        self.next_chain = (self.next_chain + 1) % self.tails.len();
        let parent = self.tails[chain];
        let top = self.topo.add_switch(parent, self.cfg.x16());
        self.tails[chain] = top;
        top
    }

    fn acc_box(&mut self, n: usize) {
        let top = self.attach_top();
        let mut accs = Vec::new();
        // Two leaf switches of up to 4 accelerators each (PEX8796-style).
        let mut remaining = n;
        while remaining > 0 {
            let leaf = self.topo.add_switch(top, self.cfg.x16());
            for _ in 0..remaining.min(4) {
                accs.push(self.topo.add_endpoint(leaf, EndpointKind::NnAccel, self.cfg.x16()));
            }
            remaining -= remaining.min(4);
        }
        self.boxes.push(BoxInfo { top, accs, preps: Vec::new(), ssds: Vec::new() });
    }

    fn ssd_box(&mut self, n: usize) {
        let top = self.attach_top();
        let mut ssds = Vec::new();
        // Leaf switches of up to 4 SSDs keep every switch within the
        // PEX8796 port budget (§V-D).
        let mut remaining = n;
        while remaining > 0 {
            let leaf = self.topo.add_switch(top, self.cfg.x16());
            for _ in 0..remaining.min(4) {
                ssds.push(self.topo.add_endpoint(leaf, EndpointKind::Ssd, self.cfg.x4()));
            }
            remaining -= remaining.min(4);
        }
        self.boxes.push(BoxInfo { top, accs: Vec::new(), preps: Vec::new(), ssds });
    }

    fn prep_box(&mut self, n: usize, gpu: bool) {
        let top = self.attach_top();
        let kind = if gpu { EndpointKind::GpuPrep } else { EndpointKind::PrepAccel };
        let mut preps = Vec::new();
        let mut remaining = n;
        while remaining > 0 {
            let leaf = self.topo.add_switch(top, self.cfg.x16());
            for _ in 0..remaining.min(4) {
                preps.push(self.topo.add_endpoint(leaf, kind, self.cfg.x16()));
            }
            remaining -= remaining.min(4);
        }
        self.boxes.push(BoxInfo { top, accs: Vec::new(), preps, ssds: Vec::new() });
    }

    fn train_box(&mut self) {
        let top = self.attach_top();
        let mut accs = Vec::new();
        let mut preps = Vec::new();
        let mut ssds = Vec::new();
        for _ in 0..SSDS_PER_TRAIN_BOX {
            ssds.push(self.topo.add_endpoint(top, EndpointKind::Ssd, self.cfg.x4()));
        }
        for _ in 0..2 {
            let leaf = self.topo.add_switch(top, self.cfg.x16());
            for _ in 0..4 {
                accs.push(self.topo.add_endpoint(leaf, EndpointKind::NnAccel, self.cfg.x16()));
            }
            preps.push(self.topo.add_endpoint(leaf, EndpointKind::PrepAccel, self.cfg.x16()));
        }
        self.boxes.push(BoxInfo { top, accs, preps, ssds });
    }

    fn finish(self) -> ServerTopology {
        let mut accs = Vec::new();
        let mut preps = Vec::new();
        let mut ssds = Vec::new();
        for b in &self.boxes {
            accs.extend(&b.accs);
            preps.extend(&b.preps);
            ssds.extend(&b.ssds);
        }
        ServerTopology { topo: self.topo, accs, preps, ssds, boxes: self.boxes }
    }
}

/// The Ethernet preparation network of §IV-D: a top-of-rack switch connecting
/// the in-box prep accelerators' NICs to a shared pool of extra prep
/// accelerators.
///
/// Modeled as its own star [`Topology`] whose "root" is the ToR switch; all
/// links are 100 GbE. Kept separate from the PCIe tree on purpose — the paper
/// dedicates the network "not to incur contentions on the PCIe".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrepPoolNet {
    /// The Ethernet star; root is the ToR switch.
    pub topo: Topology,
    /// NIC endpoints of in-box prep accelerators (requesters).
    pub box_nics: Vec<NodeId>,
    /// NIC endpoints of pool prep accelerators (servers).
    pub pool_nics: Vec<NodeId>,
}

impl PrepPoolNet {
    /// Build a prep network with `n_box_nics` requesters and `n_pool` pool
    /// accelerators.
    pub fn new(n_box_nics: usize, n_pool: usize) -> Self {
        let eth = Bandwidth::ethernet_100g();
        let mut topo = Topology::new(eth);
        let tor = topo.root();
        let box_nics = (0..n_box_nics)
            .map(|_| topo.add_endpoint(tor, EndpointKind::Nic, eth))
            .collect();
        let pool_nics = (0..n_pool)
            .map(|_| topo.add_endpoint(tor, EndpointKind::Nic, eth))
            .collect();
        PrepPoolNet { topo, box_nics, pool_nics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{verify_addr_routing_matches_lca, AddressMap};
    use crate::flow::{FlowNet, FlowSpec};

    #[test]
    fn baseline_inventory() {
        let s = ServerBuilder::new(Generation::Gen3).baseline(256, 16);
        assert_eq!(s.accs.len(), 256);
        assert_eq!(s.ssds.len(), 16);
        assert!(s.preps.is_empty());
        assert_eq!(s.boxes.len(), 32 + 2);
    }

    #[test]
    fn partial_boxes_hold_remainders() {
        let s = ServerBuilder::new(Generation::Gen3).baseline(10, 3);
        assert_eq!(s.accs.len(), 10);
        assert_eq!(s.boxes[1].accs.len(), 2);
        assert_eq!(s.ssds.len(), 3);
    }

    #[test]
    fn chained_boxes_share_rc_links() {
        let s = ServerBuilder::new(Generation::Gen3).chains(1).baseline(32, 8);
        // All traffic from any acc to the RC crosses exactly one RC link.
        let rc_links = s.rc_links();
        assert_eq!(rc_links.len(), 2); // one chain: up+down
        for &acc in &s.accs {
            let route = s.topo.route(acc, s.topo.root());
            assert!(route.iter().filter(|l| rc_links.contains(l)).count() == 1);
        }
        // Deeper boxes have longer routes to the RC (chaining, not a star).
        let last_acc_box = s.boxes.iter().rev().find(|b| !b.accs.is_empty()).unwrap();
        let first = s.topo.route(s.boxes[0].accs[0], s.topo.root()).len();
        let last = s.topo.route(last_acc_box.accs[0], s.topo.root()).len();
        assert!(last > first);
    }

    #[test]
    fn train_box_contents_follow_paper() {
        let s = ServerBuilder::new(Generation::Gen3).train_boxes(32);
        assert_eq!(s.accs.len(), 256);
        assert_eq!(s.preps.len(), 64);
        assert_eq!(s.ssds.len(), 64);
        for b in &s.boxes {
            assert_eq!(b.accs.len(), ACCS_PER_TRAIN_BOX);
            assert_eq!(b.preps.len(), PREPS_PER_TRAIN_BOX);
            assert_eq!(b.ssds.len(), SSDS_PER_TRAIN_BOX);
        }
    }

    #[test]
    fn train_box_traffic_is_rc_free() {
        let s = ServerBuilder::new(Generation::Gen3).train_boxes(4);
        for b in &s.boxes {
            // SSD -> prep and prep -> acc inside a box never cross the RC.
            for &ssd in &b.ssds {
                for &prep in &b.preps {
                    assert!(!s.topo.route_crosses_root(ssd, prep));
                }
            }
            for &prep in &b.preps {
                for &acc in &b.accs {
                    assert!(!s.topo.route_crosses_root(prep, acc));
                }
            }
        }
    }

    #[test]
    fn prep_boxes_attach_requested_kind() {
        let s = ServerBuilder::new(Generation::Gen3).with_prep_boxes(8, 2, 6, false);
        assert_eq!(s.preps.len(), 6);
        assert_eq!(
            s.topo.endpoints_of_kind(EndpointKind::PrepAccel).len(),
            6
        );
        let g = ServerBuilder::new(Generation::Gen3).with_prep_boxes(8, 2, 6, true);
        assert_eq!(g.topo.endpoints_of_kind(EndpointKind::GpuPrep).len(), 6);
    }

    #[test]
    fn gen4_doubles_link_capacity() {
        let g3 = ServerBuilder::new(Generation::Gen3).baseline(8, 2);
        let g4 = ServerBuilder::new(Generation::Gen4).baseline(8, 2);
        let l3 = g3.topo.link(g3.rc_links()[0]).bandwidth;
        let l4 = g4.topo.link(g4.rc_links()[0]).bandwidth;
        assert_eq!(l4.bytes_per_sec(), 2 * l3.bytes_per_sec());
    }

    #[test]
    fn address_routing_consistent_on_built_servers() {
        // Keep it small: a 2-train-box server still has 24 endpoints.
        let s = ServerBuilder::new(Generation::Gen3).train_boxes(2);
        let map = AddressMap::assign(&s.topo, 1 << 20);
        let pairs = verify_addr_routing_matches_lca(&s.topo, &map);
        assert_eq!(pairs, 24 * 23);
    }

    #[test]
    fn clustered_flows_avoid_rc_saturation() {
        // Demonstration of the Step-3 claim: in-box prep->acc flows in every
        // train box simultaneously run at full endpoint bandwidth because no
        // shared link is crossed; the same flows routed through a prep box in
        // a different chain position would contend at the chain links.
        let s = ServerBuilder::new(Generation::Gen3).chains(1).train_boxes(4);
        let net = FlowNet::from_topology(&s.topo);
        let flows: Vec<FlowSpec> = s
            .boxes
            .iter()
            .flat_map(|b| {
                b.preps
                    .iter()
                    .zip(b.accs.chunks(4))
                    .map(|(&p, accs)| FlowSpec::new(s.topo.route(p, accs[0])))
            })
            .collect();
        let rates = net.max_min_rates(&flows);
        let x16 = Generation::Gen3.lanes(16).bytes_per_sec() as f64;
        for r in rates {
            assert!((r - x16).abs() < 1.0, "each in-box flow should get full x16: {r}");
        }
    }

    #[test]
    fn every_built_server_respects_pex8796_radix() {
        use crate::topology::PEX8796_MAX_LINKS;
        let b = ServerBuilder::new(Generation::Gen3);
        for s in [
            b.baseline(256, 16),
            b.with_prep_boxes(64, 8, 16, false),
            b.train_boxes(32),
        ] {
            let violations = s.topo.radix_violations(PEX8796_MAX_LINKS);
            assert!(
                violations.is_empty(),
                "switches over the port budget: {violations:?}"
            );
        }
    }

    #[test]
    fn train_box_top_switch_uses_the_full_budget() {
        // 2 SSDs + 2 leaf switches + uplink (+ downlink on chained boxes):
        // exactly the six PEX8796 links when chained.
        let s = ServerBuilder::new(Generation::Gen3).chains(1).train_boxes(2);
        let first_top = s.boxes[0].top;
        assert_eq!(s.topo.switch_radix(first_top), 6);
        let last_top = s.boxes[1].top;
        assert_eq!(s.topo.switch_radix(last_top), 5); // no further downlink
    }

    #[test]
    fn prep_pool_net_star() {
        let p = PrepPoolNet::new(8, 4);
        assert_eq!(p.box_nics.len(), 8);
        assert_eq!(p.pool_nics.len(), 4);
        // All NICs are directly under the ToR.
        for &n in p.box_nics.iter().chain(&p.pool_nics) {
            assert_eq!(p.topo.parent(n), Some(p.topo.root()));
        }
    }
}

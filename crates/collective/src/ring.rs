//! Real collective implementations over threads and channels.
//!
//! These are functional reproductions of the synchronization algorithms the
//! paper's servers rely on (NCCL-style ring, tree baseline). They validate
//! the algorithmic structure the latency model assumes: the ring moves
//! `2(n-1)/n × M` bytes per link regardless of `n`, which is why its latency
//! saturates (Fig 2b).

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread;

/// Elementwise-sum all-reduce over a ring of `buffers.len()` participants.
///
/// Each participant runs on its own thread connected to its right-hand
/// neighbor by a channel; the standard two-phase algorithm runs:
/// reduce-scatter (`n-1` steps), then all-gather (`n-1` steps). On return,
/// every buffer holds the elementwise sum of all inputs.
///
/// # Panics
///
/// Panics if buffers are empty, have mismatched lengths, or a worker thread
/// panics.
pub fn ring_all_reduce(buffers: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let n = buffers.len();
    assert!(n > 0, "need at least one participant");
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "all participants must hold equal-size buffers"
    );
    if n == 1 {
        return buffers;
    }

    // Segment boundaries: segment s covers seg_range(s).
    let seg_range = move |s: usize| {
        let base = len / n;
        let extra = len % n;
        let start = s * base + s.min(extra);
        let size = base + usize::from(s < extra);
        start..start + size
    };

    // Channel to each participant's *left* inbox; participant r sends to
    // (r+1) % n.
    let mut senders: Vec<Option<Sender<Vec<f32>>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<Vec<f32>>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(Some(tx));
        receivers.push(Some(rx));
    }

    let mut handles = Vec::with_capacity(n);
    for (rank, mut buf) in buffers.into_iter().enumerate() {
        // invariant: each rank index occurs once in the enumerate, so every
        // channel endpoint is taken exactly once.
        let to_right = senders[(rank + 1) % n].take().expect("sender taken once");
        let from_left = receivers[rank].take().expect("receiver taken once");
        handles.push(thread::spawn(move || {
            // Phase 1: reduce-scatter. After step k, segment (rank - k - 1)
            // holds partial sums of k+2 contributors.
            for step in 0..n - 1 {
                let send_seg = (rank + n - step) % n;
                let r = seg_range(send_seg);
                to_right.send(buf[r].to_vec()).expect("ring neighbor alive");
                let incoming = from_left.recv().expect("ring neighbor alive");
                let recv_seg = (rank + n - step - 1) % n;
                let r = seg_range(recv_seg);
                for (dst, src) in buf[r].iter_mut().zip(incoming) {
                    *dst += src;
                }
            }
            // Phase 2: all-gather. Each rank starts by sending its fully
            // reduced segment (rank + 1).
            for step in 0..n - 1 {
                let send_seg = (rank + 1 + n - step) % n;
                let r = seg_range(send_seg);
                to_right.send(buf[r].to_vec()).expect("ring neighbor alive");
                let incoming = from_left.recv().expect("ring neighbor alive");
                let recv_seg = (rank + n - step) % n;
                let r = seg_range(recv_seg);
                buf[r].copy_from_slice(&incoming);
            }
            (rank, buf)
        }));
    }

    let mut out: Vec<Option<Vec<f32>>> = (0..n).map(|_| None).collect();
    for h in handles {
        // Propagate a worker panic instead of deadlocking its neighbors; the
        // send/recv expects above can only fire after such a panic anyway.
        let (rank, buf) = h.join().expect("ring worker panicked");
        out[rank] = Some(buf);
    }
    // invariant: n workers covering ranks 0..n each filled their slot.
    out.into_iter().map(|b| b.expect("every rank returns")).collect()
}

/// Elementwise-sum all-reduce via a binomial tree: reduce to rank 0, then
/// broadcast. The baseline the ring is compared against — per-link traffic
/// grows with `log n` hops through a root bottleneck instead of staying
/// constant.
///
/// # Panics
///
/// Panics if buffers are empty or have mismatched lengths.
pub fn tree_all_reduce(mut buffers: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let n = buffers.len();
    assert!(n > 0, "need at least one participant");
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "all participants must hold equal-size buffers"
    );
    // Reduce: at round k, rank r with r % 2^(k+1) == 0 absorbs r + 2^k.
    let mut stride = 1;
    while stride < n {
        let mut src = stride;
        while src < n {
            let dst = src - stride;
            if src % (stride * 2) == stride {
                let (a, b) = buffers.split_at_mut(src);
                for (x, y) in a[dst].iter_mut().zip(&b[0]) {
                    *x += y;
                }
            }
            src += stride * 2;
        }
        stride *= 2;
    }
    // Broadcast rank 0's result.
    let result = buffers[0].clone();
    for b in buffers.iter_mut().skip(1) {
        b.copy_from_slice(&result);
    }
    buffers
}

/// Bytes each link carries during a ring all-reduce of `model_bytes` over
/// `n` participants: `2(n-1)/n × model_bytes` (the quantity that saturates).
pub fn ring_bytes_per_link(model_bytes: u64, n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    2.0 * (n as f64 - 1.0) / n as f64 * model_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_buffers(n: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    fn expected_sum(buffers: &[Vec<f32>]) -> Vec<f32> {
        let mut sum = vec![0.0f32; buffers[0].len()];
        for b in buffers {
            for (s, v) in sum.iter_mut().zip(b) {
                *s += v;
            }
        }
        sum
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn ring_matches_serial_sum() {
        for n in [2, 3, 4, 7, 8] {
            let bufs = random_buffers(n, 100, n as u64);
            let want = expected_sum(&bufs);
            let got = ring_all_reduce(bufs);
            for g in &got {
                assert_close(g, &want);
            }
        }
    }

    #[test]
    fn ring_handles_len_not_divisible_by_n() {
        let bufs = random_buffers(5, 13, 1);
        let want = expected_sum(&bufs);
        for g in ring_all_reduce(bufs) {
            assert_close(&g, &want);
        }
    }

    #[test]
    fn ring_single_participant_is_identity() {
        let bufs = vec![vec![1.0, 2.0, 3.0]];
        assert_eq!(ring_all_reduce(bufs.clone()), bufs);
    }

    #[test]
    fn ring_small_buffer_large_ring() {
        // len < n: some segments are empty.
        let bufs = random_buffers(8, 3, 9);
        let want = expected_sum(&bufs);
        for g in ring_all_reduce(bufs) {
            assert_close(&g, &want);
        }
    }

    #[test]
    fn tree_matches_serial_sum() {
        for n in [1, 2, 3, 5, 8, 9] {
            let bufs = random_buffers(n, 64, 100 + n as u64);
            let want = expected_sum(&bufs);
            for g in tree_all_reduce(bufs) {
                assert_close(&g, &want);
            }
        }
    }

    #[test]
    fn ring_and_tree_agree() {
        let bufs = random_buffers(6, 50, 77);
        let r = ring_all_reduce(bufs.clone());
        let t = tree_all_reduce(bufs);
        for (a, b) in r.iter().zip(&t) {
            assert_close(a, b);
        }
    }

    #[test]
    fn per_link_traffic_saturates_at_2x_model() {
        let m = 1_000_000u64;
        assert_eq!(ring_bytes_per_link(m, 1), 0.0);
        assert!((ring_bytes_per_link(m, 2) - 1e6).abs() < 1.0);
        let big = ring_bytes_per_link(m, 256);
        assert!(big < 2e6);
        assert!(big > 1.99e6);
    }

    #[test]
    #[should_panic(expected = "equal-size buffers")]
    fn mismatched_sizes_rejected() {
        ring_all_reduce(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ring_all_reduce_is_correct(
            n in 2usize..6,
            len in 1usize..40,
            seed in 0u64..1000,
        ) {
            let bufs = random_buffers(n, len, seed);
            let want = expected_sum(&bufs);
            for g in ring_all_reduce(bufs) {
                for (x, y) in g.iter().zip(&want) {
                    prop_assert!((x - y).abs() < 1e-4);
                }
            }
        }
    }
}

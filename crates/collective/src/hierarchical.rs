//! Hierarchical (multi-tier) all-reduce latency model for cluster-scale
//! synchronization.
//!
//! A multi-rack cluster synchronizes gradients in phases: a ring inside each
//! server over NVLink, a ring across the servers of a rack over the ToR
//! switch, and a ring across racks over the spine. Each phase is an
//! all-reduce over that tier's participant count and link budget, and the
//! phases are serialized — a participant cannot start the ToR phase until its
//! local reduction holds the server-wide gradient sum. Total latency is
//! therefore the **sum of the per-tier ring latencies**, each computed by the
//! same chunked-ring model ([`RingModel`]) the single-server simulator uses.
//!
//! This deliberately reuses the Fig 2b-calibrated model per tier instead of
//! inventing a new cluster law: the paper's scale-up argument (§VII) is that
//! ring latency saturates with participant count, and that saturation
//! compounds per tier — which this model exhibits.

use crate::model::RingModel;

/// One tier of a hierarchical all-reduce: a ring over `participants` peers
/// whose pairwise links follow `link`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tier {
    /// Link model for this tier (bandwidth, hop latency, chunking).
    pub link: RingModel,
    /// Ring size at this tier (servers per rack, racks, ...). A tier with
    /// fewer than 2 participants contributes zero latency.
    pub participants: usize,
}

/// A serialized stack of ring all-reduce tiers, innermost first.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HierarchicalModel {
    /// Tiers in execution order (e.g. `[intra-server, ToR, spine]`).
    pub tiers: Vec<Tier>,
}

impl HierarchicalModel {
    /// A model with no tiers (zero latency); push tiers with [`Self::tier`].
    pub fn new() -> Self {
        HierarchicalModel { tiers: Vec::new() }
    }

    /// Append a tier, builder-style.
    pub fn tier(mut self, link: RingModel, participants: usize) -> Self {
        self.tiers.push(Tier { link, participants });
        self
    }

    /// Seconds to all-reduce `model_bytes` of gradients through every tier.
    ///
    /// Each tier moves the full gradient payload (the reduction does not
    /// shrink it — all-reduce output size equals input size), so each tier
    /// contributes its own `RingModel::allreduce_secs` over the full
    /// `model_bytes`. Degenerate tiers (< 2 participants) cost nothing.
    pub fn allreduce_secs(&self, model_bytes: u64) -> f64 {
        self.tiers
            .iter()
            .filter(|t| t.participants >= 2)
            .map(|t| t.link.allreduce_secs(model_bytes, t.participants))
            .sum()
    }

    /// Ring steps summed over tiers (diagnostic; mirrors
    /// `RingModel::allreduce_steps` per tier).
    pub fn total_steps(&self) -> usize {
        self.tiers
            .iter()
            .filter(|t| t.participants >= 2)
            .map(|t| 2 * (t.participants - 1))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> RingModel {
        RingModel { link_bytes_per_sec: 300e9, hop_latency_secs: 100e-9, chunk_bytes: 4096 }
    }

    fn slow() -> RingModel {
        RingModel { link_bytes_per_sec: 12.5e9, hop_latency_secs: 5e-6, chunk_bytes: 65536 }
    }

    #[test]
    fn tiers_sum_and_degenerate_tiers_are_free() {
        let m = 512 * 1024 * 1024;
        let intra = fast().allreduce_secs(m, 16);
        let tor = slow().allreduce_secs(m, 8);
        let h = HierarchicalModel::new().tier(fast(), 16).tier(slow(), 8).tier(slow(), 1);
        assert!((h.allreduce_secs(m) - (intra + tor)).abs() < 1e-12);
        assert_eq!(h.total_steps(), 2 * 15 + 2 * 7);

        let single = HierarchicalModel::new().tier(fast(), 1);
        assert_eq!(single.allreduce_secs(m), 0.0);
        assert_eq!(HierarchicalModel::new().allreduce_secs(m), 0.0);
    }

    #[test]
    fn slower_outer_tier_dominates() {
        let m = 512 * 1024 * 1024;
        let h = HierarchicalModel::new().tier(fast(), 16).tier(slow(), 8);
        let tor = slow().allreduce_secs(m, 8);
        // ToR Ethernet is ~24x slower than NVLink; it must carry the cost.
        assert!(tor / h.allreduce_secs(m) > 0.9);
    }

    #[test]
    fn outer_tier_latency_saturates_with_rack_count() {
        // The paper's Fig 2b shape must survive the hierarchy: doubling racks
        // far from doubles the spine-tier latency.
        let m = 512 * 1024 * 1024;
        let at = |racks| HierarchicalModel::new().tier(slow(), racks).allreduce_secs(m);
        let l4 = at(4);
        let l32 = at(32);
        assert!(l32 < l4 * 1.5, "ring saturation: {l4} -> {l32}");
    }
}

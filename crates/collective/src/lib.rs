//! Model synchronization: collective communication algorithms and their
//! latency models.
//!
//! §II-B of the paper: model synchronization shares each accelerator's
//! gradients with all others. NCCL-style *ring* reduction exploits the
//! all-to-all pattern so that latency saturates at about **twice the 2-node
//! latency** regardless of scale (Fig 2b) — the property that shifts the
//! bottleneck to data preparation in the first place.
//!
//! * [`ring`] — a real, multi-threaded chunked ring all-reduce over
//!   `crossbeam` channels (reduce-scatter + all-gather), plus a binomial
//!   tree reduce-broadcast baseline;
//! * [`model`] — the analytic chunked-ring latency model used by the server
//!   simulator, which reproduces Fig 2b's saturation shape;
//! * [`reform`] — ring re-formation over the survivors after an
//!   accelerator dropout (degraded-mode synchronization).

pub mod halving;
pub mod hierarchical;
pub mod model;
pub mod reform;
pub mod ring;
pub mod sync;

pub use halving::halving_doubling_all_reduce;
pub use hierarchical::{HierarchicalModel, Tier};
pub use model::RingModel;
pub use reform::{reformed_ring_all_reduce, surviving_ring};
pub use ring::{ring_all_reduce, tree_all_reduce};
pub use sync::{AllToAllModel, PsModel, SyncModel};

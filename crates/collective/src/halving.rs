//! Recursive halving–doubling all-reduce — the other bandwidth-optimal
//! collective (§II-B cites tree-/ring-based primitives; NCCL picks between
//! these families by message size and topology).
//!
//! Reduce-scatter by recursive halving (log₂ n rounds, exchanging half the
//! remaining buffer each round), then all-gather by recursive doubling.
//! Per-node traffic is `2(n-1)/n × M` — the same optimal volume as the ring
//! — but in `2 log₂ n` rounds instead of `2(n-1)`, trading hop count for
//! larger per-round messages.

use crate::ring::ring_bytes_per_link;

/// Elementwise-sum all-reduce via recursive halving–doubling.
///
/// Runs the exact communication schedule sequentially (each "round" applies
/// every pairwise exchange), which is sufficient to validate correctness and
/// traffic; the latency model below captures timing.
///
/// # Panics
///
/// Panics if the participant count is not a power of two, buffers are empty,
/// or lengths mismatch.
pub fn halving_doubling_all_reduce(mut buffers: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let n = buffers.len();
    assert!(n.is_power_of_two(), "halving-doubling needs a power-of-two count");
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "all participants must hold equal-size buffers"
    );
    if n == 1 {
        return buffers;
    }
    // Each rank owns a shrinking active range [start, start+size).
    let mut start = vec![0usize; n];
    let mut size = vec![len; n];

    // Phase 1: reduce-scatter by recursive halving.
    let mut dist = n / 2;
    while dist >= 1 {
        for r in 0..n {
            let peer = r ^ dist;
            if peer < r {
                continue; // handle each pair once
            }
            // Split the (identical) active range between r and peer: the
            // lower-numbered rank keeps the first half.
            debug_assert_eq!(start[r], start[peer]);
            debug_assert_eq!(size[r], size[peer]);
            let half = size[r] / 2;
            let lo = start[r];
            let hi_start = lo + half;
            let hi_len = size[r] - half;
            // r keeps [lo, lo+half): add peer's values there.
            // peer keeps [hi_start, hi_start+hi_len): add r's values there.
            let (a, b) = if r < peer {
                let (x, y) = buffers.split_at_mut(peer);
                (&mut x[r], &mut y[0])
            } else {
                unreachable!("peer > r by construction");
            };
            for i in lo..lo + half {
                a[i] += b[i];
            }
            for i in hi_start..hi_start + hi_len {
                b[i] += a[i];
            }
            start[r] = lo;
            size[r] = half;
            start[peer] = hi_start;
            size[peer] = hi_len;
        }
        dist /= 2;
    }

    // Phase 2: all-gather by recursive doubling (reverse order).
    let mut dist = 1;
    while dist < n {
        // Snapshot ranges before merging this round.
        let pre_start = start.clone();
        let pre_size = size.clone();
        for r in 0..n {
            let peer = r ^ dist;
            if peer < r {
                continue;
            }
            // Copy each side's owned range to the other.
            let (a, b) = {
                let (x, y) = buffers.split_at_mut(peer);
                (&mut x[r], &mut y[0])
            };
            let (ps, pl) = (pre_start[peer], pre_size[peer]);
            a[ps..ps + pl].copy_from_slice(&b[ps..ps + pl]);
            let (rs, rl) = (pre_start[r], pre_size[r]);
            b[rs..rs + rl].copy_from_slice(&a[rs..rs + rl]);
            // Merged range is the union (contiguous by construction).
            let lo = pre_start[r].min(pre_start[peer]);
            let total = pre_size[r] + pre_size[peer];
            start[r] = lo;
            size[r] = total;
            start[peer] = lo;
            size[peer] = total;
        }
        dist *= 2;
    }
    buffers
}

/// Latency model for halving–doubling: `2 log₂ n` rounds; round `k` of the
/// halving phase moves `M/2^(k+1)` bytes.
///
/// `T(n) = 2(n-1)/n · M/B + 2 log₂(n) · α` — same bandwidth term as the
/// ring, fewer latency terms. With chunked pipelining the ring hides its
/// extra hops, which is why both families coexist in NCCL.
pub fn halving_doubling_secs(
    model_bytes: u64,
    n: usize,
    link_bytes_per_sec: f64,
    hop_latency_secs: f64,
) -> f64 {
    assert!(link_bytes_per_sec > 0.0, "bandwidth must be positive");
    if n <= 1 {
        return 0.0;
    }
    assert!(n.is_power_of_two(), "halving-doubling needs a power-of-two count");
    let nf = n as f64;
    let bw = 2.0 * (nf - 1.0) / nf * model_bytes as f64 / link_bytes_per_sec;
    let rounds = 2.0 * (nf.log2());
    bw + rounds * hop_latency_secs
}

/// Bytes each node transmits during halving–doubling — equal to the ring's
/// per-link volume, confirming both are bandwidth-optimal.
pub fn halving_doubling_bytes_per_node(model_bytes: u64, n: usize) -> f64 {
    ring_bytes_per_link(model_bytes, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::ring_all_reduce;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_buffers(n: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn matches_serial_sum() {
        for n in [1usize, 2, 4, 8, 16] {
            let bufs = random_buffers(n, 40, n as u64);
            let mut want = vec![0.0f32; 40];
            for b in &bufs {
                for (w, v) in want.iter_mut().zip(b) {
                    *w += v;
                }
            }
            for got in halving_doubling_all_reduce(bufs) {
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-4, "{g} vs {w}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_ring() {
        let bufs = random_buffers(8, 57, 3);
        let ring = ring_all_reduce(bufs.clone());
        let hd = halving_doubling_all_reduce(bufs);
        for (a, b) in ring.iter().zip(&hd) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn odd_lengths_and_tiny_buffers() {
        for len in [1usize, 3, 7, 13] {
            let bufs = random_buffers(4, len, len as u64);
            let mut want = vec![0.0f32; len];
            for b in &bufs {
                for (w, v) in want.iter_mut().zip(b) {
                    *w += v;
                }
            }
            for got in halving_doubling_all_reduce(bufs) {
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        halving_doubling_all_reduce(random_buffers(6, 8, 0));
    }

    #[test]
    fn latency_model_tradeoff() {
        // Same bandwidth term as the ring; fewer latency terms at scale.
        let m = 97_500_000u64;
        let b = 300e9;
        let alpha = 2e-6; // a fat per-hop latency to expose the difference
        let ring = crate::RingModel {
            link_bytes_per_sec: b,
            hop_latency_secs: alpha,
            chunk_bytes: 4096,
        };
        let hd = halving_doubling_secs(m, 256, b, alpha);
        let rg = ring.allreduce_secs(m, 256);
        assert!(hd < rg, "fewer rounds should win at high hop latency: {hd} vs {rg}");
        // Bandwidth-volume equality.
        assert_eq!(
            halving_doubling_bytes_per_node(m, 64),
            crate::ring::ring_bytes_per_link(m, 64)
        );
    }
}

//! Synchronization-pattern latency models beyond the ring: sharded
//! parameter servers and pairwise all-to-all exchange, plus the
//! [`SyncModel`] dispatcher the server simulator drives.
//!
//! The ring all-reduce ([`crate::model::RingModel`]) stays the paper's
//! pattern; these models give the workload DSL its `ParameterServer` and
//! `AllToAll` alternatives on the same accelerator fabric (same per-link
//! bandwidth and hop latency), so a sync-pattern comparison isolates the
//! *algorithm*, not the wires:
//!
//! * **Parameter server** (Parameter-Box-style): gradients shard across
//!   `s` server endpoints; every worker pushes its full `M` bytes (each
//!   shard absorbing an `n·M/s`-byte incast) and pulls fresh weights back.
//!   Latency `2·n·M/(s·B) + 2 hops` — *grows linearly in `n`* instead of
//!   saturating, which is exactly why the paper's ring wins at scale.
//! * **All-to-all**: each of `n` peers exchanges an `M/n` slice with every
//!   other peer (embedding-style synchronization). Per-link traffic is
//!   `(n-1)·M/n` — like the ring's reduce-scatter half without the
//!   all-gather, so it saturates near **1×** the 2-node full-exchange
//!   latency rather than the ring's 2×.
//!
//! All three models take the *survivor count* as `n`, so fault-plan ring
//! re-formation generalizes: after a dropout the pattern re-forms over the
//! survivors (a parameter server also loses any shards hosted on the
//! failed endpoints — `s` is capped at the survivor count).

use serde::{Deserialize, Serialize};
use trainbox_sim::SimTime;

use crate::model::RingModel;

/// Sharded parameter-server synchronization latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsModel {
    /// Per-direction link bandwidth toward a shard, bytes/s.
    pub link_bytes_per_sec: f64,
    /// Per-hop propagation + switch latency, seconds.
    pub hop_latency_secs: f64,
    /// Parameter shards (server endpoints). Capped at the worker count at
    /// evaluation time: a 2-worker job cannot spread over 16 shards.
    pub shards: usize,
}

impl PsModel {
    /// The default shard count used when a workload declares
    /// `ParameterServer` without elaboration.
    pub const DEFAULT_SHARDS: usize = 16;

    /// A parameter-server model on the same fabric as `ring`.
    pub fn on_fabric(ring: &RingModel, shards: usize) -> Self {
        PsModel {
            link_bytes_per_sec: ring.link_bytes_per_sec,
            hop_latency_secs: ring.hop_latency_secs,
            shards: shards.max(1),
        }
    }

    /// Push+pull latency for `model_bytes` of gradients across `n`
    /// workers. Zero for `n <= 1` (a lone worker updates in place).
    pub fn sync_secs(&self, model_bytes: u64, n: usize) -> f64 {
        assert!(self.link_bytes_per_sec > 0.0, "bandwidth must be positive");
        if n <= 1 {
            return 0.0;
        }
        let shards = self.shards.min(n).max(1) as f64;
        // Each shard's link carries n workers' slices (M/s bytes each) in
        // the push incast, then the same volume back out on the pull.
        let per_phase =
            (n as f64) * (model_bytes as f64 / shards) / self.link_bytes_per_sec
                + self.hop_latency_secs;
        2.0 * per_phase
    }

    /// Phase boundaries (push complete, pull complete) as offsets from the
    /// start of the exchange. Empty for `n <= 1`.
    pub fn steps(&self, model_bytes: u64, n: usize) -> Vec<f64> {
        if n <= 1 {
            return Vec::new();
        }
        let total = self.sync_secs(model_bytes, n);
        vec![total / 2.0, total]
    }
}

/// Pairwise all-to-all exchange latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllToAllModel {
    /// Per-direction link bandwidth, bytes/s.
    pub link_bytes_per_sec: f64,
    /// Per-hop propagation + switch latency, seconds.
    pub hop_latency_secs: f64,
}

impl AllToAllModel {
    /// An all-to-all model on the same fabric as `ring`.
    pub fn on_fabric(ring: &RingModel) -> Self {
        AllToAllModel {
            link_bytes_per_sec: ring.link_bytes_per_sec,
            hop_latency_secs: ring.hop_latency_secs,
        }
    }

    /// Full-exchange latency for `model_bytes` across `n` peers: `n-1`
    /// rounds, each moving an `M/n`-byte slice over every link plus one
    /// hop. Zero for `n <= 1`.
    pub fn sync_secs(&self, model_bytes: u64, n: usize) -> f64 {
        assert!(self.link_bytes_per_sec > 0.0, "bandwidth must be positive");
        if n <= 1 {
            return 0.0;
        }
        let nf = n as f64;
        let rounds = nf - 1.0;
        rounds * ((model_bytes as f64 / nf) / self.link_bytes_per_sec + self.hop_latency_secs)
    }

    /// Per-round boundaries (uniform partition of the total). Empty for
    /// `n <= 1`.
    pub fn steps(&self, model_bytes: u64, n: usize) -> Vec<f64> {
        if n <= 1 {
            return Vec::new();
        }
        let total = self.sync_secs(model_bytes, n);
        let rounds = n - 1;
        let per = total / rounds as f64;
        (1..=rounds).map(|i| per * i as f64).collect()
    }
}

/// The synchronization model a server drives for one workload: the
/// declared pattern bound to the server's fabric.
///
/// The `Ring` arm **delegates verbatim** to [`RingModel`] — same calls,
/// same floating-point expressions — so a legacy ring workload's DES and
/// analytic results are bit-identical to the pre-DSL code path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncModel {
    /// The paper's chunked ring all-reduce.
    Ring(RingModel),
    /// Sharded parameter servers (push + pull).
    Ps(PsModel),
    /// Pairwise all-to-all exchange.
    AllToAll(AllToAllModel),
}

impl SyncModel {
    /// Synchronization latency in seconds across `n` participants (the
    /// survivor count under faults).
    pub fn sync_secs(&self, model_bytes: u64, n: usize) -> f64 {
        match self {
            SyncModel::Ring(m) => m.allreduce_secs(model_bytes, n),
            SyncModel::Ps(m) => m.sync_secs(model_bytes, n),
            SyncModel::AllToAll(m) => m.sync_secs(model_bytes, n),
        }
    }

    /// Same, as a [`SimTime`] for the simulator.
    pub fn sync_time(&self, model_bytes: u64, n: usize) -> SimTime {
        match self {
            SyncModel::Ring(m) => m.allreduce_time(model_bytes, n),
            SyncModel::Ps(m) => SimTime::from_secs_f64(m.sync_secs(model_bytes, n)),
            SyncModel::AllToAll(m) => SimTime::from_secs_f64(m.sync_secs(model_bytes, n)),
        }
    }

    /// Per-step boundaries for trace spans (offsets from the start of the
    /// exchange; the last boundary is the total). The simulator's timing
    /// uses only [`Self::sync_time`]; these feed the trace layer.
    pub fn steps(&self, model_bytes: u64, n: usize) -> Vec<f64> {
        match self {
            SyncModel::Ring(m) => m.allreduce_steps(model_bytes, n),
            SyncModel::Ps(m) => m.steps(model_bytes, n),
            SyncModel::AllToAll(m) => m.steps(model_bytes, n),
        }
    }

    /// Trace-span name of the whole exchange (the ring keeps its
    /// historical `"allreduce"` label so legacy traces are unchanged).
    pub fn span_label(&self) -> &'static str {
        match self {
            SyncModel::Ring(_) => "allreduce",
            SyncModel::Ps(_) => "ps_sync",
            SyncModel::AllToAll(_) => "a2a_sync",
        }
    }

    /// Trace-span name of one step of the exchange.
    pub fn step_label(&self) -> &'static str {
        match self {
            SyncModel::Ring(_) => "ring_step",
            SyncModel::Ps(_) => "ps_step",
            SyncModel::AllToAll(_) => "a2a_step",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> RingModel {
        RingModel::nvlink_default()
    }

    const M: u64 = 97_500_000; // ResNet-50-sized gradients

    #[test]
    fn ring_arm_is_bit_identical_to_the_ring_model() {
        let ring = fabric();
        let sync = SyncModel::Ring(ring);
        for n in [0usize, 1, 2, 7, 64, 256] {
            assert_eq!(sync.sync_secs(M, n).to_bits(), ring.allreduce_secs(M, n).to_bits());
            assert_eq!(sync.sync_time(M, n), ring.allreduce_time(M, n));
            assert_eq!(sync.steps(M, n), ring.allreduce_steps(M, n));
        }
        assert_eq!(sync.span_label(), "allreduce");
        assert_eq!(sync.step_label(), "ring_step");
    }

    #[test]
    fn parameter_server_grows_linearly_while_the_ring_saturates() {
        let ps = PsModel::on_fabric(&fabric(), PsModel::DEFAULT_SHARDS);
        let ring = fabric();
        let t64 = ps.sync_secs(M, 64);
        let t256 = ps.sync_secs(M, 256);
        // Linear in n once shards saturate: 4x the workers, ~4x the incast.
        assert!((t256 / t64 - 4.0).abs() < 0.05, "ratio {}", t256 / t64);
        // The ring saturates, so at scale PS loses badly — the Fig-2b
        // argument for the ring, reproduced from the other side.
        assert!(t256 > 5.0 * ring.allreduce_secs(M, 256));
        assert_eq!(ps.sync_secs(M, 1), 0.0);
        assert_eq!(ps.sync_secs(M, 0), 0.0);
    }

    #[test]
    fn parameter_server_shards_cap_at_the_survivor_count() {
        let ps = PsModel::on_fabric(&fabric(), 16);
        // With 2 workers only 2 shards can hold parameters; the incast per
        // shard is 2 workers × M/2 — the same as 1 worker × M.
        let two = ps.sync_secs(M, 2);
        let direct = 2.0 * (2.0 * (M as f64 / 2.0) / 300e9 + 100e-9);
        assert!((two - direct).abs() < 1e-12, "{two} vs {direct}");
        // More shards than DEFAULT never hurt small n: capped identically.
        let wide = PsModel::on_fabric(&fabric(), 4096);
        assert_eq!(wide.sync_secs(M, 2), two);
    }

    #[test]
    fn all_to_all_saturates_below_the_ring() {
        let a2a = AllToAllModel::on_fabric(&fabric());
        let ring = fabric();
        // Per-link traffic is (n-1)/n · M vs the ring's 2(n-1)/n · M: at
        // scale the full exchange costs about half an all-reduce.
        let a = a2a.sync_secs(M, 256);
        let r = ring.allreduce_secs(M, 256);
        assert!(a < r, "a2a {a} should undercut the ring {r}");
        assert!(a > 0.4 * r, "but only by about half: {}", a / r);
        assert_eq!(a2a.sync_secs(M, 1), 0.0);
    }

    #[test]
    fn step_boundaries_partition_the_totals() {
        for sync in [
            SyncModel::Ps(PsModel::on_fabric(&fabric(), 8)),
            SyncModel::AllToAll(AllToAllModel::on_fabric(&fabric())),
        ] {
            for n in [2usize, 5, 16] {
                let steps = sync.steps(M, n);
                assert!(!steps.is_empty());
                let total = sync.sync_secs(M, n);
                assert!((steps.last().unwrap() - total).abs() < 1e-12 * total.max(1.0));
                for w in steps.windows(2) {
                    assert!(w[1] > w[0]);
                }
            }
            assert!(sync.steps(M, 1).is_empty());
        }
    }

    #[test]
    fn survivor_reformation_shrinks_every_pattern() {
        // Dropping survivors must never *increase* sync latency for PS
        // (smaller incast) or A2A (fewer rounds); the ring's fill term
        // shrinks too.
        for sync in [
            SyncModel::Ring(fabric()),
            SyncModel::Ps(PsModel::on_fabric(&fabric(), 16)),
            SyncModel::AllToAll(AllToAllModel::on_fabric(&fabric())),
        ] {
            let full = sync.sync_secs(M, 64);
            let degraded = sync.sync_secs(M, 48);
            assert!(degraded <= full, "{sync:?}: {degraded} > {full}");
        }
    }
}

//! Analytic latency model of the chunked ring all-reduce (Fig 2b).
//!
//! The paper's synchronization model (§VI-A: *"we carefully built a
//! performance model based on the ring communication and assumed an
//! NVLink-like interface"*) is a chunked ring: `2(n-1)` pipeline steps, each
//! moving a `M/n`-byte segment over every link, with a per-hop cost paid per
//! chunk during pipeline fill:
//!
//! ```text
//! T(n) = 2(n-1) · (M/n)/B      (bandwidth term — saturates at 2M/B)
//!      + 2(n-1) · (α + c/B)    (pipeline-fill term — per-hop latency)
//! ```
//!
//! With 4 KB chunks on an NVLink-class fabric the fill term is small, so the
//! latency normalized to `T(2)` rises from 1 toward ~2 and flattens — the
//! exact shape of Figure 2b.

use serde::{Deserialize, Serialize};
use trainbox_sim::SimTime;

/// Chunked-ring all-reduce latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingModel {
    /// Per-direction link bandwidth of the accelerator fabric, bytes/s.
    pub link_bytes_per_sec: f64,
    /// Per-hop propagation + switch latency, seconds.
    pub hop_latency_secs: f64,
    /// Pipeline chunk size, bytes (the paper uses 4 KB).
    pub chunk_bytes: u64,
}

impl RingModel {
    /// The paper's working configuration: 300 GB/s NVLink-class links,
    /// 100 ns per hop, 4 KB chunks.
    pub fn nvlink_default() -> Self {
        RingModel {
            link_bytes_per_sec: 300e9,
            hop_latency_secs: 100e-9,
            chunk_bytes: 4096,
        }
    }

    /// All-reduce latency for `model_bytes` of gradients over `n`
    /// accelerators. Zero for `n <= 1`.
    ///
    /// # Panics
    ///
    /// Panics if the model's bandwidth is not positive.
    pub fn allreduce_secs(&self, model_bytes: u64, n: usize) -> f64 {
        assert!(self.link_bytes_per_sec > 0.0, "bandwidth must be positive");
        if n <= 1 {
            return 0.0;
        }
        let nf = n as f64;
        let steps = 2.0 * (nf - 1.0);
        let bandwidth_term = steps * (model_bytes as f64 / nf) / self.link_bytes_per_sec;
        let fill_term = steps
            * (self.hop_latency_secs + self.chunk_bytes as f64 / self.link_bytes_per_sec);
        bandwidth_term + fill_term
    }

    /// Same, as a [`SimTime`] for the simulator.
    pub fn allreduce_time(&self, model_bytes: u64, n: usize) -> SimTime {
        SimTime::from_secs_f64(self.allreduce_secs(model_bytes, n))
    }

    /// Per-step time boundaries of the `2(n-1)`-step ring, as offsets from
    /// the start of the all-reduce: element `i` is when step `i` completes.
    ///
    /// The chunked ring spends the same time in every step — each moves an
    /// `M/n`-byte segment over every link and pays one hop fill — so the
    /// boundaries are a uniform partition of [`RingModel::allreduce_secs`];
    /// the last boundary equals the total latency (up to rounding). Empty for
    /// `n <= 1`. This feeds per-step collective spans in the trace layer; the
    /// simulator's aggregate timing uses only the total, so tracing cannot
    /// perturb results.
    pub fn allreduce_steps(&self, model_bytes: u64, n: usize) -> Vec<f64> {
        if n <= 1 {
            return Vec::new();
        }
        let total = self.allreduce_secs(model_bytes, n);
        let steps = 2 * (n - 1);
        let per_step = total / steps as f64;
        (1..=steps).map(|i| per_step * i as f64).collect()
    }

    /// Latency normalized to the two-accelerator latency — the y-axis of
    /// Figure 2b.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (the normalization base needs two accelerators).
    pub fn normalized_latency(&self, model_bytes: u64, n: usize) -> f64 {
        assert!(n >= 2, "normalization requires n >= 2");
        self.allreduce_secs(model_bytes, n) / self.allreduce_secs(model_bytes, 2)
    }

    /// The Figure 2b series: normalized latency at each accelerator count.
    pub fn figure_2b_series(&self, model_bytes: u64, counts: &[usize]) -> Vec<(usize, f64)> {
        counts
            .iter()
            .map(|&n| (n, self.normalized_latency(model_bytes, n.max(2))))
            .collect()
    }
}

/// Latency of a binomial-tree all-reduce (reduce to a root, then broadcast):
/// `2·⌈log₂ n⌉` rounds, each moving the full gradient over one link. This is
/// the pre-ring baseline the paper's Fig 3 "+Synch. Optimization" step
/// replaces; unlike the ring it does **not** saturate — per-link traffic
/// stays `O(M log n)`.
pub fn tree_allreduce_secs(
    model_bytes: u64,
    n: usize,
    link_bytes_per_sec: f64,
    hop_latency_secs: f64,
) -> f64 {
    assert!(link_bytes_per_sec > 0.0, "bandwidth must be positive");
    if n <= 1 {
        return 0.0;
    }
    let rounds = (n as f64).log2().ceil();
    2.0 * rounds * (model_bytes as f64 / link_bytes_per_sec + hop_latency_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RingModel {
        RingModel::nvlink_default()
    }

    #[test]
    fn tree_grows_with_log_n_and_loses_to_ring() {
        let m = 97_500_000u64;
        let b = 300e9;
        let t2 = tree_allreduce_secs(m, 2, b, 1e-6);
        let t256 = tree_allreduce_secs(m, 256, b, 1e-6);
        assert!((t256 / t2 - 8.0).abs() < 0.01, "log ratio");
        // At scale the ring is far cheaper than the tree on the same links.
        let ring = model().allreduce_secs(m, 256);
        assert!(ring < t256 / 2.0, "ring={ring} tree={t256}");
        assert_eq!(tree_allreduce_secs(m, 1, b, 0.0), 0.0);
    }

    #[test]
    fn zero_for_single_accelerator() {
        assert_eq!(model().allreduce_secs(100_000_000, 1), 0.0);
        assert_eq!(model().allreduce_secs(100_000_000, 0), 0.0);
    }

    #[test]
    fn two_node_latency_is_model_over_bandwidth_plus_fill() {
        let m = model();
        let bytes = 300_000_000u64; // exactly 1 ms of link time at 300 GB/s
        let t = m.allreduce_secs(bytes, 2);
        // 2(n-1)/n = 1 -> bandwidth term = 1.0 ms; fill negligible.
        assert!((t - 1.0e-3).abs() < 1e-6, "t={t}");
    }

    #[test]
    fn figure_2b_saturates_near_two() {
        // ResNet-50-sized model: 97.5 MB.
        let m = model();
        let bytes = 97_500_000u64;
        let series = m.figure_2b_series(bytes, &[2, 4, 8, 16, 32, 64, 128, 256]);
        assert!((series[0].1 - 1.0).abs() < 1e-9);
        // Monotone nondecreasing.
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        let last = series.last().unwrap().1;
        assert!(last > 1.8, "should approach 2x: {last}");
        assert!(last < 2.5, "paper's axis tops at 2.5: {last}");
    }

    #[test]
    fn latency_grows_sublinearly() {
        // Doubling accelerators far less than doubles latency at scale.
        let m = model();
        let bytes = 548_000_000u64; // VGG-19
        let t64 = m.allreduce_secs(bytes, 64);
        let t128 = m.allreduce_secs(bytes, 128);
        assert!(t128 / t64 < 1.1);
    }

    #[test]
    fn step_boundaries_partition_the_total() {
        let m = model();
        let bytes = 97_500_000u64;
        for n in [2usize, 4, 16] {
            let steps = m.allreduce_steps(bytes, n);
            assert_eq!(steps.len(), 2 * (n - 1));
            let total = m.allreduce_secs(bytes, n);
            assert!((steps.last().unwrap() - total).abs() < 1e-12 * total.max(1.0));
            for w in steps.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
        assert!(m.allreduce_steps(bytes, 1).is_empty());
        assert!(m.allreduce_steps(bytes, 0).is_empty());
    }

    #[test]
    fn sim_time_conversion() {
        let m = model();
        let t = m.allreduce_time(300_000_000, 2);
        assert!((t.as_secs_f64() - 1.0e-3).abs() < 1e-6);
    }

    #[test]
    fn consistent_with_real_ring_traffic() {
        // The model's bandwidth term equals bytes-per-link / bandwidth.
        let m = model();
        let bytes = 10_000_000u64;
        for n in [2usize, 8, 64] {
            let traffic = crate::ring::ring_bytes_per_link(bytes, n);
            let bw_term = traffic / m.link_bytes_per_sec;
            let full = m.allreduce_secs(bytes, n);
            assert!(full >= bw_term);
            assert!(full - bw_term < 1e-3, "fill term should be small");
        }
    }
}

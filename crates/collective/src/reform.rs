//! Ring re-formation after accelerator loss.
//!
//! When an accelerator drops out of a training server, the remaining
//! participants must keep synchronizing: the ring is *re-formed* over the
//! survivors by splicing the dead rank's neighbors together. The re-formed
//! ring is a smaller instance of the same chunked algorithm, so its latency
//! is exactly [`crate::RingModel::allreduce_secs`] evaluated at the survivor
//! count — the property the degraded-mode simulator relies on.

use crate::ring::ring_all_reduce;

/// The ranks that remain in ring order after dropouts.
///
/// Ring order is inherited from the original ring: survivors keep their
/// relative order, and each survivor's right-hand neighbor becomes the next
/// surviving rank (wrapping). Returns an empty vector if nobody survives.
pub fn surviving_ring(alive: &[bool]) -> Vec<usize> {
    alive
        .iter()
        .enumerate()
        .filter_map(|(rank, &a)| a.then_some(rank))
        .collect()
}

/// All-reduce over the survivors of a degraded ring.
///
/// `buffers[r]` is the gradient buffer of original rank `r`; `alive[r]` says
/// whether that rank still participates. The reduction runs the real
/// threaded ring over the spliced ring and returns `(original_rank, summed
/// buffer)` per survivor, in ring order. Dead ranks contribute nothing —
/// their gradients are lost with the device, exactly as in a real dropout.
///
/// # Panics
///
/// Panics if `buffers` and `alive` have different lengths, if no rank
/// survives, or if the survivors' buffers have mismatched lengths.
pub fn reformed_ring_all_reduce(
    buffers: Vec<Vec<f32>>,
    alive: &[bool],
) -> Vec<(usize, Vec<f32>)> {
    assert_eq!(buffers.len(), alive.len(), "one alive flag per rank");
    let ring = surviving_ring(alive);
    assert!(!ring.is_empty(), "at least one rank must survive");
    let mut pool: Vec<Option<Vec<f32>>> = buffers.into_iter().map(Some).collect();
    let survivors: Vec<Vec<f32>> = ring
        .iter()
        // invariant: `surviving_ring` returns each alive rank exactly once,
        // so no slot is taken twice.
        .map(|&r| pool[r].take().expect("rank appears once in the ring"))
        .collect();
    let reduced = ring_all_reduce(survivors);
    ring.into_iter().zip(reduced).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splices_out_dead_ranks_in_order() {
        let alive = [true, false, true, true, false, true];
        assert_eq!(surviving_ring(&alive), vec![0, 2, 3, 5]);
        assert!(surviving_ring(&[false, false]).is_empty());
    }

    #[test]
    fn reformed_ring_sums_only_survivors() {
        let buffers = vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0], // dies
            vec![4.0, 40.0],
            vec![8.0, 80.0],
        ];
        let alive = [true, false, true, true];
        let out = reformed_ring_all_reduce(buffers, &alive);
        assert_eq!(out.len(), 3);
        for (rank, buf) in &out {
            assert!([0usize, 2, 3].contains(rank));
            assert_eq!(buf.as_slice(), &[13.0, 130.0]);
        }
    }

    #[test]
    fn single_survivor_keeps_its_own_gradients() {
        let out = reformed_ring_all_reduce(
            vec![vec![1.0], vec![7.0], vec![3.0]],
            &[false, true, false],
        );
        assert_eq!(out, vec![(1, vec![7.0])]);
    }

    #[test]
    #[should_panic(expected = "at least one rank must survive")]
    fn total_loss_rejected() {
        reformed_ring_all_reduce(vec![vec![1.0]], &[false]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn matches_serial_sum_over_survivors(
            vals in proptest::collection::vec(
                proptest::collection::vec(-8.0f32..8.0, 6),
                1..7,
            ),
            mask_seed in 0u32..64,
        ) {
            let n = vals.len();
            let mut alive: Vec<bool> =
                (0..n).map(|r| (mask_seed >> (r % 6)) & 1 == 1).collect();
            // Guarantee a survivor so the call is well-formed.
            if alive.iter().all(|&a| !a) {
                alive[0] = true;
            }
            let expect: Vec<f32> = (0..6)
                .map(|i| {
                    (0..n)
                        .filter(|&r| alive[r])
                        .map(|r| vals[r][i])
                        .sum()
                })
                .collect();
            let out = reformed_ring_all_reduce(vals.clone(), &alive);
            prop_assert_eq!(out.len(), alive.iter().filter(|&&a| a).count());
            for (_, buf) in &out {
                for (got, want) in buf.iter().zip(&expect) {
                    prop_assert!((got - want).abs() < 1e-3, "{got} vs {want}");
                }
            }
        }
    }
}

//! Golden tests pinning the canonical request serialization and hash.
//!
//! The canonical JSON and FNV-1a hash of a [`SimRequest`] are the service's
//! cache/coalescing key and the provenance (`config_hash`) stamped on every
//! response. They must not drift across refactors: a silent change would
//! invalidate every cached result and break response comparability between
//! versions. Each wire spelling below is parsed and checked byte-for-byte
//! against `tests/golden/simrequest.json`.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```sh
//! TRAINBOX_REGEN_GOLDEN=1 cargo test -p trainbox-core --test request_golden
//! ```
//!
//! [`SimRequest`]: trainbox_core::request::SimRequest

use serde::Serialize;
use trainbox_core::request::SimRequest;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/simrequest.json");

/// The wire spellings under test. Spellings that ask the same question are
/// grouped under one name and must produce one canonical form.
fn wire_cases() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            "minimal_analytic",
            vec![
                r#"{"server": {"kind": "TrainBox", "n_accels": 256}, "workload": "Resnet-50"}"#,
                // Key order, casing of the workload name, explicit nulls and
                // defaults — all the same question.
                r#"{"workload": "RESNET-50", "trace": false, "sim": "Analytic",
                    "server": {"batch_size": null, "n_accels": 256, "kind": "TrainBox"}}"#,
                // The same workload as an inline spec object: the legacy
                // name is nothing but a preset for this spelling, so the
                // canonical form (and hence the cache key) must not differ.
                r#"{"server": {"kind": "TrainBox", "n_accels": 256},
                    "workload": {"name": "Resnet-50", "kind": "Cnn", "input": "Image",
                                 "task": "Image classification", "batch_size": 8192,
                                 "model_mbytes": 97.5, "accel_samples_per_sec": 7431.0}}"#,
            ],
        ),
        (
            "batch_override",
            vec![
                r#"{"server": {"kind": "Baseline", "n_accels": 256, "batch_size": 8192},
                    "workload": "Resnet-50"}"#,
            ],
        ),
        (
            "pooled_trainbox",
            vec![
                r#"{"server": {"kind": "TrainBox", "n_accels": 64, "pool_fpgas": 8},
                    "workload": "RNN-S"}"#,
            ],
        ),
        (
            "des_with_trace",
            vec![
                r#"{"server": {"kind": "TrainBoxNoPool", "n_accels": 16, "batch_size": 512},
                    "workload": "Inception-v4",
                    "sim": {"Des": {"chunk_samples": 128, "batches": 10, "warmup_batches": 4,
                                    "prefetch_batches": 1, "max_events": 10000000,
                                    "reference_allocator": false}},
                    "trace": true}"#,
            ],
        ),
        (
            "faulted_des",
            vec![
                r#"{"server": {"kind": "Baseline", "n_accels": 16, "batch_size": 512},
                    "workload": "Inception-v4",
                    "sim": {"Des": {"chunk_samples": 128, "batches": 10, "warmup_batches": 4,
                                    "prefetch_batches": 1, "max_events": 10000000,
                                    "reference_allocator": false}},
                    "faults": {"events": [
                        {"at_secs": 0.25, "kind": {"SsdStall": {"ssd": 0, "secs": 0.1}}},
                        {"at_secs": 0.5, "kind": {"AccelDropout": {"acc": 3}}}]}}"#,
            ],
        ),
        (
            "custom_ring",
            vec![
                r#"{"server": {"kind": "TrainBox", "n_accels": 128,
                               "ring": {"link_bytes_per_sec": 3e11,
                                        "hop_latency_secs": 1e-7, "chunk_bytes": 4096}},
                    "workload": "TF-SR"}"#,
            ],
        ),
        // ----- DSL-era cases, appended: the six rows above predate the
        // workload DSL and their canonical bytes and hashes must never move.
        (
            "llm_preset_by_name",
            vec![
                r#"{"server": {"kind": "TrainBox", "n_accels": 256}, "workload": "LLM-7B"}"#,
                // Case-insensitive, like every legacy name.
                r#"{"server": {"kind": "TrainBox", "n_accels": 256}, "workload": "llm-7b"}"#,
            ],
        ),
        (
            "recsys_alltoall",
            vec![r#"{"server": {"kind": "TrainBox", "n_accels": 256}, "workload": "DLRM"}"#],
        ),
        (
            "mixed_tenancy",
            vec![
                r#"{"server": {"kind": "TrainBox", "n_accels": 256},
                    "workload": "Mixed-RN50-TFSR"}"#,
            ],
        ),
        (
            "inline_custom_spec",
            vec![
                r#"{"server": {"kind": "TrainBox", "n_accels": 64},
                    "workload": {"name": "My-PS-Net", "kind": "Transformer", "input": "Text",
                                 "task": "Custom", "batch_size": 1024, "model_mbytes": 512.0,
                                 "accel_samples_per_sec": 1200.0, "sync": "ParameterServer",
                                 "stages": {"stages": [
                                   {"name": "read", "class": "SsdRead",
                                    "cost": {"HostCpuSecs": 1e-5}, "bytes_in": 4096,
                                    "bytes_out": 4096},
                                   {"name": "tokenize", "class": "Formatting",
                                    "cost": {"HostCpuSecs": 1e-3}, "bytes_in": 4096,
                                    "bytes_out": 2048, "parallelism": 4,
                                    "after": ["read"]}]}}}"#,
            ],
        ),
    ]
}

#[derive(Serialize)]
struct GoldenCase {
    name: String,
    canonical: String,
    hash: String,
}

fn compute_cases() -> Vec<GoldenCase> {
    wire_cases()
        .into_iter()
        .map(|(name, spellings)| {
            let parsed: Vec<SimRequest> = spellings
                .iter()
                .map(|wire| {
                    SimRequest::from_json_str(wire)
                        .unwrap_or_else(|e| panic!("case {name}: wire does not parse: {e}"))
                })
                .collect();
            for (req, wire) in parsed.iter().zip(&spellings).skip(1) {
                assert_eq!(
                    req.canonical_json(),
                    parsed[0].canonical_json(),
                    "case {name}: respelling {wire} must normalize identically"
                );
            }
            GoldenCase {
                name: name.to_string(),
                canonical: parsed[0].canonical_json(),
                hash: parsed[0].hash_hex(),
            }
        })
        .collect()
}

#[test]
fn canonical_form_and_hash_match_the_committed_golden() {
    let computed = compute_cases();
    if std::env::var_os("TRAINBOX_REGEN_GOLDEN").is_some() {
        let doc = serde_json::to_string_pretty(&computed).unwrap();
        std::fs::write(GOLDEN_PATH, doc + "\n").unwrap();
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }
    let committed = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden/simrequest.json is committed; regenerate with TRAINBOX_REGEN_GOLDEN=1");
    let committed = trainbox_sim::json::parse(&committed).expect("golden file parses");
    let rows = committed.as_array().expect("golden file is an array");
    assert_eq!(rows.len(), computed.len(), "case count changed; regenerate the golden file");
    for (row, case) in rows.iter().zip(&computed) {
        let name = row.get("name").and_then(|v| v.as_str()).expect("name");
        assert_eq!(name, case.name, "case order changed; regenerate the golden file");
        let canonical = row.get("canonical").and_then(|v| v.as_str()).expect("canonical");
        let hash = row.get("hash").and_then(|v| v.as_str()).expect("hash");
        assert_eq!(
            case.canonical, canonical,
            "case {name}: canonical serialization drifted — this invalidates \
             every cached result keyed on it"
        );
        assert_eq!(case.hash, hash, "case {name}: canonical hash drifted");
    }
}

#[test]
fn canonical_json_reparses_to_an_equal_request() {
    for case in compute_cases() {
        let again = SimRequest::from_json_str(&case.canonical)
            .unwrap_or_else(|e| panic!("case {}: canonical form must reparse: {e}", case.name));
        assert_eq!(
            again.canonical_json(),
            case.canonical,
            "case {}: canonical form must be a fixed point",
            case.name
        );
    }
}

#[test]
fn all_golden_hashes_are_distinct() {
    let cases = compute_cases();
    for (i, a) in cases.iter().enumerate() {
        for b in &cases[i + 1..] {
            assert_ne!(a.hash, b.hash, "{} and {} collide", a.name, b.name);
        }
    }
}

//! Property tests: [`SimRequest::run`] answers every question exactly as
//! the legacy free functions it replaced.
//!
//! The request API is the one canonical entry point; the deprecated
//! `simulate`/`simulate_with_faults` wrappers and the direct
//! `Server::throughput` path must remain behaviorally identical to it —
//! same `SimResult` field for field, same `Throughput` — across all three
//! server kinds, or cached service answers would diverge from the figure
//! binaries that produced `results/`.

#![allow(deprecated)]

use proptest::prelude::any;
use proptest::proptest;
use proptest::test_runner::ProptestConfig;
use trainbox_core::arch::ServerKind;
use trainbox_core::faults::{FaultDomain, FaultPlan};
use trainbox_core::pipeline::{simulate, simulate_with_faults, SimConfig};
use trainbox_core::request::{SimOutcome, SimRequest};
use trainbox_nn::Workload;

const KINDS: [ServerKind; 3] =
    [ServerKind::Baseline, ServerKind::TrainBoxNoPool, ServerKind::TrainBox];

fn quick_cfg() -> SimConfig {
    SimConfig {
        chunk_samples: 64,
        batches: 6,
        warmup_batches: 2,
        prefetch_batches: 1,
        max_events: 10_000_000,
        reference_allocator: false,
        parallel_workers: 0,
    }
}

/// A DES request sized to finish quickly: small accelerator counts and a
/// batch the chunking divides evenly.
fn des_request(kind: ServerKind, n_accels: usize, batch: u64) -> SimRequest {
    let mut req = SimRequest::des(kind, n_accels, Workload::inception_v4(), quick_cfg());
    req.server.batch_size = Some(batch);
    req
}

fn des_result(req: &SimRequest) -> trainbox_core::pipeline::SimResult {
    let resp = req.run().unwrap_or_else(|e| panic!("request must run: {e}"));
    match resp.outcome {
        SimOutcome::Des(result) => result,
        other => panic!("DES request produced a non-DES outcome: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Analytic requests: for ANY server kind, scale, and Table-I workload,
    /// `run()` reports exactly `Server::throughput` — bottleneck, ceilings,
    /// and all.
    #[test]
    fn analytic_run_equals_server_throughput(
        kind_idx in 0usize..3,
        n_exp in 3u32..9,
        w_idx in 0usize..7,
    ) {
        let kind = KINDS[kind_idx];
        let n = 1usize << n_exp;
        let w = Workload::all().swap_remove(w_idx);
        let req = SimRequest::analytic(kind, n, w.clone());
        let server = req.build_server().expect("valid configuration");
        let resp = req.run().expect("analytic request runs");
        let SimOutcome::Analytic(got) = resp.outcome else {
            panic!("analytic request produced a DES outcome");
        };
        proptest::prop_assert_eq!(got, server.throughput(&w));
        proptest::prop_assert_eq!(resp.config_hash, req.hash_hex());
    }

    /// Fault-free DES: `run()` reproduces the deprecated `simulate` result
    /// exactly across kinds, scales, and batch sizes.
    #[test]
    fn des_run_equals_legacy_simulate(
        kind_idx in 0usize..3,
        n_idx in 0usize..3,
        batch_idx in 0usize..2,
    ) {
        let kind = KINDS[kind_idx];
        let n = [8usize, 16, 32][n_idx];
        let batch = [256u64, 512][batch_idx];
        let req = des_request(kind, n, batch);
        let server = req.build_server().expect("valid configuration");
        let legacy = simulate(&server, &Workload::inception_v4(), &quick_cfg());
        proptest::prop_assert_eq!(des_result(&req), legacy);
    }

    /// A deadline the run comfortably beats changes NOTHING: the timed
    /// answer equals the untimed one field for field, and the deadline is
    /// invisible to the canonical form (one cache entry for both
    /// spellings). This is the byte-identity guarantee the figure
    /// regeneration leans on.
    #[test]
    fn generous_deadline_is_byte_identical_to_no_deadline(
        kind_idx in 0usize..3,
        n_idx in 0usize..3,
    ) {
        let kind = KINDS[kind_idx];
        let n = [8usize, 16, 32][n_idx];
        let untimed = des_request(kind, n, 512);
        let timed = untimed.clone().with_deadline_ms(600_000);
        proptest::prop_assert_eq!(untimed.canonical_json(), timed.canonical_json());
        proptest::prop_assert_eq!(untimed.canonical_hash(), timed.canonical_hash());
        proptest::prop_assert_eq!(des_result(&untimed), des_result(&timed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Faulted DES: for ANY seeded storm, attaching the plan to the request
    /// reproduces the deprecated `simulate_with_faults` result exactly —
    /// degraded-mode accounting included.
    #[test]
    fn faulted_des_run_equals_legacy_simulate_with_faults(
        seed in any::<u64>(),
        kind_idx in 0usize..3,
        faults_per_run in 0u64..8,
    ) {
        let kind = KINDS[kind_idx];
        let mut req = des_request(kind, 16, 512);
        let server = req.build_server().expect("valid configuration");
        let w = Workload::inception_v4();

        // Seed the storm from the healthy run's horizon and link count, the
        // same way the figure binaries do.
        let healthy = simulate(&server, &w, &quick_cfg());
        let horizon = healthy.batch_done_at.last().unwrap().as_secs_f64();
        let domain = FaultDomain {
            n_ssds: server.topology().ssds.len(),
            n_preps: server.topology().preps.len(),
            n_accels: server.n_accels(),
            n_links: healthy.link_bytes.len(),
            horizon_secs: horizon,
        };
        let plan = FaultPlan::seeded(seed, faults_per_run as f64 / horizon, &domain);

        let legacy = simulate_with_faults(&server, &w, &quick_cfg(), &plan);
        req.faults = Some(plan);
        proptest::prop_assert_eq!(des_result(&req), legacy);
    }
}

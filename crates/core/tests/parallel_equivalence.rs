//! The parallel cluster engine against its sequential reference: for any
//! worker count, any server design, any seed, and any seeded fault storm,
//! the parallel runner must produce the **byte-identical** `ClusterResult`
//! and the identical `TraceSummary` rollup. Same discipline as the
//! allocator's `max_min_rates_ref` twin: the sequential path is the spec,
//! the parallel path is the optimization, and equivalence is property, not
//! hope.

use proptest::prelude::*;
use trainbox_core::arch::ServerKind;
use trainbox_core::faults::{FaultDomain, FaultPlan};
use trainbox_core::pipeline::{fault_domain, SimConfig};
use trainbox_core::request::{SimError, SimRequest, SimOutcome};
use trainbox_core::scaleout::ClusterSpec;
use trainbox_nn::Workload;

fn quick_cfg(workers: usize) -> SimConfig {
    SimConfig {
        chunk_samples: 128,
        batches: 4,
        warmup_batches: 1,
        prefetch_batches: 1,
        max_events: 5_000_000,
        reference_allocator: false,
        parallel_workers: workers,
    }
}

/// A small cluster request: 3 servers of 4 accelerators, reduced batch so
/// each case stays fast, optionally under a seeded fault storm (which the
/// engine replays on server 0).
fn cluster_request(kind: ServerKind, workers: usize, storm_seed: Option<u64>) -> SimRequest {
    let mut req = SimRequest::des(kind, 4, Workload::rnn_s(), quick_cfg(workers))
        .with_cluster(ClusterSpec::rack_default(3));
    req.server.batch_size = Some(64);
    req.trace = true;
    if let Some(seed) = storm_seed {
        let server = req.build_server().expect("valid server");
        // `fault_domain` leaves the horizon open; bound it near the run's
        // simulated length so storms actually land mid-run.
        let domain = FaultDomain { horizon_secs: 0.02, ..fault_domain(&server) };
        req.faults = Some(FaultPlan::seeded(seed, 4.0 / 0.02, &domain));
    }
    req
}

fn run_to_bytes(req: &SimRequest) -> (String, String) {
    let resp = req.run().unwrap_or_else(|e| panic!("cluster run must succeed: {e}"));
    let SimOutcome::Cluster(result) = &resp.outcome else {
        panic!("expected a cluster DES outcome");
    };
    let result_bytes = serde_json::to_string(result).expect("result serializes");
    let summary_bytes =
        serde_json::to_string(resp.trace.as_ref().expect("traced run returns a summary"))
            .expect("summary serializes");
    (result_bytes, summary_bytes)
}

proptest! {
    // Each case runs a sequential reference plus a parallel run; keep the
    // case count modest so the suite stays in CI budget.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Workers 2, 3, or 8 (more workers than servers included) reproduce
    /// the sequential reference bit-for-bit — results *and* trace rollups,
    /// healthy *and* under fault storms, on every server design.
    #[test]
    fn parallel_cluster_matches_sequential_reference(
        kind_idx in 0usize..3,
        workers_idx in 0usize..3,
        with_storm in any::<bool>(),
        seed in 0u64..1024,
    ) {
        let kind = [ServerKind::Baseline, ServerKind::TrainBoxNoPool, ServerKind::TrainBox]
            [kind_idx];
        let workers = [2usize, 3, 8][workers_idx];
        let storm_seed = with_storm.then_some(seed);
        let reference = run_to_bytes(&cluster_request(kind, 0, storm_seed));
        let sequential_one = run_to_bytes(&cluster_request(kind, 1, storm_seed));
        let parallel = run_to_bytes(&cluster_request(kind, workers, storm_seed));
        prop_assert_eq!(&reference, &sequential_one, "workers=1 must be the reference");
        prop_assert_eq!(&reference, &parallel, "workers={} diverged", workers);
    }
}

/// An already-expired deadline fails with the typed `DeadlineExceeded` —
/// no panic, no deadlock — whether the servers advance sequentially or on
/// worker threads.
#[test]
fn expired_deadline_is_typed_at_any_worker_count() {
    for workers in [0usize, 4] {
        let req = cluster_request(ServerKind::TrainBoxNoPool, workers, Some(7))
            .with_deadline_ms(0);
        let err = req.run().expect_err("a 0 ms deadline must trip");
        assert!(
            matches!(err, SimError::DeadlineExceeded { .. }),
            "workers={workers}: {err:?}"
        );
        assert!(!err.is_client_error());
    }
}

//! The parallel engines against their sequential references: for any worker
//! count, any server design, any seed, and any seeded fault storm, the
//! parallel runners — one LP per server in a cluster, one LP per lane
//! inside a single server — must produce the **byte-identical** result and
//! the identical `TraceSummary` rollup. Same discipline as the allocator's
//! `max_min_rates_ref` twin: the sequential path is the spec, the parallel
//! path is the optimization, and equivalence is property, not hope.

use proptest::prelude::*;
use trainbox_core::arch::ServerKind;
use trainbox_core::faults::{FaultDomain, FaultKind, FaultPlan};
use trainbox_core::pipeline::{fault_domain, SimConfig};
use trainbox_core::request::{SimError, SimRequest, SimOutcome};
use trainbox_core::scaleout::ClusterSpec;
use trainbox_nn::Workload;

fn quick_cfg(workers: usize) -> SimConfig {
    SimConfig {
        chunk_samples: 128,
        batches: 4,
        warmup_batches: 1,
        prefetch_batches: 1,
        max_events: 5_000_000,
        reference_allocator: false,
        parallel_workers: workers,
    }
}

/// A small cluster request: 3 servers of 4 accelerators, reduced batch so
/// each case stays fast, optionally under a seeded fault storm (which the
/// engine replays on server 0).
fn cluster_request(kind: ServerKind, workers: usize, storm_seed: Option<u64>) -> SimRequest {
    let mut req = SimRequest::des(kind, 4, Workload::rnn_s(), quick_cfg(workers))
        .with_cluster(ClusterSpec::rack_default(3));
    req.server.batch_size = Some(64);
    req.trace = true;
    if let Some(seed) = storm_seed {
        let server = req.build_server().expect("valid server");
        // `fault_domain` leaves the horizon open; bound it near the run's
        // simulated length so storms actually land mid-run.
        let domain = FaultDomain { horizon_secs: 0.02, ..fault_domain(&server) };
        req.faults = Some(FaultPlan::seeded(seed, 4.0 / 0.02, &domain));
    }
    req
}

fn run_to_bytes(req: &SimRequest) -> (String, String) {
    let resp = req.run().unwrap_or_else(|e| panic!("cluster run must succeed: {e}"));
    let SimOutcome::Cluster(result) = &resp.outcome else {
        panic!("expected a cluster DES outcome");
    };
    let result_bytes = serde_json::to_string(result).expect("result serializes");
    let summary_bytes =
        serde_json::to_string(resp.trace.as_ref().expect("traced run returns a summary"))
            .expect("summary serializes");
    (result_bytes, summary_bytes)
}

/// A single-server request at a lane-partitionable scale (8 accelerators =
/// 2 lanes for `TrainBoxNoPool`), optionally under a seeded storm.
///
/// With `lane_safe`, the storm is filtered to lane-local fault kinds (SSD
/// stalls, prep slowdowns, link degrades) so the intra-server partition
/// stays eligible and the run exercises the lane runner *with* faults; an
/// unfiltered storm usually contains a crash or dropout and exercises the
/// single-engine fallback instead. Both must be worker-invariant.
fn solo_request(
    kind: ServerKind,
    workers: usize,
    storm_seed: Option<u64>,
    lane_safe: bool,
) -> SimRequest {
    let mut req = SimRequest::des(kind, 8, Workload::rnn_s(), quick_cfg(workers));
    req.server.batch_size = Some(64);
    req.trace = true;
    if let Some(seed) = storm_seed {
        let server = req.build_server().expect("valid server");
        let domain = FaultDomain { horizon_secs: 0.02, ..fault_domain(&server) };
        let mut plan = FaultPlan::seeded(seed, 4.0 / 0.02, &domain);
        if lane_safe {
            plan.events.retain(|ev| {
                matches!(
                    ev.kind,
                    FaultKind::SsdStall { .. }
                        | FaultKind::PrepSlowdown { .. }
                        | FaultKind::LinkDegrade { .. }
                )
            });
        }
        req.faults = Some(plan);
    }
    req
}

fn run_solo_to_bytes(req: &SimRequest) -> (String, String) {
    let resp = req.run().unwrap_or_else(|e| panic!("solo run must succeed: {e}"));
    let SimOutcome::Des(result) = &resp.outcome else {
        panic!("expected a single-server DES outcome");
    };
    let result_bytes = serde_json::to_string(result).expect("result serializes");
    let summary_bytes =
        serde_json::to_string(resp.trace.as_ref().expect("traced run returns a summary"))
            .expect("summary serializes");
    (result_bytes, summary_bytes)
}

proptest! {
    // Each case runs a sequential reference plus a parallel run; keep the
    // case count modest so the suite stays in CI budget.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Workers 2, 3, or 8 (more workers than servers included) reproduce
    /// the sequential reference bit-for-bit — results *and* trace rollups,
    /// healthy *and* under fault storms, on every server design.
    #[test]
    fn parallel_cluster_matches_sequential_reference(
        kind_idx in 0usize..3,
        workers_idx in 0usize..3,
        with_storm in any::<bool>(),
        seed in 0u64..1024,
    ) {
        let kind = [ServerKind::Baseline, ServerKind::TrainBoxNoPool, ServerKind::TrainBox]
            [kind_idx];
        let workers = [2usize, 3, 8][workers_idx];
        let storm_seed = with_storm.then_some(seed);
        let reference = run_to_bytes(&cluster_request(kind, 0, storm_seed));
        let sequential_one = run_to_bytes(&cluster_request(kind, 1, storm_seed));
        let parallel = run_to_bytes(&cluster_request(kind, workers, storm_seed));
        prop_assert_eq!(&reference, &sequential_one, "workers=1 must be the reference");
        prop_assert_eq!(&reference, &parallel, "workers={} diverged", workers);
    }

    /// The intra-server lane runner under the same contract: a single-server
    /// DES — lane-partitioned for eligible `(kind, plan)`, single-engine
    /// otherwise — reproduces the `workers = 0` reference bit-for-bit at
    /// workers 2, 3, and 8, healthy and under storms, with and without a
    /// (generous) wall-clock deadline attached.
    #[test]
    fn parallel_single_server_matches_sequential_reference(
        kind_idx in 0usize..3,
        workers_idx in 0usize..3,
        with_storm in any::<bool>(),
        lane_safe in any::<bool>(),
        with_deadline in any::<bool>(),
        seed in 0u64..1024,
    ) {
        let kind = [ServerKind::Baseline, ServerKind::TrainBoxNoPool, ServerKind::TrainBox]
            [kind_idx];
        let workers = [2usize, 3, 8][workers_idx];
        let storm_seed = with_storm.then_some(seed);
        let with_deadline = |req: SimRequest| {
            // Generous enough to never fire: the deadline plumbing must not
            // perturb results while it is merely armed.
            if with_deadline { req.with_deadline_ms(120_000) } else { req }
        };
        let reference =
            run_solo_to_bytes(&with_deadline(solo_request(kind, 0, storm_seed, lane_safe)));
        let sequential_one =
            run_solo_to_bytes(&with_deadline(solo_request(kind, 1, storm_seed, lane_safe)));
        let parallel =
            run_solo_to_bytes(&with_deadline(solo_request(kind, workers, storm_seed, lane_safe)));
        prop_assert_eq!(&reference, &sequential_one, "workers=1 must be the reference");
        prop_assert_eq!(&reference, &parallel, "workers={} diverged", workers);
    }
}

/// An already-expired deadline fails with the typed `DeadlineExceeded` —
/// no panic, no deadlock — whether the servers advance sequentially or on
/// worker threads.
#[test]
fn expired_deadline_is_typed_at_any_worker_count() {
    for workers in [0usize, 4] {
        let req = cluster_request(ServerKind::TrainBoxNoPool, workers, Some(7))
            .with_deadline_ms(0);
        let err = req.run().expect_err("a 0 ms deadline must trip");
        assert!(
            matches!(err, SimError::DeadlineExceeded { .. }),
            "workers={workers}: {err:?}"
        );
        assert!(!err.is_client_error());
    }
}

/// Same typed failure for the intra-server lane runner: an expired deadline
/// on an eligible single-server run trips cleanly at any worker count.
#[test]
fn solo_expired_deadline_is_typed_at_any_worker_count() {
    for workers in [0usize, 4] {
        let req = solo_request(ServerKind::TrainBoxNoPool, workers, None, false)
            .with_deadline_ms(0);
        let err = req.run().expect_err("a 0 ms deadline must trip");
        assert!(
            matches!(err, SimError::DeadlineExceeded { .. }),
            "workers={workers}: {err:?}"
        );
        assert!(!err.is_client_error());
    }
}

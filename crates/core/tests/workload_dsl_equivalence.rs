//! The workload DSL against the Table-I constants it replaces: lowering a
//! legacy preset through the stage-graph DSL must be *undetectable* — the
//! analytic model and the DES answer byte-identically whether the workload
//! carries its flat calibration or the explicit graph `lower_legacy`
//! produces from it. Same discipline as the parallel-engine equivalence
//! suite: the flat path is the spec, the graph path is the generalization,
//! and equivalence is property, not hope. The second half pins the new
//! sync-pattern models (parameter server, all-to-all) to the
//! `parallel_workers: 0 ≡ N` contract the ring already obeys.

use proptest::prelude::*;
use trainbox_core::arch::{ServerConfig, ServerKind};
use trainbox_core::faults::{FaultDomain, FaultPlan};
use trainbox_core::pipeline::{fault_domain, SimConfig};
use trainbox_core::request::{SimOutcome, SimRequest};
use trainbox_core::{analytic, lower_legacy};
use trainbox_nn::{SyncPattern, Workload};

const KINDS: [ServerKind; 3] =
    [ServerKind::Baseline, ServerKind::TrainBoxNoPool, ServerKind::TrainBox];

/// `w` with its own calibration spelled out as an explicit stage graph.
fn lowered(w: &Workload) -> Workload {
    let mut lw = w.clone();
    lw.stages = Some(lower_legacy(w));
    lw.validate().expect("lowered presets validate");
    lw
}

fn quick_cfg(workers: usize) -> SimConfig {
    SimConfig {
        chunk_samples: 128,
        batches: 4,
        warmup_batches: 1,
        prefetch_batches: 1,
        max_events: 5_000_000,
        reference_allocator: false,
        parallel_workers: workers,
    }
}

/// A fast single-server DES request, optionally under a seeded fault storm.
fn des_request(
    kind: ServerKind,
    workload: Workload,
    workers: usize,
    storm_seed: Option<u64>,
) -> SimRequest {
    let mut req = SimRequest::des(kind, 8, workload, quick_cfg(workers));
    req.server.batch_size = Some(64);
    req.trace = true;
    if let Some(seed) = storm_seed {
        let server = req.build_server().expect("valid server");
        let domain = FaultDomain { horizon_secs: 0.02, ..fault_domain(&server) };
        req.faults = Some(FaultPlan::seeded(seed, 4.0 / 0.02, &domain));
    }
    req
}

fn run_des_to_bytes(req: &SimRequest) -> (String, String) {
    let resp = req.run().unwrap_or_else(|e| panic!("DES run must succeed: {e}"));
    let SimOutcome::Des(result) = &resp.outcome else {
        panic!("expected a single-server DES outcome");
    };
    let result_bytes = serde_json::to_string(result).expect("result serializes");
    let summary_bytes =
        serde_json::to_string(resp.trace.as_ref().expect("traced run returns a summary"))
            .expect("summary serializes");
    (result_bytes, summary_bytes)
}

proptest! {
    // Every case runs a reference and a graph-path twin (and a DES pair);
    // a modest case count keeps the suite inside CI budget.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Analytic model: throughput and the full latency decomposition are
    /// bit-identical between a Table-I preset and its lowered graph on
    /// every server design at any accelerator count.
    #[test]
    fn lowered_presets_match_flat_analytic_bitwise(
        preset_idx in 0usize..7,
        kind_idx in 0usize..3,
        accel_exp in 3u32..9, // 8..256
    ) {
        let flat = Workload::all()[preset_idx].clone();
        let graph = lowered(&flat);
        let server = ServerConfig::new(KINDS[kind_idx], 1usize << accel_exp).build();

        let tp_flat = server.throughput(&flat);
        let tp_graph = server.throughput(&graph);
        prop_assert_eq!(
            tp_flat.samples_per_sec.to_bits(),
            tp_graph.samples_per_sec.to_bits(),
            "{}: throughput diverged ({} vs {})",
            flat.name, tp_flat.samples_per_sec, tp_graph.samples_per_sec
        );
        prop_assert_eq!(tp_flat.bottleneck, tp_graph.bottleneck, "bottleneck diverged");

        let lat_flat = serde_json::to_string(&analytic::latency_decomposition(&server, &flat))
            .expect("decomposition serializes");
        let lat_graph = serde_json::to_string(&analytic::latency_decomposition(&server, &graph))
            .expect("decomposition serializes");
        prop_assert_eq!(lat_flat, lat_graph, "latency decomposition diverged");
    }

    /// DES: the event-driven engine answers byte-identically (result and
    /// trace rollup) for a preset and its lowered graph, healthy and under
    /// seeded fault storms, on every server design.
    #[test]
    fn lowered_presets_match_flat_des_bytewise(
        preset_idx in 0usize..7,
        kind_idx in 0usize..3,
        with_storm in any::<bool>(),
        seed in 0u64..1024,
    ) {
        let flat = Workload::all()[preset_idx].clone();
        let graph = lowered(&flat);
        let storm_seed = with_storm.then_some(seed);
        let a = run_des_to_bytes(&des_request(KINDS[kind_idx], flat, 0, storm_seed));
        let b = run_des_to_bytes(&des_request(KINDS[kind_idx], graph, 0, storm_seed));
        prop_assert_eq!(&a, &b, "DES diverged between flat and lowered");
    }

    /// The sync-pattern models obey the worker-count contract the ring
    /// established: for every pattern, `parallel_workers: 0`, `1`, and `N`
    /// produce byte-identical DES results, healthy and under storms.
    #[test]
    fn sync_patterns_are_worker_count_invariant(
        pattern_idx in 0usize..3,
        kind_idx in 0usize..3,
        workers_idx in 0usize..3,
        with_storm in any::<bool>(),
        seed in 0u64..1024,
    ) {
        let mut w = Workload::rnn_s();
        w.sync = [SyncPattern::RingAllReduce, SyncPattern::ParameterServer, SyncPattern::AllToAll]
            [pattern_idx];
        let workers = [2usize, 3, 8][workers_idx];
        let storm_seed = with_storm.then_some(seed);
        let reference =
            run_des_to_bytes(&des_request(KINDS[kind_idx], w.clone(), 0, storm_seed));
        let sequential_one =
            run_des_to_bytes(&des_request(KINDS[kind_idx], w.clone(), 1, storm_seed));
        let parallel =
            run_des_to_bytes(&des_request(KINDS[kind_idx], w.clone(), workers, storm_seed));
        prop_assert_eq!(&reference, &sequential_one, "workers=1 must be the reference");
        prop_assert_eq!(&reference, &parallel, "workers={} diverged", workers);
    }
}

/// The DSL families run end to end through the DES — and the mixed-tenancy
/// preset reports per-tenant fairness statistics in its `SimResult`.
#[test]
fn dsl_families_simulate_and_mixed_reports_tenancy() {
    for w in [Workload::llm(), Workload::recsys(), Workload::video(), Workload::mixed()] {
        let name = w.name.clone();
        let tenanted = !w.tenants.is_empty();
        let req = des_request(ServerKind::TrainBox, w, 0, None);
        let resp = req.run().unwrap_or_else(|e| panic!("{name}: DES run must succeed: {e}"));
        let SimOutcome::Des(result) = &resp.outcome else {
            panic!("{name}: expected a single-server DES outcome");
        };
        assert!(result.samples_per_sec > 0.0, "{name}: no throughput");
        match &result.tenancy {
            Some(t) => {
                assert!(tenanted, "{name}: tenancy stats on a single-tenant workload");
                assert_eq!(t.tenants.len(), 2, "{name}");
                let share: f64 = t.tenants.iter().map(|s| s.share).sum();
                assert!((share - 1.0).abs() < 1e-9, "{name}: shares sum to {share}");
                assert!(t.jain_fairness > 0.0 && t.jain_fairness <= 1.0 + 1e-9, "{name}");
                for s in &t.tenants {
                    assert!(s.slowdown >= 1.0 - 1e-9, "{name}: tenant {} speeds up?", s.name);
                }
            }
            None => assert!(!tenanted, "{name}: tenancy stats missing"),
        }
    }
}

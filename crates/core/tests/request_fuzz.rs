//! Adversarial fuzzing of the request API: [`SimRequest::from_json_str`]
//! must answer every byte stream — arbitrary text, truncated canonical
//! JSON, bit-flipped canonical JSON — with `Ok` or a typed `Err`, never a
//! panic. Whatever parses must also hash and re-serialize without panicking
//! (the serving layer calls both on every request).

use proptest::prelude::*;
use trainbox_core::arch::ServerKind;
use trainbox_core::pipeline::SimConfig;
use trainbox_core::request::SimRequest;
use trainbox_nn::Workload;

/// Exercise everything the serve tier does to a parsed request short of
/// running it.
fn parse_and_probe(text: &str) {
    if let Ok(req) = SimRequest::from_json_str(text) {
        let _ = req.canonical_hash();
        let _ = req.canonical_json();
    }
}

/// A full-featured valid request to mutate: DES mode, faults, trace, and a
/// deadline, so flips can corrupt every section.
fn valid_text() -> String {
    let mut req = SimRequest::des(
        ServerKind::TrainBox,
        16,
        Workload::resnet50(),
        SimConfig { batches: 4, warmup_batches: 1, ..SimConfig::default() },
    )
    .with_deadline_ms(250);
    req.trace = true;
    // canonical_json excludes deadline_ms by design; splice it back in so
    // the fuzzer also mutates the deadline field's wire form.
    let canonical = req.canonical_json();
    format!("{{\"deadline_ms\":250,{}", &canonical[1..])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_text_never_panics(
        chars in proptest::collection::vec(32u8..127, 0..512),
    ) {
        let text = String::from_utf8(chars).expect("printable ASCII");
        parse_and_probe(&text);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        parse_and_probe(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn truncated_canonical_json_never_panics(cut in 0usize..600) {
        let mut text = valid_text();
        text.truncate(cut.min(text.len()));
        parse_and_probe(&text);
    }

    #[test]
    fn bit_flipped_canonical_json_never_panics(
        flips in proptest::collection::vec((0usize..600, 0u8..8), 1..10),
    ) {
        let mut bytes = valid_text().into_bytes();
        let n = bytes.len();
        for (pos, bit) in flips {
            bytes[pos % n] ^= 1 << bit;
        }
        parse_and_probe(&String::from_utf8_lossy(&bytes));
    }
}

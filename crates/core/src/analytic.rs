//! Latency decomposition: Figures 3 and 9.
//!
//! With next-batch prefetching, the *visible* per-batch latency is
//! `max(prep, compute + sync)`, but Figures 3 and 9 plot the decomposition
//! of the un-overlapped step times — how long each step takes on its own —
//! because that ratio is what reveals the bottleneck shift.

use crate::arch::Server;
use crate::calib::cpu_fractions;
use serde::{Deserialize, Serialize};
use trainbox_collective::model::tree_allreduce_secs;
use trainbox_collective::RingModel;
use trainbox_nn::Workload;

/// Per-batch step times, seconds (for the whole server to ingest one global
/// batch of `n × batch` samples).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepLatencies {
    /// Data transfer share of preparation (SSD reads + loads).
    pub data_transfer: f64,
    /// Data formatting share of preparation.
    pub data_formatting: f64,
    /// Data augmentation share of preparation.
    pub data_augmentation: f64,
    /// Model computation.
    pub model_computation: f64,
    /// Model synchronization.
    pub model_synchronization: f64,
}

impl StepLatencies {
    /// Total data-preparation time.
    pub fn preparation(&self) -> f64 {
        self.data_transfer + self.data_formatting + self.data_augmentation
    }

    /// Total of the overlapped "others" (compute + sync).
    pub fn others(&self) -> f64 {
        self.model_computation + self.model_synchronization
    }

    /// Preparation share of the total, in `[0, 1]` (the Fig 9 y-axis).
    pub fn prep_share(&self) -> f64 {
        let total = self.preparation() + self.others();
        if total == 0.0 {
            0.0
        } else {
            self.preparation() / total
        }
    }

    /// As percentages in figure-legend order.
    pub fn percentages(&self) -> [(&'static str, f64); 5] {
        let total = self.preparation() + self.others();
        let pct = |v: f64| if total == 0.0 { 0.0 } else { 100.0 * v / total };
        [
            ("Data transfer", pct(self.data_transfer)),
            ("Data formatting", pct(self.data_formatting)),
            ("Data augmentation", pct(self.data_augmentation)),
            ("Model computation", pct(self.model_computation)),
            ("Model synchronization", pct(self.model_synchronization)),
        ]
    }
}

/// Figure 9: step-latency decomposition of `workload` on `server`.
pub fn latency_decomposition(server: &Server, workload: &Workload) -> StepLatencies {
    let workload = &crate::profile::effective_workload(workload);
    let n = server.n_accels();
    let batch = server.batch_for(workload);
    let global_batch = n as f64 * batch as f64;

    // Preparation time for one global batch at the server's prep rate.
    let prep_rate = server
        .throughput(workload)
        .ceilings
        .iter()
        .filter(|(b, _)| *b != crate::arch::Bottleneck::Accelerators)
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    let prep_secs = global_batch / prep_rate;
    // Split preparation by operation class: transfer = IO-ish classes.
    let f = crate::profile::PrepProfile::of(workload).fractions;
    let transfer_frac = f.ssd_read + f.data_load + f.others;

    let t_comp = batch as f64
        / (workload.accel_samples_per_sec
            * crate::calib::batch_efficiency(batch, workload.batch_size));
    let t_sync = server
        .sync_model(workload)
        .sync_secs(workload.model_bytes(), n);

    StepLatencies {
        data_transfer: prep_secs * transfer_frac,
        data_formatting: prep_secs * f.formatting,
        data_augmentation: prep_secs * f.augmentation,
        model_computation: t_comp,
        model_synchronization: t_sync,
    }
}

/// One stage of the Figure 3 progression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure3Stage {
    /// Stage label as printed under the figure.
    pub label: &'static str,
    /// Step latencies at this stage (ResNet-50).
    pub steps: StepLatencies,
}

/// Figure 3: how successive accelerator/interconnect/algorithm advances
/// shift the bottleneck into data preparation, for ResNet-50.
///
/// * **Current** — 8 Titan XP class GPUs (≈230 sample/s each) on PCIe Gen3,
///   tree-based synchronization over PCIe;
/// * **+HW accelerator** — 256 TPU v3-8 class accelerators, still PCIe +
///   tree synchronization;
/// * **+ICN** — NVLink-class 300 GB/s fabric, still tree synchronization;
/// * **+Synch. Optimization** — ring-based reduction on the same fabric.
///
/// Preparation stays the 48-core CPU baseline throughout; "others" shrinks
/// by orders of magnitude, which is exactly the paper's point — at the last
/// stage preparation is ~55× the rest ("54.9× longer" in §I).
pub fn figure3_stages() -> Vec<Figure3Stage> {
    let w = Workload::resnet50();
    let batch = w.batch_size;
    let f = cpu_fractions(w.input);
    let transfer_frac = f.ssd_read + f.data_load + f.others;
    // The 48-core baseline prepares ~30.6k samples/s regardless of stage.
    let prep_rate = 48.0 / crate::calib::cpu_secs_per_sample(w.input);
    let pcie = 16e9;
    let nvlink = 300e9;
    let titan_xp_rate = 230.0;
    let hop = 1e-6;
    let ring = RingModel { link_bytes_per_sec: nvlink, hop_latency_secs: 100e-9, chunk_bytes: 4096 };

    let stage = |label, n: usize, per_acc: f64, sync_secs: f64| {
        let global = n as f64 * batch as f64;
        let prep = global / prep_rate;
        Figure3Stage {
            label,
            steps: StepLatencies {
                data_transfer: prep * transfer_frac,
                data_formatting: prep * f.formatting,
                data_augmentation: prep * f.augmentation,
                model_computation: batch as f64 / per_acc,
                model_synchronization: sync_secs,
            },
        }
    };

    vec![
        stage(
            "Current",
            8,
            titan_xp_rate,
            tree_allreduce_secs(w.model_bytes(), 8, pcie, hop),
        ),
        stage(
            "+HW accelerator",
            256,
            w.accel_samples_per_sec,
            tree_allreduce_secs(w.model_bytes(), 256, pcie, hop),
        ),
        stage(
            "+ICN",
            256,
            w.accel_samples_per_sec,
            tree_allreduce_secs(w.model_bytes(), 256, nvlink, hop),
        ),
        stage(
            "+Synch. Optimization",
            256,
            w.accel_samples_per_sec,
            ring.allreduce_secs(w.model_bytes(), 256),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ServerConfig, ServerKind};

    #[test]
    fn fig9_prep_dominates_at_scale() {
        // §III-B2: "data preparation accounts for 98.1% of the total latency"
        // on average across the seven workloads at 256 accelerators.
        let mut shares = Vec::new();
        for w in Workload::all() {
            let s = ServerConfig::new(ServerKind::Baseline, 256).build();
            let d = latency_decomposition(&s, &w);
            shares.push(d.prep_share());
        }
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        assert!((mean - 0.981).abs() < 0.02, "mean prep share = {mean}");
        for s in shares {
            assert!(s > 0.9, "every workload is prep-dominated: {s}");
        }
    }

    #[test]
    fn fig9_percentages_sum_to_100() {
        let s = ServerConfig::new(ServerKind::Baseline, 256).build();
        let d = latency_decomposition(&s, &Workload::vgg19());
        let sum: f64 = d.percentages().iter().map(|(_, v)| v).sum();
        assert!((sum - 100.0).abs() < 1e-6);
        // Formatting is the largest preparation slice (Fig 9/11).
        assert!(d.data_formatting > d.data_augmentation);
        assert!(d.data_formatting > d.data_transfer);
    }

    #[test]
    fn fig3_progression_shifts_bottleneck() {
        let stages = figure3_stages();
        assert_eq!(stages.len(), 4);
        // Prep share grows monotonically across stages.
        let shares: Vec<f64> = stages.iter().map(|s| s.steps.prep_share()).collect();
        for w in shares.windows(2) {
            assert!(w[1] >= w[0], "shares must grow: {shares:?}");
        }
        // Stage 1 ("Current"): others dominate.
        assert!(shares[0] < 0.5, "current is compute-bound: {}", shares[0]);
        // Final stage: prep is tens of times the others (§I reports 54.9x;
        // our CPU-cost anchor from Fig 10a puts it at ~62x — same regime,
        // recorded in EXPERIMENTS.md).
        let last = &stages[3].steps;
        let ratio = last.preparation() / last.others();
        assert!((45.0..75.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn trainbox_restores_balance() {
        // On TrainBox the preparation share collapses back below the others.
        let w = Workload::inception_v4();
        let s = ServerConfig::new(ServerKind::TrainBox, 256).build();
        let d = latency_decomposition(&s, &w);
        assert!(d.prep_share() < 0.6, "share={}", d.prep_share());
    }
}

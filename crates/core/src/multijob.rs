//! Multi-job training and prep-pool sharing.
//!
//! Footnote 2 of the paper: scale-up servers can host multiple training
//! jobs; §V-D adds that *"if a single TrainBox rack serves multiple jobs or
//! some train boxes are unused, we can leverage FPGAs in underutilized train
//! boxes as a prep-pool"* because workloads demand different amounts of
//! preparation (Fig 10). This module implements that scheduler: partition a
//! rack's train boxes among jobs, compute each partition's FPGA surplus or
//! deficit, and route surplus FPGA capacity (over the Ethernet prep network)
//! to the jobs that need it.

use crate::calib::ETHERNET_BYTES_PER_SEC;
use crate::initializer;
use serde::{Deserialize, Serialize};
use trainbox_nn::Workload;
use trainbox_pcie::boxes::{ACCS_PER_TRAIN_BOX, PREPS_PER_TRAIN_BOX};

/// One job's slice of the rack.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobPlacement {
    /// Workload the job trains.
    pub workload: Workload,
    /// Train boxes assigned.
    pub boxes: usize,
}

impl JobPlacement {
    /// Place `workload` on `boxes` train boxes.
    ///
    /// # Panics
    ///
    /// Panics if `boxes` is zero.
    pub fn new(workload: Workload, boxes: usize) -> Self {
        assert!(boxes > 0, "a job needs at least one train box");
        JobPlacement { workload, boxes }
    }

    /// Accelerators in this placement.
    pub fn accels(&self) -> usize {
        self.boxes * ACCS_PER_TRAIN_BOX
    }

    /// In-box prep FPGAs in this placement.
    pub fn fpgas(&self) -> usize {
        self.boxes * PREPS_PER_TRAIN_BOX
    }
}

/// The outcome for one job after pool balancing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Workload name.
    pub workload: String,
    /// Preparation demand at the accelerator target, samples/s.
    pub demand: f64,
    /// In-box FPGA supply, samples/s.
    pub local_supply: f64,
    /// Samples/s borrowed from (negative: lent to) the shared pool.
    pub borrowed: f64,
    /// Achieved preparation throughput, samples/s.
    pub achieved: f64,
}

impl JobOutcome {
    /// Fraction of the demand met, in `[0, 1]`.
    pub fn satisfaction(&self) -> f64 {
        (self.achieved / self.demand).min(1.0)
    }
}

/// The rack-level balancing result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackPlan {
    /// Per-job outcomes, in placement order.
    pub jobs: Vec<JobOutcome>,
    /// Total surplus FPGA throughput offered to the pool, samples/s
    /// (normalized per-donor workload rates).
    pub surplus_offered: f64,
    /// Total deficit requested from the pool, samples/s.
    pub deficit_requested: f64,
}

/// Balance a rack shared by `jobs`: each job first uses its own boxes'
/// FPGAs; jobs with surplus lend it to the pool, jobs with deficits draw
/// from the pool (bounded by their Ethernet links), deficits served
/// proportionally when the pool is short.
///
/// Surplus lent by a donor job is expressed in the *borrower's* sample rate
/// by converting through FPGA-time: a donor FPGA second spent preparing the
/// borrower's input type delivers the borrower's per-FPGA rate.
pub fn balance_rack(jobs: &[JobPlacement]) -> RackPlan {
    // Per-job demand and local capability.
    struct Tmp {
        demand: f64,
        local: f64,
        fpga_rate: f64,
        eth_cap: f64,
        name: String,
    }
    let tmp: Vec<Tmp> = jobs
        .iter()
        .map(|j| {
            let server = crate::arch::ServerConfig::new(
                crate::arch::ServerKind::TrainBoxNoPool,
                j.accels(),
            )
            .build();
            let plan = initializer::plan(&server, &j.workload, 0);
            let profile = crate::profile::PrepProfile::of(&j.workload);
            let fpga_rate = profile.fpga_samples_per_sec;
            let eth_cap = j.fpgas() as f64 * ETHERNET_BYTES_PER_SEC
                / profile.ethernet_bytes_per_offloaded_sample();
            Tmp {
                demand: plan.required_prep_rate,
                local: plan.in_box_prep_rate,
                fpga_rate,
                eth_cap,
                name: j.workload.name.to_string(),
            }
        })
        .collect();

    // Surplus and deficit in FPGA-seconds per second (device-time currency).
    let mut surplus_devs = 0.0f64;
    let mut deficits: Vec<f64> = Vec::with_capacity(jobs.len());
    for t in &tmp {
        if t.local >= t.demand {
            surplus_devs += (t.local - t.demand) / t.fpga_rate;
            deficits.push(0.0);
        } else {
            // Deficit in device-time, bounded by what Ethernet can carry.
            let want = (t.demand - t.local).min(t.eth_cap);
            deficits.push(want / t.fpga_rate);
        }
    }
    let total_deficit: f64 = deficits.iter().sum();
    let fill = if total_deficit <= surplus_devs || total_deficit == 0.0 {
        1.0
    } else {
        surplus_devs / total_deficit
    };

    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut surplus_offered = 0.0;
    let mut deficit_requested = 0.0;
    for (t, &deficit_devs) in tmp.iter().zip(&deficits) {
        let borrowed = deficit_devs * fill * t.fpga_rate;
        let lent_devs = if t.local > t.demand { (t.local - t.demand) / t.fpga_rate } else { 0.0 };
        surplus_offered += lent_devs * t.fpga_rate;
        deficit_requested += deficit_devs * t.fpga_rate;
        let achieved = (t.local + borrowed).min(t.demand.max(t.local));
        outcomes.push(JobOutcome {
            workload: t.name.clone(),
            demand: t.demand,
            local_supply: t.local,
            borrowed: if lent_devs > 0.0 { -(lent_devs * t.fpga_rate) } else { borrowed },
            achieved,
        });
    }
    RackPlan { jobs: outcomes, surplus_offered, deficit_requested }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_underprovisioned_job_stays_short() {
        // TF-AA alone on 4 boxes: no donors, deficit unmet.
        let plan = balance_rack(&[JobPlacement::new(Workload::transformer_aa(), 4)]);
        assert_eq!(plan.jobs.len(), 1);
        let j = &plan.jobs[0];
        assert!(j.satisfaction() < 1.0, "sat={}", j.satisfaction());
        assert!(plan.surplus_offered == 0.0);
        assert!(plan.deficit_requested > 0.0);
    }

    #[test]
    fn underutilized_image_job_feeds_audio_job() {
        // §V-D's scenario: Inception (image, surplus FPGA capacity) shares a
        // rack with TF-SR (audio, deficit). The pool closes TF-SR's gap.
        let jobs = [
            JobPlacement::new(Workload::inception_v4(), 16),
            JobPlacement::new(Workload::transformer_sr(), 16),
        ];
        let plan = balance_rack(&jobs);
        let inception = &plan.jobs[0];
        let sr = &plan.jobs[1];
        assert!(inception.borrowed < 0.0, "inception lends: {}", inception.borrowed);
        assert!(sr.borrowed > 0.0, "tf-sr borrows: {}", sr.borrowed);
        assert!((sr.satisfaction() - 1.0).abs() < 1e-9, "sat={}", sr.satisfaction());
        assert!((inception.satisfaction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn short_pool_fills_proportionally() {
        // Two hungry audio jobs and one small donor: both get the same fill
        // fraction.
        let jobs = [
            JobPlacement::new(Workload::inception_v4(), 2),
            JobPlacement::new(Workload::transformer_sr(), 8),
            JobPlacement::new(Workload::transformer_aa(), 8),
        ];
        let plan = balance_rack(&jobs);
        let sr = &plan.jobs[1];
        let aa = &plan.jobs[2];
        assert!(sr.satisfaction() < 1.0);
        assert!(aa.satisfaction() < 1.0);
        // Equal fill fraction of their (ethernet-bounded) deficits.
        let fill_sr = sr.borrowed / (sr.demand - sr.local_supply);
        let fill_aa = aa.borrowed / (aa.demand - aa.local_supply);
        assert!((fill_sr - fill_aa).abs() < 0.05, "{fill_sr} vs {fill_aa}");
    }

    #[test]
    fn satisfied_jobs_do_not_borrow() {
        let plan = balance_rack(&[JobPlacement::new(Workload::vgg19(), 8)]);
        let j = &plan.jobs[0];
        assert!(j.borrowed <= 0.0);
        assert!((j.satisfaction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn placement_accounting() {
        let p = JobPlacement::new(Workload::resnet50(), 4);
        assert_eq!(p.accels(), 32);
        assert_eq!(p.fpgas(), 8);
    }
}

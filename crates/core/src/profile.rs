//! The preparation profile: one struct answering every question the
//! analytic model and the DES ask about a workload's data preparation.
//!
//! Historically those questions were answered by modality-keyed calibration
//! lookups (`crate::calib`) scattered across `arch`, `host`, `analytic`,
//! `pipeline`, `initializer`, and `multijob`. The workload DSL
//! ([`trainbox_nn::StageGraph`]) lets a workload *describe* its preparation
//! instead of being keyed by modality, so the lookups now converge here:
//!
//! * a **legacy** workload (no stage graph) profiles exactly as before —
//!   every field is the calibration value for its [`InputKind`], bit for
//!   bit;
//! * a workload with a **stage graph** takes sizes, per-class CPU seconds,
//!   the aggregate CPU cost, and device rates from the graph, while memory
//!   traffic and the CPU-time *decomposition fractions* stay
//!   modality-calibrated (the lowering rule: graphs describe work, the
//!   calibration describes how the host moves bytes for that modality);
//! * a **mixed-tenancy** workload (non-empty `tenants`) blends its tenants'
//!   profiles by batch share — the prep pipeline serves an interleaved
//!   sample stream, so per-sample costs mix linearly and device rates mix
//!   harmonically.
//!
//! [`lower_legacy`] makes the first rule checkable: it lowers a Table-I
//! preset onto the DSL carrying the calibrated values verbatim (raw
//! per-class products, declared aggregates), so profiling the lowered graph
//! reproduces the legacy profile **byte-identically** — pinned by the
//! `workload_dsl_equivalence` test and re-checked in CI by regenerating
//! every figure with `TRAINBOX_LOWER_PRESETS=1`.

use crate::calib::{
    baseline_mem_bytes_per_sample, cpu_fractions, cpu_secs_per_sample, fpga_samples_per_sec,
    gpu_prep_samples_per_sec, CpuFractions, MemBreakdown, SampleSizes,
};
use crate::host::Breakdown;
use trainbox_nn::{InputKind, PrepClass, StageCost, StageGraph, StageSpec, Workload};

/// Everything the models need to know about one workload's preparation,
/// per sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrepProfile {
    /// Stored-record and tensor bytes per sample.
    pub sizes: SampleSizes,
    /// Total host-CPU core-seconds to prepare one sample on the baseline.
    pub cpu_secs_per_sample: f64,
    /// The same CPU time decomposed by operation class (Fig 11's legend;
    /// `data_copy` is always zero on the baseline path).
    pub cpu: Breakdown,
    /// CPU-time fractions by class (the Fig 9 decomposition keys).
    pub fractions: CpuFractions,
    /// Host memory traffic per sample on the baseline, by class.
    pub mem: MemBreakdown,
    /// Throughput of one FPGA preparation accelerator, samples/s.
    pub fpga_samples_per_sec: f64,
    /// Throughput of one GPU used for preparation, samples/s.
    pub gpu_samples_per_sec: f64,
}

impl PrepProfile {
    /// The profile of `workload`: tenants blend, stage graphs lower, flat
    /// workloads calibrate by modality (optionally routed through
    /// [`lower_legacy`] when `TRAINBOX_LOWER_PRESETS=1`, the CI
    /// equivalence check).
    pub fn of(workload: &Workload) -> PrepProfile {
        if !workload.tenants.is_empty() {
            return PrepProfile::blended(&workload.tenants);
        }
        match &workload.stages {
            Some(graph) => PrepProfile::of_graph(workload.input, graph),
            None => {
                if lower_presets_forced() {
                    PrepProfile::of_graph(workload.input, &lower_legacy(workload))
                } else {
                    PrepProfile::of_input(workload.input)
                }
            }
        }
    }

    /// The legacy modality-calibrated profile — exactly the values the
    /// pre-DSL code read straight out of `crate::calib`.
    pub fn of_input(input: InputKind) -> PrepProfile {
        let c = cpu_secs_per_sample(input);
        let f = cpu_fractions(input);
        PrepProfile {
            sizes: SampleSizes::for_input(input),
            cpu_secs_per_sample: c,
            cpu: Breakdown {
                ssd_read: c * f.ssd_read,
                formatting: c * f.formatting,
                augmentation: c * f.augmentation,
                data_load: c * f.data_load,
                data_copy: 0.0,
                others: c * f.others,
            },
            fractions: f,
            mem: baseline_mem_bytes_per_sample(input),
            fpga_samples_per_sec: fpga_samples_per_sec(input),
            gpu_samples_per_sec: gpu_prep_samples_per_sec(input),
        }
    }

    /// Profile a stage graph declared for a workload of modality `input`.
    ///
    /// The graph supplies what it states — byte sizes, per-class CPU
    /// seconds, the aggregate CPU cost, device rates — and the modality
    /// calibration fills what a graph cannot know about the host: memory
    /// traffic per byte moved and the class decomposition of that movement.
    pub fn of_graph(input: InputKind, graph: &StageGraph) -> PrepProfile {
        PrepProfile {
            sizes: SampleSizes {
                stored: graph.stored_bytes() as f64,
                tensor: graph.tensor_bytes() as f64,
            },
            cpu_secs_per_sample: graph.total_cpu_secs_per_sample(),
            cpu: Breakdown {
                ssd_read: graph.class_cpu_secs(PrepClass::SsdRead),
                formatting: graph.class_cpu_secs(PrepClass::Formatting),
                augmentation: graph.class_cpu_secs(PrepClass::Augmentation),
                data_load: graph.class_cpu_secs(PrepClass::DataLoad),
                data_copy: 0.0,
                others: graph.class_cpu_secs(PrepClass::Others),
            },
            fractions: cpu_fractions(input),
            mem: baseline_mem_bytes_per_sample(input),
            fpga_samples_per_sec: graph
                .fpga_samples_per_sec
                .unwrap_or_else(|| fpga_samples_per_sec(input)),
            gpu_samples_per_sec: graph
                .gpu_samples_per_sec
                .unwrap_or_else(|| gpu_prep_samples_per_sec(input)),
        }
    }

    /// Blend tenant profiles by batch share. Per-sample quantities (bytes,
    /// CPU seconds, memory traffic) mix linearly — a random sample from the
    /// interleaved stream is tenant `i`'s with probability `share_i` — and
    /// device rates mix harmonically (the device time per blended sample is
    /// the share-weighted sum of per-tenant times).
    pub fn blended(tenants: &[Workload]) -> PrepProfile {
        assert!(tenants.len() >= 2, "mixed tenancy needs at least 2 tenants");
        let total: f64 = tenants.iter().map(|t| t.batch_size as f64).sum();
        let mut acc = PrepProfile {
            sizes: SampleSizes { stored: 0.0, tensor: 0.0 },
            cpu_secs_per_sample: 0.0,
            cpu: Breakdown::default(),
            fractions: CpuFractions {
                ssd_read: 0.0,
                formatting: 0.0,
                augmentation: 0.0,
                data_load: 0.0,
                others: 0.0,
            },
            mem: MemBreakdown::default(),
            fpga_samples_per_sec: 0.0,
            gpu_samples_per_sec: 0.0,
        };
        let mut fpga_secs = 0.0f64;
        let mut gpu_secs = 0.0f64;
        for t in tenants {
            let share = t.batch_size as f64 / total;
            let p = PrepProfile::of(t);
            acc.sizes.stored += share * p.sizes.stored;
            acc.sizes.tensor += share * p.sizes.tensor;
            acc.cpu_secs_per_sample += share * p.cpu_secs_per_sample;
            acc.cpu.ssd_read += share * p.cpu.ssd_read;
            acc.cpu.formatting += share * p.cpu.formatting;
            acc.cpu.augmentation += share * p.cpu.augmentation;
            acc.cpu.data_load += share * p.cpu.data_load;
            acc.cpu.data_copy += share * p.cpu.data_copy;
            acc.cpu.others += share * p.cpu.others;
            acc.mem.ssd_read += share * p.mem.ssd_read;
            acc.mem.formatting += share * p.mem.formatting;
            acc.mem.augmentation += share * p.mem.augmentation;
            acc.mem.data_load += share * p.mem.data_load;
            acc.mem.data_copy += share * p.mem.data_copy;
            acc.mem.others += share * p.mem.others;
            fpga_secs += share / p.fpga_samples_per_sec;
            gpu_secs += share / p.gpu_samples_per_sec;
        }
        // The blended decomposition is the blended CPU breakdown itself,
        // normalized — not a blend of the tenants' fractions, which would
        // overweight cheap tenants.
        let c = acc.cpu.total();
        acc.fractions = if c > 0.0 {
            CpuFractions {
                ssd_read: acc.cpu.ssd_read / c,
                formatting: acc.cpu.formatting / c,
                augmentation: acc.cpu.augmentation / c,
                data_load: acc.cpu.data_load / c,
                others: acc.cpu.others / c,
            }
        } else {
            acc.fractions
        };
        acc.fpga_samples_per_sec = 1.0 / fpga_secs;
        acc.gpu_samples_per_sec = 1.0 / gpu_secs;
        acc
    }

    /// Per-sample bytes over the prep-pool Ethernet when offloading one
    /// sample: the raw input out and the prepared tensor back, charged
    /// against one NIC budget (same expression as
    /// [`crate::calib::ethernet_bytes_per_offloaded_sample`]).
    pub fn ethernet_bytes_per_offloaded_sample(&self) -> f64 {
        self.sizes.stored + self.sizes.tensor
    }
}

/// `TRAINBOX_LOWER_PRESETS=1` forces every flat workload through
/// [`lower_legacy`] before profiling — the CI regen job sets it and
/// re-diffs all committed figures, which pins the lowering's
/// byte-identity end to end.
fn lower_presets_forced() -> bool {
    std::env::var("TRAINBOX_LOWER_PRESETS").map(|v| v == "1").unwrap_or(false)
}

/// Lower a flat (legacy) workload onto the stage-graph DSL.
///
/// The lowering carries the calibration **verbatim** so that profiling the
/// result reproduces the legacy profile bit for bit:
///
/// * one stage per operation class, whose `HostCpuSecs` cost is the raw
///   product `cpu_secs_per_sample(input) × fraction(class)` — the exact
///   f64 the legacy [`crate::host::PerSampleUsage`] computed inline;
/// * the first stage's `bytes_in` is the stored size, the last stage's
///   `bytes_out` the tensor size (both integral by calibration);
/// * the aggregate CPU cost and both device rates are *declared* rather
///   than re-derived, because `Σ (c × fᵢ)` is not bitwise `c`.
pub fn lower_legacy(workload: &Workload) -> StageGraph {
    let input = workload.input;
    let sizes = SampleSizes::for_input(input);
    let c = cpu_secs_per_sample(input);
    let f = cpu_fractions(input);
    let stored = sizes.stored as u64;
    let tensor = sizes.tensor as u64;
    let stages = vec![
        StageSpec::new("ssd_read", PrepClass::SsdRead, StageCost::HostCpuSecs(c * f.ssd_read))
            .bytes(stored, stored),
        StageSpec::new(
            "formatting",
            PrepClass::Formatting,
            StageCost::HostCpuSecs(c * f.formatting),
        )
        .bytes(stored, tensor)
        .after("ssd_read"),
        StageSpec::new(
            "augmentation",
            PrepClass::Augmentation,
            StageCost::HostCpuSecs(c * f.augmentation),
        )
        .bytes(tensor, tensor)
        .after("formatting"),
        StageSpec::new("data_load", PrepClass::DataLoad, StageCost::HostCpuSecs(c * f.data_load))
            .bytes(tensor, tensor)
            .after("augmentation"),
        StageSpec::new("others", PrepClass::Others, StageCost::HostCpuSecs(c * f.others))
            .bytes(0, 0)
            .after("data_load"),
    ];
    StageGraph {
        stages,
        cpu_secs_per_sample: Some(c),
        fpga_samples_per_sec: Some(fpga_samples_per_sec(input)),
        gpu_samples_per_sec: Some(gpu_prep_samples_per_sec(input)),
    }
}

/// The workload the accelerator-side models should see: tenanted workloads
/// blend into one flat aggregate (batches and model sizes sum, compute
/// rates time-share) while **keeping** their tenants, so the prep side
/// still profiles the mixture; everything else passes through unchanged.
pub fn effective_workload(workload: &Workload) -> Workload {
    if workload.tenants.is_empty() {
        return workload.clone();
    }
    let mut eff = Workload::blended_flat(workload.name.clone(), workload.tenants.clone());
    eff.sync = workload.sync;
    eff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(p: &PrepProfile) -> Vec<u64> {
        [
            p.sizes.stored,
            p.sizes.tensor,
            p.cpu_secs_per_sample,
            p.cpu.ssd_read,
            p.cpu.formatting,
            p.cpu.augmentation,
            p.cpu.data_load,
            p.cpu.data_copy,
            p.cpu.others,
            p.fractions.ssd_read,
            p.fractions.formatting,
            p.fractions.augmentation,
            p.fractions.data_load,
            p.fractions.others,
            p.mem.ssd_read,
            p.mem.formatting,
            p.mem.augmentation,
            p.mem.data_load,
            p.mem.data_copy,
            p.mem.others,
            p.fpga_samples_per_sec,
            p.gpu_samples_per_sec,
        ]
        .iter()
        .map(|v| v.to_bits())
        .collect()
    }

    #[test]
    fn lowered_legacy_profiles_bit_identically_for_every_preset() {
        for w in Workload::presets() {
            if !w.tenants.is_empty() {
                continue; // tenanted presets blend, they don't lower
            }
            let legacy = if w.stages.is_some() {
                // DSL presets already carry a graph; `of` must use it.
                PrepProfile::of(&w)
            } else {
                PrepProfile::of_input(w.input)
            };
            let lowered = PrepProfile::of_graph(w.input, &lower_legacy(&w));
            if w.stages.is_none() {
                assert_eq!(bits(&legacy), bits(&lowered), "profile diverged for {}", w.name);
            } else {
                // Graph-carrying presets: the lowering reflects the flat
                // calibration, not the graph — only sanity-check them.
                assert!(lowered.cpu_secs_per_sample > 0.0);
            }
        }
    }

    #[test]
    fn lowered_graphs_validate() {
        for w in Workload::all() {
            let g = lower_legacy(&w);
            let rebuilt = Workload::builder(w.name.clone())
                .kind(w.kind)
                .input(w.input)
                .task(w.task.clone())
                .batch_size(w.batch_size)
                .model_mbytes(w.model_mbytes)
                .accel_samples_per_sec(w.accel_samples_per_sec)
                .stage_graph(g)
                .try_build();
            assert!(rebuilt.is_ok(), "{}: {:?}", w.name, rebuilt.err());
        }
    }

    #[test]
    fn graph_sizes_override_calibration() {
        let w = Workload::llm();
        let p = PrepProfile::of(&w);
        assert_eq!(p.sizes.stored, 16_384.0);
        assert_eq!(p.sizes.tensor, 8_192.0);
        // The Text preset's graph sum equals the Text calibration by
        // construction.
        assert!((p.cpu_secs_per_sample - cpu_secs_per_sample(InputKind::Text)).abs() < 1e-12);
    }

    #[test]
    fn declared_device_rates_win_over_modality() {
        let g = StageGraph {
            stages: vec![StageSpec::new(
                "only",
                PrepClass::Formatting,
                StageCost::HostCpuSecs(1e-3),
            )
            .bytes(1000, 2000)],
            cpu_secs_per_sample: None,
            fpga_samples_per_sec: Some(123.0),
            gpu_samples_per_sec: None,
        };
        let p = PrepProfile::of_graph(InputKind::Image, &g);
        assert_eq!(p.fpga_samples_per_sec, 123.0);
        assert_eq!(p.gpu_samples_per_sec, gpu_prep_samples_per_sec(InputKind::Image));
        assert_eq!(p.cpu.formatting, 1e-3);
        assert_eq!(p.cpu_secs_per_sample, 1e-3);
    }

    #[test]
    fn blended_profile_mixes_linearly_and_harmonically() {
        let w = Workload::mixed();
        assert!(!w.tenants.is_empty());
        let p = PrepProfile::of(&w);
        let rn = PrepProfile::of(&Workload::resnet50());
        let sr = PrepProfile::of(&Workload::transformer_sr());
        let (b_rn, b_sr) = (8192.0, 512.0);
        let total = b_rn + b_sr;
        let expect_cpu =
            (b_rn / total) * rn.cpu_secs_per_sample + (b_sr / total) * sr.cpu_secs_per_sample;
        assert!((p.cpu_secs_per_sample - expect_cpu).abs() < 1e-15);
        // Harmonic device rate sits between the tenants', nearer the
        // dominant tenant's.
        assert!(p.fpga_samples_per_sec < rn.fpga_samples_per_sec);
        assert!(p.fpga_samples_per_sec > sr.fpga_samples_per_sec);
        let f = p.fractions;
        let sum = f.ssd_read + f.formatting + f.augmentation + f.data_load + f.others;
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn effective_workload_blends_flat_but_keeps_tenants_and_sync() {
        let w = Workload::builder("pair")
            .tenant(Workload::resnet50())
            .tenant(Workload::transformer_sr())
            .sync(trainbox_nn::SyncPattern::ParameterServer)
            .build();
        let eff = effective_workload(&w);
        assert_eq!(eff.batch_size, 8192 + 512);
        assert_eq!(eff.sync, trainbox_nn::SyncPattern::ParameterServer);
        assert_eq!(eff.tenants.len(), 2);
        let solo = effective_workload(&Workload::resnet50());
        assert_eq!(solo, Workload::resnet50());
    }

    #[test]
    fn ethernet_bytes_match_calibration_for_legacy() {
        for w in Workload::all() {
            let p = PrepProfile::of(&w);
            assert_eq!(
                p.ethernet_bytes_per_offloaded_sample().to_bits(),
                crate::calib::ethernet_bytes_per_offloaded_sample(w.input).to_bits()
            );
        }
    }
}

//! Discrete-event simulation of the full training datapath.
//!
//! The analytic model in [`crate::arch`] is a closed-form bottleneck
//! analysis; this module *simulates* the same server at chunk granularity —
//! SSD reads through queued devices, DMA transfers as fluid flows over the
//! actual PCIe tree (with max-min fair link sharing), preparation on queued
//! CPU/FPGA servers, accelerator compute, and a global ring-synchronization
//! barrier with next-batch prefetching. Contention *emerges* from the
//! topology here instead of being assumed, which is how we cross-validate
//! the analytic model (and how the paper validated its own simulator against
//! a prototype, §VI-A).
//!
//! Granularity: samples move in chunks (default 256 samples) to bound the
//! event count; each accelerator may prefetch up to two batches ahead, the
//! overlap discipline of §II-B.

use crate::arch::{Server, ServerKind};
use crate::calib::{
    cpu_secs_per_sample, fpga_samples_per_sec, gpu_prep_samples_per_sec, SampleSizes, DGX2,
    SSD_READ_BYTES_PER_SEC,
};
use std::collections::HashMap;
use trainbox_nn::Workload;
use trainbox_pcie::boxes::{PrepPoolNet, ServerTopology};
use trainbox_pcie::flow::{FlowId, FlowNet, FlowSim, FlowSpec};
use trainbox_pcie::NodeId;
use trainbox_sim::{Engine, FifoServer, Model, Scheduler, SimTime};

/// Configuration of one DES run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Samples per chunk (event granularity).
    pub chunk_samples: u64,
    /// Batches each accelerator must complete before the run ends.
    pub batches: u64,
    /// Batches to skip at the start when measuring steady-state throughput.
    pub warmup_batches: u64,
    /// Prefetch credit per accelerator, in batches (1 = the paper's
    /// next-batch prefetching).
    pub prefetch_batches: u64,
    /// Safety valve on total processed events.
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            chunk_samples: 256,
            batches: 8,
            warmup_batches: 4,
            prefetch_batches: 1,
            max_events: 20_000_000,
        }
    }
}

/// Result of a DES run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Steady-state throughput over the measured window, samples/s.
    pub samples_per_sec: f64,
    /// Completion time of every global batch (after synchronization).
    pub batch_done_at: Vec<SimTime>,
    /// Events processed.
    pub events: u64,
    /// Total bytes carried by each directed PCIe link over the whole run,
    /// indexed like the topology's links.
    pub link_bytes: Vec<f64>,
    /// Bytes that crossed the root complex (sum over RC-incident links).
    pub rc_bytes: f64,
}

impl SimResult {
    /// Fraction of all transferred bytes that crossed the root complex —
    /// the quantity Step 3 (clustering) drives to zero.
    pub fn rc_share(&self) -> f64 {
        let total: f64 = self.link_bytes.iter().sum();
        if total == 0.0 {
            0.0
        } else {
            self.rc_bytes / total
        }
    }
}

/// Where a chunk currently is in the datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Stage {
    /// In flight from its SSD toward the preparation site (via host memory
    /// on staged designs, direct P2P otherwise).
    ToPrep,
    /// In flight host → prep accelerator (staged designs, second leg).
    HostToPrep,
    /// Queued/processing on the preparation device.
    Prep,
    /// In flight prep accelerator → host (staged designs, return leg).
    PrepToHost,
    /// In flight over Ethernet toward a prep-pool FPGA (TrainBox offload).
    EthToPool,
    /// Queued/processing on a prep-pool FPGA.
    PoolPrep,
    /// Prepared tensor returning over Ethernet to the in-box FPGA.
    EthFromPool,
    /// In flight toward its accelerator (final leg).
    ToAccel,
}

#[derive(Debug, Clone, Copy)]
struct Chunk {
    acc: usize,
    samples: u64,
    stage: Stage,
    prep_dev: usize,
    ssd: usize,
    /// Prep-pool FPGA handling this chunk (only meaningful mid-offload).
    pool_dev: usize,
}

/// Ethernet prep-pool state for the DES.
struct EthPool {
    net: PrepPoolNet,
    flows: FlowSim,
    epoch: u64,
    cont: HashMap<FlowId, u64>,
    pool_servers: Vec<FifoServer>,
    pool_service: SimTime,
    /// Offload every `period`-th chunk per in-box FPGA (0 = never).
    period: u64,
    counters: Vec<u64>,
    rr_pool: usize,
}

#[derive(Debug, Clone, Copy, Default)]
struct AccelState {
    /// Prepared samples buffered at the accelerator, ready to consume.
    buffered: u64,
    /// Samples issued to the pipeline but not yet delivered.
    in_flight: u64,
    /// Samples issued over this accelerator's lifetime.
    issued_total: u64,
    /// Currently computing a batch.
    computing: bool,
    /// Batches fully computed (waiting on or past sync).
    batches_computed: u64,
}

#[derive(Debug)]
enum Ev {
    /// Prime the pipeline at t = 0.
    Start,
    /// An SSD finished reading a chunk.
    SsdDone(u64),
    /// Re-examine the flow network (epoch-stamped; stale ones are ignored).
    FlowCheck(u64),
    /// Re-examine the Ethernet prep network.
    EthFlowCheck(u64),
    /// A prep-pool FPGA finished a chunk.
    PoolPrepDone(u64),
    /// A preparation device finished a chunk.
    PrepDone(u64),
    /// An accelerator finished computing its current batch.
    ComputeDone(usize),
    /// The ring synchronization for the current generation completed.
    SyncDone,
}

struct PipelineModel {
    kind: ServerKind,
    topo: ServerTopology,
    sizes: SampleSizes,
    chunk: u64,
    batch: u64,
    prefetch: u64,
    target_batches: u64,
    t_comp: SimTime,
    t_sync: SimTime,

    flows: FlowSim,
    flow_epoch: u64,
    flow_cont: HashMap<FlowId, u64>,
    link_bytes: Vec<f64>,

    /// Ethernet prep network (TrainBox with pool): flow sim over the star
    /// topology, pool FPGA queues, and the offload cadence.
    eth: Option<EthPool>,

    ssds: Vec<FifoServer>,
    preps: Vec<FifoServer>,
    prep_service: SimTime,

    chunks: HashMap<u64, Chunk>,
    next_chunk: u64,
    accels: Vec<AccelState>,
    arrived: usize,
    sync_gen: u64,
    sync_in_progress: bool,
    batch_done_at: Vec<SimTime>,
    rr_ssd: usize,
    rr_prep: usize,
    done: bool,
}

impl PipelineModel {
    fn new(server: &Server, workload: &Workload, cfg: &SimConfig) -> Self {
        let kind = server.kind();
        let topo = server.topology().clone();
        let sizes = SampleSizes::for_input(workload.input);
        let batch = server.batch_for(workload);
        let n = server.n_accels();
        let eff = crate::calib::batch_efficiency(batch, workload.batch_size);
        let t_comp =
            SimTime::from_secs_f64(batch as f64 / (workload.accel_samples_per_sec * eff));
        let t_sync = server.ring_model().allreduce_time(workload.model_bytes(), n);

        let n_links = topo.topo.link_count();
        let flows = FlowSim::new(FlowNet::from_topology(&topo.topo));
        // TrainBox-with-pool: set up the Ethernet network and the offload
        // cadence from the initializer's deficit analysis.
        let eth = if kind == ServerKind::TrainBox {
            server.prep_pool().and_then(|net| {
                if net.pool_nics.is_empty() {
                    return None;
                }
                let f = fpga_samples_per_sec(workload.input);
                let plan = crate::initializer::plan(server, workload, net.pool_nics.len());
                let demand = plan.required_prep_rate;
                let local = plan.in_box_prep_rate;
                if demand <= local {
                    return None;
                }
                // Offload fraction of all chunks = deficit / demand; send
                // every period-th chunk to the pool.
                let frac = ((demand - local) / demand).clamp(0.0, 1.0);
                let period = (1.0 / frac).round().max(1.0) as u64;
                Some(EthPool {
                    flows: FlowSim::new(FlowNet::from_topology(&net.topo)),
                    pool_servers: net.pool_nics.iter().map(|_| FifoServer::new(1)).collect(),
                    pool_service: SimTime::from_secs_f64(cfg.chunk_samples as f64 / f),
                    period,
                    counters: vec![0; net.box_nics.len()],
                    epoch: 0,
                    cont: HashMap::new(),
                    rr_pool: 0,
                    net: net.clone(),
                })
            })
        } else {
            None
        };
        let ssds = topo.ssds.iter().map(|_| FifoServer::new(1)).collect();
        let (preps, prep_service): (Vec<FifoServer>, SimTime) = match kind {
            ServerKind::Baseline => {
                // One fluid CPU pool: each chunk occupies one of the 48
                // core-slots for `chunk x per-sample-core-time`.
                let per = cpu_secs_per_sample(workload.input);
                (
                    vec![FifoServer::new(DGX2.cpu_cores as usize)],
                    SimTime::from_secs_f64(cfg.chunk_samples as f64 * per),
                )
            }
            ServerKind::AccGpu => {
                let per = gpu_prep_samples_per_sec(workload.input);
                (
                    topo.preps.iter().map(|_| FifoServer::new(1)).collect(),
                    SimTime::from_secs_f64(cfg.chunk_samples as f64 / per),
                )
            }
            _ => {
                let per = fpga_samples_per_sec(workload.input);
                (
                    topo.preps.iter().map(|_| FifoServer::new(1)).collect(),
                    SimTime::from_secs_f64(cfg.chunk_samples as f64 / per),
                )
            }
        };

        PipelineModel {
            kind,
            topo,
            sizes,
            chunk: cfg.chunk_samples,
            batch,
            prefetch: cfg.prefetch_batches,
            target_batches: cfg.batches,
            t_comp,
            t_sync,
            link_bytes: vec![0.0; n_links],
            flows,
            flow_epoch: 0,
            flow_cont: HashMap::new(),
            eth,
            ssds,
            preps,
            prep_service,
            chunks: HashMap::new(),
            next_chunk: 0,
            accels: vec![AccelState::default(); n],
            arrived: 0,
            sync_gen: 0,
            sync_in_progress: false,
            batch_done_at: Vec::new(),
            rr_ssd: 0,
            rr_prep: 0,
            done: false,
        }
    }

    /// The SSD and prep device serving accelerator `acc`.
    fn assign_devices(&mut self, acc: usize) -> (usize, usize) {
        match self.kind {
            ServerKind::TrainBox | ServerKind::TrainBoxNoPool => {
                // Everything local to the accelerator's train box: 8 accs,
                // 2 SSDs, 2 FPGAs per box; accelerator halves map to the
                // FPGA sharing their leaf switch.
                let bx = acc / 8;
                let half = (acc / 4) % 2;
                (bx * 2 + half, bx * 2 + half)
            }
            ServerKind::Baseline => {
                let ssd = self.rr_ssd % self.ssds.len();
                self.rr_ssd += 1;
                (ssd, 0)
            }
            _ => {
                let ssd = self.rr_ssd % self.ssds.len();
                self.rr_ssd += 1;
                let prep = self.rr_prep % self.preps.len();
                self.rr_prep += 1;
                (ssd, prep)
            }
        }
    }

    /// Spawn chunks for `acc` while prefetch credit remains.
    fn refill(&mut self, now: SimTime, acc: usize, sched: &mut Scheduler<Ev>) {
        if self.done {
            return;
        }
        let credit = self.prefetch * self.batch;
        loop {
            let st = &self.accels[acc];
            let lifetime_target = self.target_batches * self.batch;
            if st.issued_total >= lifetime_target || st.buffered + st.in_flight >= credit {
                return;
            }
            let samples = self.chunk.min(lifetime_target - st.issued_total);
            let (ssd, prep_dev) = self.assign_devices(acc);
            let id = self.next_chunk;
            self.next_chunk += 1;
            self.chunks
                .insert(id, Chunk { acc, samples, stage: Stage::ToPrep, prep_dev, ssd, pool_dev: 0 });
            let st = &mut self.accels[acc];
            st.in_flight += samples;
            st.issued_total += samples;
            let read = SimTime::from_secs_f64(
                samples as f64 * self.sizes.stored / SSD_READ_BYTES_PER_SEC,
            );
            let done_at = self.ssds[ssd].enqueue(now, read);
            sched.schedule_at(done_at, Ev::SsdDone(id));
        }
    }

    fn add_flow(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: f64,
        cont: u64,
        sched: &mut Scheduler<Ev>,
    ) {
        let route = self.topo.topo.route(from, to);
        for l in &route {
            self.link_bytes[l.index()] += bytes;
        }
        let spec = if route.is_empty() {
            // Node-local hand-off: sequence it through the flow machinery at
            // an effectively infinite rate.
            FlowSpec::with_demand(route, 1e15)
        } else {
            FlowSpec::new(route)
        };
        let fid = self.flows.add_flow(now, spec, bytes.max(1.0));
        self.flow_cont.insert(fid, cont);
        self.bump_flows(sched);
    }

    /// Re-arm the earliest flow completion under the current rate set.
    fn bump_flows(&mut self, sched: &mut Scheduler<Ev>) {
        self.flow_epoch += 1;
        if let Some((t, _)) = self.flows.next_completion() {
            sched.schedule_at(t, Ev::FlowCheck(self.flow_epoch));
        }
    }

    fn bump_eth(&mut self, sched: &mut Scheduler<Ev>) {
        let eth = self.eth.as_mut().expect("ethernet pool active");
        eth.epoch += 1;
        if let Some((t, _)) = eth.flows.next_completion() {
            sched.schedule_at(t, Ev::EthFlowCheck(eth.epoch));
        }
    }

    fn add_eth_flow(
        &mut self,
        now: SimTime,
        from: trainbox_pcie::NodeId,
        to: trainbox_pcie::NodeId,
        bytes: f64,
        cont: u64,
        sched: &mut Scheduler<Ev>,
    ) {
        let eth = self.eth.as_mut().expect("ethernet pool active");
        let route = eth.net.topo.route(from, to);
        let fid = eth.flows.add_flow(now, FlowSpec::new(route), bytes.max(1.0));
        eth.cont.insert(fid, cont);
        self.bump_eth(sched);
    }

    fn queue_prep(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks[&id];
        // TrainBox with a pool: ship every period-th chunk of this in-box
        // FPGA to the pool over Ethernet instead of preparing locally.
        if let Some(eth) = self.eth.as_mut() {
            let dev = chunk.prep_dev;
            eth.counters[dev] += 1;
            if eth.period > 0 && eth.counters[dev] % eth.period == 0 {
                let from = eth.net.box_nics[dev];
                let pool_idx = eth.rr_pool % eth.pool_servers.len();
                eth.rr_pool += 1;
                let to = eth.net.pool_nics[pool_idx];
                // Stash the chosen pool device in the chunk's ssd field? No —
                // keep a dedicated map: encode pool index via counters order
                // is fragile; instead store in chunk.pool_dev.
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::EthToPool;
                self.chunks.get_mut(&id).expect("chunk exists").pool_dev = pool_idx;
                let bytes = chunk.samples as f64 * self.sizes.stored;
                self.add_eth_flow(now, from, to, bytes, id, sched);
                return;
            }
        }
        self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::Prep;
        let done = self.preps[chunk.prep_dev].enqueue(now, self.prep_service);
        sched.schedule_at(done, Ev::PrepDone(id));
    }

    fn on_eth_flow_done(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks[&id];
        match chunk.stage {
            Stage::EthToPool => {
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::PoolPrep;
                let eth = self.eth.as_mut().expect("ethernet pool active");
                let done = eth.pool_servers[chunk.pool_dev].enqueue(now, eth.pool_service);
                sched.schedule_at(done, Ev::PoolPrepDone(id));
            }
            Stage::EthFromPool => {
                // Back at the in-box FPGA: final P2P hop to the accelerator.
                let tensor = chunk.samples as f64 * self.sizes.tensor;
                let prep_node = self.topo.preps[chunk.prep_dev];
                let acc_node = self.topo.accs[chunk.acc];
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::ToAccel;
                self.add_flow(now, prep_node, acc_node, tensor, id, sched);
            }
            other => unreachable!("unexpected ethernet completion in {other:?}"),
        }
    }

    fn on_pool_prep_done(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks[&id];
        let eth = self.eth.as_ref().expect("ethernet pool active");
        let from = eth.net.pool_nics[chunk.pool_dev];
        let to = eth.net.box_nics[chunk.prep_dev];
        let tensor = chunk.samples as f64 * self.sizes.tensor;
        self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::EthFromPool;
        self.add_eth_flow(now, from, to, tensor, id, sched);
    }

    fn on_ssd_done(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks[&id];
        let ssd_node = self.topo.ssds[chunk.ssd];
        let stored = chunk.samples as f64 * self.sizes.stored;
        match self.kind {
            // Staged designs: SSD -> host memory first.
            ServerKind::Baseline | ServerKind::AccFpga | ServerKind::AccGpu => {
                self.add_flow(now, ssd_node, self.topo.topo.root(), stored, id, sched);
            }
            // P2P / clustered: SSD -> prep accelerator directly.
            _ => {
                let dst = self.topo.preps[chunk.prep_dev];
                self.add_flow(now, ssd_node, dst, stored, id, sched);
            }
        }
    }

    fn on_flow_done(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks[&id];
        match chunk.stage {
            Stage::ToPrep => match self.kind {
                ServerKind::AccFpga | ServerKind::AccGpu => {
                    // Second leg: host -> prep accelerator.
                    let dst = self.topo.preps[chunk.prep_dev];
                    let bytes = chunk.samples as f64 * self.sizes.stored;
                    self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::HostToPrep;
                    self.add_flow(now, self.topo.topo.root(), dst, bytes, id, sched);
                }
                // Baseline preps on the host itself; P2P/clustered arrive at
                // the prep device directly.
                _ => self.queue_prep(now, id, sched),
            },
            Stage::HostToPrep => self.queue_prep(now, id, sched),
            Stage::PrepToHost => {
                // Final leg: host -> accelerator.
                let tensor = chunk.samples as f64 * self.sizes.tensor;
                let acc_node = self.topo.accs[chunk.acc];
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::ToAccel;
                self.add_flow(now, self.topo.topo.root(), acc_node, tensor, id, sched);
            }
            Stage::ToAccel => self.deliver(now, id, sched),
            Stage::Prep | Stage::PoolPrep => {
                unreachable!("flows never complete while queued on a device")
            }
            Stage::EthToPool | Stage::EthFromPool => {
                unreachable!("ethernet legs complete through EthFlowCheck")
            }
        }
    }

    fn on_prep_done(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks[&id];
        let tensor = chunk.samples as f64 * self.sizes.tensor;
        let acc_node = self.topo.accs[chunk.acc];
        match self.kind {
            ServerKind::Baseline => {
                // Prepared in host memory; ship host -> accelerator.
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::ToAccel;
                self.add_flow(now, self.topo.topo.root(), acc_node, tensor, id, sched);
            }
            ServerKind::AccFpga | ServerKind::AccGpu => {
                // Staged: prep -> host, then host -> acc.
                let prep_node = self.topo.preps[chunk.prep_dev];
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::PrepToHost;
                self.add_flow(now, prep_node, self.topo.topo.root(), tensor, id, sched);
            }
            _ => {
                // P2P / clustered: prep -> accelerator directly.
                let prep_node = self.topo.preps[chunk.prep_dev];
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::ToAccel;
                self.add_flow(now, prep_node, acc_node, tensor, id, sched);
            }
        }
    }

    fn deliver(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks.remove(&id).expect("chunk exists");
        let st = &mut self.accels[chunk.acc];
        st.in_flight -= chunk.samples;
        st.buffered += chunk.samples;
        self.try_start_compute(now, chunk.acc, sched);
        self.refill(now, chunk.acc, sched);
    }

    fn try_start_compute(&mut self, now: SimTime, acc: usize, sched: &mut Scheduler<Ev>) {
        if self.sync_in_progress || self.done {
            return;
        }
        let st = &mut self.accels[acc];
        // Lockstep generations: an accelerator computes batch g only after
        // the global sync of batch g-1, with a full batch buffered.
        if !st.computing && st.batches_computed == self.sync_gen && st.buffered >= self.batch {
            st.buffered -= self.batch;
            st.computing = true;
            sched.schedule_in(now, self.t_comp, Ev::ComputeDone(acc));
            // Consuming a batch frees prefetch credit: start preparing the
            // next batch right away (next-batch prefetching).
            self.refill(now, acc, sched);
        }
    }

    fn on_compute_done(&mut self, now: SimTime, acc: usize, sched: &mut Scheduler<Ev>) {
        self.accels[acc].computing = false;
        self.accels[acc].batches_computed += 1;
        self.arrived += 1;
        self.refill(now, acc, sched);
        if self.arrived == self.accels.len() {
            self.arrived = 0;
            self.sync_in_progress = true;
            sched.schedule_in(now, self.t_sync, Ev::SyncDone);
        }
    }

    fn on_sync_done(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        self.sync_in_progress = false;
        self.sync_gen += 1;
        self.batch_done_at.push(now);
        if self.sync_gen >= self.target_batches {
            self.done = true;
            return;
        }
        for acc in 0..self.accels.len() {
            self.try_start_compute(now, acc, sched);
        }
    }
}

impl Model for PipelineModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Start => {
                for acc in 0..self.accels.len() {
                    self.refill(now, acc, sched);
                }
            }
            Ev::SsdDone(id) => self.on_ssd_done(now, id, sched),
            Ev::FlowCheck(epoch) => {
                if epoch != self.flow_epoch {
                    return; // superseded by a later flow-set change
                }
                if let Some((t, fid)) = self.flows.next_completion() {
                    self.flows.complete(t.max(self.flows.now()), fid);
                    let cont = self
                        .flow_cont
                        .remove(&fid)
                        .expect("every flow has a continuation");
                    self.on_flow_done(now, cont, sched);
                    self.bump_flows(sched);
                }
            }
            Ev::EthFlowCheck(epoch) => {
                let Some(eth) = self.eth.as_mut() else { return };
                if epoch != eth.epoch {
                    return;
                }
                if let Some((t, fid)) = eth.flows.next_completion() {
                    let at = t.max(eth.flows.now());
                    eth.flows.complete(at, fid);
                    let cont = eth.cont.remove(&fid).expect("eth continuation registered");
                    self.on_eth_flow_done(now, cont, sched);
                    self.bump_eth(sched);
                }
            }
            Ev::PoolPrepDone(id) => self.on_pool_prep_done(now, id, sched),
            Ev::PrepDone(id) => self.on_prep_done(now, id, sched),
            Ev::ComputeDone(acc) => self.on_compute_done(now, acc, sched),
            Ev::SyncDone => self.on_sync_done(now, sched),
        }
    }
}

/// Simulate `workload` on `server` and report steady-state throughput.
///
/// # Panics
///
/// Panics if `cfg.batches <= cfg.warmup_batches`, or if the simulation
/// stalls (queue drains or `cfg.max_events` is exceeded before the requested
/// batches complete).
pub fn simulate(server: &Server, workload: &Workload, cfg: &SimConfig) -> SimResult {
    assert!(cfg.batches > cfg.warmup_batches, "need batches after warmup");
    let model = PipelineModel::new(server, workload, cfg);
    let mut engine = Engine::new(model);
    engine.schedule_at(SimTime::ZERO, Ev::Start);
    let hit = engine.run_while(cfg.max_events, |m| m.done);
    assert!(
        hit,
        "simulation ended without completing {} batches (events={}, queued={})",
        cfg.batches,
        engine.events_processed(),
        engine.queued(),
    );
    let m = engine.model();
    let n = m.accels.len() as f64;
    let first = m.batch_done_at[cfg.warmup_batches as usize - 1];
    let last = *m.batch_done_at.last().expect("batches completed");
    let batches_measured = (cfg.batches - cfg.warmup_batches) as f64;
    let samples = batches_measured * n * m.batch as f64;
    let rc_bytes = m
        .topo
        .rc_links()
        .iter()
        .map(|l| m.link_bytes[l.index()])
        .sum();
    SimResult {
        samples_per_sec: samples / (last - first).as_secs_f64(),
        batch_done_at: m.batch_done_at.clone(),
        events: engine.events_processed(),
        link_bytes: m.link_bytes.clone(),
        rc_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ServerConfig;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            chunk_samples: 128,
            batches: 8,
            warmup_batches: 4,
            prefetch_batches: 1,
            max_events: 5_000_000,
        }
    }

    /// Build a scaled-down server: n accelerators, reduced batch.
    fn sim_tp(kind: ServerKind, n: usize, w: &Workload, batch: u64) -> f64 {
        let server = ServerConfig::new(kind, n).batch_size(batch).build();
        simulate(&server, w, &quick_cfg()).samples_per_sec
    }

    fn analytic_tp(kind: ServerKind, n: usize, w: &Workload, batch: u64) -> f64 {
        ServerConfig::new(kind, n)
            .batch_size(batch)
            .build()
            .throughput(w)
            .samples_per_sec
    }

    #[test]
    fn des_matches_analytic_when_accelerator_bound() {
        // Small scale: accelerators bind; DES must track the analytic value.
        let w = Workload::inception_v4();
        let des = sim_tp(ServerKind::Baseline, 8, &w, 512);
        let ana = analytic_tp(ServerKind::Baseline, 8, &w, 512);
        let err = (des - ana).abs() / ana;
        assert!(err < 0.1, "des={des} ana={ana} err={err}");
    }

    #[test]
    fn des_matches_analytic_when_cpu_bound() {
        // 64 accelerators on the baseline: host CPU binds.
        let w = Workload::inception_v4();
        let des = sim_tp(ServerKind::Baseline, 64, &w, 256);
        let ana = analytic_tp(ServerKind::Baseline, 64, &w, 256);
        let err = (des - ana).abs() / ana;
        assert!(err < 0.15, "des={des} ana={ana} err={err}");
    }

    #[test]
    fn des_trainbox_matches_analytic() {
        let w = Workload::inception_v4();
        let des = sim_tp(ServerKind::TrainBoxNoPool, 32, &w, 512);
        let ana = analytic_tp(ServerKind::TrainBoxNoPool, 32, &w, 512);
        let err = (des - ana).abs() / ana;
        assert!(err < 0.1, "des={des} ana={ana} err={err}");
    }

    #[test]
    fn des_reproduces_the_ordering_baseline_acc_trainbox() {
        // The Fig 19 ordering must emerge from the simulated datapath alone.
        let w = Workload::resnet50();
        let base = sim_tp(ServerKind::Baseline, 64, &w, 1024);
        let acc = sim_tp(ServerKind::AccFpga, 64, &w, 1024);
        let tb = sim_tp(ServerKind::TrainBoxNoPool, 64, &w, 1024);
        assert!(acc > base, "acc={acc} base={base}");
        assert!(tb > acc, "tb={tb} acc={acc}");
    }

    #[test]
    fn des_p2p_removes_no_rc_traffic_vs_staged() {
        // P2P between chained boxes still crosses the root complex: the
        // simulated throughput must not improve materially over staged.
        let w = Workload::resnet50();
        let staged = sim_tp(ServerKind::AccFpga, 32, &w, 1024);
        let p2p = sim_tp(ServerKind::AccFpgaP2p, 32, &w, 1024);
        let ratio = p2p / staged;
        assert!((0.8..1.6).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn des_audio_workload_runs() {
        let w = Workload::transformer_sr();
        let des = sim_tp(ServerKind::TrainBoxNoPool, 16, &w, 128);
        assert!(des > 0.0);
        // Prep-bound at this scale: 4 FPGAs x 5200 = 20.8k.
        let ana = analytic_tp(ServerKind::TrainBoxNoPool, 16, &w, 128);
        let err = (des - ana).abs() / ana;
        assert!(err < 0.2, "des={des} ana={ana}");
    }

    #[test]
    fn batch_completion_times_are_monotone() {
        let w = Workload::rnn_s();
        let server = ServerConfig::new(ServerKind::Baseline, 8)
            .batch_size(256)
            .build();
        let r = simulate(&server, &w, &quick_cfg());
        assert_eq!(r.batch_done_at.len(), 8);
        for w in r.batch_done_at.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(r.events > 0);
    }

    #[test]
    fn clustering_eliminates_rc_traffic_in_the_des() {
        // The Step-3 mechanism, *measured* from the simulated flows: the
        // baseline pushes every byte through the root complex; the train-box
        // design keeps the RC share at zero.
        let w = Workload::inception_v4();
        let base_server = ServerConfig::new(ServerKind::Baseline, 16)
            .batch_size(512)
            .build();
        let base = simulate(&base_server, &w, &quick_cfg());
        assert!(base.rc_bytes > 0.0);
        assert!(base.rc_share() > 0.3, "rc share {}", base.rc_share());
        let tb_server = ServerConfig::new(ServerKind::TrainBoxNoPool, 16)
            .batch_size(512)
            .build();
        let tb = simulate(&tb_server, &w, &quick_cfg());
        assert_eq!(tb.rc_bytes, 0.0, "clustered prep traffic must stay in-box");
        assert!(tb.link_bytes.iter().sum::<f64>() > 0.0, "data did move");
    }

    #[test]
    fn staged_design_doubles_simulated_rc_bytes_per_sample() {
        // §IV-D's doubling argument, measured: per delivered sample, the
        // staged design moves ~2x the baseline's bytes through the RC.
        let w = Workload::inception_v4();
        let cfg = quick_cfg();
        let run = |kind| {
            let s = ServerConfig::new(kind, 16).batch_size(512).build();
            let r = simulate(&s, &w, &cfg);
            r.rc_bytes / (cfg.batches as f64 * 16.0 * 512.0)
        };
        let base = run(ServerKind::Baseline);
        let staged = run(ServerKind::AccFpga);
        let ratio = staged / base;
        assert!((1.8..2.2).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn des_is_deterministic() {
        let w = Workload::rnn_s();
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 8)
            .batch_size(256)
            .build();
        let a = simulate(&server, &w, &quick_cfg());
        let b = simulate(&server, &w, &quick_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn pool_offload_raises_simulated_audio_throughput() {
        // Fig 21b, simulated: TF-SR on 16 accelerators is prep-bound without
        // the pool; with pool FPGAs the DES throughput rises toward the
        // accelerator side.
        let w = Workload::transformer_sr();
        let cfg = SimConfig {
            chunk_samples: 64,
            batches: 8,
            warmup_batches: 4,
            prefetch_batches: 1,
            max_events: 5_000_000,
        };
        let no_pool = ServerConfig::new(ServerKind::TrainBoxNoPool, 16).build();
        let without = simulate(&no_pool, &w, &cfg).samples_per_sec;
        let with_pool = ServerConfig::new(ServerKind::TrainBox, 16)
            .pool_fpgas(8)
            .build();
        let with = simulate(&with_pool, &w, &cfg).samples_per_sec;
        assert!(
            with > without * 1.2,
            "pool should raise simulated throughput: {without} -> {with}"
        );
        // And it should approach the analytic TrainBox value.
        let ana = with_pool.throughput(&w).samples_per_sec;
        let err = (with - ana).abs() / ana;
        assert!(err < 0.25, "with={with} ana={ana}");
    }

    #[test]
    #[should_panic(expected = "need batches after warmup")]
    fn bad_sim_config_rejected() {
        let w = Workload::resnet50();
        let server = ServerConfig::new(ServerKind::Baseline, 8).build();
        let cfg = SimConfig { batches: 2, warmup_batches: 2, ..quick_cfg() };
        simulate(&server, &w, &cfg);
    }
}

//! Discrete-event simulation of the full training datapath.
//!
//! The analytic model in [`crate::arch`] is a closed-form bottleneck
//! analysis; this module *simulates* the same server at chunk granularity —
//! SSD reads through queued devices, DMA transfers as fluid flows over the
//! actual PCIe tree (with max-min fair link sharing), preparation on queued
//! CPU/FPGA servers, accelerator compute, and a global ring-synchronization
//! barrier with next-batch prefetching. Contention *emerges* from the
//! topology here instead of being assumed, which is how we cross-validate
//! the analytic model (and how the paper validated its own simulator against
//! a prototype, §VI-A).
//!
//! Granularity: samples move in chunks (default 256 samples) to bound the
//! event count; each accelerator may prefetch up to two batches ahead, the
//! overlap discipline of §II-B.

use crate::arch::{Server, ServerKind};
use crate::calib::{SampleSizes, DGX2, SSD_READ_BYTES_PER_SEC};
use crate::faults::{FaultDomain, FaultDowntime, FaultKind, FaultPlan, FaultStats, RetryPolicy};
use crate::profile::PrepProfile;
use trainbox_collective::SyncModel;
use trainbox_nn::Workload;
use trainbox_pcie::boxes::{PrepPoolNet, ServerTopology};
use trainbox_pcie::flow::{FlowId, FlowNet, FlowSim, FlowSpec};
use trainbox_pcie::{LinkId, NodeId};
use trainbox_sim::{
    Component, Engine, EventKey, FifoServer, ForkTracer, FxHashMap, Model, NoopTracer, Scheduler,
    SimError, SimTime, Tracer,
};

/// Configuration of one DES run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Samples per chunk (event granularity).
    pub chunk_samples: u64,
    /// Batches each accelerator must complete before the run ends.
    pub batches: u64,
    /// Batches to skip at the start when measuring steady-state throughput.
    pub warmup_batches: u64,
    /// Prefetch credit per accelerator, in batches (1 = the paper's
    /// next-batch prefetching).
    pub prefetch_batches: u64,
    /// Safety valve on total processed events.
    pub max_events: u64,
    /// Use the per-flow reference max-min allocator instead of the fast
    /// classed one (same results bit-for-bit; kept for A/B benchmarking).
    pub reference_allocator: bool,
    /// Worker threads for the parallel DES runner (`trainbox_sim::par`).
    /// `0` or `1` selects the sequential reference; any value produces
    /// byte-identical results (the parallel path only changes which thread
    /// advances each partition, never the merge order). Cluster runs
    /// partition per server; eligible single-server runs partition into
    /// intra-server lanes (`crate::intraserver`) — the partition itself is
    /// chosen by the request, never by the worker count, so `0` remains the
    /// byte-identical reference for every configuration.
    ///
    /// Like `deadline_ms` on a request, this is a quality-of-service hint,
    /// **not part of the question**: it is excluded from the canonical
    /// serialization and hash, so parallel and sequential spellings of the
    /// same what-if share one cache entry.
    pub parallel_workers: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            chunk_samples: 256,
            batches: 8,
            warmup_batches: 4,
            prefetch_batches: 1,
            max_events: 20_000_000,
            reference_allocator: false,
            parallel_workers: 0,
        }
    }
}

// Hand-written (not derived) to keep `parallel_workers` out of the canonical
// form: the canonical bytes answer "what is being asked", and the worker
// count only says how the host should compute the (identical) answer. Field
// order matches the declaration order the previous derived impl emitted, so
// existing canonical bytes and hashes are unchanged.
impl serde::Serialize for SimConfig {
    fn to_json(&self) -> serde::json::Json {
        serde::json::Json::Object(vec![
            ("chunk_samples".to_string(), serde::Serialize::to_json(&self.chunk_samples)),
            ("batches".to_string(), serde::Serialize::to_json(&self.batches)),
            ("warmup_batches".to_string(), serde::Serialize::to_json(&self.warmup_batches)),
            ("prefetch_batches".to_string(), serde::Serialize::to_json(&self.prefetch_batches)),
            ("max_events".to_string(), serde::Serialize::to_json(&self.max_events)),
            (
                "reference_allocator".to_string(),
                serde::Serialize::to_json(&self.reference_allocator),
            ),
        ])
    }
}

// Hand-written so requests may state only the knobs they care about; every
// omitted field falls back to [`SimConfig::default`].
impl serde::Deserialize for SimConfig {
    fn from_json(v: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::json::JsonError::type_mismatch("SimConfig", "object"))?;
        let mut cfg = SimConfig::default();
        for (key, val) in obj {
            match key.as_str() {
                "chunk_samples" => cfg.chunk_samples = serde::Deserialize::from_json(val)?,
                "batches" => cfg.batches = serde::Deserialize::from_json(val)?,
                "warmup_batches" => cfg.warmup_batches = serde::Deserialize::from_json(val)?,
                "prefetch_batches" => cfg.prefetch_batches = serde::Deserialize::from_json(val)?,
                "max_events" => cfg.max_events = serde::Deserialize::from_json(val)?,
                "reference_allocator" => {
                    cfg.reference_allocator = serde::Deserialize::from_json(val)?
                }
                "parallel_workers" => {
                    cfg.parallel_workers = serde::Deserialize::from_json(val)?
                }
                _ => {
                    return Err(serde::json::JsonError::type_mismatch(
                        "SimConfig",
                        "known field",
                    ))
                }
            }
        }
        Ok(cfg)
    }
}

/// Per-tenant outcome of a mixed-tenancy run: how the shared box's
/// throughput divides between the tenants, and what each gave up relative
/// to running alone.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TenantShare {
    /// Tenant workload name.
    pub name: String,
    /// Fraction of the interleaved sample stream that is this tenant's
    /// (its batch share).
    pub share: f64,
    /// Samples/s this tenant achieved inside the mixture.
    pub samples_per_sec: f64,
    /// Analytic samples/s the tenant would achieve running the box alone
    /// (same server configuration), scaled to its share of the batch.
    pub solo_samples_per_sec: f64,
    /// `solo / achieved` — ≥ 1 when interference costs the tenant
    /// throughput.
    pub slowdown: f64,
}

/// Interference and fairness accounting for a mixed-tenancy run.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TenancyStats {
    /// One entry per tenant, in declaration order.
    pub tenants: Vec<TenantShare>,
    /// Jain's fairness index over the tenants' normalized rates
    /// (`achieved / solo`); 1.0 = perfectly even interference.
    pub jain_fairness: f64,
}

impl TenancyStats {
    /// Compute the tenancy decomposition of `result` on `server`:
    /// per-tenant achieved rates (batch-share split of the mixture's
    /// throughput), solo analytic rates, slowdowns, and Jain's index.
    pub fn of(server: &Server, tenants: &[Workload], total_samples_per_sec: f64) -> TenancyStats {
        let total_batch: f64 = tenants.iter().map(|t| t.batch_size as f64).sum();
        let mut shares = Vec::with_capacity(tenants.len());
        for t in tenants {
            let share = t.batch_size as f64 / total_batch;
            let achieved = share * total_samples_per_sec;
            let solo = share * server.throughput(t).samples_per_sec;
            let slowdown = if achieved > 0.0 { solo / achieved } else { f64::INFINITY };
            shares.push(TenantShare {
                name: t.name.clone(),
                share,
                samples_per_sec: achieved,
                solo_samples_per_sec: solo,
                slowdown,
            });
        }
        let norm: Vec<f64> = shares
            .iter()
            .map(|s| {
                if s.solo_samples_per_sec > 0.0 {
                    s.samples_per_sec / s.solo_samples_per_sec
                } else {
                    0.0
                }
            })
            .collect();
        let sum: f64 = norm.iter().sum();
        let sq: f64 = norm.iter().map(|x| x * x).sum();
        let jain = if sq > 0.0 { sum * sum / (norm.len() as f64 * sq) } else { 0.0 };
        TenancyStats { tenants: shares, jain_fairness: jain }
    }
}

/// Result of a DES run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Steady-state throughput over the measured window, samples/s.
    pub samples_per_sec: f64,
    /// Completion time of every global batch (after synchronization).
    pub batch_done_at: Vec<SimTime>,
    /// Events processed.
    pub events: u64,
    /// Max-min rate recomputations performed across both flow simulators —
    /// the simulator-core cost metric `bench_sim` tracks.
    pub recomputes: u64,
    /// Total bytes carried by each directed PCIe link over the whole run,
    /// indexed like the topology's links.
    pub link_bytes: Vec<f64>,
    /// Bytes that crossed the root complex (sum over RC-incident links).
    pub rc_bytes: f64,
    /// What the fault layer injected and observed (all-zero for a run
    /// without a fault plan).
    pub faults: FaultStats,
    /// Mixed-tenancy decomposition — present only when the simulated
    /// workload declared tenants.
    pub tenancy: Option<TenancyStats>,
}

// Hand-written so the `tenancy` key is emitted only when present: every
// pre-DSL result serializes to exactly the bytes the derived impl produced
// (same fields, declaration order), keeping cached single-workload result
// JSON byte-identical.
impl serde::Serialize for SimResult {
    fn to_json(&self) -> serde::json::Json {
        let mut fields = vec![
            ("samples_per_sec".to_string(), serde::Serialize::to_json(&self.samples_per_sec)),
            ("batch_done_at".to_string(), serde::Serialize::to_json(&self.batch_done_at)),
            ("events".to_string(), serde::Serialize::to_json(&self.events)),
            ("recomputes".to_string(), serde::Serialize::to_json(&self.recomputes)),
            ("link_bytes".to_string(), serde::Serialize::to_json(&self.link_bytes)),
            ("rc_bytes".to_string(), serde::Serialize::to_json(&self.rc_bytes)),
            ("faults".to_string(), serde::Serialize::to_json(&self.faults)),
        ];
        if let Some(t) = &self.tenancy {
            fields.push(("tenancy".to_string(), serde::Serialize::to_json(t)));
        }
        serde::json::Json::Object(fields)
    }
}

impl SimResult {
    /// Fraction of all transferred bytes that crossed the root complex —
    /// the quantity Step 3 (clustering) drives to zero.
    pub fn rc_share(&self) -> f64 {
        let total: f64 = self.link_bytes.iter().sum();
        if total == 0.0 {
            0.0
        } else {
            self.rc_bytes / total
        }
    }
}

/// Where a chunk currently is in the datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Stage {
    /// In flight from its SSD toward the preparation site (via host memory
    /// on staged designs, direct P2P otherwise).
    ToPrep,
    /// In flight host → prep accelerator (staged designs, second leg).
    HostToPrep,
    /// Queued/processing on the preparation device.
    Prep,
    /// In flight prep accelerator → host (staged designs, return leg).
    PrepToHost,
    /// In flight over Ethernet toward a prep-pool FPGA (TrainBox offload).
    EthToPool,
    /// Queued/processing on a prep-pool FPGA.
    PoolPrep,
    /// Prepared tensor returning over Ethernet to the in-box FPGA.
    EthFromPool,
    /// In flight toward its accelerator (final leg).
    ToAccel,
    /// Waiting out a retry backoff after a transiently failed prep request.
    PrepRetryWait,
}

#[derive(Debug, Clone, Copy)]
struct Chunk {
    acc: usize,
    samples: u64,
    stage: Stage,
    prep_dev: usize,
    ssd: usize,
    /// Prep-pool FPGA handling this chunk (only meaningful mid-offload).
    pool_dev: usize,
    /// Dispatch attempt, bumped on retries and crash re-dispatch; prep
    /// completions stamped with an older attempt are stale and ignored.
    attempt: u32,
}

/// Ethernet prep-pool state for the DES.
struct EthPool {
    net: PrepPoolNet,
    flows: FlowSim,
    /// Outstanding keyed completion-check event, cancelled when superseded.
    check: Option<EventKey>,
    cont: FxHashMap<FlowId, u64>,
    /// Start instant of each in-flight Ethernet flow; populated only while a
    /// real tracer is attached (span endpoints for the trace layer).
    started: FxHashMap<FlowId, SimTime>,
    pool_servers: Vec<FifoServer>,
    pool_service: SimTime,
    /// Offload every `period`-th chunk per in-box FPGA (0 = never).
    period: u64,
    counters: Vec<u64>,
    rr_pool: usize,
}

#[derive(Debug, Clone, Copy, Default)]
struct AccelState {
    /// Prepared samples buffered at the accelerator, ready to consume.
    buffered: u64,
    /// Samples issued to the pipeline but not yet delivered.
    in_flight: u64,
    /// Samples issued over this accelerator's lifetime.
    issued_total: u64,
    /// Currently computing a batch.
    computing: bool,
    /// Batches fully computed (waiting on or past sync).
    batches_computed: u64,
}

#[derive(Debug)]
pub(crate) enum Ev {
    /// Prime the pipeline at t = 0.
    Start,
    /// An SSD finished reading a chunk.
    SsdDone(u64),
    /// Re-examine the flow network (keyed; superseded checks are lazily
    /// cancelled and never fire).
    FlowCheck,
    /// Re-examine the Ethernet prep network.
    EthFlowCheck,
    /// A prep-pool FPGA finished a chunk.
    PoolPrepDone(u64),
    /// A preparation device finished a chunk (attempt-stamped; completions
    /// from before a crash re-dispatch are stale and ignored).
    PrepDone(u64, u32),
    /// An accelerator finished computing its current batch.
    ComputeDone(usize),
    /// The ring synchronization for the current generation completed.
    SyncDone,
    /// Injection instant of fault plan entry `i`.
    Fault(usize),
    /// End of fault plan entry `i`'s degradation window.
    FaultRecover(usize),
    /// Backoff elapsed: re-dispatch the chunk's prep request.
    PrepRetry(u64),
    /// Cluster mode only: the coordinator released the global synchronization
    /// barrier — close the generation at the granted global time.
    ClusterResume,
}

/// Mutable degraded-mode state: who is alive, how fast, and what the fault
/// layer has observed so far. Constructed all-healthy; an empty plan leaves
/// it untouched for the whole run.
struct FaultRuntime {
    /// The plan, sorted by injection time.
    events: Vec<(SimTime, FaultKind)>,
    retry: RetryPolicy,
    accel_alive: Vec<bool>,
    prep_alive: Vec<bool>,
    /// Speed multiplier per prep device (1.0 nominal; < 1 while throttled).
    prep_speed: Vec<f64>,
    /// Until when each prep device rejects new requests.
    prep_flaky_until: Vec<SimTime>,
    /// Chunks assigned to each prep device's local queue and not yet
    /// prepared — the load metric for greedy max-min rebalancing.
    prep_outstanding: Vec<u64>,
    /// Nominal capacity of every PCIe link, for restoring after degradation.
    nominal_caps: Vec<f64>,
    stats: FaultStats,
}

impl FaultRuntime {
    fn new(plan: &FaultPlan, n_accels: usize, n_preps: usize, nominal_caps: Vec<f64>) -> Self {
        FaultRuntime {
            events: plan
                .sorted_events()
                .iter()
                .map(|ev| (SimTime::from_secs_f64(ev.at_secs), ev.kind))
                .collect(),
            retry: plan.retry,
            accel_alive: vec![true; n_accels],
            prep_alive: vec![true; n_preps],
            prep_speed: vec![1.0; n_preps],
            prep_flaky_until: vec![SimTime::ZERO; n_preps],
            prep_outstanding: vec![0; n_preps],
            nominal_caps,
            stats: FaultStats::default(),
        }
    }

    fn alive_accels(&self) -> usize {
        self.accel_alive.iter().filter(|&&a| a).count()
    }

    /// Least-loaded surviving prep device (greedy water-filling; ties break
    /// toward the lowest index for determinism).
    ///
    /// # Panics
    ///
    /// Panics if no prep device survives.
    fn least_loaded_prep(&self) -> usize {
        self.prep_alive
            .iter()
            .enumerate()
            .filter(|&(_, &alive)| alive)
            .min_by_key(|&(dev, _)| self.prep_outstanding[dev])
            .map(|(dev, _)| dev)
            .expect("no preparation device survives its faults")
    }
}

pub(crate) struct PipelineModel<T: Tracer> {
    kind: ServerKind,
    topo: ServerTopology,
    sizes: SampleSizes,
    chunk: u64,
    batch: u64,
    prefetch: u64,
    target_batches: u64,
    t_comp: SimTime,
    t_sync: SimTime,

    flows: FlowSim,
    /// Outstanding keyed completion-check event, cancelled when superseded.
    flow_check: Option<EventKey>,
    flow_cont: FxHashMap<FlowId, u64>,
    link_bytes: Vec<f64>,

    /// Ethernet prep network (TrainBox with pool): flow sim over the star
    /// topology, pool FPGA queues, and the offload cadence.
    eth: Option<EthPool>,

    ssds: Vec<FifoServer>,
    preps: Vec<FifoServer>,
    prep_service: SimTime,

    chunks: FxHashMap<u64, Chunk>,
    next_chunk: u64,
    accels: Vec<AccelState>,
    sync_gen: u64,
    sync_in_progress: bool,
    batch_done_at: Vec<SimTime>,
    /// Samples contributed by each completed generation (surviving
    /// accelerators x batch at sync time).
    batch_samples: Vec<u64>,
    rr_ssd: usize,
    rr_prep: usize,
    done: bool,

    /// Cluster mode: when set, a finished local ring sync does **not** close
    /// the generation — the model parks at the global barrier
    /// (`at_barrier`) until the cluster coordinator grants a resume time.
    cluster_hold: bool,
    /// Parked at the global synchronization barrier, waiting for
    /// [`Ev::ClusterResume`]. Read-and-cleared by the cluster runner.
    at_barrier: bool,

    /// Intra-server lane mode: when set, this model instance simulates only
    /// the accelerators in the range (plus their nominally assigned SSD and
    /// prep device). The lane parks at the ring barrier once *its* devices
    /// arrive — without scheduling [`Ev::SyncDone`] — and the lane
    /// coordinator (`crate::intraserver`) grants the global release time,
    /// exactly the role the cluster coordinator plays one level up.
    lane: Option<std::ops::Range<usize>>,

    /// Synchronization latency model (ring, parameter server, or
    /// all-to-all, per the workload's declared pattern) and gradient size,
    /// kept so the synchronization time can be recomputed when the group
    /// re-forms over the survivors after a dropout.
    sync: SyncModel,
    model_bytes: u64,
    faults: FaultRuntime,

    /// Structured trace sink. With [`NoopTracer`] every hook below guards on
    /// `enabled()` (a constant `false`) and monomorphizes to nothing, so the
    /// untraced simulation is bit-identical to the pre-trace code.
    tracer: T,
    /// Start instant of each in-flight PCIe flow (span endpoints; populated
    /// only while the tracer is enabled). Kept separate from the Ethernet
    /// pool's map because the two [`FlowSim`]s have independent id spaces.
    flow_started: FxHashMap<FlowId, SimTime>,
}

/// Trace span name for a transfer leg, keyed by the stage the chunk was in
/// when its flow completed.
fn xfer_name(stage: Stage) -> &'static str {
    match stage {
        Stage::ToPrep => "xfer:to_prep",
        Stage::HostToPrep => "xfer:host_to_prep",
        Stage::PrepToHost => "xfer:prep_to_host",
        Stage::ToAccel => "xfer:to_accel",
        Stage::EthToPool => "eth:to_pool",
        Stage::EthFromPool => "eth:from_pool",
        _ => "xfer",
    }
}

/// Trace track (lane) for a fault instant: the index of the device or link
/// the fault targets.
fn fault_track(kind: FaultKind) -> u32 {
    match kind {
        FaultKind::SsdStall { ssd, .. } => ssd as u32,
        FaultKind::PrepCrash { dev }
        | FaultKind::PrepSlowdown { dev, .. }
        | FaultKind::PrepTransient { dev, .. } => dev as u32,
        FaultKind::LinkDegrade { link, .. } => link as u32,
        FaultKind::AccelDropout { acc } => acc as u32,
    }
}

impl<T: Tracer> PipelineModel<T> {
    pub(crate) fn new(
        server: &Server,
        workload: &Workload,
        cfg: &SimConfig,
        plan: &FaultPlan,
        tracer: T,
    ) -> Self {
        // Tenanted workloads simulate as their blended flat aggregate; the
        // prep profile blends the per-sample costs the same way.
        let workload = &crate::profile::effective_workload(workload);
        let kind = server.kind();
        let topo = server.topology().clone();
        let profile = PrepProfile::of(workload);
        let sizes = profile.sizes;
        let batch = server.batch_for(workload);
        let n = server.n_accels();
        let eff = crate::calib::batch_efficiency(batch, workload.batch_size);
        let t_comp =
            SimTime::from_secs_f64(batch as f64 / (workload.accel_samples_per_sec * eff));
        let sync = server.sync_model(workload);
        let t_sync = sync.sync_time(workload.model_bytes(), n);

        let n_links = topo.topo.link_count();
        let traced = tracer.enabled();
        let mut flows = FlowSim::new(FlowNet::from_topology(&topo.topo));
        flows.set_reference_allocator(cfg.reference_allocator);
        flows.set_trace(traced);
        // TrainBox-with-pool: set up the Ethernet network and the offload
        // cadence from the initializer's deficit analysis.
        let eth = if kind == ServerKind::TrainBox {
            server.prep_pool().and_then(|net| {
                if net.pool_nics.is_empty() {
                    return None;
                }
                let f = profile.fpga_samples_per_sec;
                let plan = crate::initializer::plan(server, workload, net.pool_nics.len());
                let demand = plan.required_prep_rate;
                let local = plan.in_box_prep_rate;
                if demand <= local {
                    return None;
                }
                // Offload fraction of all chunks = deficit / demand; send
                // every period-th chunk to the pool.
                let frac = ((demand - local) / demand).clamp(0.0, 1.0);
                let period = (1.0 / frac).round().max(1.0) as u64;
                let mut eth_flows = FlowSim::new(FlowNet::from_topology(&net.topo));
                eth_flows.set_reference_allocator(cfg.reference_allocator);
                eth_flows.set_trace(traced);
                Some(EthPool {
                    flows: eth_flows,
                    pool_servers: net.pool_nics.iter().map(|_| FifoServer::new(1)).collect(),
                    pool_service: SimTime::from_secs_f64(cfg.chunk_samples as f64 / f),
                    period,
                    counters: vec![0; net.box_nics.len()],
                    check: None,
                    cont: FxHashMap::default(),
                    started: FxHashMap::default(),
                    rr_pool: 0,
                    net: net.clone(),
                })
            })
        } else {
            None
        };
        let ssds: Vec<FifoServer> = topo.ssds.iter().map(|_| FifoServer::new(1)).collect();
        let (preps, prep_service): (Vec<FifoServer>, SimTime) = match kind {
            ServerKind::Baseline => {
                // One fluid CPU pool: each chunk occupies one of the 48
                // core-slots for `chunk x per-sample-core-time`.
                let per = profile.cpu_secs_per_sample;
                (
                    vec![FifoServer::new(DGX2.cpu_cores as usize)],
                    SimTime::from_secs_f64(cfg.chunk_samples as f64 * per),
                )
            }
            ServerKind::AccGpu => {
                let per = profile.gpu_samples_per_sec;
                (
                    topo.preps.iter().map(|_| FifoServer::new(1)).collect(),
                    SimTime::from_secs_f64(cfg.chunk_samples as f64 / per),
                )
            }
            _ => {
                let per = profile.fpga_samples_per_sec;
                (
                    topo.preps.iter().map(|_| FifoServer::new(1)).collect(),
                    SimTime::from_secs_f64(cfg.chunk_samples as f64 / per),
                )
            }
        };

        let domain = fault_domain(server);
        debug_assert_eq!(domain.n_ssds, ssds.len());
        debug_assert_eq!(domain.n_preps, preps.len());
        debug_assert_eq!(domain.n_links, n_links);
        if let Err(e) = plan.validate(&domain) {
            panic!("invalid fault plan: {e}");
        }
        let nominal_caps: Vec<f64> = (0..n_links)
            .map(|i| flows.net().capacity(LinkId::from_index(i)))
            .collect();
        let faults = FaultRuntime::new(plan, n, preps.len(), nominal_caps);

        PipelineModel {
            kind,
            topo,
            sizes,
            chunk: cfg.chunk_samples,
            batch,
            prefetch: cfg.prefetch_batches,
            target_batches: cfg.batches,
            t_comp,
            t_sync,
            link_bytes: vec![0.0; n_links],
            flows,
            flow_check: None,
            flow_cont: FxHashMap::default(),
            eth,
            ssds,
            preps,
            prep_service,
            chunks: FxHashMap::default(),
            next_chunk: 0,
            accels: vec![AccelState::default(); n],
            sync_gen: 0,
            sync_in_progress: false,
            batch_done_at: Vec::new(),
            batch_samples: Vec::new(),
            rr_ssd: 0,
            rr_prep: 0,
            done: false,
            cluster_hold: false,
            at_barrier: false,
            lane: None,
            sync,
            model_bytes: workload.model_bytes(),
            faults,
            tracer,
            flow_started: FxHashMap::default(),
        }
    }

    // --- cluster-runner interface (crate-private) -------------------------
    //
    // The cluster DES in `crate::scaleout` drives one `PipelineModel` per
    // server as a logical process: it needs to switch the model into
    // barrier-hold mode, observe/clear the barrier flag, and pull the
    // per-generation records out at the end. Nothing here changes solo-run
    // behavior.

    /// Switch into cluster mode: local syncs park at the global barrier
    /// instead of closing generations (see [`Ev::ClusterResume`]).
    pub(crate) fn set_cluster_hold(&mut self) {
        self.cluster_hold = true;
    }

    /// Switch into intra-server lane mode: simulate only accelerators
    /// `lane` (their refill traffic, prep work, and compute), and park at
    /// the ring barrier once they all arrive. Used by `crate::intraserver`.
    pub(crate) fn set_lane(&mut self, lane: std::ops::Range<usize>) {
        debug_assert!(!lane.is_empty() && lane.end <= self.accels.len());
        self.lane = Some(lane);
    }

    /// The accelerator indices this model instance drives: the lane in lane
    /// mode, every accelerator otherwise.
    fn lane_range(&self) -> std::ops::Range<usize> {
        self.lane.clone().unwrap_or(0..self.accels.len())
    }

    /// Bytes moved over each directed PCIe link so far.
    pub(crate) fn link_bytes(&self) -> &[f64] {
        &self.link_bytes
    }

    /// Parked at the global barrier? (Read-only form for run predicates.)
    pub(crate) fn at_barrier(&self) -> bool {
        self.at_barrier
    }

    /// Read **and clear** the barrier flag. Clearing keeps the runner's
    /// "advance until barrier or done" predicate from re-firing before the
    /// resume event is processed.
    pub(crate) fn take_barrier(&mut self) -> bool {
        std::mem::take(&mut self.at_barrier)
    }

    /// Whether the run reached its target batches.
    pub(crate) fn is_done(&self) -> bool {
        self.done
    }

    /// Samples synchronized by each closed generation.
    pub(crate) fn batch_samples(&self) -> &[u64] {
        &self.batch_samples
    }

    /// Accelerators this server started with.
    pub(crate) fn n_accels(&self) -> usize {
        self.accels.len()
    }

    /// Per-accelerator batch size.
    pub(crate) fn batch_size(&self) -> u64 {
        self.batch
    }

    /// Max-min recomputations across both flow simulators.
    pub(crate) fn recompute_count(&self) -> u64 {
        self.flows.recomputes() + self.eth.as_ref().map_or(0, |e| e.flows.recomputes())
    }

    /// Fault-layer statistics observed so far.
    pub(crate) fn fault_stats(&self) -> &FaultStats {
        &self.faults.stats
    }

    /// Drain any pending flow-trace counters and hand back the tracer.
    pub(crate) fn into_tracer(mut self) -> T {
        if self.tracer.enabled() {
            self.drain_flow_trace();
        }
        self.tracer
    }

    /// Convert accumulated flow-rate recompute logs into counter records.
    /// Called once per handled event (and once at the end of a run) while
    /// the tracer is enabled; a no-op drain otherwise.
    fn drain_flow_trace(&mut self) {
        for ev in self.flows.take_trace() {
            self.tracer
                .counter(Component::Flow, "pcie_active_flows", ev.at, ev.active as f64);
            self.tracer
                .counter(Component::Flow, "pcie_min_rate", ev.at, ev.min_rate);
            self.tracer
                .counter(Component::Flow, "pcie_max_rate", ev.at, ev.max_rate);
        }
        if let Some(eth) = self.eth.as_mut() {
            for ev in eth.flows.take_trace() {
                self.tracer
                    .counter(Component::Flow, "eth_active_flows", ev.at, ev.active as f64);
                self.tracer
                    .counter(Component::Flow, "eth_min_rate", ev.at, ev.min_rate);
                self.tracer
                    .counter(Component::Flow, "eth_max_rate", ev.at, ev.max_rate);
            }
        }
    }

    /// The SSD and prep device serving accelerator `acc`. A preferred prep
    /// device that has crashed is replaced by the least-loaded survivor
    /// (greedy max-min rebalancing of future work).
    fn assign_devices(&mut self, acc: usize) -> (usize, usize) {
        let (ssd, prep) = self.assign_devices_nominal(acc);
        if self.faults.prep_alive[prep] {
            (ssd, prep)
        } else {
            (ssd, self.faults.least_loaded_prep())
        }
    }

    fn assign_devices_nominal(&mut self, acc: usize) -> (usize, usize) {
        match self.kind {
            ServerKind::TrainBox | ServerKind::TrainBoxNoPool => {
                // Everything local to the accelerator's train box: 8 accs,
                // 2 SSDs, 2 FPGAs per box; accelerator halves map to the
                // FPGA sharing their leaf switch.
                let bx = acc / 8;
                let half = (acc / 4) % 2;
                (bx * 2 + half, bx * 2 + half)
            }
            ServerKind::Baseline => {
                let ssd = self.rr_ssd % self.ssds.len();
                self.rr_ssd += 1;
                (ssd, 0)
            }
            _ => {
                let ssd = self.rr_ssd % self.ssds.len();
                self.rr_ssd += 1;
                let prep = self.rr_prep % self.preps.len();
                self.rr_prep += 1;
                (ssd, prep)
            }
        }
    }

    /// Spawn chunks for `acc` while prefetch credit remains.
    fn refill(&mut self, now: SimTime, acc: usize, sched: &mut Scheduler<Ev>) {
        if self.done || !self.faults.accel_alive[acc] {
            return;
        }
        let credit = self.prefetch * self.batch;
        loop {
            let st = &self.accels[acc];
            let lifetime_target = self.target_batches * self.batch;
            if st.issued_total >= lifetime_target || st.buffered + st.in_flight >= credit {
                return;
            }
            let samples = self.chunk.min(lifetime_target - st.issued_total);
            let (ssd, prep_dev) = self.assign_devices(acc);
            self.faults.prep_outstanding[prep_dev] += 1;
            let id = self.next_chunk;
            self.next_chunk += 1;
            self.chunks.insert(
                id,
                Chunk { acc, samples, stage: Stage::ToPrep, prep_dev, ssd, pool_dev: 0, attempt: 0 },
            );
            let st = &mut self.accels[acc];
            st.in_flight += samples;
            st.issued_total += samples;
            let read = SimTime::from_secs_f64(
                samples as f64 * self.sizes.stored / SSD_READ_BYTES_PER_SEC,
            );
            let done_at = self.ssds[ssd].enqueue(now, read);
            if self.tracer.enabled() {
                // The FIFO server may start the read after `now`; the span
                // covers the service interval, not the queueing delay.
                self.tracer.span(
                    Component::Pipeline,
                    "ssd_read",
                    ssd as u32,
                    done_at.saturating_sub(read),
                    done_at,
                );
            }
            sched.schedule_at(done_at, Ev::SsdDone(id));
        }
    }

    fn add_flow(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: f64,
        cont: u64,
        sched: &mut Scheduler<Ev>,
    ) {
        let route = self.topo.topo.route(from, to);
        for l in &route {
            self.link_bytes[l.index()] += bytes;
        }
        let spec = if route.is_empty() {
            // Node-local hand-off: sequence it through the flow machinery at
            // an effectively infinite rate.
            FlowSpec::with_demand(route, 1e15)
        } else {
            FlowSpec::new(route)
        };
        let fid = self.flows.add_flow(now, spec, bytes.max(1.0));
        if self.tracer.enabled() {
            self.flow_started.insert(fid, now);
        }
        self.flow_cont.insert(fid, cont);
        self.bump_flows(sched);
    }

    /// Re-arm the earliest flow completion under the current rate set. The
    /// previous check (if still pending) is superseded: lazily cancelled so
    /// the engine drops it unfired instead of delivering a stale event.
    fn bump_flows(&mut self, sched: &mut Scheduler<Ev>) {
        if let Some(key) = self.flow_check.take() {
            sched.cancel(key);
        }
        if let Some((t, _)) = self.flows.next_completion() {
            self.flow_check = Some(sched.schedule_keyed_at(t, Ev::FlowCheck));
        }
    }

    fn bump_eth(&mut self, sched: &mut Scheduler<Ev>) {
        let eth = self.eth.as_mut().expect("ethernet pool active");
        if let Some(key) = eth.check.take() {
            sched.cancel(key);
        }
        if let Some((t, _)) = eth.flows.next_completion() {
            eth.check = Some(sched.schedule_keyed_at(t, Ev::EthFlowCheck));
        }
    }

    fn add_eth_flow(
        &mut self,
        now: SimTime,
        from: trainbox_pcie::NodeId,
        to: trainbox_pcie::NodeId,
        bytes: f64,
        cont: u64,
        sched: &mut Scheduler<Ev>,
    ) {
        let traced = self.tracer.enabled();
        let eth = self.eth.as_mut().expect("ethernet pool active");
        let route = eth.net.topo.route(from, to);
        let fid = eth.flows.add_flow(now, FlowSpec::new(route), bytes.max(1.0));
        if traced {
            eth.started.insert(fid, now);
        }
        eth.cont.insert(fid, cont);
        self.bump_eth(sched);
    }

    fn queue_prep(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks[&id];
        // TrainBox with a pool: ship every period-th chunk of this in-box
        // FPGA to the pool over Ethernet instead of preparing locally.
        if let Some(eth) = self.eth.as_mut() {
            let dev = chunk.prep_dev;
            eth.counters[dev] += 1;
            if eth.period > 0 && eth.counters[dev] % eth.period == 0 {
                let from = eth.net.box_nics[dev];
                let pool_idx = eth.rr_pool % eth.pool_servers.len();
                eth.rr_pool += 1;
                let to = eth.net.pool_nics[pool_idx];
                // Stash the chosen pool device in the chunk's ssd field? No —
                // keep a dedicated map: encode pool index via counters order
                // is fragile; instead store in chunk.pool_dev.
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::EthToPool;
                self.chunks.get_mut(&id).expect("chunk exists").pool_dev = pool_idx;
                let bytes = chunk.samples as f64 * self.sizes.stored;
                // Offloaded chunks never touch the local prep queue.
                self.faults.prep_outstanding[dev] = self.faults.prep_outstanding[dev].saturating_sub(1);
                self.add_eth_flow(now, from, to, bytes, id, sched);
                return;
            }
        }
        self.dispatch_prep(now, id, sched);
    }

    /// Hand the chunk to its prep device's queue, handling a crashed target
    /// (data re-routed to the least-loaded survivor) and a transiently
    /// failing one (retry with exponential backoff per the plan's policy).
    fn dispatch_prep(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks[&id];
        let dev = chunk.prep_dev;
        if !self.faults.prep_alive[dev] {
            // The device died while this chunk was in flight toward it: move
            // the data to a surviving device and restart from the transfer.
            let new_dev = self.faults.least_loaded_prep();
            self.faults.prep_outstanding[dev] =
                self.faults.prep_outstanding[dev].saturating_sub(1);
            self.faults.prep_outstanding[new_dev] += 1;
            let c = self.chunks.get_mut(&id).expect("chunk exists");
            c.prep_dev = new_dev;
            c.attempt = c.attempt.saturating_add(1);
            self.reroute_to_prep(now, id, dev, new_dev, sched);
            return;
        }
        if now < self.faults.prep_flaky_until[dev] {
            // Request rejected. Retry after timeout + exponential backoff,
            // or give up and re-read the chunk from its SSD.
            let attempt = chunk.attempt;
            let c = self.chunks.get_mut(&id).expect("chunk exists");
            c.attempt = c.attempt.saturating_add(1);
            if attempt < self.faults.retry.max_retries {
                c.stage = Stage::PrepRetryWait;
                self.faults.stats.retries += 1;
                let delay = SimTime::from_secs_f64(
                    self.faults.retry.timeout_secs + self.faults.retry.backoff_secs(attempt),
                );
                sched.schedule_in(now, delay, Ev::PrepRetry(id));
            } else {
                // Retries exhausted: the read is wasted; fetch a fresh copy.
                c.attempt = 0;
                c.stage = Stage::ToPrep;
                self.faults.stats.failed_requests += 1;
                self.faults.stats.wasted_samples += chunk.samples;
                let read = SimTime::from_secs_f64(
                    chunk.samples as f64 * self.sizes.stored / SSD_READ_BYTES_PER_SEC,
                );
                let done_at = self.ssds[chunk.ssd].enqueue(now, read);
                sched.schedule_at(done_at, Ev::SsdDone(id));
            }
            return;
        }
        let c = self.chunks.get_mut(&id).expect("chunk exists");
        c.stage = Stage::Prep;
        let attempt = c.attempt;
        let service =
            SimTime::from_secs_f64(self.prep_service.as_secs_f64() / self.faults.prep_speed[dev]);
        let done = self.preps[dev].enqueue(now, service);
        if self.tracer.enabled() {
            self.tracer.span(
                Component::Pipeline,
                "prep",
                dev as u32,
                done.saturating_sub(service),
                done,
            );
        }
        sched.schedule_at(done, Ev::PrepDone(id, attempt));
    }

    /// Model the data movement that re-dispatching a chunk from a crashed
    /// prep device requires: staged designs re-send the copy held in host
    /// memory, P2P/clustered designs move it device-to-device.
    fn reroute_to_prep(
        &mut self,
        now: SimTime,
        id: u64,
        old_dev: usize,
        new_dev: usize,
        sched: &mut Scheduler<Ev>,
    ) {
        let chunk = self.chunks[&id];
        let stored = chunk.samples as f64 * self.sizes.stored;
        match self.kind {
            ServerKind::Baseline => {
                unreachable!("the baseline's single CPU pool cannot crash and survive")
            }
            ServerKind::AccFpga | ServerKind::AccGpu => {
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::HostToPrep;
                let dst = self.topo.preps[new_dev];
                self.add_flow(now, self.topo.topo.root(), dst, stored, id, sched);
            }
            _ => {
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::ToPrep;
                let from = self.topo.preps[old_dev];
                let to = self.topo.preps[new_dev];
                self.add_flow(now, from, to, stored, id, sched);
            }
        }
    }

    /// A retry backoff elapsed: re-pick the best target and dispatch again.
    fn on_prep_retry(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let Some(&chunk) = self.chunks.get(&id) else { return };
        debug_assert_eq!(chunk.stage, Stage::PrepRetryWait);
        // Prefer a healthy (alive, not flaky) device; if all survivors are
        // flaky the dispatch fails again and backs off further.
        let healthy = self
            .faults
            .prep_alive
            .iter()
            .enumerate()
            .filter(|&(dev, &alive)| alive && now >= self.faults.prep_flaky_until[dev])
            .min_by_key(|&(dev, _)| self.faults.prep_outstanding[dev])
            .map(|(dev, _)| dev);
        let target = healthy.unwrap_or_else(|| self.faults.least_loaded_prep());
        if target != chunk.prep_dev {
            self.faults.prep_outstanding[chunk.prep_dev] =
                self.faults.prep_outstanding[chunk.prep_dev].saturating_sub(1);
            self.faults.prep_outstanding[target] += 1;
            self.chunks.get_mut(&id).expect("chunk exists").prep_dev = target;
        }
        self.dispatch_prep(now, id, sched);
    }

    fn on_eth_flow_done(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks[&id];
        match chunk.stage {
            Stage::EthToPool => {
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::PoolPrep;
                let eth = self.eth.as_mut().expect("ethernet pool active");
                let service = eth.pool_service;
                let done = eth.pool_servers[chunk.pool_dev].enqueue(now, service);
                if self.tracer.enabled() {
                    self.tracer.span(
                        Component::Pipeline,
                        "pool_prep",
                        chunk.pool_dev as u32,
                        done.saturating_sub(service),
                        done,
                    );
                }
                sched.schedule_at(done, Ev::PoolPrepDone(id));
            }
            Stage::EthFromPool => {
                // Back at the in-box FPGA: final P2P hop to the accelerator.
                let tensor = chunk.samples as f64 * self.sizes.tensor;
                let prep_node = self.topo.preps[chunk.prep_dev];
                let acc_node = self.topo.accs[chunk.acc];
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::ToAccel;
                self.add_flow(now, prep_node, acc_node, tensor, id, sched);
            }
            other => unreachable!("unexpected ethernet completion in {other:?}"),
        }
    }

    fn on_pool_prep_done(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks[&id];
        let eth = self.eth.as_ref().expect("ethernet pool active");
        let from = eth.net.pool_nics[chunk.pool_dev];
        let to = eth.net.box_nics[chunk.prep_dev];
        let tensor = chunk.samples as f64 * self.sizes.tensor;
        self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::EthFromPool;
        self.add_eth_flow(now, from, to, tensor, id, sched);
    }

    fn on_ssd_done(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks[&id];
        let ssd_node = self.topo.ssds[chunk.ssd];
        let stored = chunk.samples as f64 * self.sizes.stored;
        match self.kind {
            // Staged designs: SSD -> host memory first.
            ServerKind::Baseline | ServerKind::AccFpga | ServerKind::AccGpu => {
                self.add_flow(now, ssd_node, self.topo.topo.root(), stored, id, sched);
            }
            // P2P / clustered: SSD -> prep accelerator directly.
            _ => {
                let dst = self.topo.preps[chunk.prep_dev];
                self.add_flow(now, ssd_node, dst, stored, id, sched);
            }
        }
    }

    fn on_flow_done(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks[&id];
        match chunk.stage {
            Stage::ToPrep => match self.kind {
                ServerKind::AccFpga | ServerKind::AccGpu => {
                    // Second leg: host -> prep accelerator.
                    let dst = self.topo.preps[chunk.prep_dev];
                    let bytes = chunk.samples as f64 * self.sizes.stored;
                    self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::HostToPrep;
                    self.add_flow(now, self.topo.topo.root(), dst, bytes, id, sched);
                }
                // Baseline preps on the host itself; P2P/clustered arrive at
                // the prep device directly.
                _ => self.queue_prep(now, id, sched),
            },
            Stage::HostToPrep => self.queue_prep(now, id, sched),
            Stage::PrepToHost => {
                // Final leg: host -> accelerator.
                let tensor = chunk.samples as f64 * self.sizes.tensor;
                let acc_node = self.topo.accs[chunk.acc];
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::ToAccel;
                self.add_flow(now, self.topo.topo.root(), acc_node, tensor, id, sched);
            }
            Stage::ToAccel => self.deliver(now, id, sched),
            Stage::Prep | Stage::PoolPrep | Stage::PrepRetryWait => {
                unreachable!("flows never complete while queued on a device")
            }
            Stage::EthToPool | Stage::EthFromPool => {
                unreachable!("ethernet legs complete through EthFlowCheck")
            }
        }
    }

    fn on_prep_done(&mut self, now: SimTime, id: u64, attempt: u32, sched: &mut Scheduler<Ev>) {
        let Some(&chunk) = self.chunks.get(&id) else { return };
        if chunk.attempt != attempt {
            // A completion from before this chunk was re-dispatched (its
            // device crashed with the chunk queued): stale, ignore.
            return;
        }
        self.faults.prep_outstanding[chunk.prep_dev] =
            self.faults.prep_outstanding[chunk.prep_dev].saturating_sub(1);
        let tensor = chunk.samples as f64 * self.sizes.tensor;
        let acc_node = self.topo.accs[chunk.acc];
        match self.kind {
            ServerKind::Baseline => {
                // Prepared in host memory; ship host -> accelerator.
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::ToAccel;
                self.add_flow(now, self.topo.topo.root(), acc_node, tensor, id, sched);
            }
            ServerKind::AccFpga | ServerKind::AccGpu => {
                // Staged: prep -> host, then host -> acc.
                let prep_node = self.topo.preps[chunk.prep_dev];
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::PrepToHost;
                self.add_flow(now, prep_node, self.topo.topo.root(), tensor, id, sched);
            }
            _ => {
                // P2P / clustered: prep -> accelerator directly.
                let prep_node = self.topo.preps[chunk.prep_dev];
                self.chunks.get_mut(&id).expect("chunk exists").stage = Stage::ToAccel;
                self.add_flow(now, prep_node, acc_node, tensor, id, sched);
            }
        }
    }

    fn deliver(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Ev>) {
        let chunk = self.chunks.remove(&id).expect("chunk exists");
        let st = &mut self.accels[chunk.acc];
        st.in_flight -= chunk.samples;
        if !self.faults.accel_alive[chunk.acc] {
            // Delivered to a dropped accelerator: the prepared data is lost.
            self.faults.stats.wasted_samples += chunk.samples;
            return;
        }
        st.buffered += chunk.samples;
        self.try_start_compute(now, chunk.acc, sched);
        self.refill(now, chunk.acc, sched);
    }

    fn try_start_compute(&mut self, now: SimTime, acc: usize, sched: &mut Scheduler<Ev>) {
        if self.sync_in_progress || self.done || !self.faults.accel_alive[acc] {
            return;
        }
        let st = &mut self.accels[acc];
        // Lockstep generations: an accelerator computes batch g only after
        // the global sync of batch g-1, with a full batch buffered.
        if !st.computing && st.batches_computed == self.sync_gen && st.buffered >= self.batch {
            st.buffered -= self.batch;
            st.computing = true;
            sched.schedule_in(now, self.t_comp, Ev::ComputeDone(acc));
            if self.tracer.enabled() {
                self.tracer.span(
                    Component::Pipeline,
                    "compute",
                    acc as u32,
                    now,
                    now.saturating_add(self.t_comp),
                );
            }
            // Consuming a batch frees prefetch credit: start preparing the
            // next batch right away (next-batch prefetching).
            self.refill(now, acc, sched);
        }
    }

    fn on_compute_done(&mut self, now: SimTime, acc: usize, sched: &mut Scheduler<Ev>) {
        if !self.faults.accel_alive[acc] {
            // The device died mid-batch: its result is discarded.
            self.faults.stats.wasted_samples += self.batch;
            return;
        }
        self.accels[acc].computing = false;
        self.accels[acc].batches_computed += 1;
        self.refill(now, acc, sched);
        self.maybe_start_sync(now, sched);
    }

    /// Start the ring synchronization once every *surviving* accelerator has
    /// finished the current generation. (A dropout can satisfy the barrier
    /// retroactively when the dead device was the holdout.)
    fn maybe_start_sync(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.sync_in_progress || self.done {
            return;
        }
        let r = self.lane_range();
        let all_arrived = self.accels[r.clone()]
            .iter()
            .zip(&self.faults.accel_alive[r])
            .all(|(st, &alive)| !alive || st.batches_computed > self.sync_gen);
        if all_arrived {
            self.sync_in_progress = true;
            if self.lane.is_some() {
                // Lane mode: the ring spans *all* lanes, so this lane cannot
                // know when the sync completes — park at the barrier and let
                // the lane coordinator grant max(lane arrivals) + t_sync,
                // exactly what the solo path's SyncDone would compute.
                self.at_barrier = true;
                return;
            }
            sched.schedule_in(now, self.t_sync, Ev::SyncDone);
            if self.tracer.enabled() {
                self.tracer.span(
                    Component::Collective,
                    self.sync.span_label(),
                    0,
                    now,
                    now.saturating_add(self.t_sync),
                );
                // Per-step spans of the synchronization over the surviving
                // devices; boundaries come from the same analytic model that
                // produced t_sync, so they partition the span exactly.
                let survivors = self.faults.alive_accels();
                let mut prev = 0.0;
                for b in self.sync.steps(self.model_bytes, survivors) {
                    self.tracer.span(
                        Component::Collective,
                        self.sync.step_label(),
                        1,
                        now.saturating_add(SimTime::from_secs_f64(prev)),
                        now.saturating_add(SimTime::from_secs_f64(b)),
                    );
                    prev = b;
                }
            }
        }
    }

    fn on_sync_done(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        self.sync_in_progress = false;
        if self.cluster_hold {
            // The local (intra-server) ring reduction is done, but in a
            // cluster the generation only closes once every server has
            // finished and the cross-server phase has run — park at the
            // barrier and let the coordinator grant the resume time.
            self.at_barrier = true;
            return;
        }
        self.finish_generation(now, sched);
    }

    /// Close the current generation at `now`: record it, and either finish
    /// the run or start the next generation's compute. In solo mode `now` is
    /// the local sync completion; in cluster mode it is the coordinator's
    /// global release time.
    fn finish_generation(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        self.sync_gen += 1;
        if self.tracer.enabled() {
            self.tracer.instant(Component::Collective, "batch_sync", 0, now);
        }
        self.batch_done_at.push(now);
        // In lane mode each lane records only its own accelerators' samples;
        // the runner sums the lanes into the full server's per-generation
        // counts.
        let counted = match &self.lane {
            Some(r) => self.faults.accel_alive[r.clone()].iter().filter(|&&a| a).count(),
            None => self.faults.alive_accels(),
        };
        self.batch_samples.push(counted as u64 * self.batch);
        if self.sync_gen >= self.target_batches {
            self.done = true;
            return;
        }
        for acc in self.lane_range() {
            self.try_start_compute(now, acc, sched);
        }
    }

    /// A coordinator release arrived ([`Ev::ClusterResume`]).
    ///
    /// Cluster mode: the local sync already completed (`on_sync_done` parked
    /// at the barrier), so this just closes the generation at the global
    /// release time. Lane mode: the lane parked *before* any [`Ev::SyncDone`]
    /// was scheduled — the ring sync is implicit in the release time
    /// (`max(lane arrivals) + t_sync`) — so the in-progress flag is cleared
    /// here, and lane 0 emits the global all-reduce spans the solo path
    /// would have traced.
    fn on_resume(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.lane.is_some() {
            self.sync_in_progress = false;
            if self.tracer.enabled() && self.lane_range().start == 0 {
                // `now - t_sync` is exactly the global max arrival: the same
                // span the solo path records when the last device arrives.
                let start = now.saturating_sub(self.t_sync);
                self.tracer.span(Component::Collective, self.sync.span_label(), 0, start, now);
                let survivors = self.faults.alive_accels();
                let mut prev = 0.0;
                for b in self.sync.steps(self.model_bytes, survivors) {
                    self.tracer.span(
                        Component::Collective,
                        self.sync.step_label(),
                        1,
                        start.saturating_add(SimTime::from_secs_f64(prev)),
                        start.saturating_add(SimTime::from_secs_f64(b)),
                    );
                    prev = b;
                }
            }
        }
        self.finish_generation(now, sched);
    }

    /// Inject fault plan entry `i`.
    fn on_fault(&mut self, now: SimTime, i: usize, sched: &mut Scheduler<Ev>) {
        let (_, kind) = self.faults.events[i];
        self.faults.stats.injected += 1;
        let at_secs = now.as_secs_f64();
        let label = kind.label();
        if self.tracer.enabled() {
            self.tracer.instant(Component::Fault, label, fault_track(kind), now);
        }
        // Windowed faults know their downtime up front; permanent losses are
        // recorded as NaN and resolved to time-to-end-of-run afterwards.
        let downtime = |secs: f64, stats: &mut FaultStats| {
            stats.downtime.push(FaultDowntime { at_secs, kind: label, secs });
        };
        match kind {
            FaultKind::SsdStall { ssd, secs } => {
                // The stall occupies the device queue like a zero-value job:
                // reads already queued finish first, later ones wait it out.
                let _ = self.ssds[ssd].enqueue(now, SimTime::from_secs_f64(secs));
                downtime(secs, &mut self.faults.stats);
            }
            FaultKind::PrepCrash { dev } => {
                if !self.faults.prep_alive[dev] {
                    downtime(0.0, &mut self.faults.stats);
                    return;
                }
                self.faults.prep_alive[dev] = false;
                self.faults.stats.preps_lost += 1;
                downtime(f64::NAN, &mut self.faults.stats);
                // Re-dispatch the chunks queued on the dead device to the
                // least-loaded survivors (greedy max-min water-filling).
                // Sorted ids keep the event sequence deterministic.
                let mut stranded: Vec<u64> = self
                    .chunks
                    .iter()
                    .filter(|(_, c)| c.prep_dev == dev && c.stage == Stage::Prep)
                    .map(|(&id, _)| id)
                    .collect();
                stranded.sort_unstable();
                for id in stranded {
                    let new_dev = self.faults.least_loaded_prep();
                    self.faults.prep_outstanding[dev] =
                        self.faults.prep_outstanding[dev].saturating_sub(1);
                    self.faults.prep_outstanding[new_dev] += 1;
                    let c = self.chunks.get_mut(&id).expect("chunk exists");
                    c.prep_dev = new_dev;
                    c.attempt = c.attempt.saturating_add(1); // stale the old completion
                    self.reroute_to_prep(now, id, dev, new_dev, sched);
                }
                // Chunks still in flight toward the dead device re-route when
                // they arrive (dispatch_prep checks liveness); chunks waiting
                // on a retry backoff re-pick their target when the timer
                // fires.
            }
            FaultKind::PrepSlowdown { dev, factor, secs } => {
                if self.faults.prep_alive[dev] {
                    self.faults.prep_speed[dev] = factor;
                    sched.schedule_in(now, SimTime::from_secs_f64(secs), Ev::FaultRecover(i));
                }
                downtime(secs, &mut self.faults.stats);
            }
            FaultKind::LinkDegrade { link, fraction, secs } => {
                let cap = self.faults.nominal_caps[link] * fraction;
                self.flows.set_capacity(now, LinkId::from_index(link), cap);
                self.bump_flows(sched);
                sched.schedule_in(now, SimTime::from_secs_f64(secs), Ev::FaultRecover(i));
                downtime(secs, &mut self.faults.stats);
            }
            FaultKind::AccelDropout { acc } => {
                if !self.faults.accel_alive[acc] {
                    downtime(0.0, &mut self.faults.stats);
                    return;
                }
                self.faults.accel_alive[acc] = false;
                self.faults.stats.accels_lost += 1;
                downtime(f64::NAN, &mut self.faults.stats);
                // Prepared samples buffered at the dead device are lost; data
                // in flight toward it is counted when it arrives.
                let st = &mut self.accels[acc];
                self.faults.stats.wasted_samples += st.buffered;
                st.buffered = 0;
                let survivors = self.faults.alive_accels();
                assert!(survivors > 0, "all accelerators dropped out");
                // Re-form the synchronization group over the survivors: the
                // latency from here on is the smaller group's (a smaller
                // ring, fewer PS pushers, fewer all-to-all peers).
                self.t_sync = self.sync.sync_time(self.model_bytes, survivors);
                // The dead device may have been the barrier holdout.
                self.maybe_start_sync(now, sched);
            }
            FaultKind::PrepTransient { dev, secs } => {
                if self.faults.prep_alive[dev] {
                    let until = now + SimTime::from_secs_f64(secs);
                    self.faults.prep_flaky_until[dev] =
                        self.faults.prep_flaky_until[dev].max(until);
                }
                downtime(secs, &mut self.faults.stats);
            }
        }
    }

    /// End of fault plan entry `i`'s degradation window.
    fn on_fault_recover(&mut self, now: SimTime, i: usize, sched: &mut Scheduler<Ev>) {
        let (_, kind) = self.faults.events[i];
        if self.tracer.enabled() {
            self.tracer.instant(Component::Fault, "recover", fault_track(kind), now);
        }
        match kind {
            FaultKind::PrepSlowdown { dev, .. } => {
                if self.faults.prep_alive[dev] {
                    self.faults.prep_speed[dev] = 1.0;
                }
            }
            FaultKind::LinkDegrade { link, .. } => {
                let cap = self.faults.nominal_caps[link];
                self.flows.set_capacity(now, LinkId::from_index(link), cap);
                self.bump_flows(sched);
            }
            other => unreachable!("no recovery scheduled for {other:?}"),
        }
    }
}

impl<T: Tracer> Model for PipelineModel<T> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Start => {
                for i in 0..self.faults.events.len() {
                    let (at, _) = self.faults.events[i];
                    sched.schedule_at(at, Ev::Fault(i));
                }
                for acc in self.lane_range() {
                    self.refill(now, acc, sched);
                }
            }
            Ev::SsdDone(id) => self.on_ssd_done(now, id, sched),
            Ev::FlowCheck => {
                // Only the latest check can fire: superseded ones were
                // cancelled in bump_flows and dropped by the engine.
                self.flow_check = None;
                if let Some((t, fid)) = self.flows.next_completion() {
                    self.flows.complete(t.max(self.flows.now()), fid);
                    let cont = self
                        .flow_cont
                        .remove(&fid)
                        .expect("every flow has a continuation");
                    if self.tracer.enabled() {
                        if let Some(start) = self.flow_started.remove(&fid) {
                            let (name, track) = self
                                .chunks
                                .get(&cont)
                                .map(|c| (xfer_name(c.stage), c.acc as u32))
                                .unwrap_or(("xfer", 0));
                            self.tracer.span(Component::Flow, name, track, start, now);
                        }
                    }
                    self.on_flow_done(now, cont, sched);
                    self.bump_flows(sched);
                }
            }
            Ev::EthFlowCheck => {
                let Some(eth) = self.eth.as_mut() else { return };
                eth.check = None;
                if let Some((t, fid)) = eth.flows.next_completion() {
                    let at = t.max(eth.flows.now());
                    eth.flows.complete(at, fid);
                    let cont = eth.cont.remove(&fid).expect("eth continuation registered");
                    let started = eth.started.remove(&fid);
                    if self.tracer.enabled() {
                        if let Some(start) = started {
                            let (name, track) = self
                                .chunks
                                .get(&cont)
                                .map(|c| (xfer_name(c.stage), c.pool_dev as u32))
                                .unwrap_or(("eth", 0));
                            self.tracer.span(Component::Flow, name, track, start, now);
                        }
                    }
                    self.on_eth_flow_done(now, cont, sched);
                    self.bump_eth(sched);
                }
            }
            Ev::PoolPrepDone(id) => self.on_pool_prep_done(now, id, sched),
            Ev::PrepDone(id, attempt) => self.on_prep_done(now, id, attempt, sched),
            Ev::ComputeDone(acc) => self.on_compute_done(now, acc, sched),
            Ev::SyncDone => self.on_sync_done(now, sched),
            Ev::Fault(i) => self.on_fault(now, i, sched),
            Ev::FaultRecover(i) => self.on_fault_recover(now, i, sched),
            Ev::PrepRetry(id) => self.on_prep_retry(now, id, sched),
            Ev::ClusterResume => self.on_resume(now, sched),
        }
        if self.tracer.enabled() {
            self.drain_flow_trace();
        }
    }
}

/// The fault-plan domain `server` exposes to the DES: the device and
/// directed-link counts exactly as the pipeline will see them, with an
/// unbounded horizon (a plan may schedule faults at any time).
///
/// [`FaultPlan::validate`] against this domain accepts precisely the plans
/// the simulation entry points accept; the request layer uses it to turn
/// what would be a panic into a typed error before the run starts.
pub fn fault_domain(server: &Server) -> FaultDomain {
    let topo = server.topology();
    // The baseline preps on the host: one fluid CPU pool, not per-device
    // prep servers, so it exposes a single prep target.
    let n_preps = match server.kind() {
        ServerKind::Baseline => 1,
        _ => topo.preps.len(),
    };
    FaultDomain {
        n_ssds: topo.ssds.len(),
        n_preps,
        n_accels: server.n_accels(),
        n_links: topo.topo.link_count(),
        horizon_secs: f64::INFINITY,
    }
}

/// Simulate `workload` on `server` and report steady-state throughput.
///
/// Equivalent to [`simulate_with_faults`] with the empty plan: the fault
/// layer is strictly additive, so this produces exactly the fault-free
/// behavior (and an all-zero [`FaultStats`]).
///
/// # Panics
///
/// Panics if `cfg.batches <= cfg.warmup_batches`, or if the simulation
/// stalls (queue drains or `cfg.max_events` is exceeded before the requested
/// batches complete).
#[deprecated(
    since = "0.1.0",
    note = "build a `request::SimRequest` with `SimMode::Des` and call `run()`"
)]
pub fn simulate(server: &Server, workload: &Workload, cfg: &SimConfig) -> SimResult {
    #[allow(deprecated)]
    simulate_with_faults(server, workload, cfg, &FaultPlan::empty())
}

/// Simulate `workload` on `server` while replaying `plan`'s faults, and
/// report achieved throughput plus degraded-mode accounting.
///
/// The run is deterministic: the same `(server, workload, cfg, plan)`
/// produces the identical result, and an empty plan reproduces
/// [`simulate`] exactly.
///
/// Degraded modes exercised here:
///
/// * crashed prep devices have their queued and future work re-dispatched
///   max-min fairly (greedy water-filling) over the survivors;
/// * dropped accelerators leave the barrier, and the synchronization ring
///   re-forms over the survivors at the smaller ring's latency;
/// * degraded links reshape every transfer's max-min fair rate until they
///   recover;
/// * transiently failing prep requests retry with exponential backoff and,
///   after `plan.retry.max_retries`, re-read their chunk from the SSD.
///
/// # Panics
///
/// Panics on an invalid plan (see [`FaultPlan::validate`]), if every prep
/// device or accelerator is lost, or under the conditions of [`simulate`].
#[deprecated(
    since = "0.1.0",
    note = "build a `request::SimRequest` with `SimMode::Des` and a fault plan, then call `run()`"
)]
pub fn simulate_with_faults(
    server: &Server,
    workload: &Workload,
    cfg: &SimConfig,
    plan: &FaultPlan,
) -> SimResult {
    match try_simulate_traced(server, workload, cfg, plan, NoopTracer) {
        Ok((result, _)) => result,
        Err(e) => panic!(
            "simulation ended without completing {} batches: {e}",
            cfg.batches
        ),
    }
}

/// [`try_simulate_traced`] that panics on failure, returning the result and
/// the tracer. Convenience for the figure binaries' `--trace` path.
///
/// # Panics
///
/// Under the conditions of [`simulate_with_faults`].
#[deprecated(
    since = "0.1.0",
    note = "use `request::SimRequest::run_des_with_tracer`, which returns typed errors"
)]
pub fn simulate_traced<T: ForkTracer + Send>(
    server: &Server,
    workload: &Workload,
    cfg: &SimConfig,
    plan: &FaultPlan,
    tracer: T,
) -> (SimResult, T) {
    match try_simulate_traced(server, workload, cfg, plan, tracer) {
        Ok(out) => out,
        Err(e) => panic!(
            "simulation ended without completing {} batches: {e}",
            cfg.batches
        ),
    }
}

/// Run the DES with a caller-supplied [`Tracer`] attached and report
/// failures as typed errors instead of panicking.
///
/// The tracer observes the simulation — span events for every pipeline
/// stage (SSD reads, transfers, preparation, compute), collective
/// synchronization steps, fault injections, and flow-rate counters — but
/// never affects it: the traced run produces a [`SimResult`] identical to
/// the untraced one. With [`NoopTracer`] every hook monomorphizes away.
///
/// Returns the result together with the tracer (so a
/// [`trainbox_sim::RingTracer`]'s records can be exported).
///
/// # Errors
///
/// [`SimError::Stalled`] if the event queue drains or `cfg.max_events` is
/// exceeded before the requested batches complete; [`SimError::TimeOverflow`]
/// if simulated time overflows [`SimTime::MAX`].
///
/// # Panics
///
/// Panics on invalid input — `cfg.batches <= cfg.warmup_batches` or an
/// invalid fault plan (see [`FaultPlan::validate`]) — and if every prep
/// device or accelerator is lost to faults.
pub fn try_simulate_traced<T: ForkTracer + Send>(
    server: &Server,
    workload: &Workload,
    cfg: &SimConfig,
    plan: &FaultPlan,
    tracer: T,
) -> Result<(SimResult, T), SimError> {
    try_simulate_traced_deadline(server, workload, cfg, plan, tracer, None).map_err(|f| f.error)
}

/// Why a deadline-aware DES run could not complete, with whatever the fault
/// layer had observed by then. The partial statistics let a timed-out
/// request report *how degraded* the simulated server already was instead
/// of discarding everything the run learned.
#[derive(Debug, Clone)]
pub struct DesFailure {
    /// The engine's typed failure (deadline, stall, or time overflow).
    pub error: SimError,
    /// Events processed before the run gave up.
    pub events: u64,
    /// Fault-layer statistics accumulated up to the failure point.
    pub partial_faults: FaultStats,
}

impl std::fmt::Display for DesFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({} faults injected)", self.error, self.partial_faults.injected)
    }
}

impl std::error::Error for DesFailure {}

/// [`try_simulate_traced`] under an optional wall-clock deadline.
///
/// With `deadline: None` this is exactly the untimed path — same event
/// order, byte-identical results. With a deadline, the engine checks the
/// wall clock cooperatively (every [`Engine::DEADLINE_CHECK_INTERVAL`]
/// events for a `PipelineModel`) and cancels the run once it expires;
/// failures carry the partial [`FaultStats`] so callers can surface what
/// the run had already observed.
///
/// # Errors
///
/// A [`DesFailure`] wrapping [`SimError::DeadlineExceeded`] when the
/// deadline expires, or [`SimError::Stalled`] / [`SimError::TimeOverflow`]
/// under the conditions of [`try_simulate_traced`].
///
/// # Panics
///
/// Under the conditions of [`try_simulate_traced`] (invalid config or
/// fault plan).
pub fn try_simulate_traced_deadline<T: ForkTracer + Send>(
    server: &Server,
    workload: &Workload,
    cfg: &SimConfig,
    plan: &FaultPlan,
    tracer: T,
    deadline: Option<std::time::Instant>,
) -> Result<(SimResult, T), DesFailure> {
    assert!(cfg.batches > cfg.warmup_batches, "need batches after warmup");
    // Tenanted workloads get their interference decomposition attached to
    // whichever path produced the result.
    let attach = |mut result: SimResult| {
        if !workload.tenants.is_empty() {
            result.tenancy =
                Some(TenancyStats::of(server, &workload.tenants, result.samples_per_sec));
        }
        result
    };
    // Eligible configurations always run lane-partitioned — the partition is
    // part of the canonical result, chosen from `(server, plan)` alone, and
    // `cfg.parallel_workers` only picks how many threads advance the lanes.
    if let Some(part) = crate::intraserver::LanePartition::of(server, plan) {
        return crate::intraserver::simulate_lanes_traced_deadline(
            server, workload, cfg, plan, &part, tracer, deadline,
        )
        .map(|(result, tracer, _stats)| (attach(result), tracer));
    }
    let model = PipelineModel::new(server, workload, cfg, plan, tracer);
    let mut engine = Engine::new(model);
    engine.schedule_at(SimTime::ZERO, Ev::Start);
    let fail = |engine: Engine<PipelineModel<T>>, error: SimError| {
        let events = engine.events_processed();
        let m = engine.into_model();
        DesFailure { error, events, partial_faults: m.faults.stats.clone() }
    };
    let hit = match engine.run_while_deadline(cfg.max_events, deadline, |m| m.done) {
        Ok(hit) => hit,
        Err(e) => return Err(fail(engine, e)),
    };
    if !hit {
        let stalled = SimError::Stalled {
            events: engine.events_processed(),
            queued: engine.queued(),
        };
        return Err(fail(engine, stalled));
    }
    let events = engine.events_processed();
    let mut m = engine.into_model();
    if m.tracer.enabled() {
        m.drain_flow_trace();
    }
    let n0 = m.accels.len() as f64;
    let first = m.batch_done_at[cfg.warmup_batches as usize - 1];
    let last = *m.batch_done_at.last().expect("batches completed");
    let batches_measured = (cfg.batches - cfg.warmup_batches) as f64;
    let window = (last - first).as_secs_f64();
    // Samples actually synchronized in the measured window (with dropouts,
    // later generations contribute fewer samples than the first).
    let samples: u64 = m.batch_samples[cfg.warmup_batches as usize..].iter().sum();
    let effective = samples as f64 / window;
    let rc_bytes = m
        .topo
        .rc_links()
        .iter()
        .map(|l| m.link_bytes[l.index()])
        .sum();

    let mut stats = m.faults.stats.clone();
    // Permanent losses were logged with NaN downtime; they lasted from
    // injection to the end of the run.
    let end = last.as_secs_f64();
    for d in &mut stats.downtime {
        if d.secs.is_nan() {
            d.secs = (end - d.at_secs).max(0.0);
        }
    }
    // Nominal: what the initial device complement would have synchronized
    // over the same window. Goodput: achieved throughput discounted by the
    // fraction of prepared/computed work that was thrown away.
    stats.nominal_samples_per_sec = batches_measured * n0 * m.batch as f64 / window;
    let useful: u64 = m.batch_samples.iter().sum();
    stats.goodput_samples_per_sec = if stats.wasted_samples == 0 {
        effective
    } else {
        effective * useful as f64 / (useful + stats.wasted_samples) as f64
    };

    let result = SimResult {
        samples_per_sec: effective,
        batch_done_at: m.batch_done_at.clone(),
        events,
        recomputes: m.flows.recomputes() + m.eth.as_ref().map_or(0, |e| e.flows.recomputes()),
        link_bytes: m.link_bytes.clone(),
        rc_bytes,
        faults: stats,
        tenancy: None,
    };
    Ok((attach(result), m.tracer))
}

/// Diagnostic entry for benchmarks: if `(server, plan)` is eligible for the
/// intra-server lane partition, run the simulation once lane-partitioned and
/// return `(lanes, RunStats)` — the window runner's per-LP and per-window
/// event accounting, which feeds the deterministic load-imbalance and
/// work-span figures `bench_sim` reports. `None` when the configuration
/// falls back to the single-engine path (in which case there is no
/// partition to account for).
///
/// The stats are a property of the partition, not of the clock: they are
/// byte-identical across worker counts and across runs.
///
/// # Panics
///
/// Under the conditions of [`try_simulate_traced`], or if the lane run
/// fails (benchmarks run healthy, deadline-free configurations).
pub fn intra_server_run_stats(
    server: &Server,
    workload: &Workload,
    cfg: &SimConfig,
    plan: &FaultPlan,
) -> Option<(usize, trainbox_sim::par::RunStats)> {
    let part = crate::intraserver::LanePartition::of(server, plan)?;
    let (_, _, stats) = crate::intraserver::simulate_lanes_traced_deadline(
        server,
        workload,
        cfg,
        plan,
        &part,
        trainbox_sim::NoopTracer,
        None,
    )
    .unwrap_or_else(|e| panic!("lane-partitioned run failed: {e}"));
    Some((part.lanes, stats))
}

#[cfg(test)]
mod tests {
    // The deprecated `simulate*` wrappers are exercised deliberately: they
    // must keep producing byte-identical results to the canonical
    // `SimRequest` path for as long as they exist.
    #![allow(deprecated)]

    use super::*;
    use crate::arch::ServerConfig;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            chunk_samples: 128,
            batches: 8,
            warmup_batches: 4,
            prefetch_batches: 1,
            max_events: 5_000_000,
            reference_allocator: false,
            parallel_workers: 0,
        }
    }

    /// Build a scaled-down server: n accelerators, reduced batch.
    fn sim_tp(kind: ServerKind, n: usize, w: &Workload, batch: u64) -> f64 {
        let server = ServerConfig::new(kind, n).batch_size(batch).build();
        simulate(&server, w, &quick_cfg()).samples_per_sec
    }

    fn analytic_tp(kind: ServerKind, n: usize, w: &Workload, batch: u64) -> f64 {
        ServerConfig::new(kind, n)
            .batch_size(batch)
            .build()
            .throughput(w)
            .samples_per_sec
    }

    #[test]
    fn des_matches_analytic_when_accelerator_bound() {
        // Small scale: accelerators bind; DES must track the analytic value.
        let w = Workload::inception_v4();
        let des = sim_tp(ServerKind::Baseline, 8, &w, 512);
        let ana = analytic_tp(ServerKind::Baseline, 8, &w, 512);
        let err = (des - ana).abs() / ana;
        assert!(err < 0.1, "des={des} ana={ana} err={err}");
    }

    #[test]
    fn des_matches_analytic_when_cpu_bound() {
        // 64 accelerators on the baseline: host CPU binds.
        let w = Workload::inception_v4();
        let des = sim_tp(ServerKind::Baseline, 64, &w, 256);
        let ana = analytic_tp(ServerKind::Baseline, 64, &w, 256);
        let err = (des - ana).abs() / ana;
        assert!(err < 0.15, "des={des} ana={ana} err={err}");
    }

    #[test]
    fn des_trainbox_matches_analytic() {
        let w = Workload::inception_v4();
        let des = sim_tp(ServerKind::TrainBoxNoPool, 32, &w, 512);
        let ana = analytic_tp(ServerKind::TrainBoxNoPool, 32, &w, 512);
        let err = (des - ana).abs() / ana;
        assert!(err < 0.1, "des={des} ana={ana} err={err}");
    }

    #[test]
    fn des_reproduces_the_ordering_baseline_acc_trainbox() {
        // The Fig 19 ordering must emerge from the simulated datapath alone.
        let w = Workload::resnet50();
        let base = sim_tp(ServerKind::Baseline, 64, &w, 1024);
        let acc = sim_tp(ServerKind::AccFpga, 64, &w, 1024);
        let tb = sim_tp(ServerKind::TrainBoxNoPool, 64, &w, 1024);
        assert!(acc > base, "acc={acc} base={base}");
        assert!(tb > acc, "tb={tb} acc={acc}");
    }

    #[test]
    fn des_p2p_removes_no_rc_traffic_vs_staged() {
        // P2P between chained boxes still crosses the root complex: the
        // simulated throughput must not improve materially over staged.
        let w = Workload::resnet50();
        let staged = sim_tp(ServerKind::AccFpga, 32, &w, 1024);
        let p2p = sim_tp(ServerKind::AccFpgaP2p, 32, &w, 1024);
        let ratio = p2p / staged;
        assert!((0.8..1.6).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn des_audio_workload_runs() {
        let w = Workload::transformer_sr();
        let des = sim_tp(ServerKind::TrainBoxNoPool, 16, &w, 128);
        assert!(des > 0.0);
        // Prep-bound at this scale: 4 FPGAs x 5200 = 20.8k.
        let ana = analytic_tp(ServerKind::TrainBoxNoPool, 16, &w, 128);
        let err = (des - ana).abs() / ana;
        assert!(err < 0.2, "des={des} ana={ana}");
    }

    #[test]
    fn batch_completion_times_are_monotone() {
        let w = Workload::rnn_s();
        let server = ServerConfig::new(ServerKind::Baseline, 8)
            .batch_size(256)
            .build();
        let r = simulate(&server, &w, &quick_cfg());
        assert_eq!(r.batch_done_at.len(), 8);
        for w in r.batch_done_at.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(r.events > 0);
    }

    #[test]
    fn clustering_eliminates_rc_traffic_in_the_des() {
        // The Step-3 mechanism, *measured* from the simulated flows: the
        // baseline pushes every byte through the root complex; the train-box
        // design keeps the RC share at zero.
        let w = Workload::inception_v4();
        let base_server = ServerConfig::new(ServerKind::Baseline, 16)
            .batch_size(512)
            .build();
        let base = simulate(&base_server, &w, &quick_cfg());
        assert!(base.rc_bytes > 0.0);
        assert!(base.rc_share() > 0.3, "rc share {}", base.rc_share());
        let tb_server = ServerConfig::new(ServerKind::TrainBoxNoPool, 16)
            .batch_size(512)
            .build();
        let tb = simulate(&tb_server, &w, &quick_cfg());
        assert_eq!(tb.rc_bytes, 0.0, "clustered prep traffic must stay in-box");
        assert!(tb.link_bytes.iter().sum::<f64>() > 0.0, "data did move");
    }

    #[test]
    fn staged_design_doubles_simulated_rc_bytes_per_sample() {
        // §IV-D's doubling argument, measured: per delivered sample, the
        // staged design moves ~2x the baseline's bytes through the RC.
        let w = Workload::inception_v4();
        let cfg = quick_cfg();
        let run = |kind| {
            let s = ServerConfig::new(kind, 16).batch_size(512).build();
            let r = simulate(&s, &w, &cfg);
            r.rc_bytes / (cfg.batches as f64 * 16.0 * 512.0)
        };
        let base = run(ServerKind::Baseline);
        let staged = run(ServerKind::AccFpga);
        let ratio = staged / base;
        assert!((1.8..2.2).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn des_is_deterministic() {
        let w = Workload::rnn_s();
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 8)
            .batch_size(256)
            .build();
        let a = simulate(&server, &w, &quick_cfg());
        let b = simulate(&server, &w, &quick_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn tracing_observes_without_perturbing() {
        use trainbox_sim::{Component, RingTracer, TraceRecord};
        // A traced run must produce the identical SimResult and emit spans
        // from the pipeline, flow, and collective components.
        let w = Workload::inception_v4();
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 16)
            .batch_size(512)
            .build();
        let plain = simulate(&server, &w, &quick_cfg());
        let (traced, tracer) = simulate_traced(
            &server,
            &w,
            &quick_cfg(),
            &FaultPlan::empty(),
            RingTracer::new(1 << 20),
        );
        assert_eq!(plain, traced);
        let records = tracer.into_records();
        assert!(!records.is_empty());
        for component in [Component::Pipeline, Component::Flow, Component::Collective] {
            assert!(
                records.iter().any(|r| r.component() == component
                    && matches!(r, TraceRecord::Span { .. })),
                "no span from {component:?}"
            );
        }
        assert!(records.iter().any(|r| r.name() == "ssd_read"));
        assert!(records.iter().any(|r| r.name() == "prep"));
        assert!(records.iter().any(|r| r.name() == "compute"));
        assert!(records.iter().any(|r| r.name() == "allreduce"));
        assert!(records.iter().any(|r| r.name() == "ring_step"));
        assert!(records.iter().any(|r| r.name() == "pcie_active_flows"));
    }

    #[test]
    fn traced_fault_storm_matches_untraced_and_records_injections() {
        use trainbox_sim::{Component, RingTracer};
        let w = Workload::inception_v4();
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 16)
            .batch_size(512)
            .build();
        let probe = simulate(&server, &w, &quick_cfg());
        let horizon = probe.batch_done_at.last().unwrap().as_secs_f64();
        let domain = crate::faults::FaultDomain {
            n_ssds: 4,
            n_preps: 4,
            n_accels: 16,
            n_links: probe.link_bytes.len(),
            horizon_secs: horizon,
        };
        let plan = FaultPlan::seeded(7, 4.0 / horizon, &domain);
        let plain = simulate_with_faults(&server, &w, &quick_cfg(), &plan);
        let (traced, tracer) =
            simulate_traced(&server, &w, &quick_cfg(), &plan, RingTracer::new(1 << 20));
        assert_eq!(plain, traced);
        let injected = tracer
            .records()
            .filter(|r| r.component() == Component::Fault && r.name() != "recover")
            .count() as u64;
        assert_eq!(injected, traced.faults.injected);
    }

    #[test]
    fn exhausted_event_budget_is_a_typed_stall() {
        use trainbox_sim::{NoopTracer, SimError};
        let w = Workload::inception_v4();
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 16)
            .batch_size(512)
            .build();
        let cfg = SimConfig { max_events: 50, ..quick_cfg() };
        let err = try_simulate_traced(&server, &w, &cfg, &FaultPlan::empty(), NoopTracer)
            .expect_err("50 events cannot complete 8 batches");
        assert!(matches!(err, SimError::Stalled { events: 50, .. }), "{err:?}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(10))]

        /// Tracing is purely observational: for ANY seeded fault plan and
        /// server kind, the traced run produces the identical `SimResult` to
        /// the untraced one (the `NoopTracer` monomorphization and the
        /// `RingTracer` one drive the same event sequence).
        #[test]
        fn tracing_is_observational_under_random_fault_plans(
            seed in proptest::prelude::any::<u64>(),
            faults_per_run in 0u64..10,
            kind_idx in 0usize..3,
        ) {
            use trainbox_sim::RingTracer;
            let w = Workload::inception_v4();
            let kind = [ServerKind::Baseline, ServerKind::TrainBoxNoPool, ServerKind::AccFpga]
                [kind_idx];
            let server = ServerConfig::new(kind, 8).batch_size(256).build();
            let cfg = SimConfig { batches: 6, warmup_batches: 2, ..quick_cfg() };
            let probe = simulate(&server, &w, &cfg);
            let horizon = probe.batch_done_at.last().unwrap().as_secs_f64();
            let domain = crate::faults::FaultDomain {
                n_ssds: server.topology().ssds.len(),
                n_preps: server.topology().preps.len(),
                n_accels: server.n_accels(),
                n_links: probe.link_bytes.len(),
                horizon_secs: horizon,
            };
            let plan = FaultPlan::seeded(seed, faults_per_run as f64 / horizon, &domain);
            let plain = simulate_with_faults(&server, &w, &cfg, &plan);
            let (traced, tracer) =
                simulate_traced(&server, &w, &cfg, &plan, RingTracer::new(1 << 18));
            proptest::prop_assert_eq!(plain, traced);
            proptest::prop_assert!(tracer.records().next().is_some());
        }
    }

    #[test]
    fn pool_offload_raises_simulated_audio_throughput() {
        // Fig 21b, simulated: TF-SR on 16 accelerators is prep-bound without
        // the pool; with pool FPGAs the DES throughput rises toward the
        // accelerator side.
        let w = Workload::transformer_sr();
        let cfg = SimConfig {
            chunk_samples: 64,
            batches: 8,
            warmup_batches: 4,
            prefetch_batches: 1,
            max_events: 5_000_000,
            reference_allocator: false,
            parallel_workers: 0,
        };
        let no_pool = ServerConfig::new(ServerKind::TrainBoxNoPool, 16).build();
        let without = simulate(&no_pool, &w, &cfg).samples_per_sec;
        let with_pool = ServerConfig::new(ServerKind::TrainBox, 16)
            .pool_fpgas(8)
            .build();
        let with = simulate(&with_pool, &w, &cfg).samples_per_sec;
        assert!(
            with > without * 1.2,
            "pool should raise simulated throughput: {without} -> {with}"
        );
        // And it should approach the analytic TrainBox value.
        let ana = with_pool.throughput(&w).samples_per_sec;
        let err = (with - ana).abs() / ana;
        assert!(err < 0.25, "with={with} ana={ana}");
    }

    #[test]
    #[should_panic(expected = "need batches after warmup")]
    fn bad_sim_config_rejected() {
        let w = Workload::resnet50();
        let server = ServerConfig::new(ServerKind::Baseline, 8).build();
        let cfg = SimConfig { batches: 2, warmup_batches: 2, ..quick_cfg() };
        simulate(&server, &w, &cfg);
    }

    #[test]
    fn empty_fault_plan_reproduces_the_fault_free_run() {
        // The fault layer must be strictly additive: an empty plan yields
        // the identical result, counters and all.
        let w = Workload::inception_v4();
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 16)
            .batch_size(512)
            .build();
        let plain = simulate(&server, &w, &quick_cfg());
        let faulted = simulate_with_faults(&server, &w, &quick_cfg(), &FaultPlan::empty());
        assert_eq!(plain, faulted);
        assert_eq!(plain.faults.injected, 0);
        assert_eq!(plain.faults.wasted_samples, 0);
        assert_eq!(plain.faults.goodput_samples_per_sec, plain.samples_per_sec);
        assert_eq!(plain.faults.nominal_samples_per_sec, plain.samples_per_sec);
    }

    #[test]
    fn seeded_fault_storm_is_deterministic() {
        let w = Workload::inception_v4();
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 16)
            .batch_size(512)
            .build();
        let probe = simulate(&server, &w, &quick_cfg());
        let horizon = probe.batch_done_at.last().unwrap().as_secs_f64();
        let domain = crate::faults::FaultDomain {
            n_ssds: 4,
            n_preps: 4,
            n_accels: 16,
            n_links: probe.link_bytes.len(),
            horizon_secs: horizon,
        };
        let plan = FaultPlan::seeded(42, 6.0 / horizon, &domain);
        assert!(!plan.is_empty());
        let a = simulate_with_faults(&server, &w, &quick_cfg(), &plan);
        let b = simulate_with_faults(&server, &w, &quick_cfg(), &plan);
        assert_eq!(a, b);
        assert_eq!(a.faults.injected, plan.events.len() as u64);
    }

    #[test]
    fn accel_dropout_reforms_the_ring_within_the_analytic_bound() {
        // Drop half the accelerators of a 16-accel train-box server at the
        // very start: the survivors re-form an 8-way ring and the steady
        // state must approach the analytic 8-accel configuration.
        let w = Workload::inception_v4();
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 16)
            .batch_size(512)
            .build();
        let mut plan = FaultPlan::empty();
        for acc in 8..16 {
            plan = plan.at(1e-9, FaultKind::AccelDropout { acc });
        }
        let r = simulate_with_faults(&server, &w, &quick_cfg(), &plan);
        assert_eq!(r.faults.accels_lost, 8);
        assert!(r.faults.wasted_samples > 0, "in-flight data to dead devices is wasted");
        let ana = analytic_tp(ServerKind::TrainBoxNoPool, 8, &w, 512);
        let err = (r.samples_per_sec - ana).abs() / ana;
        assert!(err < 0.15, "des={} ana={ana} err={err}", r.samples_per_sec);
        // Accounting invariants: achieved <= nominal, goodput <= achieved.
        assert!(r.samples_per_sec < r.faults.nominal_samples_per_sec);
        assert!(r.faults.goodput_samples_per_sec < r.samples_per_sec);
        // Dropouts are permanent: downtime runs to the end of the run.
        let end = r.batch_done_at.last().unwrap().as_secs_f64();
        for d in &r.faults.downtime {
            assert_eq!(d.kind, "accel-dropout");
            assert!((d.secs - end).abs() < 1e-6);
        }
    }

    #[test]
    fn prep_crash_rebalances_work_onto_survivors() {
        // Crash one of the four FPGAs mid-run: the run still completes, the
        // work lands on the survivors, and throughput does not exceed the
        // fault-free value.
        let w = Workload::inception_v4();
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 16)
            .batch_size(512)
            .build();
        let healthy = simulate(&server, &w, &quick_cfg());
        let horizon = healthy.batch_done_at.last().unwrap().as_secs_f64();
        let plan = FaultPlan::empty().at(horizon * 0.25, FaultKind::PrepCrash { dev: 0 });
        let r = simulate_with_faults(&server, &w, &quick_cfg(), &plan);
        assert_eq!(r.faults.preps_lost, 1);
        assert_eq!(r.batch_done_at.len(), quick_cfg().batches as usize);
        assert!(
            r.samples_per_sec <= healthy.samples_per_sec * 1.001,
            "losing a prep device cannot speed the server up: {} vs {}",
            r.samples_per_sec,
            healthy.samples_per_sec
        );
    }

    #[test]
    fn degrading_the_hottest_links_lowers_throughput() {
        // Find the busiest links of a baseline run, then throttle them to 2%
        // for the whole run: the simulated throughput must drop.
        let w = Workload::inception_v4();
        let server = ServerConfig::new(ServerKind::Baseline, 16).batch_size(512).build();
        let healthy = simulate(&server, &w, &quick_cfg());
        let mut hot: Vec<usize> = (0..healthy.link_bytes.len()).collect();
        hot.sort_by(|&a, &b| healthy.link_bytes[b].total_cmp(&healthy.link_bytes[a]));
        let mut plan = FaultPlan::empty();
        for &link in hot.iter().take(4) {
            plan = plan.at(0.0, FaultKind::LinkDegrade { link, fraction: 0.02, secs: 1e3 });
        }
        let r = simulate_with_faults(&server, &w, &quick_cfg(), &plan);
        assert!(
            r.samples_per_sec < healthy.samples_per_sec * 0.9,
            "degraded {} vs healthy {}",
            r.samples_per_sec,
            healthy.samples_per_sec
        );
    }

    #[test]
    fn link_degradation_with_recovery_is_transient() {
        // A short degradation delays early batches but the server recovers:
        // the run completes and later batches proceed at full pace.
        let w = Workload::inception_v4();
        let server = ServerConfig::new(ServerKind::Baseline, 16).batch_size(512).build();
        let healthy = simulate(&server, &w, &quick_cfg());
        let hot = (0..healthy.link_bytes.len())
            .max_by(|&a, &b| healthy.link_bytes[a].total_cmp(&healthy.link_bytes[b]))
            .unwrap();
        let window = healthy.batch_done_at[0].as_secs_f64();
        let plan = FaultPlan::empty()
            .at(0.0, FaultKind::LinkDegrade { link: hot, fraction: 0.05, secs: window });
        let r = simulate_with_faults(&server, &w, &quick_cfg(), &plan);
        assert!(r.batch_done_at[0] >= healthy.batch_done_at[0]);
        assert_eq!(r.batch_done_at.len(), healthy.batch_done_at.len());
    }

    #[test]
    fn transient_prep_failures_retry_with_backoff() {
        // Make one FPGA reject requests early on: affected chunks retry
        // (rerouting to the healthy sibling) and the run completes.
        let w = Workload::inception_v4();
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 8)
            .batch_size(512)
            .build();
        let healthy = simulate(&server, &w, &quick_cfg());
        let horizon = healthy.batch_done_at.last().unwrap().as_secs_f64();
        let plan = FaultPlan::empty()
            .at(0.0, FaultKind::PrepTransient { dev: 0, secs: horizon * 0.3 });
        let r = simulate_with_faults(&server, &w, &quick_cfg(), &plan);
        assert!(r.faults.retries > 0, "flaky device must force retries");
        assert_eq!(r.batch_done_at.len(), quick_cfg().batches as usize);
        let again = simulate_with_faults(&server, &w, &quick_cfg(), &plan);
        assert_eq!(r, again);
    }

    #[test]
    fn ssd_stall_delays_the_run() {
        // Stall every SSD for most of the run: reads issued after the stall
        // wait it out (the initial prefetched wave is already queued ahead),
        // so the run must finish later than the healthy one.
        let w = Workload::inception_v4();
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 16)
            .batch_size(512)
            .build();
        let healthy = simulate(&server, &w, &quick_cfg());
        let horizon = healthy.batch_done_at.last().unwrap().as_secs_f64();
        let mut plan = FaultPlan::empty();
        for ssd in 0..4 {
            plan = plan.at(0.0, FaultKind::SsdStall { ssd, secs: horizon });
        }
        let r = simulate_with_faults(&server, &w, &quick_cfg(), &plan);
        assert!(
            *r.batch_done_at.last().unwrap() > *healthy.batch_done_at.last().unwrap(),
            "stalled SSDs must delay the run"
        );
        assert_eq!(r.batch_done_at.len(), healthy.batch_done_at.len());
    }

    #[test]
    fn prep_slowdown_throttles_a_prep_bound_workload() {
        let w = Workload::transformer_sr();
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 16).build();
        let healthy = simulate(&server, &w, &quick_cfg());
        let horizon = healthy.batch_done_at.last().unwrap().as_secs_f64();
        // Quarter every FPGA for far longer than the run: TF-SR is
        // prep-bound at this scale, so the measured window sees the full
        // slowdown.
        let mut plan = FaultPlan::empty();
        for dev in 0..4 {
            plan = plan
                .at(0.0, FaultKind::PrepSlowdown { dev, factor: 0.25, secs: horizon * 20.0 });
        }
        let r = simulate_with_faults(&server, &w, &quick_cfg(), &plan);
        assert!(
            r.samples_per_sec < healthy.samples_per_sec * 0.6,
            "throttled {} vs healthy {}",
            r.samples_per_sec,
            healthy.samples_per_sec
        );
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn out_of_range_fault_target_rejected() {
        let w = Workload::resnet50();
        let server = ServerConfig::new(ServerKind::Baseline, 8).build();
        let plan = FaultPlan::empty().at(0.0, FaultKind::AccelDropout { acc: 99 });
        simulate_with_faults(&server, &w, &quick_cfg(), &plan);
    }
}

//! Calibration constants, each derived from a specific statement or figure
//! of the paper.
//!
//! The paper profiled a real 48-core prototype (§III-B1); we cannot reproduce
//! its absolute numbers, so every constant here is *anchored* to a number the
//! paper reports and the derivation is recorded next to it. The claims under
//! test are shapes — who wins, where curves saturate, which resource binds —
//! not absolute samples/s.

use trainbox_nn::InputKind;

/// The DGX-2-class reference host the paper normalizes against (§III-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceHost {
    /// Physical CPU cores ("our machine having two-socket Xeon CPUs (i.e.,
    /// 48 physical cores)", §III-B1).
    pub cpu_cores: f64,
    /// Host memory bandwidth ("what DGX-2 provides (i.e., 239 GB/s)",
    /// §III-C).
    pub mem_bytes_per_sec: f64,
    /// Aggregate root-complex PCIe bandwidth, both directions. DGX-2 attaches
    /// its device tree through multiple x16 Gen3 root ports across two CPUs;
    /// 112 GB/s (7 × x16) makes the paper's Fig 10c normalizations come out
    /// (max ≈ 18×, mean ≈ 7×) with our per-sample traffic model.
    pub rc_pcie_bytes_per_sec: f64,
}

/// The reference host used throughout the evaluation.
pub const DGX2: ReferenceHost = ReferenceHost {
    cpu_cores: 48.0,
    mem_bytes_per_sec: 239e9,
    rc_pcie_bytes_per_sec: 112e9,
};

/// Per-sample data sizes along the preparation path, bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSizes {
    /// On-SSD stored size (compressed JPEG / 16-bit PCM).
    pub stored: f64,
    /// Accelerator-ready tensor size (the "data load" of Fig 11).
    pub tensor: f64,
}

impl SampleSizes {
    /// Sizes for a given input modality.
    ///
    /// * Image: 256×256 JPEG ≈ 35 KB stored (matches both typical ImageNet
    ///   train-set files and our own synthetic encoder's output); the
    ///   224×224×3 float tensor is 602,112 B — the paper's "0.15 MB" u8 crop
    ///   (§III-D) amplified 4× by the char→float cast (§III-C).
    /// * Audio: 6.96 s × 16 kHz × 2 B = 222,720 B stored (§III-B1); the
    ///   float log-Mel tensor (693 frames × 128 bins × 4 B) is 354,816 B —
    ///   the "amplified data size due to ... SFFT for Mel spectrogram"
    ///   (§III-C).
    ///
    /// The DSL modalities (no paper row; anchored to their preset graphs):
    ///
    /// * Text: one packed 2048-token sequence ≈ 16 KB of UTF-8 in, 8 KB of
    ///   `u32` token ids out (tokenization *compresses*, the one modality
    ///   that does).
    /// * Video: an 8-frame MJPEG clip ≈ 280 KB stored; 8 frames of the
    ///   image tensor (8 × 602,112 B) out.
    /// * Tabular: a 512 B click-log record in; dense features + looked-up
    ///   embedding rows (2,176 B) out.
    pub fn for_input(input: InputKind) -> SampleSizes {
        match input {
            InputKind::Image => SampleSizes { stored: 35_000.0, tensor: 602_112.0 },
            InputKind::Audio => SampleSizes { stored: 222_720.0, tensor: 354_816.0 },
            InputKind::Text => SampleSizes { stored: 16_384.0, tensor: 8_192.0 },
            InputKind::Video => SampleSizes { stored: 280_000.0, tensor: 4_816_896.0 },
            InputKind::Tabular => SampleSizes { stored: 512.0, tensor: 2_176.0 },
        }
    }
}

/// CPU core-seconds to prepare one sample on the baseline (formatting +
/// augmentation + load management, per §III-C).
///
/// Derivations:
/// * Image: Fig 10a's maximum is "4,833 cores (100.7× DGX-2)" at 256
///   accelerators, which our workload table hits for RNN-S (the highest
///   per-accelerator throughput): `4833 / (256 × 12022 sample/s) = 1.5705 ms`.
///   Cross-check: Inception-v4's baseline then saturates at
///   `48 / (1669 × 1.5705 ms) = 18.3` accelerators — exactly Fig 21a.
/// * Audio: Fig 21b says the TF-SR baseline saturates at 4.4 accelerators:
///   `48 / (2001 × c) = 4.4 ⇒ c = 5.452 ms`. Cross-check: TF-AA's TrainBox
///   speedup then comes out at `256×2889 / (48/5.452ms) = 84.0×` — the
///   paper's 84.3× maximum (§VI-C).
///
/// The DSL modalities equal their preset stage-graph sums (so a flat
/// workload over the new modality and the preset's explicit graph agree):
/// Text = BPE tokenization of a long sequence; Video = 8 per-frame decodes
/// plus demux/sampling; Tabular = microseconds of lookup assembly.
pub fn cpu_secs_per_sample(input: InputKind) -> f64 {
    match input {
        InputKind::Image => 1.5705e-3,
        InputKind::Audio => 5.452e-3,
        InputKind::Text => 2.9e-3,
        InputKind::Video => 8.01e-3,
        InputKind::Tabular => 9.5e-6,
    }
}

/// CPU core-seconds per sample once preparation is offloaded (driver and
/// orchestration only). The P2P step further reduces it by offloading the
/// NVMe interactions to the prep accelerator's P2P handler (§VI-E).
pub fn cpu_driver_secs_per_sample(p2p: bool) -> f64 {
    if p2p {
        15e-6
    } else {
        40e-6
    }
}

/// Host memory traffic per sample on the **baseline** (bytes read+written),
/// decomposed as in Fig 11.
///
/// Image: stored(35K) + formatting/augmentation passes (688K) + data load
/// (602K) = 1.325 MB. With this, Fig 10b's maximum required memory bandwidth
/// at 256 accelerators is `256 × 12022 × 1.325 MB / 239 GB/s = 17.1×` DGX-2 —
/// the paper reports "up to 17.9×".
///
/// Audio: data load (355K) is 21.1% of memory traffic per Fig 11b ⇒ total
/// 1.682 MB, split stored(222.7K) + formatting/augmentation (1.104 MB) +
/// load (355K).
pub fn baseline_mem_bytes_per_sample(input: InputKind) -> MemBreakdown {
    let s = SampleSizes::for_input(input);
    match input {
        InputKind::Image => MemBreakdown {
            ssd_read: s.stored,
            formatting: 458_000.0,
            augmentation: 230_000.0,
            data_load: s.tensor,
            data_copy: 0.0,
            others: 30_000.0,
        },
        InputKind::Audio => MemBreakdown {
            ssd_read: s.stored,
            formatting: 773_000.0,
            augmentation: 331_000.0,
            data_load: s.tensor,
            data_copy: 0.0,
            others: 30_000.0,
        },
        // DSL modalities: working-set passes scaled from the preset
        // graphs' byte flows (tokenize buffers ~3x the text; video decode
        // touches the frame tensor; tabular is lookup-table reads).
        InputKind::Text => MemBreakdown {
            ssd_read: s.stored,
            formatting: 48_000.0,
            augmentation: 0.0,
            data_load: s.tensor,
            data_copy: 0.0,
            others: 8_000.0,
        },
        InputKind::Video => MemBreakdown {
            ssd_read: s.stored,
            formatting: 3_700_000.0,
            augmentation: 1_000_000.0,
            data_load: s.tensor,
            data_copy: 0.0,
            others: 30_000.0,
        },
        InputKind::Tabular => MemBreakdown {
            ssd_read: s.stored,
            formatting: 0.0,
            augmentation: 2_176.0,
            data_load: s.tensor,
            data_copy: 0.0,
            others: 512.0,
        },
    }
}

/// A per-operation-class decomposition of one resource (the legend of
/// Figures 11 and 22).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemBreakdown {
    /// SSD → host transfer buffering.
    pub ssd_read: f64,
    /// Data formatting passes (decode, cast, STFT, Mel).
    pub formatting: f64,
    /// Data augmentation passes (crop, mirror, noise, masking).
    pub augmentation: f64,
    /// Host → accelerator staging of the prepared tensor.
    pub data_load: f64,
    /// Host-mediated staging to/from prep accelerators (Step-1 designs).
    pub data_copy: f64,
    /// Bookkeeping, queues, metadata.
    pub others: f64,
}

impl MemBreakdown {
    /// Total bytes per sample.
    pub fn total(&self) -> f64 {
        self.ssd_read + self.formatting + self.augmentation + self.data_load + self.data_copy + self.others
    }
}

/// Fraction of baseline prep CPU time by operation class (Fig 11 "CPU").
/// Measured proportions from our own kernels (JPEG decode dominates the
/// image path; STFT dominates audio), normalized to sum to 1.
pub fn cpu_fractions(input: InputKind) -> CpuFractions {
    match input {
        InputKind::Image => CpuFractions {
            ssd_read: 0.03,
            formatting: 0.55,
            augmentation: 0.32,
            data_load: 0.07,
            others: 0.03,
        },
        InputKind::Audio => CpuFractions {
            ssd_read: 0.02,
            formatting: 0.66,
            augmentation: 0.22,
            data_load: 0.07,
            others: 0.03,
        },
        // DSL modalities, proportioned like their preset graphs:
        // tokenization dominates text, per-frame decode dominates video,
        // and tabular prep is mostly irregular lookup/data-load time.
        InputKind::Text => CpuFractions {
            ssd_read: 0.02,
            formatting: 0.90,
            augmentation: 0.0,
            data_load: 0.08,
            others: 0.0,
        },
        InputKind::Video => CpuFractions {
            ssd_read: 0.02,
            formatting: 0.86,
            augmentation: 0.05,
            data_load: 0.07,
            others: 0.0,
        },
        InputKind::Tabular => CpuFractions {
            ssd_read: 0.13,
            formatting: 0.0,
            augmentation: 0.19,
            data_load: 0.68,
            others: 0.0,
        },
    }
}

/// CPU-time fractions by operation class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuFractions {
    /// NVMe driver / IO submission.
    pub ssd_read: f64,
    /// Formatting kernels.
    pub formatting: f64,
    /// Augmentation kernels.
    pub augmentation: f64,
    /// DMA staging for the accelerator load.
    pub data_load: f64,
    /// Everything else.
    pub others: f64,
}

/// Throughput of one FPGA data-preparation accelerator, samples/s.
///
/// Derivations:
/// * Audio: §VI-D says TF-SR reaches the 256-accelerator target with "54%
///   more FPGA resources from the prep-pool". Per train box the demand is
///   8 × 2001 = 16,008 sample/s against 2 in-box FPGAs:
///   `2f × 1.54 = 16,008 ⇒ f ≈ 5,200`.
/// * Image: chosen so a train box's two FPGAs cover Inception-v4 and VGG-19
///   locally (§VI-D: Inception "reaches the target throughput without the
///   prep-pool") while ResNet-50 and the caption RNNs need pool help:
///   20,000 sample/s ≈ 0.7 GB/s of JPEG input per FPGA, ~31× one Xeon core —
///   in line with the paper's claim that a few FPGAs replace dozens of cores.
///
/// DSL modalities: tokenization pipelines on FPGAs stream ~24k
/// sequences/s; video decode is 8 image decodes per clip (20,000/8 =
/// 2,500 clips/s); tabular assembly is bandwidth-bound and very fast.
pub fn fpga_samples_per_sec(input: InputKind) -> f64 {
    match input {
        InputKind::Image => 20_000.0,
        InputKind::Audio => 5_200.0,
        InputKind::Text => 24_000.0,
        InputKind::Video => 2_500.0,
        InputKind::Tabular => 1_500_000.0,
    }
}

/// Throughput of one GPU used for data preparation, samples/s (the Fig 21
/// comparison arm). Much lower than the FPGA on images because Huffman
/// decoding resists GPU parallelization (§V-B, citing \[40\]); somewhat lower
/// on audio because many small FFTs favor FPGAs (§V-B, citing \[39\]).
pub fn gpu_prep_samples_per_sec(input: InputKind) -> f64 {
    match input {
        InputKind::Image => 4_500.0,
        InputKind::Audio => 2_600.0,
        // Branchy BPE merges resist GPU parallelization even more than
        // Huffman decode; video inherits the image decode gap per frame;
        // tabular gather/scatter maps well but stays below the FPGA NIC
        // path.
        InputKind::Text => 3_000.0,
        InputKind::Video => 560.0,
        InputKind::Tabular => 900_000.0,
    }
}

/// Sustained NVMe SSD read bandwidth, bytes/s (Gen3 x4 class device).
pub const SSD_READ_BYTES_PER_SEC: f64 = 3.2e9;

/// 100 GbE payload bandwidth per prep-accelerator NIC (§IV-D: "100Gbs =
/// 12.5GB/s").
pub const ETHERNET_BYTES_PER_SEC: f64 = 12.5e9;

/// Per-sample bytes over the prep-pool Ethernet when offloading one sample:
/// the raw input travels to the pool FPGA and the prepared tensor comes
/// back. We charge the full round trip (stored + tensor) against one NIC
/// budget — the port is a single shared MAC/protocol engine (Fig 17), so RX
/// and TX contend for the same packet-processing pipeline.
pub fn ethernet_bytes_per_offloaded_sample(input: InputKind) -> f64 {
    let s = SampleSizes::for_input(input);
    s.stored + s.tensor
}

/// Efficiency of a neural-network accelerator as a function of batch size,
/// relative to its Table-I throughput (measured at the largest batch). The
/// paper's Fig 20 notes "better efficiency of neural network accelerators
/// (i.e., higher resource utilization with a larger batch)"; we model the
/// standard saturating form `eff(b) = (b/(b+k)) / (B/(B+k))` with `k` =
/// half the Table-I batch, so `eff(B) = 1`.
pub fn batch_efficiency(batch: u64, table_batch: u64) -> f64 {
    assert!(batch > 0 && table_batch > 0, "batch sizes must be positive");
    let k = table_batch as f64 / 2.0;
    let b = batch as f64;
    let full = table_batch as f64;
    (b / (b + k)) / (full / (full + k))
}

/// One measured point on a preparation scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Worker threads used for this measurement.
    pub workers: usize,
    /// Measured batch throughput at that worker count.
    pub samples_per_sec: f64,
}

/// A measured multi-core scaling curve for the software data-preparation
/// path, produced by [`measure_prep_scaling`].
///
/// The paper's baseline argument rests on software preparation scaling
/// *linearly enough* with cores that its 48-core host numbers extrapolate
/// (§III-B1 profiles per-core cost and multiplies out). Every constant in
/// this module that divides by [`DGX2`]'s 48 cores implicitly assumes
/// parallel efficiency ≈ 1. This curve records what the efficiency actually
/// is for the real kernels in `trainbox-dataprep`, so the extrapolation
/// carries an empirical footnote instead of an assumption.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingCurve {
    /// `std::thread::available_parallelism()` on the measuring host. Points
    /// with `workers` beyond this are oversubscribed and cannot show real
    /// speedup — an honesty marker for single-core CI hosts.
    pub host_parallelism: usize,
    /// Measurements, in ascending worker order. The first point is the
    /// single-worker anchor.
    pub points: Vec<ScalingPoint>,
}

impl ScalingCurve {
    /// Parallel efficiency at `workers`: `throughput(w) / (w ×
    /// throughput(1))`. `None` when either point was not measured.
    pub fn efficiency(&self, workers: usize) -> Option<f64> {
        let base = self.points.iter().find(|p| p.workers == 1)?.samples_per_sec;
        let at = self.points.iter().find(|p| p.workers == workers)?.samples_per_sec;
        if base > 0.0 && workers > 0 {
            Some(at / (workers as f64 * base))
        } else {
            None
        }
    }

    /// Least-squares Amdahl serial fraction `s` over the measured points
    /// within the host's real parallelism: fits `speedup(w) = 1/(s +
    /// (1-s)/w)` by solving each point for `s` and averaging. `None` when
    /// only the single-worker anchor is usable.
    pub fn amdahl_serial_fraction(&self) -> Option<f64> {
        let base = self.points.iter().find(|p| p.workers == 1)?.samples_per_sec;
        if base <= 0.0 {
            return None;
        }
        let mut acc = 0.0;
        let mut n = 0usize;
        for p in &self.points {
            if p.workers <= 1 || p.workers > self.host_parallelism || p.samples_per_sec <= 0.0 {
                continue;
            }
            let speedup = p.samples_per_sec / base;
            let w = p.workers as f64;
            // speedup = 1 / (s + (1-s)/w)  ⇒  s = (w/speedup - 1) / (w - 1)
            let s = (w / speedup - 1.0) / (w - 1.0);
            acc += s.clamp(0.0, 1.0);
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(acc / n as f64)
        }
    }

    /// The empirical footnote to the §III-B1 extrapolation: projected
    /// parallel efficiency at the paper's 48-core host under the fitted
    /// Amdahl model, or 1.0 when no multi-core point could be measured
    /// (single-core host — the assumption stays an assumption).
    pub fn projected_efficiency_at(&self, cores: usize) -> f64 {
        let Some(s) = self.amdahl_serial_fraction() else {
            return 1.0;
        };
        let w = cores as f64;
        let speedup = 1.0 / (s + (1.0 - s) / w);
        speedup / w
    }
}

/// Measure the image-preparation scaling curve with the real kernels: run
/// `batch` synthetic JPEG samples through the standard Fig 17 image
/// pipeline on [`trainbox_dataprep::executor::BatchExecutor`] at each
/// worker count, keeping the best of `reps` repetitions per point (minimum
/// wall-clock ≈ true cost under scheduler noise).
pub fn measure_prep_scaling(worker_counts: &[usize], batch: usize, reps: usize) -> ScalingCurve {
    use trainbox_dataprep::executor::{BatchExecutor, ExecutorConfig};
    use trainbox_dataprep::pipeline::{DataItem, PrepPipeline};

    let host_parallelism =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let pipeline = PrepPipeline::standard_image();
    let samples: Vec<DataItem> = (0..batch)
        .map(|i| {
            let img = trainbox_dataprep::synth::synthetic_image(256, 256, 0xCA11B + i as u64);
            DataItem::EncodedImage(trainbox_dataprep::jpeg::encode(&img, 90))
        })
        .collect();

    let mut points = Vec::with_capacity(worker_counts.len());
    for &workers in worker_counts {
        let ex = BatchExecutor::new(ExecutorConfig { workers, queue_depth: 8 });
        let mut best = 0.0f64;
        for _ in 0..reps.max(1) {
            let (_, report) = ex
                .run_timed(&pipeline, samples.clone(), 0xBEEF)
                // invariant: the inputs are JPEGs produced by our own encoder
                // at fixed quality, so the standard image pipeline decodes
                // them by construction; only a bug in jpeg/pipeline can fail.
                .expect("synthetic samples must prepare cleanly");
            best = best.max(report.samples_per_sec());
        }
        points.push(ScalingPoint { workers, samples_per_sec: best });
    }
    ScalingCurve { host_parallelism, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trainbox_nn::Workload;

    #[test]
    fn image_cpu_cost_reproduces_paper_anchors() {
        let c = cpu_secs_per_sample(InputKind::Image);
        // Fig 10a max: RNN-S at 256 accelerators needs ~4,833 cores (100.7x).
        let cores = 256.0 * Workload::rnn_s().accel_samples_per_sec * c;
        assert!((cores - 4833.0).abs() < 30.0, "cores={cores}");
        assert!((cores / 48.0 - 100.7).abs() < 1.0);
        // Fig 21a: Inception-v4 baseline saturates at ~18.3 accelerators.
        let sat = 48.0 / (Workload::inception_v4().accel_samples_per_sec * c);
        assert!((sat - 18.3).abs() < 0.2, "sat={sat}");
    }

    #[test]
    fn audio_cpu_cost_reproduces_paper_anchors() {
        let c = cpu_secs_per_sample(InputKind::Audio);
        // Fig 21b: TF-SR saturates at ~4.4 accelerators.
        let sat = 48.0 / (Workload::transformer_sr().accel_samples_per_sec * c);
        assert!((sat - 4.4).abs() < 0.1, "sat={sat}");
        // §VI-C: the largest TrainBox improvement is TF-AA at ~84x.
        let baseline = 48.0 / c;
        let speedup = 256.0 * Workload::transformer_aa().accel_samples_per_sec / baseline;
        assert!((speedup - 84.3).abs() < 2.0, "speedup={speedup}");
    }

    #[test]
    fn memory_model_reproduces_fig10b_max() {
        let m = baseline_mem_bytes_per_sample(InputKind::Image).total();
        let ratio = 256.0 * Workload::rnn_s().accel_samples_per_sec * m / DGX2.mem_bytes_per_sec;
        // Paper: "up to 17.9x higher memory bandwidth than DGX-2".
        assert!((ratio - 17.9).abs() < 1.0, "ratio={ratio}");
    }

    #[test]
    fn audio_mem_breakdown_matches_fig11b_load_share() {
        let m = baseline_mem_bytes_per_sample(InputKind::Audio);
        let share = m.data_load / m.total();
        // Fig 11b: data load is 21.1% of audio memory traffic.
        assert!((share - 0.211).abs() < 0.01, "share={share}");
    }

    #[test]
    fn pcie_model_reproduces_fig10c_regime() {
        // Per-sample RC traffic on the baseline: stored up + tensor down.
        let mut ratios = Vec::new();
        for w in Workload::all() {
            let s = SampleSizes::for_input(w.input);
            let per_sample = s.stored + s.tensor;
            ratios.push(256.0 * w.accel_samples_per_sec * per_sample / DGX2.rc_pcie_bytes_per_sec);
        }
        let max = ratios.iter().copied().fold(0.0f64, f64::max);
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        // Paper: up to 18.0x, 7.1x on average.
        assert!((max - 18.0).abs() < 1.5, "max={max}");
        assert!((mean - 7.1).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn prep_pool_share_for_tf_sr_is_54_percent() {
        // §VI-D: TF-SR reaches target with 54% more FPGA resources.
        let demand_per_box = 8.0 * Workload::transformer_sr().accel_samples_per_sec;
        let in_box = 2.0 * fpga_samples_per_sec(InputKind::Audio);
        let extra = (demand_per_box - in_box) / in_box;
        assert!((extra - 0.54).abs() < 0.01, "extra={extra}");
    }

    #[test]
    fn cast_amplification_is_4x() {
        let s = SampleSizes::for_input(InputKind::Image);
        // 224*224*3 u8 = 150,528; float = 602,112.
        assert_eq!(s.tensor, 150_528.0 * 4.0);
    }

    #[test]
    fn cpu_fractions_sum_to_one() {
        for input in [InputKind::Image, InputKind::Audio] {
            let f = cpu_fractions(input);
            let sum = f.ssd_read + f.formatting + f.augmentation + f.data_load + f.others;
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(f.formatting > f.augmentation, "formatting dominates (Fig 11)");
        }
    }

    #[test]
    fn batch_efficiency_saturates() {
        assert!((batch_efficiency(8192, 8192) - 1.0).abs() < 1e-12);
        assert!(batch_efficiency(8, 8192) < 0.01);
        assert!(batch_efficiency(2048, 8192) < batch_efficiency(4096, 8192));
        // Larger-than-table batches are allowed and slightly exceed 1.
        assert!(batch_efficiency(16384, 8192) > 1.0);
    }

    #[test]
    fn scaling_curve_efficiency_and_amdahl_fit() {
        // A synthetic curve obeying Amdahl with s = 0.1 exactly.
        let s = 0.1f64;
        let base = 500.0;
        let points = [1usize, 2, 4]
            .iter()
            .map(|&w| ScalingPoint {
                workers: w,
                samples_per_sec: base / (s + (1.0 - s) / w as f64),
            })
            .collect();
        let curve = ScalingCurve { host_parallelism: 8, points };
        assert!((curve.efficiency(1).unwrap() - 1.0).abs() < 1e-12);
        let e4 = curve.efficiency(4).unwrap();
        assert!(e4 < 1.0 && e4 > 0.7, "e4={e4}");
        let fit = curve.amdahl_serial_fraction().unwrap();
        assert!((fit - s).abs() < 1e-9, "fit={fit}");
        // Projection at 48 cores under s=0.1 is ~17.5% efficiency.
        let p48 = curve.projected_efficiency_at(48);
        assert!((p48 - (1.0 / (s + 0.9 / 48.0)) / 48.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_curve_single_point_projects_unity() {
        let curve = ScalingCurve {
            host_parallelism: 1,
            points: vec![ScalingPoint { workers: 1, samples_per_sec: 400.0 }],
        };
        assert!(curve.amdahl_serial_fraction().is_none());
        assert_eq!(curve.projected_efficiency_at(48), 1.0);
        assert!(curve.efficiency(2).is_none());
    }

    #[test]
    fn measured_scaling_curve_is_sane() {
        // Tiny batch: this is a smoke test of the measurement path, not a
        // benchmark; the perf-trajectory numbers come from bench_prep.
        let curve = measure_prep_scaling(&[1, 2], 4, 1);
        assert!(curve.host_parallelism >= 1);
        assert_eq!(curve.points.len(), 2);
        for p in &curve.points {
            assert!(p.samples_per_sec > 0.0, "workers={} must make progress", p.workers);
        }
    }

    #[test]
    fn gpu_prep_slower_than_fpga() {
        for input in [InputKind::Image, InputKind::Audio] {
            assert!(gpu_prep_samples_per_sec(input) < fpga_samples_per_sec(input));
        }
        // The image gap is larger (Huffman irregularity, §V-B).
        let img_gap = fpga_samples_per_sec(InputKind::Image) / gpu_prep_samples_per_sec(InputKind::Image);
        let aud_gap = fpga_samples_per_sec(InputKind::Audio) / gpu_prep_samples_per_sec(InputKind::Audio);
        assert!(img_gap > aud_gap);
    }
}

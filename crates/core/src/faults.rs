//! Deterministic fault injection and degraded-mode accounting.
//!
//! A real 256-accelerator server does not fail cleanly or rarely: SSDs
//! stall, preparation devices crash or slow down, PCIe links retrain to
//! fewer lanes, accelerators drop off the ring, and prep requests time out.
//! This module describes such faults as a *plan* — a seeded, fully
//! deterministic schedule of typed events — that
//! [`crate::pipeline::simulate_with_faults`] replays against the
//! discrete-event datapath. The simulator then exercises the degraded
//! modes: preparation work is rebalanced across surviving devices (greedy
//! water-filling, the discrete analogue of max-min fairness), the
//! synchronization ring is re-formed over the surviving accelerators (see
//! [`trainbox_collective::reform`]), degraded links reshape the max-min
//! flow rates, and transient request failures retry with exponential
//! backoff.
//!
//! Determinism guarantee: a plan is data, not a random process. The same
//! `(server, workload, config, plan)` tuple always produces the identical
//! event sequence and [`FaultStats`]; [`FaultPlan::seeded`] derives a plan
//! from a seed up front so even "random" fault storms replay exactly. An
//! empty plan injects nothing and leaves the fault-free simulation
//! byte-identical.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One kind of fault, with its target and (where applicable) duration.
///
/// Device indices refer to the simulated server's device arrays (SSD, prep
/// device, accelerator order of the topology); link indices refer to the
/// PCIe topology's directed links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// SSD `ssd` stops serving reads for `secs` (controller hiccup, GC
    /// pause). Queued reads wait it out.
    SsdStall { ssd: usize, secs: f64 },
    /// Preparation device `dev` crashes permanently. Its queued and future
    /// work is rebalanced over the surviving prep devices.
    PrepCrash { dev: usize },
    /// Preparation device `dev` runs at `factor` (< 1) of nominal speed for
    /// `secs` (thermal throttling, background scrub).
    PrepSlowdown { dev: usize, factor: f64, secs: f64 },
    /// Directed PCIe link `link` degrades to `fraction` of nominal
    /// bandwidth for `secs` (lane retraining).
    LinkDegrade { link: usize, fraction: f64, secs: f64 },
    /// Accelerator `acc` drops out permanently. The synchronization ring is
    /// re-formed over the survivors; data buffered or in flight toward the
    /// dead device is wasted.
    AccelDropout { acc: usize },
    /// Preparation device `dev` rejects new requests for `secs`; affected
    /// requests retry with exponential backoff under the plan's
    /// [`RetryPolicy`].
    PrepTransient { dev: usize, secs: f64 },
}

impl FaultKind {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::SsdStall { .. } => "ssd-stall",
            FaultKind::PrepCrash { .. } => "prep-crash",
            FaultKind::PrepSlowdown { .. } => "prep-slowdown",
            FaultKind::LinkDegrade { .. } => "link-degrade",
            FaultKind::AccelDropout { .. } => "accel-dropout",
            FaultKind::PrepTransient { .. } => "prep-transient",
        }
    }
}

/// A fault scheduled at an absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Injection time, seconds from simulation start.
    pub at_secs: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Retry discipline for transiently failing prep requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries before a request is declared failed (its chunk is re-read
    /// from the SSD and the samples counted as wasted).
    pub max_retries: u32,
    /// Time a request waits before its failure is detected.
    pub timeout_secs: f64,
    /// Backoff before retry `k` is `base * multiplier^k`.
    pub backoff_base_secs: f64,
    /// Exponential backoff growth per retry.
    pub backoff_multiplier: f64,
}

impl RetryPolicy {
    /// Backoff delay preceding retry attempt `k` (0-based).
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        self.backoff_base_secs * self.backoff_multiplier.powi(attempt as i32)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            timeout_secs: 1e-3,
            backoff_base_secs: 1e-4,
            backoff_multiplier: 2.0,
        }
    }
}

/// The bounds a plan's targets must respect, taken from the simulated
/// server: device counts, link count, and the horizon faults may land in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultDomain {
    /// SSDs in the server.
    pub n_ssds: usize,
    /// Preparation devices in the server.
    pub n_preps: usize,
    /// Accelerators in the server.
    pub n_accels: usize,
    /// Directed PCIe links in the topology.
    pub n_links: usize,
    /// Latest time a generated fault may fire, seconds.
    pub horizon_secs: f64,
}

/// A deterministic schedule of faults plus the retry discipline.
///
/// Build one explicitly with [`FaultPlan::at`], or derive a reproducible
/// storm from a seed with [`FaultPlan::seeded`]. The empty plan is the
/// fault-free simulation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Scheduled faults (any order; the simulator sorts by time).
    pub events: Vec<FaultEvent>,
    /// Retry discipline for [`FaultKind::PrepTransient`] failures.
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::empty()
    }
}

// Hand-written so a request may omit `retry` and get the default policy —
// the derive would insist on every field being present.
impl Deserialize for FaultPlan {
    fn from_json(v: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::json::JsonError::type_mismatch("FaultPlan", "object"))?;
        let events = obj
            .iter()
            .find(|(k, _)| k == "events")
            .map(|(_, v)| Deserialize::from_json(v))
            .transpose()?
            .unwrap_or_default();
        let retry = obj
            .iter()
            .find(|(k, _)| k == "retry")
            .map(|(_, v)| Deserialize::from_json(v))
            .transpose()?
            .unwrap_or_default();
        Ok(FaultPlan { events, retry })
    }
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn empty() -> Self {
        FaultPlan { events: Vec::new(), retry: RetryPolicy::default() }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Append a fault at `at_secs` (builder style).
    #[must_use]
    pub fn at(mut self, at_secs: f64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at_secs, kind });
        self
    }

    /// Events sorted by injection time (stable: simultaneous faults keep
    /// their declaration order).
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut ev = self.events.clone();
        ev.sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));
        ev
    }

    /// Generate a reproducible fault storm: about `intensity` faults per
    /// simulated second over `domain.horizon_secs`, drawn from `seed`.
    ///
    /// The generator never schedules more permanent losses than the server
    /// can survive: at most `n_preps - 1` prep crashes and `n_accels - 1`
    /// accelerator dropouts are emitted, and kinds whose target class the
    /// server lacks are skipped. The same `(seed, intensity, domain)`
    /// always yields the same plan.
    pub fn seeded(seed: u64, intensity: f64, domain: &FaultDomain) -> Self {
        assert!(intensity >= 0.0 && intensity.is_finite(), "intensity must be >= 0");
        assert!(domain.horizon_secs > 0.0, "horizon must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let count = (intensity * domain.horizon_secs).round() as usize;
        let mut plan = FaultPlan::empty();
        let mut crashes_left = domain.n_preps.saturating_sub(1);
        let mut dropouts_left = domain.n_accels.saturating_sub(1);
        for _ in 0..count {
            let at = rng.gen_range(0.0..domain.horizon_secs);
            // Transient window lengths scale with the horizon so short
            // simulations still see overlapping degradation.
            let window = rng.gen_range(0.05..0.25) * domain.horizon_secs;
            let kind = loop {
                match rng.gen_range(0u32..6) {
                    0 if domain.n_ssds > 0 => {
                        break FaultKind::SsdStall {
                            ssd: rng.gen_range(0..domain.n_ssds),
                            secs: window,
                        }
                    }
                    1 if crashes_left > 0 => {
                        crashes_left -= 1;
                        break FaultKind::PrepCrash { dev: rng.gen_range(0..domain.n_preps) };
                    }
                    2 if domain.n_preps > 0 => {
                        break FaultKind::PrepSlowdown {
                            dev: rng.gen_range(0..domain.n_preps),
                            factor: rng.gen_range(0.2..0.8),
                            secs: window,
                        }
                    }
                    3 if domain.n_links > 0 => {
                        break FaultKind::LinkDegrade {
                            link: rng.gen_range(0..domain.n_links),
                            fraction: rng.gen_range(0.25..0.75),
                            secs: window,
                        }
                    }
                    4 if dropouts_left > 0 => {
                        dropouts_left -= 1;
                        break FaultKind::AccelDropout {
                            acc: rng.gen_range(0..domain.n_accels),
                        };
                    }
                    5 if domain.n_preps > 0 => {
                        break FaultKind::PrepTransient {
                            dev: rng.gen_range(0..domain.n_preps),
                            secs: window,
                        }
                    }
                    _ => continue, // class exhausted or absent; redraw
                }
            };
            plan.events.push(FaultEvent { at_secs: at, kind });
        }
        plan
    }

    /// Check every event against `domain`: indices in range, durations and
    /// fractions sane, and at least one prep device / accelerator left
    /// standing. Returns the first problem found.
    pub fn validate(&self, domain: &FaultDomain) -> Result<(), String> {
        let mut crashed = std::collections::BTreeSet::new();
        let mut dropped = std::collections::BTreeSet::new();
        for (i, ev) in self.events.iter().enumerate() {
            let err = |msg: String| Err(format!("fault #{i} ({}): {msg}", ev.kind.label()));
            if !ev.at_secs.is_finite() || ev.at_secs < 0.0 {
                return err(format!("bad injection time {}", ev.at_secs));
            }
            let dur_ok = |d: f64| d.is_finite() && d > 0.0;
            match ev.kind {
                FaultKind::SsdStall { ssd, secs } => {
                    if ssd >= domain.n_ssds {
                        return err(format!("ssd {ssd} out of range ({})", domain.n_ssds));
                    }
                    if !dur_ok(secs) {
                        return err(format!("bad duration {secs}"));
                    }
                }
                FaultKind::PrepCrash { dev } => {
                    if dev >= domain.n_preps {
                        return err(format!("prep {dev} out of range ({})", domain.n_preps));
                    }
                    crashed.insert(dev);
                    if crashed.len() >= domain.n_preps {
                        return err("no prep device would survive".into());
                    }
                }
                FaultKind::PrepSlowdown { dev, factor, secs } => {
                    if dev >= domain.n_preps {
                        return err(format!("prep {dev} out of range ({})", domain.n_preps));
                    }
                    if !(factor > 0.0 && factor <= 1.0) {
                        return err(format!("factor {factor} outside (0, 1]"));
                    }
                    if !dur_ok(secs) {
                        return err(format!("bad duration {secs}"));
                    }
                }
                FaultKind::LinkDegrade { link, fraction, secs } => {
                    if link >= domain.n_links {
                        return err(format!("link {link} out of range ({})", domain.n_links));
                    }
                    if !(fraction > 0.0 && fraction <= 1.0) {
                        return err(format!("fraction {fraction} outside (0, 1]"));
                    }
                    if !dur_ok(secs) {
                        return err(format!("bad duration {secs}"));
                    }
                }
                FaultKind::AccelDropout { acc } => {
                    if acc >= domain.n_accels {
                        return err(format!("accel {acc} out of range ({})", domain.n_accels));
                    }
                    dropped.insert(acc);
                    if dropped.len() >= domain.n_accels {
                        return err("no accelerator would survive".into());
                    }
                }
                FaultKind::PrepTransient { dev, secs } => {
                    if dev >= domain.n_preps {
                        return err(format!("prep {dev} out of range ({})", domain.n_preps));
                    }
                    if !dur_ok(secs) {
                        return err(format!("bad duration {secs}"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Downtime attributed to one injected fault.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultDowntime {
    /// When the fault fired, seconds.
    pub at_secs: f64,
    /// [`FaultKind::label`] of the fault.
    pub kind: &'static str,
    /// How long the affected component was impaired: the fault's window for
    /// transient faults, time-to-end-of-run for permanent losses.
    pub secs: f64,
}

/// What the fault layer observed during one simulation.
///
/// With an empty plan every counter is zero and the throughput fields
/// coincide with the fault-free result.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct FaultStats {
    /// Faults injected.
    pub injected: u64,
    /// Prep-request retries performed (transient failures).
    pub retries: u64,
    /// Requests that exhausted their retries and re-read from the SSD.
    pub failed_requests: u64,
    /// Samples whose work was discarded (data headed to or buffered at a
    /// dropped accelerator, or re-read after exhausted retries).
    pub wasted_samples: u64,
    /// Accelerators permanently lost.
    pub accels_lost: u64,
    /// Preparation devices permanently lost.
    pub preps_lost: u64,
    /// Per-fault downtime, in injection order.
    pub downtime: Vec<FaultDowntime>,
    /// Throughput the *initial* device complement would have sustained over
    /// the measured window at the achieved pace (samples/s).
    pub nominal_samples_per_sec: f64,
    /// Achieved throughput discounted by the wasted-work fraction
    /// (samples/s): `effective * useful / (useful + wasted)`.
    pub goodput_samples_per_sec: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> FaultDomain {
        FaultDomain { n_ssds: 4, n_preps: 4, n_accels: 16, n_links: 40, horizon_secs: 2.0 }
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        assert!(p.validate(&domain()).is_ok());
    }

    #[test]
    fn builder_orders_events_by_time() {
        let p = FaultPlan::empty()
            .at(0.5, FaultKind::PrepCrash { dev: 1 })
            .at(0.1, FaultKind::SsdStall { ssd: 0, secs: 0.2 });
        let ev = p.sorted_events();
        assert_eq!(ev[0].at_secs, 0.1);
        assert_eq!(ev[1].at_secs, 0.5);
        assert!(p.validate(&domain()).is_ok());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_valid() {
        let d = domain();
        let a = FaultPlan::seeded(7, 4.0, &d);
        let b = FaultPlan::seeded(7, 4.0, &d);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 8);
        assert!(a.validate(&d).is_ok());
        let c = FaultPlan::seeded(8, 4.0, &d);
        assert_ne!(a, c, "different seeds should give different storms");
    }

    #[test]
    fn seeded_never_kills_every_prep_or_accel() {
        // A violent storm against a tiny server must leave survivors.
        let d = FaultDomain { n_ssds: 1, n_preps: 2, n_accels: 2, n_links: 4, horizon_secs: 1.0 };
        for seed in 0..20 {
            let p = FaultPlan::seeded(seed, 50.0, &d);
            assert!(p.validate(&d).is_ok(), "seed {seed}: {:?}", p.validate(&d));
        }
    }

    #[test]
    fn validate_catches_out_of_range_and_total_loss() {
        let d = domain();
        let bad = FaultPlan::empty().at(0.1, FaultKind::SsdStall { ssd: 9, secs: 0.1 });
        assert!(bad.validate(&d).unwrap_err().contains("out of range"));
        let mut total = FaultPlan::empty();
        for dev in 0..d.n_preps {
            total = total.at(0.1, FaultKind::PrepCrash { dev });
        }
        assert!(total.validate(&d).unwrap_err().contains("survive"));
        let neg = FaultPlan::empty().at(-1.0, FaultKind::PrepCrash { dev: 0 });
        assert!(neg.validate(&d).unwrap_err().contains("injection time"));
        let frac = FaultPlan::empty()
            .at(0.0, FaultKind::LinkDegrade { link: 0, fraction: 1.5, secs: 0.1 });
        assert!(frac.validate(&d).unwrap_err().contains("outside"));
    }

    #[test]
    fn backoff_grows_exponentially() {
        let r = RetryPolicy::default();
        assert!((r.backoff_secs(0) - 1e-4).abs() < 1e-12);
        assert!((r.backoff_secs(3) - 8e-4).abs() < 1e-12);
    }
}

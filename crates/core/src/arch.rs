//! Server configurations and the analytic bottleneck throughput model.
//!
//! A training server's steady-state throughput under next-batch prefetching
//! is the minimum of the accelerator side (model computation + ring
//! synchronization) and the data-preparation side (whichever host or device
//! resource binds first) — §I: "the longest step ... becomes the performance
//! bottleneck". This module evaluates that minimum for every design the
//! paper compares (Figures 8, 19, 20, 21).

use crate::calib::{batch_efficiency, DGX2, ETHERNET_BYTES_PER_SEC, SSD_READ_BYTES_PER_SEC};
use crate::host::{baseline_ssd_count, Datapath, PerSampleUsage};
use crate::profile::PrepProfile;
use serde::{Deserialize, Serialize};
use trainbox_collective::{AllToAllModel, PsModel, RingModel, SyncModel};
use trainbox_nn::{SyncPattern, Workload};
use trainbox_pcie::boxes::{
    PrepPoolNet, ServerBuilder, ServerTopology, ACCS_PER_TRAIN_BOX, PREPS_PER_TRAIN_BOX,
    SSDS_PER_TRAIN_BOX,
};
use trainbox_pcie::Generation;

/// The server designs evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerKind {
    /// Fig 7 / Fig 12: CPU data preparation, chained acc + SSD boxes.
    Baseline,
    /// Fig 13 ("B+Acc"): FPGA prep boxes, host-staged transfers.
    AccFpga,
    /// Fig 21's GPU arm: GPU prep boxes, host-staged transfers.
    AccGpu,
    /// Fig 14 ("B+Acc+P2P"): FPGA prep boxes with peer-to-peer transfers.
    AccFpgaP2p,
    /// "B+Acc+P2P+Gen4": the P2P design on PCIe Gen4 links.
    AccFpgaP2pGen4,
    /// Fig 15 without the Ethernet prep-pool.
    TrainBoxNoPool,
    /// Fig 15/18: clustered train boxes plus the prep-pool.
    TrainBox,
}

impl ServerKind {
    /// The five-step Fig 19 comparison, in order.
    pub fn figure19_order() -> [ServerKind; 5] {
        [
            ServerKind::Baseline,
            ServerKind::AccFpga,
            ServerKind::AccFpgaP2p,
            ServerKind::AccFpgaP2pGen4,
            ServerKind::TrainBox,
        ]
    }

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            ServerKind::Baseline => "Baseline (B)",
            ServerKind::AccFpga => "B+Acc",
            ServerKind::AccGpu => "B+Acc (GPU)",
            ServerKind::AccFpgaP2p => "B+Acc+P2P",
            ServerKind::AccFpgaP2pGen4 => "B+Acc+P2P+Gen4",
            ServerKind::TrainBoxNoPool => "TrainBox w/o prep-pool",
            ServerKind::TrainBox => "TrainBox",
        }
    }

    /// The host datapath this design uses (for resource accounting).
    pub fn datapath(self) -> Datapath {
        match self {
            ServerKind::Baseline => Datapath::HostCpu,
            ServerKind::AccFpga | ServerKind::AccGpu => Datapath::HostStagedAccel,
            ServerKind::AccFpgaP2p | ServerKind::AccFpgaP2pGen4 => Datapath::P2pAccel,
            ServerKind::TrainBoxNoPool | ServerKind::TrainBox => Datapath::Clustered,
        }
    }

    fn pcie_generation(self) -> Generation {
        match self {
            ServerKind::AccFpgaP2pGen4 => Generation::Gen4,
            _ => Generation::Gen3,
        }
    }
}

/// Why a [`ServerConfig`] cannot be built into a [`Server`].
///
/// Each variant names the offending request field (dotted path into the
/// canonical [`crate::request::SimRequest`] JSON form) via
/// [`ConfigError::field`], so API layers can return field-level messages.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ConfigError {
    /// `n_accels` was zero — a server needs at least one accelerator.
    NoAccelerators,
    /// An explicit batch-size override of zero.
    ZeroBatch,
    /// A prep-pool was requested on a design that has no Ethernet prep
    /// network (only [`ServerKind::TrainBox`] attaches one; on every other
    /// kind the pool would silently distort the analytic model while the
    /// simulated datapath ignores it).
    PoolWithoutPrepNet {
        /// The kind that cannot host a pool.
        kind: ServerKind,
        /// The pool size that was requested.
        pool_fpgas: usize,
    },
    /// The synchronization-fabric override is unphysical (non-finite or
    /// non-positive bandwidth / negative hop latency / zero chunk).
    BadRing {
        /// Which `RingModel` field is out of range.
        field: &'static str,
    },
}

impl ConfigError {
    /// Dotted path of the offending field in the canonical request form.
    pub fn field(&self) -> &'static str {
        match self {
            ConfigError::NoAccelerators => "server.n_accels",
            ConfigError::ZeroBatch => "server.batch_size",
            ConfigError::PoolWithoutPrepNet { .. } => "server.pool_fpgas",
            ConfigError::BadRing { field } => match *field {
                "link_bytes_per_sec" => "server.ring.link_bytes_per_sec",
                "hop_latency_secs" => "server.ring.hop_latency_secs",
                _ => "server.ring.chunk_bytes",
            },
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoAccelerators => {
                write!(f, "a server needs at least one accelerator")
            }
            ConfigError::ZeroBatch => write!(f, "batch size must be positive"),
            ConfigError::PoolWithoutPrepNet { kind, pool_fpgas } => write!(
                f,
                "{pool_fpgas} prep-pool FPGAs requested, but {} has no Ethernet prep network",
                kind.label()
            ),
            ConfigError::BadRing { field } => {
                write!(f, "ring model field `{field}` is out of range")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for a [`Server`].
///
/// # Example
///
/// ```
/// use trainbox_core::arch::{ServerConfig, ServerKind};
///
/// let server = ServerConfig::new(ServerKind::TrainBox, 64)
///     .pool_fpgas(32)
///     .build();
/// assert_eq!(server.n_accels(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    kind: ServerKind,
    n_accels: usize,
    batch_override: Option<u64>,
    pool_fpgas: Option<usize>,
    ring: RingModel,
}

impl ServerConfig {
    /// A server of `kind` with `n_accels` neural-network accelerators.
    ///
    /// Construction never fails; validation happens in [`Self::try_build`]
    /// (or panics in [`Self::build`]), so an invalid count can surface as a
    /// typed [`ConfigError`] instead of a panic mid-request.
    pub fn new(kind: ServerKind, n_accels: usize) -> Self {
        ServerConfig {
            kind,
            n_accels,
            batch_override: None,
            pool_fpgas: None,
            ring: RingModel::nvlink_default(),
        }
    }

    /// Override the per-accelerator batch size (defaults to each workload's
    /// Table-I batch). Used for the Fig 20 sweep.
    pub fn batch_size(mut self, batch: u64) -> Self {
        self.batch_override = Some(batch);
        self
    }

    /// Number of prep-pool FPGAs available (defaults: 256 for
    /// [`ServerKind::TrainBox`], 0 otherwise).
    pub fn pool_fpgas(mut self, pool: usize) -> Self {
        self.pool_fpgas = Some(pool);
        self
    }

    /// Override the synchronization fabric model.
    pub fn ring_model(mut self, ring: RingModel) -> Self {
        self.ring = ring;
        self
    }

    /// The design kind this configuration builds.
    pub fn kind(&self) -> ServerKind {
        self.kind
    }

    /// The requested accelerator count.
    pub fn n_accels(&self) -> usize {
        self.n_accels
    }

    /// The explicit batch-size override, if one was set.
    pub fn batch_override(&self) -> Option<u64> {
        self.batch_override
    }

    /// The explicit prep-pool size override, if one was set.
    pub fn pool_override(&self) -> Option<usize> {
        self.pool_fpgas
    }

    /// The synchronization fabric model in effect.
    pub fn ring(&self) -> &RingModel {
        &self.ring
    }

    /// Validate the configuration. `Ok(())` iff [`Self::try_build`] would
    /// succeed.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_accels == 0 {
            return Err(ConfigError::NoAccelerators);
        }
        if self.batch_override == Some(0) {
            return Err(ConfigError::ZeroBatch);
        }
        if let Some(pool) = self.pool_fpgas {
            if pool > 0 && self.kind != ServerKind::TrainBox {
                return Err(ConfigError::PoolWithoutPrepNet { kind: self.kind, pool_fpgas: pool });
            }
        }
        let r = &self.ring;
        if !(r.link_bytes_per_sec.is_finite() && r.link_bytes_per_sec > 0.0) {
            return Err(ConfigError::BadRing { field: "link_bytes_per_sec" });
        }
        if !(r.hop_latency_secs.is_finite() && r.hop_latency_secs >= 0.0) {
            return Err(ConfigError::BadRing { field: "hop_latency_secs" });
        }
        if r.chunk_bytes == 0 {
            return Err(ConfigError::BadRing { field: "chunk_bytes" });
        }
        Ok(())
    }

    /// Build the server, materializing its PCIe topology, after checking
    /// that the configuration is self-consistent.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the configuration cannot describe a real server:
    /// zero accelerators, a zero batch override, a prep-pool on a design
    /// without an Ethernet prep network, or an unphysical ring model.
    pub fn try_build(self) -> Result<Server, ConfigError> {
        self.validate()?;
        let gen = self.kind.pcie_generation();
        let builder = ServerBuilder::new(gen);
        let n = self.n_accels;
        let n_ssd = baseline_ssd_count(n);
        let n_prep = n.div_ceil(4);
        let (topology, prep_pool) = match self.kind {
            ServerKind::Baseline => (builder.baseline(n, n_ssd), None),
            ServerKind::AccFpga | ServerKind::AccFpgaP2p | ServerKind::AccFpgaP2pGen4 => {
                (builder.with_prep_boxes(n, n_ssd, n_prep, false), None)
            }
            ServerKind::AccGpu => (builder.with_prep_boxes(n, n_ssd, n_prep, true), None),
            ServerKind::TrainBoxNoPool | ServerKind::TrainBox => {
                let boxes = n.div_ceil(ACCS_PER_TRAIN_BOX);
                let topo = builder.train_boxes(boxes);
                let pool = self.effective_pool();
                let net = PrepPoolNet::new(boxes * PREPS_PER_TRAIN_BOX, pool);
                (topo, Some(net))
            }
        };
        Ok(Server { config: self, topology, prep_pool })
    }

    /// Build the server, materializing its PCIe topology.
    ///
    /// # Panics
    ///
    /// Panics where [`Self::try_build`] reports a [`ConfigError`].
    pub fn build(self) -> Server {
        match self.try_build() {
            Ok(server) => server,
            Err(e) => panic!("invalid server configuration: {e}"),
        }
    }

    fn effective_pool(&self) -> usize {
        self.pool_fpgas.unwrap_or(match self.kind {
            ServerKind::TrainBox => 256,
            _ => 0,
        })
    }
}

/// Which resource limits throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The accelerators themselves (the target — preparation keeps up).
    Accelerators,
    /// Host CPU cores doing preparation (or driver work).
    HostCpu,
    /// Host memory bandwidth.
    HostMemory,
    /// PCIe bandwidth at the root complex.
    RcPcie,
    /// Data-preparation accelerator compute (FPGA/GPU), including any
    /// prep-pool assist.
    PrepAccel,
    /// SSD read bandwidth.
    Ssd,
}

impl Bottleneck {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Bottleneck::Accelerators => "accelerators",
            Bottleneck::HostCpu => "host CPU",
            Bottleneck::HostMemory => "host memory BW",
            Bottleneck::RcPcie => "PCIe at root complex",
            Bottleneck::PrepAccel => "prep accelerators",
            Bottleneck::Ssd => "SSD read BW",
        }
    }
}

/// The analytic throughput result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Steady-state training throughput, samples/s.
    pub samples_per_sec: f64,
    /// The binding resource.
    pub bottleneck: Bottleneck,
    /// Every candidate ceiling that was considered, samples/s.
    pub ceilings: Vec<(Bottleneck, f64)>,
}

/// A built server: configuration plus materialized interconnect.
#[derive(Debug, Clone)]
pub struct Server {
    config: ServerConfig,
    topology: ServerTopology,
    prep_pool: Option<PrepPoolNet>,
}

impl Server {
    /// The design kind.
    pub fn kind(&self) -> ServerKind {
        self.config.kind
    }

    /// Number of NN accelerators.
    pub fn n_accels(&self) -> usize {
        self.config.n_accels
    }

    /// The PCIe topology (for DES simulation and inspection).
    pub fn topology(&self) -> &ServerTopology {
        &self.topology
    }

    /// The Ethernet prep network, when this design has one.
    pub fn prep_pool(&self) -> Option<&PrepPoolNet> {
        self.prep_pool.as_ref()
    }

    /// The synchronization model in use.
    pub fn ring_model(&self) -> &RingModel {
        &self.config.ring
    }

    /// The synchronization model `workload` declares, realized on this
    /// server's fabric: the configured ring for
    /// [`SyncPattern::RingAllReduce`] (bit-identical to the pre-DSL path),
    /// or a parameter-server / all-to-all latency model sharing the ring's
    /// link bandwidth and hop latency.
    pub fn sync_model(&self, workload: &Workload) -> SyncModel {
        let ring = &self.config.ring;
        match workload.sync {
            SyncPattern::RingAllReduce => SyncModel::Ring(*ring),
            SyncPattern::ParameterServer => {
                SyncModel::Ps(PsModel::on_fabric(ring, PsModel::DEFAULT_SHARDS))
            }
            SyncPattern::AllToAll => SyncModel::AllToAll(AllToAllModel::on_fabric(ring)),
        }
    }

    /// Effective batch size for `workload`.
    pub fn batch_for(&self, workload: &Workload) -> u64 {
        self.config.batch_override.unwrap_or(workload.batch_size)
    }

    /// Accelerator-side throughput: `n` accelerators computing batches and
    /// ring-synchronizing between them (samples/s). This is the *target*
    /// data preparation must match.
    pub fn accelerator_side(&self, workload: &Workload) -> f64 {
        let n = self.config.n_accels;
        let batch = self.batch_for(workload);
        let eff = batch_efficiency(batch, workload.batch_size);
        let per_acc = workload.accel_samples_per_sec * eff;
        let t_comp = batch as f64 / per_acc;
        let t_sync = self.sync_model(workload).sync_secs(workload.model_bytes(), n);
        n as f64 * batch as f64 / (t_comp + t_sync)
    }

    /// Number of data-preparation accelerators on the PCIe tree (0 for the
    /// baseline; GPU or FPGA count otherwise).
    pub fn n_prep_accels(&self) -> usize {
        self.topology.preps.len()
    }

    /// The preparation-side ceilings for `workload`, in samples/s.
    fn prep_ceilings(&self, workload: &Workload) -> Vec<(Bottleneck, f64)> {
        let profile = PrepProfile::of(workload);
        let sizes = profile.sizes;
        let usage = PerSampleUsage::of_profile(self.kind().datapath(), &profile);
        let n = self.config.n_accels;
        let mut ceilings = Vec::new();

        // Host resources bind through the per-sample usage of the datapath.
        let cpu_per_sample = usage.cpu_secs.total();
        if cpu_per_sample > 0.0 {
            ceilings.push((Bottleneck::HostCpu, DGX2.cpu_cores / cpu_per_sample));
        }
        let mem_per_sample = usage.mem_bytes.total();
        if mem_per_sample > 0.0 {
            ceilings.push((Bottleneck::HostMemory, DGX2.mem_bytes_per_sec / mem_per_sample));
        }
        let gen_scale = match self.kind().pcie_generation() {
            Generation::Gen3 => 1.0,
            Generation::Gen4 => 2.0,
            Generation::Gen5 => 4.0,
        };
        let pcie_per_sample = usage.rc_pcie_bytes.total();
        if pcie_per_sample > 0.0 {
            ceilings.push((
                Bottleneck::RcPcie,
                gen_scale * DGX2.rc_pcie_bytes_per_sec / pcie_per_sample,
            ));
        }

        match self.kind() {
            ServerKind::Baseline => {
                let ssd_rate =
                    self.topology.ssds.len() as f64 * SSD_READ_BYTES_PER_SEC / sizes.stored;
                ceilings.push((Bottleneck::Ssd, ssd_rate));
            }
            ServerKind::AccFpga | ServerKind::AccFpgaP2p | ServerKind::AccFpgaP2pGen4 => {
                let per = profile.fpga_samples_per_sec;
                ceilings.push((Bottleneck::PrepAccel, self.n_prep_accels() as f64 * per));
                let ssd_rate =
                    self.topology.ssds.len() as f64 * SSD_READ_BYTES_PER_SEC / sizes.stored;
                ceilings.push((Bottleneck::Ssd, ssd_rate));
            }
            ServerKind::AccGpu => {
                let per = profile.gpu_samples_per_sec;
                ceilings.push((Bottleneck::PrepAccel, self.n_prep_accels() as f64 * per));
                let ssd_rate =
                    self.topology.ssds.len() as f64 * SSD_READ_BYTES_PER_SEC / sizes.stored;
                ceilings.push((Bottleneck::Ssd, ssd_rate));
            }
            ServerKind::TrainBoxNoPool | ServerKind::TrainBox => {
                let boxes = n.div_ceil(ACCS_PER_TRAIN_BOX) as f64;
                let f = profile.fpga_samples_per_sec;
                let in_box = PREPS_PER_TRAIN_BOX as f64 * f;
                // Offload capacity: each in-box FPGA can ship raw input to
                // the pool and receive prepared tensors back over its
                // 100 GbE link, bounded by the pool compute available to
                // this box.
                let eth_cap = PREPS_PER_TRAIN_BOX as f64 * ETHERNET_BYTES_PER_SEC
                    / profile.ethernet_bytes_per_offloaded_sample();
                let pool = self.config.effective_pool() as f64 * f / boxes;
                let boost = eth_cap.min(pool);
                let prep_rate = boxes * (in_box + boost);
                ceilings.push((Bottleneck::PrepAccel, prep_rate));
                // In-box SSDs must feed both local and offloaded samples.
                let ssd_rate =
                    boxes * SSDS_PER_TRAIN_BOX as f64 * SSD_READ_BYTES_PER_SEC / sizes.stored;
                ceilings.push((Bottleneck::Ssd, ssd_rate));
            }
        }
        ceilings
    }

    /// Steady-state training throughput for `workload` with next-batch
    /// prefetching: the minimum of the accelerator side and every
    /// preparation-side ceiling.
    pub fn throughput(&self, workload: &Workload) -> Throughput {
        // Tenanted workloads evaluate as their blended flat aggregate (the
        // prep side blends through `PrepProfile::of` either way).
        let workload = &crate::profile::effective_workload(workload);
        let mut ceilings = self.prep_ceilings(workload);
        ceilings.push((Bottleneck::Accelerators, self.accelerator_side(workload)));
        let (bottleneck, samples_per_sec) = ceilings
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("ceilings are finite"))
            .expect("at least the accelerator ceiling exists");
        Throughput { samples_per_sec, bottleneck, ceilings }
    }

    /// Throughput relative to a reference server on the same workload.
    pub fn speedup_over(&self, reference: &Server, workload: &Workload) -> f64 {
        self.throughput(workload).samples_per_sec / reference.throughput(workload).samples_per_sec
    }
}

/// Evaluate the throughput of `kind` at `n` accelerators for `workload` —
/// shorthand used by the figure binaries.
///
/// Routed through the canonical [`crate::request::SimRequest`] entry point,
/// so every analytic figure exercises exactly the code path the
/// `trainbox-serve` service answers queries with.
pub fn throughput_of(kind: ServerKind, n: usize, workload: &Workload) -> Throughput {
    let req = crate::request::SimRequest::analytic(kind, n, workload.clone());
    match req.run().map(|resp| resp.outcome) {
        Ok(crate::request::SimOutcome::Analytic(t)) => t,
        Ok(_) => unreachable!("analytic request produced a non-analytic outcome"),
        Err(e) => panic!("invalid server configuration: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trainbox_nn::InputKind;

    fn tp(kind: ServerKind, n: usize, w: &Workload) -> f64 {
        throughput_of(kind, n, w).samples_per_sec
    }

    #[test]
    fn baseline_is_cpu_bound_at_scale() {
        let w = Workload::resnet50();
        let t = throughput_of(ServerKind::Baseline, 256, &w);
        assert_eq!(t.bottleneck, Bottleneck::HostCpu);
        // 48 cores / 1.5705 ms = ~30.6k samples/s.
        assert!((t.samples_per_sec - 30_563.0).abs() < 200.0, "{}", t.samples_per_sec);
    }

    #[test]
    fn baseline_small_scale_is_accelerator_bound() {
        let w = Workload::inception_v4();
        let t = throughput_of(ServerKind::Baseline, 4, &w);
        assert_eq!(t.bottleneck, Bottleneck::Accelerators);
    }

    #[test]
    fn baseline_saturation_points_match_fig21() {
        // Inception-v4 saturates around 18.3 accelerators, TF-SR around 4.4.
        let inc = Workload::inception_v4();
        let sat = tp(ServerKind::Baseline, 256, &inc) / inc.accel_samples_per_sec;
        assert!((sat - 18.3).abs() < 0.5, "sat={sat}");
        let sr = Workload::transformer_sr();
        let sat = tp(ServerKind::Baseline, 256, &sr) / sr.accel_samples_per_sec;
        assert!((sat - 4.4).abs() < 0.2, "sat={sat}");
    }

    #[test]
    fn acc_alone_is_pcie_bound() {
        let w = Workload::resnet50();
        let t = throughput_of(ServerKind::AccFpga, 256, &w);
        assert_eq!(t.bottleneck, Bottleneck::RcPcie);
        // Acceleration still beats the baseline (~3x, §VI-C).
        let gain = t.samples_per_sec / tp(ServerKind::Baseline, 256, &w);
        assert!((2.0..5.0).contains(&gain), "gain={gain}");
    }

    #[test]
    fn p2p_alone_does_not_help() {
        // §VI-C: "the P2P communication does not increase the system
        // throughput since the acceleration increases the PCIe overhead".
        let w = Workload::resnet50();
        let acc = tp(ServerKind::AccFpga, 256, &w);
        let p2p = tp(ServerKind::AccFpgaP2p, 256, &w);
        assert!((p2p / acc - 1.0).abs() < 0.01, "p2p={p2p} acc={acc}");
    }

    #[test]
    fn gen4_doubles_the_p2p_design() {
        let w = Workload::resnet50();
        let p2p = tp(ServerKind::AccFpgaP2p, 256, &w);
        let gen4 = tp(ServerKind::AccFpgaP2pGen4, 256, &w);
        assert!((gen4 / p2p - 2.0).abs() < 0.05, "ratio={}", gen4 / p2p);
    }

    #[test]
    fn trainbox_beats_gen4_without_faster_links() {
        // §VI-C: "TrainBox without Gen4 shows even higher improvement,
        // indicating that the bottleneck stems from the inefficient datapath".
        let w = Workload::resnet50();
        assert!(tp(ServerKind::TrainBox, 256, &w) > tp(ServerKind::AccFpgaP2pGen4, 256, &w));
    }

    #[test]
    fn trainbox_reaches_target_for_inception_without_pool() {
        // §VI-D / Fig 21a.
        let w = Workload::inception_v4();
        let t = throughput_of(ServerKind::TrainBoxNoPool, 256, &w);
        assert_eq!(t.bottleneck, Bottleneck::Accelerators);
        let normalized = t.samples_per_sec / w.accel_samples_per_sec;
        assert!(normalized > 250.0, "normalized={normalized}");
    }

    #[test]
    fn tf_sr_needs_the_pool() {
        // §VI-D / Fig 21b: without the pool TF-SR falls short; with it the
        // target is reached using ~54% extra FPGA resources.
        let w = Workload::transformer_sr();
        let without = throughput_of(ServerKind::TrainBoxNoPool, 256, &w);
        assert_eq!(without.bottleneck, Bottleneck::PrepAccel);
        let with = throughput_of(ServerKind::TrainBox, 256, &w);
        assert_eq!(with.bottleneck, Bottleneck::Accelerators);
        assert!(with.samples_per_sec / without.samples_per_sec > 1.3);
    }

    #[test]
    fn trainbox_average_speedup_in_paper_regime() {
        // §VI-C: 44.4x average, 84.3x maximum (TF-AA). Our calibration lands
        // in the same regime; the maximum workload must be TF-AA.
        let mut speedups = Vec::new();
        for w in Workload::all() {
            let s = tp(ServerKind::TrainBox, 256, &w) / tp(ServerKind::Baseline, 256, &w);
            speedups.push((w.name, s));
        }
        let mean = speedups.iter().map(|(_, s)| s).sum::<f64>() / speedups.len() as f64;
        assert!((35.0..65.0).contains(&mean), "mean={mean} ({speedups:?})");
        let max = speedups
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(max.0, "TF-AA", "max should be TF-AA: {speedups:?}");
        assert!((max.1 - 84.0).abs() < 3.0, "max={}", max.1);
    }

    #[test]
    fn gpu_prep_loses_at_small_scale_wins_later() {
        // Fig 21a: GPU-based prep is below the CPU baseline at small scale
        // (1:4 device ratio starves it), above it at larger scale.
        let w = Workload::inception_v4();
        assert!(tp(ServerKind::AccGpu, 16, &w) < tp(ServerKind::Baseline, 16, &w));
        assert!(tp(ServerKind::AccGpu, 128, &w) > tp(ServerKind::Baseline, 128, &w));
        // And FPGA prep dominates GPU prep at small scale (Fig 21).
        assert!(tp(ServerKind::AccFpga, 16, &w) >= tp(ServerKind::AccGpu, 16, &w));
    }

    #[test]
    fn bigger_batches_widen_trainbox_advantage() {
        // Fig 20's shape.
        let w = Workload::resnet50();
        let speedup = |batch: u64| {
            let tb = ServerConfig::new(ServerKind::TrainBox, 256)
                .batch_size(batch)
                .build();
            let base = ServerConfig::new(ServerKind::Baseline, 256)
                .batch_size(batch)
                .build();
            tb.speedup_over(&base, &w)
        };
        let s8 = speedup(8);
        let s512 = speedup(512);
        let s8192 = speedup(8192);
        assert!(s8 < s512 && s512 < s8192, "{s8} {s512} {s8192}");
        assert!(s8192 > 30.0);
    }

    #[test]
    fn throughput_reports_all_ceilings() {
        let w = Workload::vgg19();
        let t = throughput_of(ServerKind::TrainBox, 64, &w);
        assert!(t.ceilings.len() >= 4);
        assert!(t
            .ceilings
            .iter()
            .any(|(b, _)| *b == Bottleneck::Accelerators));
        // The reported throughput is the minimum ceiling.
        let min = t
            .ceilings
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(t.samples_per_sec, min);
    }

    #[test]
    fn topology_matches_design() {
        let s = ServerConfig::new(ServerKind::TrainBox, 64).build();
        assert_eq!(s.topology().accs.len(), 64);
        assert_eq!(s.topology().preps.len(), 16);
        assert!(s.prep_pool().is_some());
        let b = ServerConfig::new(ServerKind::Baseline, 64).build();
        assert!(b.prep_pool().is_none());
        assert!(b.topology().preps.is_empty());
        assert_eq!(b.kind(), ServerKind::Baseline);
        assert_eq!(b.n_accels(), 64);
    }

    #[test]
    fn audio_fpga_count_and_pool_interplay() {
        // TF-AA needs even more pool than TF-SR; with a large pool it reaches
        // target, with zero pool it is prep-bound.
        let w = Workload::transformer_aa();
        let with = ServerConfig::new(ServerKind::TrainBox, 256)
            .pool_fpgas(256)
            .build();
        assert_eq!(with.throughput(&w).bottleneck, Bottleneck::Accelerators);
        let starved = ServerConfig::new(ServerKind::TrainBox, 256)
            .pool_fpgas(4)
            .build();
        assert_eq!(starved.throughput(&w).bottleneck, Bottleneck::PrepAccel);
        let _ = InputKind::Audio;
    }

    #[test]
    fn try_build_rejects_zero_accelerators() {
        let err = ServerConfig::new(ServerKind::Baseline, 0).try_build().unwrap_err();
        assert_eq!(err, ConfigError::NoAccelerators);
        assert_eq!(err.field(), "server.n_accels");
    }

    #[test]
    fn try_build_rejects_zero_batch() {
        let err = ServerConfig::new(ServerKind::TrainBox, 16)
            .batch_size(0)
            .try_build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroBatch);
        assert_eq!(err.field(), "server.batch_size");
    }

    #[test]
    fn try_build_rejects_pool_without_prep_net() {
        // A pool on TrainBoxNoPool would feed the analytic model while the
        // simulated datapath has no Ethernet fabric to carry it.
        for kind in [
            ServerKind::Baseline,
            ServerKind::AccFpga,
            ServerKind::AccGpu,
            ServerKind::AccFpgaP2p,
            ServerKind::AccFpgaP2pGen4,
            ServerKind::TrainBoxNoPool,
        ] {
            let err = ServerConfig::new(kind, 16).pool_fpgas(8).try_build().unwrap_err();
            assert_eq!(err, ConfigError::PoolWithoutPrepNet { kind, pool_fpgas: 8 });
            assert_eq!(err.field(), "server.pool_fpgas");
        }
        // An explicitly *empty* pool is fine anywhere — it changes nothing.
        assert!(ServerConfig::new(ServerKind::TrainBoxNoPool, 16)
            .pool_fpgas(0)
            .try_build()
            .is_ok());
    }

    #[test]
    fn try_build_rejects_unphysical_ring() {
        let mut ring = RingModel::nvlink_default();
        ring.link_bytes_per_sec = 0.0;
        let err = ServerConfig::new(ServerKind::TrainBox, 16)
            .ring_model(ring)
            .try_build()
            .unwrap_err();
        assert_eq!(err.field(), "server.ring.link_bytes_per_sec");

        let mut ring = RingModel::nvlink_default();
        ring.hop_latency_secs = f64::NAN;
        let err = ServerConfig::new(ServerKind::TrainBox, 16)
            .ring_model(ring)
            .try_build()
            .unwrap_err();
        assert_eq!(err.field(), "server.ring.hop_latency_secs");

        let mut ring = RingModel::nvlink_default();
        ring.chunk_bytes = 0;
        let err = ServerConfig::new(ServerKind::TrainBox, 16)
            .ring_model(ring)
            .try_build()
            .unwrap_err();
        assert_eq!(err.field(), "server.ring.chunk_bytes");
    }

    #[test]
    #[should_panic(expected = "at least one accelerator")]
    fn build_panics_on_invalid_config() {
        let _ = ServerConfig::new(ServerKind::Baseline, 0).build();
    }

    #[test]
    fn config_accessors_reflect_builder_calls() {
        let cfg = ServerConfig::new(ServerKind::TrainBox, 64).batch_size(512).pool_fpgas(32);
        assert_eq!(cfg.kind(), ServerKind::TrainBox);
        assert_eq!(cfg.n_accels(), 64);
        assert_eq!(cfg.batch_override(), Some(512));
        assert_eq!(cfg.pool_override(), Some(32));
        assert!(cfg.ring().link_bytes_per_sec > 0.0);
        assert!(cfg.validate().is_ok());
    }
}

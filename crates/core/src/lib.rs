//! The TrainBox server architecture — the paper's primary contribution.
//!
//! This crate models a large-scale neural-network training server end to
//! end and evaluates the paper's three optimizations:
//!
//! 1. **Data-preparation acceleration** (§IV-B): offload formatting and
//!    augmentation from host CPUs to an array of FPGA (or GPU) accelerators
//!    in chained prep boxes.
//! 2. **Peer-to-peer communication** (§IV-C): move data SSD→prep→accelerator
//!    directly over PCIe, bypassing host memory.
//! 3. **Communication-aware clustering** (§IV-D): co-locate SSDs, prep
//!    accelerators, and NN accelerators in *train boxes* so preparation
//!    traffic never crosses the root complex, with an Ethernet *prep-pool*
//!    absorbing workload variability.
//!
//! Modules:
//!
//! * [`calib`] — every calibration constant, each derived from a specific
//!   figure or sentence of the paper;
//! * [`fpga`] — the XCVU9P resource model reproducing Tables II/III;
//! * [`host`] — host-resource demand accounting (Figures 10, 11, 22);
//! * [`arch`] — server configurations and the analytic bottleneck
//!   throughput model (Figures 8, 19, 20, 21);
//! * [`analytic`] — latency decomposition (Figures 3, 9);
//! * [`initializer`] — the §V-A train initializer (prep-pool sizing);
//! * [`pipeline`] — a discrete-event simulation of the full datapath that
//!   cross-validates the analytic model;
//! * [`faults`] — deterministic fault injection (SSD stalls, prep crashes
//!   and slowdowns, link degradation, accelerator dropout, transient
//!   request failures) and the degraded-mode accounting the pipeline
//!   reports;
//! * [`request`] — the canonical what-if query API: one [`SimRequest`]
//!   subsumes every analytic and DES entry point, with a stable
//!   content hash that the `trainbox-serve` HTTP service keys its result
//!   cache on.
//!
//! # Quickstart
//!
//! ```
//! use trainbox_core::arch::{ServerConfig, ServerKind};
//! use trainbox_nn::Workload;
//!
//! let w = Workload::resnet50();
//! let baseline = ServerConfig::new(ServerKind::Baseline, 256).build();
//! let trainbox = ServerConfig::new(ServerKind::TrainBox, 256).build();
//! let speedup = trainbox.throughput(&w).samples_per_sec
//!     / baseline.throughput(&w).samples_per_sec;
//! assert!(speedup > 30.0);
//! ```

pub mod analytic;
pub mod arch;
pub mod calib;
pub mod faults;
pub mod fpga;
pub mod host;
pub mod initializer;
pub(crate) mod intraserver;
pub mod multijob;
pub mod pipeline;
pub mod profile;
pub mod request;
pub mod scaleout;
pub mod staticprep;

pub use arch::{Bottleneck, ConfigError, Server, ServerConfig, ServerKind, Throughput};
pub use profile::{effective_workload, lower_legacy, PrepProfile};
pub use request::{SimMode, SimOutcome, SimRequest, SimResponse};

//! Host-resource accounting: per-sample usage by datapath and the
//! required-resource curves of Figure 10.
//!
//! §III-C profiles three host resources — CPU cores, memory bandwidth, and
//! PCIe bandwidth at the root complex — and decomposes each by operation
//! class (Fig 11). §VI-E then shows how each TrainBox optimization removes a
//! slice (Fig 22). This module computes all of those numbers.

use crate::calib::{cpu_driver_secs_per_sample, DGX2};
use crate::profile::PrepProfile;
use serde::{Deserialize, Serialize};
use trainbox_nn::{InputKind, Workload};

/// Which datapath the server uses for preparation — the property that
/// determines host-resource usage (maps 1:1 onto the Fig 22 x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Datapath {
    /// Baseline: CPUs prepare data, host memory buffers everything.
    HostCpu,
    /// Step 1: prep accelerators, but transfers staged through host memory.
    HostStagedAccel,
    /// Step 2: prep accelerators with P2P transfers (no host memory), but
    /// traffic still crosses the root complex between boxes.
    P2pAccel,
    /// Step 3: clustered train boxes — preparation traffic never reaches
    /// the host.
    Clustered,
}

/// Per-sample usage of one host resource, by operation class (the legend of
/// Figures 11 and 22: SSD read / formatting / augmentation / data load /
/// data copy / others).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Breakdown {
    /// NVMe reads and their buffering/driver work.
    pub ssd_read: f64,
    /// Data formatting.
    pub formatting: f64,
    /// Data augmentation.
    pub augmentation: f64,
    /// Staging the prepared tensor into the accelerator.
    pub data_load: f64,
    /// Host-mediated staging to/from prep accelerators.
    pub data_copy: f64,
    /// Bookkeeping and everything else.
    pub others: f64,
}

impl Breakdown {
    /// Sum over classes.
    pub fn total(&self) -> f64 {
        self.ssd_read + self.formatting + self.augmentation + self.data_load + self.data_copy + self.others
    }

    /// The six `(label, value)` pairs in figure-legend order.
    pub fn classes(&self) -> [(&'static str, f64); 6] {
        [
            ("SSD read", self.ssd_read),
            ("Data formatting", self.formatting),
            ("Data augmentation", self.augmentation),
            ("Data load", self.data_load),
            ("Data copy", self.data_copy),
            ("Others", self.others),
        ]
    }
}

/// Per-sample host-resource usage: CPU core-seconds, host-memory bytes, and
/// root-complex PCIe bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerSampleUsage {
    /// CPU core-seconds by class.
    pub cpu_secs: Breakdown,
    /// Host DRAM bytes moved by class.
    pub mem_bytes: Breakdown,
    /// Bytes crossing the root complex by class (both directions summed).
    pub rc_pcie_bytes: Breakdown,
}

impl PerSampleUsage {
    /// Usage of one sample of `input` under `path` — the legacy
    /// modality-keyed entry point, equivalent to profiling the input's
    /// calibration.
    pub fn new(path: Datapath, input: InputKind) -> PerSampleUsage {
        PerSampleUsage::of_profile(path, &PrepProfile::of_input(input))
    }

    /// Usage of one sample whose preparation is described by `profile`,
    /// under `path`. All datapath arithmetic lives here; the profile
    /// supplies the per-sample costs and sizes.
    pub fn of_profile(path: Datapath, p: &PrepProfile) -> PerSampleUsage {
        let s = p.sizes;
        match path {
            Datapath::HostCpu => {
                let m = p.mem;
                PerSampleUsage {
                    cpu_secs: p.cpu,
                    mem_bytes: Breakdown {
                        ssd_read: m.ssd_read,
                        formatting: m.formatting,
                        augmentation: m.augmentation,
                        data_load: m.data_load,
                        data_copy: m.data_copy,
                        others: m.others,
                    },
                    rc_pcie_bytes: Breakdown {
                        ssd_read: s.stored,
                        data_load: s.tensor,
                        ..Breakdown::default()
                    },
                }
            }
            Datapath::HostStagedAccel => {
                let c = cpu_driver_secs_per_sample(false);
                PerSampleUsage {
                    cpu_secs: Breakdown {
                        ssd_read: c * 0.4,
                        data_load: c * 0.3,
                        data_copy: c * 0.2,
                        others: c * 0.1,
                        ..Breakdown::default()
                    },
                    // SSD→host (write+read to prep) and prep→host (write) +
                    // host→acc (read): 2×stored + 2×tensor.
                    mem_bytes: Breakdown {
                        ssd_read: s.stored,
                        data_copy: s.stored + s.tensor,
                        data_load: s.tensor,
                        ..Breakdown::default()
                    },
                    // The datapath SSD→RC→prep→RC→acc doubles RC pressure
                    // over the baseline (§IV-D).
                    rc_pcie_bytes: Breakdown {
                        ssd_read: s.stored,
                        data_copy: s.stored + s.tensor,
                        data_load: s.tensor,
                        ..Breakdown::default()
                    },
                }
            }
            Datapath::P2pAccel => {
                let c = cpu_driver_secs_per_sample(true);
                PerSampleUsage {
                    cpu_secs: Breakdown {
                        data_load: c * 0.5,
                        others: c * 0.5,
                        ..Breakdown::default()
                    },
                    // P2P removes host memory from the transfer path
                    // entirely (§IV-C); only bookkeeping remains.
                    mem_bytes: Breakdown { others: 10_000.0, ..Breakdown::default() },
                    // But between chained boxes every byte still crosses
                    // the root complex, so PCIe pressure stays doubled —
                    // which is why P2P alone does not raise throughput
                    // (§VI-C).
                    rc_pcie_bytes: Breakdown {
                        ssd_read: 2.0 * s.stored,
                        data_load: 2.0 * s.tensor,
                        ..Breakdown::default()
                    },
                }
            }
            Datapath::Clustered => PerSampleUsage {
                cpu_secs: Breakdown {
                    others: cpu_driver_secs_per_sample(true) * 0.5,
                    ..Breakdown::default()
                },
                mem_bytes: Breakdown { others: 10_000.0, ..Breakdown::default() },
                // Control messages only: the data never leaves the box.
                rc_pcie_bytes: Breakdown { others: 2_000.0, ..Breakdown::default() },
            },
        }
    }
}

/// Host resources required to *sustain the full target throughput* of `n`
/// accelerators on the baseline datapath, normalized to the DGX-2 reference
/// — the y-axes of Figures 10a–c.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequiredResources {
    /// CPU cores needed (absolute).
    pub cpu_cores: f64,
    /// Memory bandwidth needed, bytes/s.
    pub mem_bytes_per_sec: f64,
    /// Root-complex PCIe bandwidth needed, bytes/s.
    pub rc_pcie_bytes_per_sec: f64,
}

impl RequiredResources {
    /// Baseline requirement for `workload` at `n` accelerators.
    pub fn baseline(workload: &Workload, n: usize) -> RequiredResources {
        let usage = PerSampleUsage::of_profile(Datapath::HostCpu, &PrepProfile::of(workload));
        let demand = workload.aggregate_demand(n);
        RequiredResources {
            cpu_cores: demand * usage.cpu_secs.total(),
            mem_bytes_per_sec: demand * usage.mem_bytes.total(),
            rc_pcie_bytes_per_sec: demand * usage.rc_pcie_bytes.total(),
        }
    }

    /// Normalized to the DGX-2 reference (cores / 48, mem / 239 GB/s, PCIe /
    /// the reference RC bandwidth).
    pub fn normalized(&self) -> (f64, f64, f64) {
        (
            self.cpu_cores / DGX2.cpu_cores,
            self.mem_bytes_per_sec / DGX2.mem_bytes_per_sec,
            self.rc_pcie_bytes_per_sec / DGX2.rc_pcie_bytes_per_sec,
        )
    }
}

/// The Figure 22 series: per-sample host-resource usage of each datapath,
/// normalized to the baseline, with per-class decomposition. Returns rows of
/// `(datapath, cpu, mem, pcie)` usages.
pub fn figure22_rows(input: InputKind) -> Vec<(Datapath, PerSampleUsage)> {
    [
        Datapath::HostCpu,
        Datapath::HostStagedAccel,
        Datapath::P2pAccel,
        Datapath::Clustered,
    ]
    .into_iter()
    .map(|d| (d, PerSampleUsage::new(d, input)))
    .collect()
}

/// SSD count the baseline provisions for `n` accelerators (an SSD box per
/// two accelerator boxes, at least one box — storage is never the headline
/// bottleneck in the paper's evaluation).
pub fn baseline_ssd_count(n_accels: usize) -> usize {
    (n_accels / 16).max(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::{baseline_mem_bytes_per_sample, cpu_secs_per_sample, SampleSizes};

    #[test]
    fn baseline_breakdowns_match_calibration() {
        for input in [InputKind::Image, InputKind::Audio] {
            let u = PerSampleUsage::new(Datapath::HostCpu, input);
            assert!((u.cpu_secs.total() - cpu_secs_per_sample(input)).abs() < 1e-12);
            assert!(
                (u.mem_bytes.total() - baseline_mem_bytes_per_sample(input).total()).abs() < 1.0
            );
            let s = SampleSizes::for_input(input);
            assert!((u.rc_pcie_bytes.total() - (s.stored + s.tensor)).abs() < 1.0);
        }
    }

    #[test]
    fn staged_accel_doubles_rc_pcie() {
        for input in [InputKind::Image, InputKind::Audio] {
            let base = PerSampleUsage::new(Datapath::HostCpu, input);
            let acc = PerSampleUsage::new(Datapath::HostStagedAccel, input);
            let ratio = acc.rc_pcie_bytes.total() / base.rc_pcie_bytes.total();
            assert!((ratio - 2.0).abs() < 1e-9, "ratio={ratio}");
        }
    }

    #[test]
    fn p2p_removes_memory_but_not_pcie() {
        let staged = PerSampleUsage::new(Datapath::HostStagedAccel, InputKind::Image);
        let p2p = PerSampleUsage::new(Datapath::P2pAccel, InputKind::Image);
        assert!(p2p.mem_bytes.total() < 0.05 * staged.mem_bytes.total());
        assert!((p2p.rc_pcie_bytes.total() - staged.rc_pcie_bytes.total()).abs() < 1.0);
    }

    #[test]
    fn clustering_removes_everything() {
        let base = PerSampleUsage::new(Datapath::HostCpu, InputKind::Image);
        let tb = PerSampleUsage::new(Datapath::Clustered, InputKind::Image);
        assert!(tb.cpu_secs.total() < 0.01 * base.cpu_secs.total());
        assert!(tb.mem_bytes.total() < 0.01 * base.mem_bytes.total());
        assert!(tb.rc_pcie_bytes.total() < 0.01 * base.rc_pcie_bytes.total());
    }

    #[test]
    fn acceleration_slashes_cpu() {
        // Fig 22: computation acceleration removes almost all CPU use.
        let base = PerSampleUsage::new(Datapath::HostCpu, InputKind::Audio);
        let acc = PerSampleUsage::new(Datapath::HostStagedAccel, InputKind::Audio);
        assert!(acc.cpu_secs.total() < 0.01 * base.cpu_secs.total());
        // And P2P reduces CPU further (NVMe driver offloaded, §VI-E).
        let p2p = PerSampleUsage::new(Datapath::P2pAccel, InputKind::Audio);
        assert!(p2p.cpu_secs.total() < acc.cpu_secs.total());
    }

    #[test]
    fn required_resources_scale_linearly_with_n() {
        let w = Workload::resnet50();
        let r64 = RequiredResources::baseline(&w, 64);
        let r256 = RequiredResources::baseline(&w, 256);
        assert!((r256.cpu_cores / r64.cpu_cores - 4.0).abs() < 1e-9);
        assert!((r256.mem_bytes_per_sec / r64.mem_bytes_per_sec - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fig10_normalized_maxima() {
        // The paper's headline: at 256 accelerators, up to ~100.7x cores,
        // ~17.9x memory BW, ~18x PCIe BW over DGX-2.
        let mut cpu_max = 0.0f64;
        let mut mem_max = 0.0f64;
        let mut pcie_max = 0.0f64;
        for w in Workload::all() {
            let (c, m, p) = RequiredResources::baseline(&w, 256).normalized();
            cpu_max = cpu_max.max(c);
            mem_max = mem_max.max(m);
            pcie_max = pcie_max.max(p);
        }
        assert!((cpu_max - 100.7).abs() < 1.0, "cpu={cpu_max}");
        assert!((mem_max - 17.9).abs() < 1.0, "mem={mem_max}");
        assert!((pcie_max - 18.0).abs() < 1.5, "pcie={pcie_max}");
    }

    #[test]
    fn breakdown_classes_cover_total() {
        let u = PerSampleUsage::new(Datapath::HostStagedAccel, InputKind::Image);
        let sum: f64 = u.mem_bytes.classes().iter().map(|(_, v)| v).sum();
        assert!((sum - u.mem_bytes.total()).abs() < 1e-9);
    }

    #[test]
    fn ssd_provisioning() {
        assert_eq!(baseline_ssd_count(16), 8);
        assert_eq!(baseline_ssd_count(256), 16);
    }
}

//! The train initializer of §V-A.
//!
//! Before training starts, the initializer (1) measures per-batch execution
//! time with dummy batches, (2) computes the data-preparation throughput the
//! accelerators will demand, (3) compares it against the train boxes' own
//! FPGA capability, and (4) requests extra accelerators from the prep-pool
//! through the cluster resource manager, assigning them to the per-box FPGA
//! groups.

use crate::arch::Server;
use crate::calib::ETHERNET_BYTES_PER_SEC;
use crate::profile::PrepProfile;
use serde::{Deserialize, Serialize};
use trainbox_nn::Workload;
use trainbox_pcie::boxes::{ACCS_PER_TRAIN_BOX, PREPS_PER_TRAIN_BOX};

/// The plan the initializer hands to the TrainBox driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainPlan {
    /// Workload name.
    pub workload: String,
    /// Per-accelerator batch size in effect.
    pub batch_size: u64,
    /// Measured per-batch execution time (compute + synchronization), s.
    pub batch_secs: f64,
    /// Required preparation throughput to keep every accelerator fed,
    /// samples/s.
    pub required_prep_rate: f64,
    /// What the in-box FPGAs deliver on their own, samples/s.
    pub in_box_prep_rate: f64,
    /// Extra prep-pool FPGAs the initializer requests (0 when the boxes
    /// suffice).
    pub pool_fpgas_requested: usize,
    /// Pool FPGAs actually granted by the resource manager.
    pub pool_fpgas_granted: usize,
    /// Preparation throughput achievable after the grant, samples/s
    /// (includes the Ethernet offload ceiling).
    pub achievable_prep_rate: f64,
}

impl TrainPlan {
    /// Does the plan meet the accelerators' demand?
    pub fn meets_target(&self) -> bool {
        // Tolerate float round-off at exact equality.
        self.achievable_prep_rate >= self.required_prep_rate * (1.0 - 1e-9)
    }

    /// Pool FPGAs granted as a fraction of the in-box FPGA count — the
    /// "+54% more FPGA resources" of §VI-D.
    pub fn pool_fraction(&self, in_box_fpgas: usize) -> f64 {
        if in_box_fpgas == 0 {
            0.0
        } else {
            self.pool_fpgas_granted as f64 / in_box_fpgas as f64
        }
    }
}

/// Run the initializer for `workload` on `server`, with `pool_available`
/// FPGAs offered by the cluster resource manager.
///
/// Mirrors §V-A: measure the batch time, derive required throughput from the
/// synchronization model, size the pool request by dividing the deficit by
/// the per-FPGA throughput (measured offline), and cap the grant by both the
/// pool and the Ethernet links.
pub fn plan(server: &Server, workload: &Workload, pool_available: usize) -> TrainPlan {
    let n = server.n_accels();
    let batch = server.batch_for(workload);
    // Step "measure": per-batch execution time from the throughput model +
    // synchronization model (the prototype feeds dummy batches; we query the
    // calibrated accelerator model).
    let accel_rate = server.accelerator_side(workload);
    let batch_secs = n as f64 * batch as f64 / accel_rate;
    let required = accel_rate;

    let boxes = n.div_ceil(ACCS_PER_TRAIN_BOX);
    let in_box_fpgas = boxes * PREPS_PER_TRAIN_BOX;
    let profile = PrepProfile::of(workload);
    let f = profile.fpga_samples_per_sec;
    let in_box_rate = in_box_fpgas as f64 * f;

    let deficit = (required - in_box_rate).max(0.0);
    let requested = (deficit / f).ceil() as usize;
    let granted = requested.min(pool_available);

    // Ethernet ceiling on what the granted pool can actually deliver.
    let eth_cap = in_box_fpgas as f64 * ETHERNET_BYTES_PER_SEC
        / profile.ethernet_bytes_per_offloaded_sample();
    let pool_rate = (granted as f64 * f).min(eth_cap);

    TrainPlan {
        workload: workload.name.to_string(),
        batch_size: batch,
        batch_secs,
        required_prep_rate: required,
        in_box_prep_rate: in_box_rate,
        pool_fpgas_requested: requested,
        pool_fpgas_granted: granted,
        achievable_prep_rate: in_box_rate + pool_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ServerConfig, ServerKind};

    fn server(n: usize) -> Server {
        ServerConfig::new(ServerKind::TrainBox, n).build()
    }

    #[test]
    fn inception_needs_no_pool() {
        // §VI-D: Inception-v4 reaches the target without the prep-pool.
        let s = server(256);
        let p = plan(&s, &Workload::inception_v4(), 256);
        assert_eq!(p.pool_fpgas_requested, 0);
        assert!(p.meets_target());
        assert!(p.in_box_prep_rate >= p.required_prep_rate);
    }

    #[test]
    fn tf_sr_requests_about_54_percent_extra() {
        // §VI-D: TF-SR reaches the target with ~54% more FPGA resources.
        let s = server(256);
        let p = plan(&s, &Workload::transformer_sr(), 256);
        assert!(p.pool_fpgas_requested > 0);
        assert!(p.meets_target());
        let frac = p.pool_fraction(64);
        assert!((frac - 0.54).abs() < 0.03, "frac={frac}");
    }

    #[test]
    fn starved_pool_fails_target() {
        let s = server(256);
        let p = plan(&s, &Workload::transformer_aa(), 4);
        assert_eq!(p.pool_fpgas_granted, 4);
        assert!(p.pool_fpgas_requested > 4);
        assert!(!p.meets_target());
    }

    #[test]
    fn batch_time_is_consistent_with_demand() {
        let s = server(64);
        let w = Workload::resnet50();
        let p = plan(&s, &w, 0);
        // required = n*batch / batch_secs by construction.
        let derived = 64.0 * p.batch_size as f64 / p.batch_secs;
        assert!((derived - p.required_prep_rate).abs() < 1e-6 * derived);
    }

    #[test]
    fn ethernet_caps_huge_grants() {
        // Granting far more pool FPGAs than the NICs can use must not claim
        // unbounded achievable throughput.
        let s = server(8);
        let w = Workload::rnn_s();
        let p = plan(&s, &w, 10_000);
        let eth_cap = 2.0 * ETHERNET_BYTES_PER_SEC
            / crate::calib::ethernet_bytes_per_offloaded_sample(w.input);
        assert!(p.achievable_prep_rate <= p.in_box_prep_rate + eth_cap * 1.0001);
    }
}

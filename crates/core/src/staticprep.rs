//! Static (offline) data preparation — the naive alternative of §III-D and
//! why it is infeasible.
//!
//! §III-D: *"static data preparation requires about 2.2 PBs
//! (32×32×0.15MB×14M)"* for random cropping alone, because every crop basis
//! of every image would have to be materialized on storage. This module
//! computes storage and bandwidth requirements for arbitrary augmentation
//! stacks, so the trade-off against on-line preparation can be quantified.

use serde::{Deserialize, Serialize};
use trainbox_nn::InputKind;

/// Number of items in an ImageNet-scale dataset (§III-D: "14 million").
pub const IMAGENET_ITEMS: u64 = 14_000_000;

/// One augmentation dimension and how many distinct variants it multiplies
/// into the materialized dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AugmentationAxis {
    /// Name (e.g. "random crop basis").
    pub name: String,
    /// Number of distinct variants.
    pub variants: u64,
}

impl AugmentationAxis {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, variants: u64) -> Self {
        assert!(variants >= 1, "an axis has at least one variant");
        AugmentationAxis { name: name.into(), variants: variants.max(1) }
    }
}

/// The paper's §III-D example: a 256×256 image admits 32×32 distinct
/// 224×224 crop bases.
pub fn paper_crop_axis() -> AugmentationAxis {
    AugmentationAxis::new("random crop basis (256->224)", 32 * 32)
}

/// Generic crop-basis axis for arbitrary stored/crop sizes.
pub fn crop_axis(stored_edge: usize, crop_edge: usize) -> AugmentationAxis {
    assert!(crop_edge <= stored_edge, "crop larger than stored image");
    let offsets = (stored_edge - crop_edge + 1) as u64;
    AugmentationAxis::new(
        format!("random crop basis ({stored_edge}->{crop_edge})"),
        offsets * offsets,
    )
}

/// Horizontal mirror: 2 variants.
pub fn mirror_axis() -> AugmentationAxis {
    AugmentationAxis::new("horizontal mirror", 2)
}

/// Storage analysis of materializing every augmented variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticPrepAnalysis {
    /// Dataset items.
    pub items: u64,
    /// Bytes per materialized variant.
    pub bytes_per_variant: u64,
    /// Product of all axis variant counts.
    pub variants_per_item: u64,
    /// Axes considered.
    pub axes: Vec<AugmentationAxis>,
}

impl StaticPrepAnalysis {
    /// Analyze materializing `axes` over `items` items of
    /// `bytes_per_variant` each.
    ///
    /// # Panics
    ///
    /// Panics if the variant product overflows `u64`.
    pub fn new(items: u64, bytes_per_variant: u64, axes: Vec<AugmentationAxis>) -> Self {
        let variants_per_item = axes
            .iter()
            .map(|a| a.variants)
            .try_fold(1u64, |acc, v| acc.checked_mul(v))
            .expect("variant product overflows u64");
        StaticPrepAnalysis { items, bytes_per_variant, variants_per_item, axes }
    }

    /// The §III-D example: crop-basis materialization of 224×224 RGB
    /// (0.15 MB per variant) over ImageNet.
    pub fn paper_example() -> Self {
        StaticPrepAnalysis::new(IMAGENET_ITEMS, 150_528, vec![paper_crop_axis()])
    }

    /// Total storage required, bytes.
    pub fn total_bytes(&self) -> f64 {
        self.items as f64 * self.variants_per_item as f64 * self.bytes_per_variant as f64
    }

    /// Storage amplification over keeping one stored variant per item.
    pub fn amplification(&self) -> f64 {
        self.variants_per_item as f64
    }

    /// Storage in petabytes (decimal).
    pub fn total_petabytes(&self) -> f64 {
        self.total_bytes() / 1e15
    }

    /// How many SSDs of `ssd_bytes` capacity the materialized dataset needs.
    pub fn ssds_required(&self, ssd_bytes: u64) -> u64 {
        assert!(ssd_bytes > 0, "ssd capacity must be positive");
        (self.total_bytes() / ssd_bytes as f64).ceil() as u64
    }
}

/// Break-even: on-line preparation is preferable whenever the static
/// materialization exceeds `storage_budget_bytes` — practically always, per
/// §III-D. Returns the largest variant count per item the budget affords.
pub fn max_affordable_variants(
    items: u64,
    bytes_per_variant: u64,
    storage_budget_bytes: u64,
) -> u64 {
    if items == 0 || bytes_per_variant == 0 {
        return u64::MAX;
    }
    storage_budget_bytes / (items * bytes_per_variant)
}

/// Bytes-per-sample a static pipeline would read from SSDs at training time
/// (the full prepared tensor, vs. the compressed original for on-line prep).
pub fn static_read_amplification(input: InputKind) -> f64 {
    let s = crate::calib::SampleSizes::for_input(input);
    s.tensor / s.stored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_2_2_petabyte_example() {
        // §III-D: "about 2.2 PBs (32x32x0.15MB x14M)".
        let a = StaticPrepAnalysis::paper_example();
        assert_eq!(a.variants_per_item, 1024);
        let pb = a.total_petabytes();
        assert!((pb - 2.2).abs() < 0.1, "petabytes={pb}");
        assert_eq!(a.amplification(), 1024.0);
    }

    #[test]
    fn axes_multiply() {
        let a = StaticPrepAnalysis::new(
            1000,
            100,
            vec![paper_crop_axis(), mirror_axis(), AugmentationAxis::new("noise draws", 16)],
        );
        assert_eq!(a.variants_per_item, 1024 * 2 * 16);
    }

    #[test]
    fn crop_axis_counts_offsets() {
        assert_eq!(crop_axis(256, 224).variants, 33 * 33);
        assert_eq!(crop_axis(224, 224).variants, 1);
        // The paper rounds 33x33 down to 32x32; both are in the same regime.
        let paper = paper_crop_axis();
        assert_eq!(paper.variants, 1024);
    }

    #[test]
    fn ssd_count_is_infeasible() {
        // 2.2 PB over 4 TB SSDs: hundreds of drives for one dataset's crops.
        let a = StaticPrepAnalysis::paper_example();
        let ssds = a.ssds_required(4_000_000_000_000);
        assert!(ssds > 500, "ssds={ssds}");
    }

    #[test]
    fn affordable_variants_are_tiny() {
        // A generous 100 TB budget affords only ~47 variants per item — far
        // short of the 1024 crop bases alone.
        let v = max_affordable_variants(IMAGENET_ITEMS, 150_528, 100_000_000_000_000);
        assert!(v < 64, "v={v}");
        assert!(v > 8);
    }

    #[test]
    fn static_read_amplification_matches_cast() {
        // Reading prepared float tensors from SSD costs ~17x the compressed
        // JPEG bytes — the bandwidth half of §III-D's storage argument.
        let amp = static_read_amplification(InputKind::Image);
        assert!((15.0..20.0).contains(&amp), "amp={amp}");
        let audio = static_read_amplification(InputKind::Audio);
        assert!(audio > 1.0);
    }

    #[test]
    #[should_panic(expected = "variant product overflows")]
    fn overflow_detected() {
        StaticPrepAnalysis::new(
            1,
            1,
            vec![
                AugmentationAxis::new("a", u64::MAX / 2),
                AugmentationAxis::new("b", 3),
            ],
        );
    }
}

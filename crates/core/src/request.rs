//! The canonical what-if query API.
//!
//! Every question this reproduction can answer — "what does workload W
//! sustain on server S, analytically or under the DES, with or without a
//! fault storm?" — is one [`SimRequest`] answered by [`SimRequest::run`].
//! The figure binaries, the test suites, and the `trainbox-serve` HTTP
//! service all speak this one type; the three historical `simulate*` free
//! functions in [`crate::pipeline`] are thin deprecated wrappers over the
//! same engine path.
//!
//! # Canonical form and content hashing
//!
//! A request accepts lenient JSON on the way in (omitted knobs fall back to
//! defaults, workloads may be named instead of spelled out) and normalizes
//! to a *canonical form* on parse: [`SimRequest::canonical_json`]
//! re-serializes the parsed struct with every field present, fields in
//! declaration order, and named workloads resolved to their full Table-I
//! parameter sets. [`SimRequest::canonical_hash`] is FNV-1a 64 over those
//! bytes, so two clients asking the same question — regardless of key
//! order, whitespace, spelling a workload by name or by value, or stating
//! a default explicitly as `null` — produce the same hash. The serving
//! layer uses that hash as its cache and coalescing key; correctness rests
//! on the simulator's determinism (same request, same answer, always).
//!
//! ```
//! use trainbox_core::request::SimRequest;
//!
//! let req = SimRequest::from_json_str(
//!     r#"{"server": {"kind": "TrainBox", "n_accels": 256},
//!         "workload": "Resnet-50"}"#,
//! )
//! .unwrap();
//! let resp = req.run().unwrap();
//! assert_eq!(resp.config_hash, req.hash_hex());
//! ```

use std::sync::OnceLock;
use std::time::Instant;

use crate::arch::{ConfigError, Server, ServerConfig, ServerKind, Throughput};
use crate::faults::FaultPlan;
use crate::faults::FaultStats;
use crate::pipeline::{fault_domain, try_simulate_traced_deadline, SimConfig, SimResult};
use crate::scaleout::{
    simulate_cluster_traced_deadline, ClusterResult, ClusterSpec, ClusterThroughput,
    CLUSTER_TRACK_STRIDE,
};
use serde::{Deserialize, Serialize};
use trainbox_collective::RingModel;
use trainbox_nn::Workload;
use trainbox_sim::{merge_lp_records, ForkTracer, NoopTracer, RingTracer, TraceSummary, Tracer};

/// The server half of a request: which design, at what scale, with which
/// overrides. Mirrors [`ServerConfig`]'s builder knobs as plain data.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServerSpec {
    /// Which of the paper's seven designs to build.
    pub kind: ServerKind,
    /// Accelerator count.
    pub n_accels: usize,
    /// Per-accelerator batch override (`null`/omitted = the workload's
    /// Table-I batch).
    pub batch_size: Option<u64>,
    /// Prep-pool FPGA count (`null`/omitted = 256 for
    /// [`ServerKind::TrainBox`], 0 otherwise).
    pub pool_fpgas: Option<usize>,
    /// Synchronization-fabric override (`null`/omitted = the NVLink-class
    /// default).
    pub ring: Option<RingModel>,
}

impl ServerSpec {
    /// A spec with no overrides.
    pub fn new(kind: ServerKind, n_accels: usize) -> Self {
        ServerSpec { kind, n_accels, batch_size: None, pool_fpgas: None, ring: None }
    }

    /// The equivalent [`ServerConfig`] builder state.
    pub fn to_config(&self) -> ServerConfig {
        let mut cfg = ServerConfig::new(self.kind, self.n_accels);
        if let Some(batch) = self.batch_size {
            cfg = cfg.batch_size(batch);
        }
        if let Some(pool) = self.pool_fpgas {
            cfg = cfg.pool_fpgas(pool);
        }
        if let Some(ring) = self.ring {
            cfg = cfg.ring_model(ring);
        }
        cfg
    }
}

// Lenient: only `kind` and `n_accels` are required.
impl Deserialize for ServerSpec {
    fn from_json(v: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::json::JsonError::type_mismatch("ServerSpec", "object"))?;
        let mut kind = None;
        let mut spec = ServerSpec::new(ServerKind::Baseline, 0);
        for (key, val) in obj {
            match key.as_str() {
                "kind" => kind = Some(Deserialize::from_json(val)?),
                "n_accels" => spec.n_accels = Deserialize::from_json(val)?,
                "batch_size" => spec.batch_size = Deserialize::from_json(val)?,
                "pool_fpgas" => spec.pool_fpgas = Deserialize::from_json(val)?,
                "ring" => spec.ring = Deserialize::from_json(val)?,
                other => {
                    return Err(serde::json::JsonError::new(format!(
                        "unknown field `{other}` in server spec"
                    )))
                }
            }
        }
        spec.kind = kind
            .ok_or_else(|| serde::json::JsonError::missing_field("ServerSpec", "kind"))?;
        if !obj.iter().any(|(k, _)| k == "n_accels") {
            return Err(serde::json::JsonError::missing_field("ServerSpec", "n_accels"));
        }
        Ok(spec)
    }
}

/// The workload half of a request, always resolved to a full [`Workload`].
///
/// On the wire it may be a Table-I name (`"Resnet-50"`, case-insensitive)
/// or a complete workload object; both parse to the same canonical value,
/// so they hash — and cache — identically.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec(pub Workload);

impl WorkloadSpec {
    /// Resolve a Table-I workload name (case-insensitive).
    pub fn named(name: &str) -> Option<Self> {
        Workload::by_name(name).map(WorkloadSpec)
    }

    /// The resolved workload.
    pub fn workload(&self) -> &Workload {
        &self.0
    }
}

impl From<Workload> for WorkloadSpec {
    fn from(w: Workload) -> Self {
        WorkloadSpec(w)
    }
}

impl Serialize for WorkloadSpec {
    fn to_json(&self) -> serde::json::Json {
        self.0.to_json()
    }
}

impl Deserialize for WorkloadSpec {
    fn from_json(v: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
        if let Some(name) = v.as_str() {
            return WorkloadSpec::named(name).ok_or_else(|| {
                let known: Vec<String> =
                    Workload::presets().into_iter().map(|w| w.name).collect();
                serde::json::JsonError::new(format!(
                    "unknown workload `{name}` (known: {})",
                    known.join(", ")
                ))
            });
        }
        // Inline specs (flat, stage-graph, or tenanted) must pass the DSL's
        // own validation so a malformed workload fails the parse with a
        // field-level message instead of panicking mid-simulation.
        let w = Workload::from_json(v)?;
        w.validate().map_err(|e| {
            serde::json::JsonError::new(format!("invalid workload: {e} (field `{}`)", e.field()))
        })?;
        Ok(WorkloadSpec(w))
    }
}

/// How to answer the question: the closed-form bottleneck model or the
/// discrete-event simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimMode {
    /// The analytic throughput model ([`Server::throughput`]); instant, no
    /// fault support.
    Analytic,
    /// The full DES ([`crate::pipeline`]) under the given configuration.
    Des(SimConfig),
}

/// One canonical what-if question.
///
/// Parse with [`Self::from_json_str`] (lenient), answer with [`Self::run`],
/// key caches with [`Self::canonical_hash`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimRequest {
    /// Which server to ask about.
    pub server: ServerSpec,
    /// Which workload to train.
    pub workload: WorkloadSpec,
    /// Analytic model or DES (omitted = analytic).
    pub sim: SimMode,
    /// Faults to replay during a DES run (omitted = fault-free; rejected
    /// for analytic runs, which cannot exercise them).
    pub faults: Option<FaultPlan>,
    /// Collect a structured execution trace during a DES run and attach its
    /// per-component utilization summary to the response. Ignored by
    /// analytic runs. Never changes the simulation result.
    pub trace: bool,
    /// Wall-clock budget for answering, in milliseconds (omitted = no
    /// deadline). A DES run checks the clock cooperatively and fails with
    /// [`SimError::DeadlineExceeded`] once it expires; a run that completes
    /// in time produces exactly the untimed answer.
    ///
    /// A deadline is a quality-of-service hint, **not part of the
    /// question**: it is excluded from [`Self::canonical_json`] and
    /// [`Self::canonical_hash`], so timed and untimed spellings of the same
    /// what-if share one cache entry.
    pub deadline_ms: Option<u64>,
    /// Ask about a multi-server cluster of identical `server`s instead of a
    /// single server (omitted = single server). Analytic requests answer
    /// with [`ClusterSpec::analytic`]; DES requests simulate every server as
    /// a logical process under the conservative parallel runner
    /// ([`simulate_cluster_traced_deadline`]) and a fault plan replays on
    /// server 0.
    ///
    /// Unlike `deadline_ms` this *is* part of the question and of the
    /// canonical form — but it is emitted only when present, so existing
    /// single-server requests keep their canonical bytes and hashes.
    pub cluster: Option<ClusterSpec>,
}

// Hand-written (not derived) to keep `deadline_ms` out of the canonical
// form: the canonical bytes answer "what is being asked", and a deadline
// only says how long the asker will wait.
impl Serialize for SimRequest {
    fn to_json(&self) -> serde::json::Json {
        let mut fields = vec![
            ("server".to_string(), self.server.to_json()),
            ("workload".to_string(), self.workload.to_json()),
            ("sim".to_string(), self.sim.to_json()),
            ("faults".to_string(), self.faults.to_json()),
            ("trace".to_string(), self.trace.to_json()),
        ];
        // Emitted only when present so single-server requests keep the
        // canonical bytes (and hashes) they had before clusters existed.
        if let Some(cluster) = &self.cluster {
            fields.push(("cluster".to_string(), cluster.to_json()));
        }
        serde::json::Json::Object(fields)
    }
}

// Lenient: `server` and `workload` are required, everything else defaults.
impl Deserialize for SimRequest {
    fn from_json(v: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::json::JsonError::type_mismatch("SimRequest", "object"))?;
        let mut server = None;
        let mut workload = None;
        let mut sim = SimMode::Analytic;
        let mut faults = None;
        let mut trace = false;
        let mut deadline_ms = None;
        let mut cluster = None;
        for (key, val) in obj {
            match key.as_str() {
                "server" => server = Some(Deserialize::from_json(val)?),
                "workload" => workload = Some(Deserialize::from_json(val)?),
                "sim" => {
                    if !matches!(val, serde::json::Json::Null) {
                        sim = Deserialize::from_json(val)?;
                    }
                }
                "faults" => faults = Deserialize::from_json(val)?,
                "trace" => {
                    if !matches!(val, serde::json::Json::Null) {
                        trace = Deserialize::from_json(val)?;
                    }
                }
                "deadline_ms" => deadline_ms = Deserialize::from_json(val)?,
                "cluster" => cluster = Deserialize::from_json(val)?,
                other => {
                    return Err(serde::json::JsonError::new(format!(
                        "unknown field `{other}` in request"
                    )))
                }
            }
        }
        Ok(SimRequest {
            server: server
                .ok_or_else(|| serde::json::JsonError::missing_field("SimRequest", "server"))?,
            workload: workload
                .ok_or_else(|| serde::json::JsonError::missing_field("SimRequest", "workload"))?,
            sim,
            faults,
            trace,
            deadline_ms,
            cluster,
        })
    }
}

/// What went wrong answering a [`SimRequest`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SimError {
    /// The request body was not valid JSON or not a valid request shape.
    Parse(String),
    /// The server spec cannot describe a real server.
    Config(ConfigError),
    /// The fault plan does not fit the server it targets.
    InvalidPlan(String),
    /// The DES configuration is self-contradictory (e.g. no batches left
    /// after warmup).
    InvalidSim(String),
    /// The cluster spec cannot describe a real cluster (zero servers,
    /// non-positive fabric bandwidth, …).
    InvalidCluster(String),
    /// Faults were supplied with the analytic model, which cannot replay
    /// them; ignoring them silently would misreport degraded throughput.
    FaultsRequireDes,
    /// The engine could not complete the run (event-budget exhaustion,
    /// simulated-time overflow).
    Engine(String),
    /// The request's wall-clock deadline expired before the DES finished.
    /// Carries what the run had observed so far rather than a bare timeout.
    DeadlineExceeded {
        /// The deadline that expired, milliseconds.
        deadline_ms: u64,
        /// Events the engine processed before giving up.
        events: u64,
        /// Fault-layer statistics accumulated up to the cancellation point
        /// (all-zero for a fault-free run).
        partial_faults: FaultStats,
    },
}

impl SimError {
    /// Dotted path of the request field at fault, for field-level HTTP 400
    /// messages ("body" when the problem precedes field resolution).
    pub fn field(&self) -> &'static str {
        match self {
            SimError::Parse(_) => "body",
            SimError::Config(e) => e.field(),
            SimError::InvalidPlan(_) | SimError::FaultsRequireDes => "faults",
            SimError::InvalidSim(_) => "sim",
            SimError::InvalidCluster(_) => "cluster",
            SimError::Engine(_) => "sim",
            SimError::DeadlineExceeded { .. } => "deadline_ms",
        }
    }

    /// Whether the request itself was at fault (an HTTP 400), as opposed to
    /// the engine failing to complete a well-formed request.
    pub fn is_client_error(&self) -> bool {
        !matches!(self, SimError::Engine(_) | SimError::DeadlineExceeded { .. })
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Parse(msg) => write!(f, "invalid request: {msg}"),
            SimError::Config(e) => write!(f, "invalid server config: {e}"),
            SimError::InvalidPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            SimError::InvalidSim(msg) => write!(f, "invalid sim config: {msg}"),
            SimError::InvalidCluster(msg) => write!(f, "invalid cluster spec: {msg}"),
            SimError::FaultsRequireDes => {
                write!(f, "fault plans require a DES sim mode; the analytic model cannot replay them")
            }
            SimError::Engine(msg) => write!(f, "simulation failed: {msg}"),
            SimError::DeadlineExceeded { deadline_ms, events, partial_faults } => write!(
                f,
                "deadline of {deadline_ms} ms exceeded after {events} events \
                 ({} faults observed)",
                partial_faults.injected
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// The answer payload: which model produced it and what it said.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SimOutcome {
    /// Closed-form bottleneck analysis.
    Analytic(Throughput),
    /// Discrete-event simulation.
    Des(SimResult),
    /// Closed-form cluster analysis ([`ClusterSpec::analytic`]).
    ClusterAnalytic(ClusterThroughput),
    /// Cluster discrete-event simulation (one logical process per server
    /// under the conservative parallel runner).
    Cluster(ClusterResult),
}

impl SimOutcome {
    /// Steady-state throughput, samples/s, whichever model produced it.
    pub fn samples_per_sec(&self) -> f64 {
        match self {
            SimOutcome::Analytic(t) => t.samples_per_sec,
            SimOutcome::Des(r) => r.samples_per_sec,
            SimOutcome::ClusterAnalytic(t) => t.samples_per_sec,
            SimOutcome::Cluster(r) => r.samples_per_sec,
        }
    }
}

/// A [`SimRequest`]'s answer plus provenance: enough to tell *which code*
/// answered *which question*, and what it cost.
#[derive(Debug, Clone, Serialize)]
pub struct SimResponse {
    /// [`SimRequest::hash_hex`] of the canonical request — the cache key
    /// this answer is stored under.
    pub config_hash: String,
    /// The answer.
    pub outcome: SimOutcome,
    /// `git describe --always --dirty` of the serving tree ("unknown"
    /// outside a git checkout).
    pub git_describe: String,
    /// Crate version of the answering engine.
    pub version: String,
    /// Wall-clock time the computation took, milliseconds. Provenance, not
    /// part of the deterministic answer.
    pub wall_ms: f64,
    /// True when a serving layer answered a DES question with the cheaper
    /// analytic model because the DES tier was unavailable or out of
    /// deadline budget. [`SimRequest::run`] itself always sets this false;
    /// degradation is a serving-policy decision, flagged honestly in the
    /// provenance so a degraded answer can never masquerade as the real one.
    pub degraded: bool,
    /// Per-component utilization rollup of the traced run (DES with
    /// `trace: true` only).
    pub trace: Option<TraceSummary>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// `git describe --always --dirty` of the working tree, computed once per
/// process. "unknown" when git or the checkout is unavailable.
pub fn git_describe() -> &'static str {
    static DESCRIBE: OnceLock<String> = OnceLock::new();
    DESCRIBE.get_or_init(|| {
        std::process::Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
}

impl SimRequest {
    /// An analytic request with no overrides — the shorthand behind
    /// [`crate::arch::throughput_of`].
    pub fn analytic(kind: ServerKind, n_accels: usize, workload: Workload) -> Self {
        SimRequest {
            server: ServerSpec::new(kind, n_accels),
            workload: WorkloadSpec(workload),
            sim: SimMode::Analytic,
            faults: None,
            trace: false,
            deadline_ms: None,
            cluster: None,
        }
    }

    /// A DES request with no faults and no overrides.
    pub fn des(kind: ServerKind, n_accels: usize, workload: Workload, cfg: SimConfig) -> Self {
        SimRequest {
            server: ServerSpec::new(kind, n_accels),
            workload: WorkloadSpec(workload),
            sim: SimMode::Des(cfg),
            faults: None,
            trace: false,
            deadline_ms: None,
            cluster: None,
        }
    }

    /// Builder-style deadline: the run must answer within `ms` milliseconds
    /// or fail with [`SimError::DeadlineExceeded`].
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Builder-style cluster: ask about `spec.servers` copies of the server
    /// joined by `spec`'s Ethernet fabric instead of a single server.
    pub fn with_cluster(mut self, spec: ClusterSpec) -> Self {
        self.cluster = Some(spec);
        self
    }

    /// Parse a request from lenient JSON text (the HTTP wire format).
    pub fn from_json_str(text: &str) -> Result<Self, SimError> {
        let value = trainbox_sim::json::parse(text)
            .map_err(|e| SimError::Parse(e.to_string()))?;
        let bridged = sim_value_to_serde(&value);
        Deserialize::from_json(&bridged).map_err(|e| SimError::Parse(e.to_string()))
    }

    /// The canonical serialization: every field present, declaration order,
    /// named workloads resolved. Equal requests — under any wire spelling —
    /// produce equal canonical bytes.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("request serialization is infallible")
    }

    /// FNV-1a 64 over [`Self::canonical_json`] — the cache/coalescing key.
    pub fn canonical_hash(&self) -> u64 {
        fnv1a64(self.canonical_json().as_bytes())
    }

    /// [`Self::canonical_hash`] as fixed-width lowercase hex.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.canonical_hash())
    }

    /// Validate and build the server this request targets.
    pub fn build_server(&self) -> Result<Server, SimError> {
        Ok(self.server.to_config().try_build()?)
    }

    /// Answer the question.
    ///
    /// This is *the* simulation entry point: analytic requests evaluate the
    /// bottleneck model, DES requests run the event-driven datapath (with
    /// faults and tracing as requested). Every failure mode is a typed
    /// [`SimError`]; nothing panics on bad input.
    pub fn run(&self) -> Result<SimResponse, SimError> {
        let started = Instant::now();
        // The deadline clock starts when the engine does, covering server
        // construction and the full DES; the analytic model is closed-form
        // (microseconds), so no deadline can be "too tight" for it.
        let deadline = self
            .deadline_ms
            .map(|ms| started + std::time::Duration::from_millis(ms));
        let server = self.build_server()?;
        let workload = self.workload.workload();
        if let Some(cluster) = &self.cluster {
            cluster.validate().map_err(SimError::InvalidCluster)?;
        }
        let (outcome, trace) = match (self.sim, &self.cluster) {
            (SimMode::Analytic, _) => {
                if self.faults.as_ref().is_some_and(|p| !p.is_empty()) {
                    return Err(SimError::FaultsRequireDes);
                }
                let outcome = match &self.cluster {
                    Some(c) => SimOutcome::ClusterAnalytic(c.analytic(&server, workload)),
                    None => SimOutcome::Analytic(server.throughput(workload)),
                };
                (outcome, None)
            }
            (SimMode::Des(cfg), Some(cluster)) => {
                let cluster = *cluster;
                if self.trace {
                    let (result, tracers) = self.checked_cluster_des(
                        &server,
                        &cfg,
                        &cluster,
                        |_| RingTracer::new(RingTracer::DEFAULT_CAPACITY),
                        deadline,
                    )?;
                    // Per-server record streams merge deterministically:
                    // sort by (time, server), server lanes offset by the
                    // track stride. The summary therefore does not depend
                    // on how many workers advanced the servers.
                    let dropped = tracers.iter().map(RingTracer::dropped).sum();
                    let records = merge_lp_records(
                        tracers
                            .into_iter()
                            .map(|t| t.records().cloned().collect())
                            .collect(),
                        CLUSTER_TRACK_STRIDE,
                    );
                    let summary = TraceSummary::from_records(&records, dropped);
                    (SimOutcome::Cluster(result), Some(summary))
                } else {
                    let (result, _) = self.checked_cluster_des(
                        &server,
                        &cfg,
                        &cluster,
                        |_| NoopTracer,
                        deadline,
                    )?;
                    (SimOutcome::Cluster(result), None)
                }
            }
            (SimMode::Des(cfg), None) => {
                if self.trace {
                    let (result, tracer) = self.checked_des(
                        &server,
                        &cfg,
                        RingTracer::new(RingTracer::DEFAULT_CAPACITY),
                        deadline,
                    )?;
                    let records: Vec<_> = tracer.records().cloned().collect();
                    let summary = TraceSummary::from_records(&records, tracer.dropped());
                    (SimOutcome::Des(result), Some(summary))
                } else {
                    let (result, _) = self.checked_des(&server, &cfg, NoopTracer, deadline)?;
                    (SimOutcome::Des(result), None)
                }
            }
        };
        Ok(SimResponse {
            config_hash: self.hash_hex(),
            outcome,
            git_describe: git_describe().to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            degraded: false,
            trace,
        })
    }

    /// DES with a caller-supplied tracer (the figure binaries' `--trace`
    /// export path, which needs the raw records, not just the summary).
    ///
    /// # Errors
    ///
    /// As [`Self::run`]; additionally [`SimError::InvalidSim`] when the
    /// request's mode is analytic.
    pub fn run_des_with_tracer<T: ForkTracer + Send>(
        &self,
        tracer: T,
    ) -> Result<(SimResult, T), SimError> {
        let server = self.build_server()?;
        let SimMode::Des(cfg) = self.sim else {
            return Err(SimError::InvalidSim(
                "run_des_with_tracer needs a DES sim mode".to_string(),
            ));
        };
        let deadline = self
            .deadline_ms
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms));
        self.checked_des(&server, &cfg, tracer, deadline)
    }

    /// Validate everything the engine would otherwise assert on, then run.
    fn checked_des<T: ForkTracer + Send>(
        &self,
        server: &Server,
        cfg: &SimConfig,
        tracer: T,
        deadline: Option<Instant>,
    ) -> Result<(SimResult, T), SimError> {
        if cfg.batches == 0 || cfg.batches <= cfg.warmup_batches {
            return Err(SimError::InvalidSim(format!(
                "need at least one measured batch after warmup (batches = {}, warmup_batches = {})",
                cfg.batches, cfg.warmup_batches
            )));
        }
        let plan = self.faults.clone().unwrap_or_default();
        plan.validate(&fault_domain(server)).map_err(SimError::InvalidPlan)?;
        try_simulate_traced_deadline(server, self.workload.workload(), cfg, &plan, tracer, deadline)
            .map_err(|failure| match failure.error {
                trainbox_sim::SimError::DeadlineExceeded { .. } => SimError::DeadlineExceeded {
                    deadline_ms: self.deadline_ms.unwrap_or(0),
                    events: failure.events,
                    partial_faults: failure.partial_faults,
                },
                other => SimError::Engine(other.to_string()),
            })
    }

    /// Cluster analogue of [`Self::checked_des`]: validate, then run every
    /// server as a logical process under the parallel runner. The fault
    /// plan is validated against one server's domain — it replays on
    /// server 0 only.
    fn checked_cluster_des<T: Tracer + Send>(
        &self,
        server: &Server,
        cfg: &SimConfig,
        cluster: &ClusterSpec,
        make_tracer: impl FnMut(usize) -> T,
        deadline: Option<Instant>,
    ) -> Result<(ClusterResult, Vec<T>), SimError> {
        if cfg.batches == 0 || cfg.batches <= cfg.warmup_batches {
            return Err(SimError::InvalidSim(format!(
                "need at least one measured batch after warmup (batches = {}, warmup_batches = {})",
                cfg.batches, cfg.warmup_batches
            )));
        }
        let plan = self.faults.clone().unwrap_or_default();
        plan.validate(&fault_domain(server)).map_err(SimError::InvalidPlan)?;
        simulate_cluster_traced_deadline(
            server,
            self.workload.workload(),
            cfg,
            &plan,
            cluster,
            make_tracer,
            deadline,
        )
        .map_err(|failure| match failure.error {
            trainbox_sim::SimError::DeadlineExceeded { .. } => SimError::DeadlineExceeded {
                deadline_ms: self.deadline_ms.unwrap_or(0),
                events: failure.events,
                partial_faults: failure.partial_faults,
            },
            other => SimError::Engine(other.to_string()),
        })
    }
}

/// FNV-1a 64 over arbitrary canonical bytes — the same function behind
/// [`SimRequest::canonical_hash`], exported so callers that already hold
/// the canonical JSON (the serving tier's verified cache) can key without
/// re-serializing.
pub fn canonical_hash_of(canonical_json: &str) -> u64 {
    fnv1a64(canonical_json.as_bytes())
}

/// The preset catalog behind `GET /workloads`: every preset (seven Table-I
/// workloads plus the DSL families), each with its canonical workload JSON
/// and the stage-graph DSL it lowers to. Flat presets are lowered through
/// [`crate::profile::lower_legacy`]; DSL presets show their own graph;
/// tenanted presets blend rather than lower, so their `lowered_stages` is
/// `null`.
pub fn workload_catalog_json() -> String {
    use serde::json::Json;
    let entries: Vec<Json> = Workload::presets()
        .into_iter()
        .map(|w| {
            let lowered = match &w.stages {
                Some(g) => g.to_json(),
                None if w.tenants.is_empty() => crate::profile::lower_legacy(&w).to_json(),
                None => Json::Null,
            };
            Json::Object(vec![
                ("name".to_string(), Json::Str(w.name.clone())),
                ("sync".to_string(), w.sync.to_json()),
                ("workload".to_string(), w.to_json()),
                ("lowered_stages".to_string(), lowered),
            ])
        })
        .collect();
    serde_json::to_string(&RawJson(Json::Object(vec![(
        "workloads".to_string(),
        Json::Array(entries),
    )])))
    .expect("catalog serialization is infallible")
}

/// A parameter grid swept over one [`SimRequest`] template: the cross
/// product workload × batch size × accelerator count × link generation
/// (ring model) × fault plan. An omitted (or `null`) axis keeps the
/// template's value; a present axis must be non-empty. `faults` entries may
/// be `null` for the fault-free point; `workload` entries are anything the
/// `workload` request field accepts (preset names or inline specs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepGrid {
    pub workload: Vec<WorkloadSpec>,
    pub batch_size: Vec<u64>,
    pub n_accels: Vec<usize>,
    pub ring: Vec<RingModel>,
    pub faults: Vec<Option<FaultPlan>>,
}

impl SweepGrid {
    /// Number of grid points ( = the product of present axis lengths).
    pub fn n_points(&self) -> usize {
        let len = |n: usize| n.max(1);
        len(self.workload.len())
            * len(self.batch_size.len())
            * len(self.n_accels.len())
            * len(self.ring.len())
            * len(self.faults.len())
    }
}

impl Deserialize for SweepGrid {
    fn from_json(v: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::json::JsonError::type_mismatch("SweepGrid", "object"))?;
        let mut grid = SweepGrid::default();
        fn axis<T: Deserialize>(
            name: &str,
            val: &serde::json::Json,
        ) -> Result<Vec<T>, serde::json::JsonError> {
            let parsed: Vec<T> = Deserialize::from_json(val)?;
            if parsed.is_empty() {
                return Err(serde::json::JsonError::new(format!(
                    "sweep axis `{name}` must be non-empty when present \
                     (omit the axis to keep the template's value)"
                )));
            }
            Ok(parsed)
        }
        for (key, val) in obj {
            if matches!(val, serde::json::Json::Null) {
                continue; // null axis = omitted
            }
            match key.as_str() {
                "workload" => grid.workload = axis(key, val)?,
                "batch_size" => grid.batch_size = axis(key, val)?,
                "n_accels" => grid.n_accels = axis(key, val)?,
                "ring" => grid.ring = axis(key, val)?,
                "faults" => grid.faults = axis(key, val)?,
                other => {
                    return Err(serde::json::JsonError::new(format!(
                        "unknown axis `{other}` in sweep grid \
                         (known: workload, batch_size, n_accels, ring, faults)"
                    )))
                }
            }
        }
        Ok(grid)
    }
}

/// One expanded grid point: the concrete [`SimRequest`] to answer plus the
/// axis values that produced it (per-point provenance for the stream).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Position in the expansion order (row-major: workload outermost, then
    /// batch_size, n_accels, ring, faults innermost).
    pub index: usize,
    /// The template with this point's axis values applied. Canonically
    /// hashable like any request — a sweep point and an individual
    /// `/simulate` asking the same question share one cache entry.
    pub request: SimRequest,
    /// Compact JSON object naming exactly the applied axis values.
    pub params: String,
}

/// A [`SimRequest`] template plus a [`SweepGrid`] to expand over it —
/// the body of `POST /sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    pub template: SimRequest,
    pub grid: SweepGrid,
}

/// A raw [`serde::json::Json`] value made serializable (the vendored serde
/// has no blanket impl for its own value type).
struct RawJson(serde::json::Json);

impl Serialize for RawJson {
    fn to_json(&self) -> serde::json::Json {
        self.0.clone()
    }
}

impl SweepRequest {
    /// Hard ceiling on expanded points, independent of any serving-layer
    /// cap: a grid beyond this is a typo or an attack, not an experiment.
    pub const MAX_POINTS: usize = 65_536;

    /// Parse from lenient wire JSON: `{"template": {...}, "grid": {...}}`.
    /// `grid` may be omitted (a one-point sweep). Validated before return.
    pub fn from_json_str(text: &str) -> Result<Self, SimError> {
        let value = trainbox_sim::json::parse(text)
            .map_err(|e| SimError::Parse(e.to_string()))?;
        let bridged = sim_value_to_serde(&value);
        let obj = bridged
            .as_object()
            .ok_or_else(|| SimError::Parse("sweep request must be an object".to_string()))?;
        let mut template = None;
        let mut grid = SweepGrid::default();
        for (key, val) in obj {
            match key.as_str() {
                "template" => {
                    template = Some(
                        SimRequest::from_json(val).map_err(|e| SimError::Parse(e.to_string()))?,
                    )
                }
                "grid" => {
                    if !matches!(val, serde::json::Json::Null) {
                        grid = SweepGrid::from_json(val)
                            .map_err(|e| SimError::Parse(e.to_string()))?;
                    }
                }
                other => {
                    return Err(SimError::Parse(format!(
                        "unknown field `{other}` in sweep request (known: template, grid)"
                    )))
                }
            }
        }
        let sweep = SweepRequest {
            template: template
                .ok_or_else(|| SimError::Parse("missing field `template`".to_string()))?,
            grid,
        };
        sweep.validate()?;
        Ok(sweep)
    }

    /// Shape checks beyond parsing: the template must not carry a deadline
    /// (deadlines are per-request QoS, not part of a sweep's question) and
    /// the expansion must stay under [`Self::MAX_POINTS`].
    pub fn validate(&self) -> Result<(), SimError> {
        if self.template.deadline_ms.is_some() {
            return Err(SimError::Parse(
                "sweep template must not set deadline_ms; a sweep streams at \
                 the pool's pace and each point answers untimed"
                    .to_string(),
            ));
        }
        let points = self.grid.n_points();
        if points > Self::MAX_POINTS {
            return Err(SimError::Parse(format!(
                "sweep expands to {points} points, over the limit of {}",
                Self::MAX_POINTS
            )));
        }
        Ok(())
    }

    /// Number of points this sweep expands to.
    pub fn n_points(&self) -> usize {
        self.grid.n_points()
    }

    /// Expand the grid in deterministic row-major order (`workload`
    /// outermost, then `batch_size`, `n_accels`, `ring`, `faults`
    /// innermost). Every point is a full [`SimRequest`] plus the
    /// compact-JSON `params` provenance.
    pub fn expand(&self) -> Vec<SweepPoint> {
        use serde::json::Json;
        let works: Vec<Option<&WorkloadSpec>> = if self.grid.workload.is_empty() {
            vec![None]
        } else {
            self.grid.workload.iter().map(Some).collect()
        };
        let batch: Vec<Option<u64>> = if self.grid.batch_size.is_empty() {
            vec![None]
        } else {
            self.grid.batch_size.iter().map(|&b| Some(b)).collect()
        };
        let accels: Vec<Option<usize>> = if self.grid.n_accels.is_empty() {
            vec![None]
        } else {
            self.grid.n_accels.iter().map(|&a| Some(a)).collect()
        };
        let rings: Vec<Option<RingModel>> = if self.grid.ring.is_empty() {
            vec![None]
        } else {
            self.grid.ring.iter().map(|&r| Some(r)).collect()
        };
        let faults: Vec<Option<&Option<FaultPlan>>> = if self.grid.faults.is_empty() {
            vec![None]
        } else {
            self.grid.faults.iter().map(Some).collect()
        };
        let mut points = Vec::with_capacity(self.n_points());
        for &w in &works {
        for &b in &batch {
            for &a in &accels {
                for &r in &rings {
                    for &f in &faults {
                        let mut request = self.template.clone();
                        let mut params: Vec<(String, Json)> = Vec::new();
                        if let Some(w) = w {
                            request.workload = w.clone();
                            // Provenance names the point by workload name;
                            // the request itself carries the full spec.
                            params.push((
                                "workload".to_string(),
                                Json::Str(w.workload().name.clone()),
                            ));
                        }
                        if let Some(b) = b {
                            request.server.batch_size = Some(b);
                            params.push(("batch_size".to_string(), Json::U64(b)));
                        }
                        if let Some(a) = a {
                            request.server.n_accels = a;
                            params.push(("n_accels".to_string(), Json::U64(a as u64)));
                        }
                        if let Some(r) = r {
                            request.server.ring = Some(r);
                            params.push(("ring".to_string(), r.to_json()));
                        }
                        if let Some(f) = f {
                            request.faults = f.clone();
                            let rendered = match f {
                                Some(plan) => plan.to_json(),
                                None => Json::Null,
                            };
                            params.push(("faults".to_string(), rendered));
                        }
                        let params = serde_json::to_string(&RawJson(Json::Object(params)))
                            .expect("params serialization is infallible");
                        points.push(SweepPoint { index: points.len(), request, params });
                    }
                }
            }
        }
        }
        points
    }
}

/// Bridge the strict [`trainbox_sim::json`] parse tree into the vendored
/// serde data model. The parser keeps every number as `f64`; integral
/// values in `u64`/`i64` range come back as integer flavors so integer
/// fields deserialize exactly.
pub fn sim_value_to_serde(v: &trainbox_sim::json::Value) -> serde::json::Json {
    use trainbox_sim::json::Value;
    match v {
        Value::Null => serde::json::Json::Null,
        Value::Bool(b) => serde::json::Json::Bool(*b),
        Value::Number(x) => {
            if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
                if *x >= 0.0 {
                    serde::json::Json::U64(*x as u64)
                } else {
                    serde::json::Json::I64(*x as i64)
                }
            } else {
                serde::json::Json::F64(*x)
            }
        }
        Value::String(s) => serde::json::Json::Str(s.clone()),
        Value::Array(items) => {
            serde::json::Json::Array(items.iter().map(sim_value_to_serde).collect())
        }
        Value::Object(fields) => serde::json::Json::Object(
            fields.iter().map(|(k, v)| (k.clone(), sim_value_to_serde(v))).collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultDomain, FaultKind};

    #[test]
    fn minimal_request_parses_with_defaults() {
        let req = SimRequest::from_json_str(
            r#"{"server": {"kind": "Baseline", "n_accels": 4}, "workload": "VGG-19"}"#,
        )
        .unwrap();
        assert_eq!(req.server.kind, ServerKind::Baseline);
        assert_eq!(req.server.n_accels, 4);
        assert_eq!(req.server.batch_size, None);
        assert_eq!(req.sim, SimMode::Analytic);
        assert_eq!(req.faults, None);
        assert!(!req.trace);
        assert_eq!(req.workload.workload().name, "VGG-19");
    }

    #[test]
    fn wire_spelling_does_not_change_the_hash() {
        // Key order, whitespace, workload-by-name vs by-value, explicit
        // nulls, and explicit defaults (`sim`, `trace`) all normalize away.
        let a = SimRequest::from_json_str(
            r#"{"server": {"kind": "TrainBox", "n_accels": 256}, "workload": "Resnet-50"}"#,
        )
        .unwrap();
        let spelled = serde_json::to_string(&Workload::resnet50()).unwrap();
        let b = SimRequest::from_json_str(&format!(
            r#"{{
                "workload": {spelled},
                "trace": false,
                "sim": "Analytic",
                "faults": null,
                "server": {{"ring": null, "n_accels": 256, "kind": "TrainBox"}}
            }}"#
        ))
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn different_questions_hash_differently() {
        let a = SimRequest::analytic(ServerKind::TrainBox, 256, Workload::resnet50());
        let mut b = a.clone();
        b.server.n_accels = 128;
        assert_ne!(a.canonical_hash(), b.canonical_hash());
        let mut c = a.clone();
        c.sim = SimMode::Des(SimConfig::default());
        assert_ne!(a.canonical_hash(), c.canonical_hash());
        let mut d = a.clone();
        d.trace = true;
        assert_ne!(a.canonical_hash(), d.canonical_hash());
    }

    #[test]
    fn serde_round_trip_preserves_the_request() {
        let mut req = SimRequest::des(
            ServerKind::TrainBoxNoPool,
            16,
            Workload::inception_v4(),
            SimConfig { batches: 6, warmup_batches: 2, ..SimConfig::default() },
        );
        req.server.batch_size = Some(512);
        req.faults = Some(FaultPlan::empty().at(0.5, FaultKind::PrepCrash { dev: 1 }));
        req.trace = true;
        let text = req.canonical_json();
        let back = SimRequest::from_json_str(&text).unwrap();
        assert_eq!(req, back);
        assert_eq!(req.canonical_hash(), back.canonical_hash());
    }

    #[test]
    fn analytic_run_matches_the_throughput_model() {
        let req = SimRequest::analytic(ServerKind::TrainBox, 256, Workload::resnet50());
        let resp = req.run().unwrap();
        let direct = ServerConfig::new(ServerKind::TrainBox, 256)
            .build()
            .throughput(&Workload::resnet50());
        match resp.outcome {
            SimOutcome::Analytic(t) => assert_eq!(t, direct),
            other => panic!("analytic request answered with {other:?}"),
        }
        assert_eq!(resp.config_hash, req.hash_hex());
        assert!(resp.trace.is_none());
    }

    #[test]
    fn errors_are_typed_not_panics() {
        let zero = SimRequest::analytic(ServerKind::Baseline, 0, Workload::vgg19());
        assert_eq!(zero.run().unwrap_err(), SimError::Config(ConfigError::NoAccelerators));

        let mut faulted = SimRequest::analytic(ServerKind::TrainBox, 16, Workload::vgg19());
        faulted.faults =
            Some(FaultPlan::empty().at(0.1, FaultKind::PrepCrash { dev: 0 }));
        assert_eq!(faulted.run().unwrap_err(), SimError::FaultsRequireDes);

        let mut warm = SimRequest::des(
            ServerKind::TrainBox,
            16,
            Workload::vgg19(),
            SimConfig { batches: 4, warmup_batches: 4, ..SimConfig::default() },
        );
        assert!(matches!(warm.run().unwrap_err(), SimError::InvalidSim(_)));
        warm.sim = SimMode::Des(SimConfig::default());
        warm.faults =
            Some(FaultPlan::empty().at(0.1, FaultKind::PrepCrash { dev: 999 }));
        let err = warm.run().unwrap_err();
        assert!(matches!(err, SimError::InvalidPlan(_)), "{err:?}");
        assert_eq!(err.field(), "faults");
        assert!(err.is_client_error());
    }

    #[test]
    fn unknown_workload_lists_the_known_names() {
        let err = SimRequest::from_json_str(
            r#"{"server": {"kind": "Baseline", "n_accels": 4}, "workload": "AlexNet"}"#,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown workload `AlexNet`"), "{msg}");
        assert!(msg.contains("Resnet-50"), "{msg}");
    }

    #[test]
    fn cluster_requests_hash_differently_and_round_trip() {
        let solo = SimRequest::analytic(ServerKind::TrainBox, 16, Workload::resnet50());
        let clustered = solo.clone().with_cluster(ClusterSpec::rack_default(4));
        assert_ne!(solo.canonical_hash(), clustered.canonical_hash());
        let mut other = clustered.clone();
        other.cluster.as_mut().unwrap().servers = 8;
        assert_ne!(clustered.canonical_hash(), other.canonical_hash());
        // Canonical JSON of a single-server request never mentions clusters.
        assert!(!solo.canonical_json().contains("cluster"));
        let back = SimRequest::from_json_str(&clustered.canonical_json()).unwrap();
        assert_eq!(clustered, back);
        assert_eq!(clustered.canonical_hash(), back.canonical_hash());
    }

    #[test]
    fn cluster_requests_run_both_modes() {
        let spec = ClusterSpec::rack_default(4);
        let analytic = SimRequest::analytic(ServerKind::TrainBoxNoPool, 16, Workload::rnn_s())
            .with_cluster(spec);
        let resp = analytic.run().unwrap();
        let SimOutcome::ClusterAnalytic(t) = resp.outcome else {
            panic!("expected a cluster-analytic outcome");
        };
        assert_eq!(t.servers, 4);
        assert!(t.samples_per_sec > 0.0);

        let mut des = SimRequest::des(
            ServerKind::TrainBoxNoPool,
            4,
            Workload::rnn_s(),
            SimConfig {
                batches: 4,
                warmup_batches: 1,
                parallel_workers: 2,
                ..SimConfig::default()
            },
        )
        .with_cluster(ClusterSpec::rack_default(2));
        des.server.batch_size = Some(64);
        des.trace = true;
        let resp = des.run().unwrap();
        let SimOutcome::Cluster(r) = &resp.outcome else {
            panic!("expected a cluster DES outcome");
        };
        assert_eq!(r.servers, 2);
        assert_eq!(r.batch_done_at.len(), 4);
        assert!(resp.trace.is_some(), "traced cluster run returns a summary");

        let invalid = analytic.clone().with_cluster(ClusterSpec::rack_default(0));
        let err = invalid.run().unwrap_err();
        assert!(matches!(err, SimError::InvalidCluster(_)), "{err:?}");
        assert_eq!(err.field(), "cluster");
        assert!(err.is_client_error());
    }

    #[test]
    fn sweep_expands_row_major_with_provenance() {
        let sweep = SweepRequest::from_json_str(
            r#"{"template": {"server": {"kind": "TrainBox", "n_accels": 16},
                             "workload": "Resnet-50"},
                "grid": {"batch_size": [8, 32], "n_accels": [16, 64, 256]}}"#,
        )
        .unwrap();
        assert_eq!(sweep.n_points(), 6);
        let points = sweep.expand();
        assert_eq!(points.len(), 6);
        // Row-major: batch_size outermost, n_accels inner.
        let got: Vec<(Option<u64>, usize)> = points
            .iter()
            .map(|p| (p.request.server.batch_size, p.request.server.n_accels))
            .collect();
        let want = vec![
            (Some(8), 16),
            (Some(8), 64),
            (Some(8), 256),
            (Some(32), 16),
            (Some(32), 64),
            (Some(32), 256),
        ];
        assert_eq!(got, want);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        assert_eq!(points[0].params, r#"{"batch_size":8,"n_accels":16}"#);
        // Every point hashes like the individually-spelled request.
        let mut individual = SimRequest::analytic(ServerKind::TrainBox, 64, Workload::resnet50());
        individual.server.batch_size = Some(32);
        assert_eq!(points[4].request.canonical_hash(), individual.canonical_hash());
        // All six points are distinct questions.
        let mut hashes: Vec<u64> = points.iter().map(|p| p.request.canonical_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 6);
    }

    #[test]
    fn sweep_grid_defaults_axes_to_the_template() {
        let sweep = SweepRequest::from_json_str(
            r#"{"template": {"server": {"kind": "Baseline", "n_accels": 8, "batch_size": 128},
                             "workload": "VGG-19"}}"#,
        )
        .unwrap();
        let points = sweep.expand();
        assert_eq!(points.len(), 1, "no grid = a one-point sweep");
        assert_eq!(points[0].request, sweep.template);
        assert_eq!(points[0].params, "{}", "no axes applied, empty provenance");
    }

    #[test]
    fn sweep_faults_axis_carries_null_and_plans() {
        let sweep = SweepRequest::from_json_str(
            r#"{"template": {"server": {"kind": "TrainBoxNoPool", "n_accels": 16},
                             "workload": "Resnet-50",
                             "sim": {"Des": {"batches": 4, "warmup_batches": 1}}},
                "grid": {"faults": [null,
                                    {"events": [{"at_secs": 0.5,
                                                 "kind": {"PrepCrash": {"dev": 0}}}]}]}}"#,
        )
        .unwrap();
        let points = sweep.expand();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].request.faults, None);
        assert!(points[0].params.contains("\"faults\":null"), "{}", points[0].params);
        assert!(points[1].request.faults.is_some());
        assert_ne!(
            points[0].request.canonical_hash(),
            points[1].request.canonical_hash(),
            "fault-free and faulted points are different questions"
        );
    }

    #[test]
    fn sweep_validation_rejects_bad_shapes() {
        let deadline = SweepRequest::from_json_str(
            r#"{"template": {"server": {"kind": "TrainBox", "n_accels": 16},
                             "workload": "Resnet-50", "deadline_ms": 100}}"#,
        )
        .unwrap_err();
        assert!(deadline.to_string().contains("deadline_ms"), "{deadline}");

        let empty_axis = SweepRequest::from_json_str(
            r#"{"template": {"server": {"kind": "TrainBox", "n_accels": 16},
                             "workload": "Resnet-50"},
                "grid": {"batch_size": []}}"#,
        )
        .unwrap_err();
        assert!(empty_axis.to_string().contains("non-empty"), "{empty_axis}");

        let unknown_axis = SweepRequest::from_json_str(
            r#"{"template": {"server": {"kind": "TrainBox", "n_accels": 16},
                             "workload": "Resnet-50"},
                "grid": {"pool_fpgas": [1, 2]}}"#,
        )
        .unwrap_err();
        assert!(unknown_axis.to_string().contains("unknown axis"), "{unknown_axis}");

        let huge: Vec<String> = (0..300).map(|i| i.to_string()).collect();
        let over_cap = SweepRequest::from_json_str(&format!(
            r#"{{"template": {{"server": {{"kind": "TrainBox", "n_accels": 16}},
                              "workload": "Resnet-50"}},
                 "grid": {{"batch_size": [{0}], "n_accels": [{0}]}}}}"#,
            huge.join(",")
        ))
        .unwrap_err();
        assert!(over_cap.to_string().contains("over the limit"), "{over_cap}");
    }

    #[test]
    fn canonical_hash_of_matches_the_method() {
        let req = SimRequest::analytic(ServerKind::TrainBox, 256, Workload::resnet50());
        assert_eq!(canonical_hash_of(&req.canonical_json()), req.canonical_hash());
    }

    #[test]
    fn fault_domain_matches_engine_acceptance() {
        // A plan the domain accepts must not panic the engine; one it
        // rejects must be exactly what the engine would have asserted on.
        let server = ServerConfig::new(ServerKind::TrainBoxNoPool, 16).build();
        let domain = fault_domain(&server);
        assert_eq!(domain.n_accels, 16);
        assert!(domain.n_preps > 0);
        assert!(domain.n_links > 0);
        let _ = FaultDomain { ..domain };
    }
}

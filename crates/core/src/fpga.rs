//! FPGA resource model for the data-preparation accelerator (Tables II/III).
//!
//! The paper implements its accelerator on a Xilinx XCVU9P and reports
//! per-engine LUT/FF/BRAM/DSP consumption. This module reproduces that
//! accounting: a part inventory, the engine resource table, and an allocator
//! that checks an engine mix fits the die — the same check that gates which
//! preparation functionality one accelerator can carry (§V-C: partial
//! reconfiguration swaps the computation engines while interfacing logic
//! stays).

use serde::{Deserialize, Serialize};

/// Resources of one FPGA part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpgaPart {
    /// Lookup tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// 36 Kb block RAMs.
    pub bram: u64,
    /// DSP slices.
    pub dsp: u64,
}

/// Xilinx XCVU9P (Virtex UltraScale+), the paper's part (§VI-A). Totals are
/// recovered from Table II's own percentages (704K LUTs = 59.6% ⇒ 1,182K
/// total, etc.) and match the public datasheet.
pub const XCVU9P: FpgaPart = FpgaPart {
    lut: 1_182_240,
    ff: 2_364_480,
    bram: 2_160,
    dsp: 6_840,
};

/// Resource consumption of one engine (one row of Table II or III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineResources {
    /// Engine name as printed in the table.
    pub name: &'static str,
    /// LUTs used.
    pub lut: u64,
    /// Flip-flops used.
    pub ff: u64,
    /// BRAMs used.
    pub bram: u64,
    /// DSP slices used.
    pub dsp: u64,
}

/// Table II — the image-version engines.
pub fn image_engines() -> Vec<EngineResources> {
    vec![
        EngineResources { name: "Jpeg decoder", lut: 704_000, ff: 665_000, bram: 0, dsp: 1040 },
        EngineResources { name: "Crop", lut: 500, ff: 300, bram: 0, dsp: 27 },
        EngineResources { name: "Mirror", lut: 6_500, ff: 4_700, bram: 0, dsp: 381 },
        EngineResources { name: "Gaussian noise", lut: 24_500, ff: 33_000, bram: 80, dsp: 400 },
        EngineResources { name: "Cast", lut: 5_700, ff: 3_000, bram: 0, dsp: 240 },
        EngineResources { name: "Ethernet + Protocol parser", lut: 166_000, ff: 169_000, bram: 1024, dsp: 0 },
        EngineResources { name: "P2P Handler", lut: 22_700, ff: 24_700, bram: 153, dsp: 0 },
    ]
}

/// Table III — the audio-version engines.
pub fn audio_engines() -> Vec<EngineResources> {
    vec![
        EngineResources { name: "Spectrogram", lut: 622_000, ff: 755_000, bram: 228, dsp: 0 },
        EngineResources { name: "Masking", lut: 21_000, ff: 17_000, bram: 53, dsp: 260 },
        EngineResources { name: "Norm", lut: 14_000, ff: 11_000, bram: 0, dsp: 0 },
        EngineResources { name: "Mel Filter bank", lut: 103_000, ff: 119_000, bram: 208, dsp: 572 },
        EngineResources { name: "Ethernet + Protocol parser", lut: 166_000, ff: 169_000, bram: 1024, dsp: 0 },
        EngineResources { name: "P2P Handler", lut: 22_700, ff: 24_700, bram: 153, dsp: 0 },
    ]
}

/// Utilization of a part by an engine mix, as fractions in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// LUT fraction used.
    pub lut: f64,
    /// FF fraction used.
    pub ff: f64,
    /// BRAM fraction used.
    pub bram: f64,
    /// DSP fraction used.
    pub dsp: f64,
}

impl Utilization {
    /// The most-utilized resource fraction (what binds further additions).
    pub fn max_fraction(&self) -> f64 {
        self.lut.max(self.ff).max(self.bram).max(self.dsp)
    }
}

/// Error when an engine mix does not fit a part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitError {
    /// Resource that overflowed ("LUT", "FF", "BRAM", or "DSP").
    pub resource: &'static str,
    /// Amount requested.
    pub requested: u64,
    /// Amount available on the part.
    pub available: u64,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "engine mix needs {} {} but the part has {}",
            self.requested, self.resource, self.available
        )
    }
}

impl std::error::Error for FitError {}

/// Check that `engines` fit on `part` and report the utilization.
///
/// # Errors
///
/// Returns a [`FitError`] naming the first overflowing resource.
pub fn allocate(part: FpgaPart, engines: &[EngineResources]) -> Result<Utilization, FitError> {
    let lut: u64 = engines.iter().map(|e| e.lut).sum();
    let ff: u64 = engines.iter().map(|e| e.ff).sum();
    let bram: u64 = engines.iter().map(|e| e.bram).sum();
    let dsp: u64 = engines.iter().map(|e| e.dsp).sum();
    for (name, requested, available) in [
        ("LUT", lut, part.lut),
        ("FF", ff, part.ff),
        ("BRAM", bram, part.bram),
        ("DSP", dsp, part.dsp),
    ] {
        if requested > available {
            return Err(FitError { resource: name, requested, available });
        }
    }
    Ok(Utilization {
        lut: lut as f64 / part.lut as f64,
        ff: ff as f64 / part.ff as f64,
        bram: bram as f64 / part.bram as f64,
        dsp: dsp as f64 / part.dsp as f64,
    })
}

/// Per-engine utilization row for table printing: `(name, resources,
/// fraction-of-part per resource)`.
pub fn engine_rows(part: FpgaPart, engines: &[EngineResources]) -> Vec<(EngineResources, Utilization)> {
    engines
        .iter()
        .map(|&e| {
            (
                e,
                Utilization {
                    lut: e.lut as f64 / part.lut as f64,
                    ff: e.ff as f64 / part.ff as f64,
                    bram: e.bram as f64 / part.bram as f64,
                    dsp: e.dsp as f64 / part.dsp as f64,
                },
            )
        })
        .collect()
}


/// Time to partially reconfigure a computation region (bitstream load over
/// PCIe; §V-C cites Xilinx partial reconfiguration \[49\]). Order of a
/// hundred milliseconds for a large region — negligible against training
/// jobs but relevant when flipping per-batch.
pub const RECONFIG_SECS: f64 = 0.2;

/// Assign image/audio bitstreams to `fpgas` identical devices to cover both
/// modalities of a multi-modal job mix (§V-C + footnote 2): choose the split
/// minimizing the larger *relative* deficit, breaking ties toward fewer
/// reconfigurations from `current_image` image-configured devices.
///
/// `image_demand`/`audio_demand` are samples/s; `image_rate`/`audio_rate`
/// are per-FPGA throughputs. Returns `(n_image, n_audio, reconfigs)`.
///
/// # Panics
///
/// Panics if `fpgas` is zero or a rate is not positive.
pub fn assign_bitstreams(
    fpgas: usize,
    current_image: usize,
    image_demand: f64,
    audio_demand: f64,
    image_rate: f64,
    audio_rate: f64,
) -> (usize, usize, usize) {
    assert!(fpgas > 0, "need at least one FPGA");
    assert!(current_image <= fpgas, "current assignment exceeds inventory");
    assert!(image_rate > 0.0 && audio_rate > 0.0, "rates must be positive");
    let satisfaction = |n_img: usize| -> f64 {
        let img = if image_demand > 0.0 {
            (n_img as f64 * image_rate / image_demand).min(1.0)
        } else {
            1.0
        };
        let aud = if audio_demand > 0.0 {
            ((fpgas - n_img) as f64 * audio_rate / audio_demand).min(1.0)
        } else {
            1.0
        };
        img.min(aud)
    };
    let mut best = (0usize, f64::NEG_INFINITY, usize::MAX);
    for n_img in 0..=fpgas {
        let sat = satisfaction(n_img);
        let reconfigs = n_img.abs_diff(current_image);
        if sat > best.1 + 1e-12 || ((sat - best.1).abs() <= 1e-12 && reconfigs < best.2) {
            best = (n_img, sat, reconfigs);
        }
    }
    (best.0, fpgas - best.0, best.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_engine_mix_fits_and_matches_table2_totals() {
        let u = allocate(XCVU9P, &image_engines()).expect("image mix fits XCVU9P");
        // Table II totals: 78.7% LUTs, 38.1% FF, 30.5% DSP. (The paper's
        // printed BRAM total of 51.5% is inconsistent with its own rows,
        // which sum to 1257 blocks = 58.2%; we assert our row sum.)
        assert!((u.lut - 0.787).abs() < 0.005, "lut={}", u.lut);
        assert!((u.ff - 0.381).abs() < 0.005, "ff={}", u.ff);
        assert!((u.dsp - 0.305).abs() < 0.005, "dsp={}", u.dsp);
        assert!((u.bram - 1257.0 / 2160.0).abs() < 0.005, "bram={}", u.bram);
    }

    #[test]
    fn audio_engine_mix_fits_and_matches_table3_totals() {
        let u = allocate(XCVU9P, &audio_engines()).expect("audio mix fits XCVU9P");
        // Table III totals: 80.2% LUTs, 46.3% FF, 12.2% DSP.
        assert!((u.lut - 0.802).abs() < 0.005, "lut={}", u.lut);
        assert!((u.ff - 0.463).abs() < 0.01, "ff={}", u.ff);
        assert!((u.dsp - 0.122).abs() < 0.005, "dsp={}", u.dsp);
        // BRAM rows sum to 1666 blocks = 77.1% — here the paper's total
        // matches its rows.
        assert!((u.bram - 0.771).abs() < 0.005, "bram={}", u.bram);
    }

    #[test]
    fn jpeg_decoder_dominates_image_luts() {
        // §VI-B: "the JPEG decoder takes most of the resources".
        let rows = engine_rows(XCVU9P, &image_engines());
        let jpeg = rows.iter().find(|(e, _)| e.name == "Jpeg decoder").unwrap();
        assert!((jpeg.1.lut - 0.596).abs() < 0.005);
        for (e, u) in &rows {
            if e.name != "Jpeg decoder" {
                assert!(u.lut < jpeg.1.lut);
            }
        }
    }

    #[test]
    fn overflow_is_reported_with_resource_name() {
        let tiny = FpgaPart { lut: 1000, ff: 1_000_000, bram: 100, dsp: 100 };
        let err = allocate(tiny, &image_engines()).unwrap_err();
        assert_eq!(err.resource, "LUT");
        assert_eq!(err.available, 1000);
        assert!(err.to_string().contains("LUT"));
    }

    #[test]
    fn both_mixes_cannot_coexist_on_one_part() {
        // Image + audio engines together overflow the die — the reason the
        // paper uses partial reconfiguration to swap them (§V-C).
        let mut both = image_engines();
        both.extend(audio_engines());
        assert!(allocate(XCVU9P, &both).is_err());
    }


    #[test]
    fn bitstream_assignment_balances_modalities() {
        // 4 FPGAs, image 20k/s each, audio 5.2k/s each; equal demands favor
        // more audio devices (audio throughput per device is lower).
        let (img, aud, _) = assign_bitstreams(4, 4, 20_000.0, 10_400.0, 20_000.0, 5_200.0);
        assert_eq!(img + aud, 4);
        assert!(aud >= 2, "audio needs at least 2 devices: got {aud}");
        // Pure-image demand keeps everything on the image bitstream.
        let (img, aud, re) = assign_bitstreams(4, 4, 50_000.0, 0.0, 20_000.0, 5_200.0);
        assert_eq!((img, aud, re), (4, 0, 0));
    }

    #[test]
    fn bitstream_assignment_minimizes_reconfigurations_on_ties() {
        // Demand satisfiable several ways: keep the current layout.
        let (img, _, re) = assign_bitstreams(4, 1, 1_000.0, 1_000.0, 20_000.0, 5_200.0);
        assert_eq!(re, 0, "no reconfiguration needed");
        assert_eq!(img, 1);
    }

    #[test]
    fn bitstream_assignment_reports_swap_count() {
        let (img, aud, re) = assign_bitstreams(2, 2, 0.0, 10_400.0, 20_000.0, 5_200.0);
        assert_eq!((img, aud), (0, 2));
        assert_eq!(re, 2);
        // Total swap latency is modest even per the conservative constant.
        assert!(re as f64 * RECONFIG_SECS < 1.0);
    }

    #[test]
    fn max_fraction_picks_binding_resource() {
        let u = allocate(XCVU9P, &image_engines()).unwrap();
        assert_eq!(u.max_fraction(), u.lut);
    }
}

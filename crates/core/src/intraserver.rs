//! Intra-server parallel DES: one server's pipeline partitioned into lanes.
//!
//! The cluster scale-out layer (`crate::scaleout`) runs one logical process
//! per *server*; a single-server simulation was therefore still sequential.
//! This module partitions one server's [`PipelineModel`] along the seams the
//! TrainBox topology already draws: a **lane** is half a train box — four
//! accelerators plus the SSD and preparation FPGA nominally assigned to them
//! (`assign_devices_nominal` maps accelerator `a` to SSD/prep `a / 4`).
//! Each lane's refill traffic rides its own leaf-switch links, so the flow
//! domains are disjoint (checked, not assumed — see
//! [`LanePartition::of`]) and a lane's private [`FlowSim`] computes the same
//! max-min rates the global allocator would, bit for bit.
//!
//! The only cross-lane coupling is the ring synchronization: every
//! accelerator in the server joins one all-reduce per generation. The lane
//! coordinator replays exactly the solo path's arithmetic — the sync starts
//! at `max(lane arrivals)` and completes `t_sync` later — so the **lookahead
//! is the full-ring all-reduce time**: once a lane parks at the barrier, the
//! earliest instant it can observe any other lane is the global release.
//! Windows are therefore one generation long but far cheaper than the
//! cluster barrier; the runner uses [`par::run_windows_with`]'s
//! cheap-window fast path so thread spawn/join never dominates short
//! windows.
//!
//! Determinism discipline is inherited wholesale from `sim::par`: offers are
//! folded and grants applied in lane-index order at every barrier, so
//! `parallel_workers: 0` is byte-identical to any worker count by
//! construction (pinned by `crates/core/tests/parallel_equivalence.rs`).
//!
//! [`FlowSim`]: trainbox_pcie::flow::FlowSim

use std::marker::PhantomData;
use std::time::Instant;

use crate::arch::{Server, ServerKind};
use crate::faults::{FaultKind, FaultPlan};
use crate::pipeline::{DesFailure, Ev, PipelineModel, SimConfig, SimResult};
use crate::scaleout::{merge_fault_stats, ClusterLp, LpOffer, CLUSTER_TRACK_STRIDE};
use trainbox_nn::Workload;
use trainbox_sim::par::{self, Coordinator, WindowPolicy};
use trainbox_sim::{Engine, ForkTracer, SimError, SimTime, Tracer};

/// Accelerators per lane: half a train box (4 accelerators share one SSD
/// and one prep FPGA under `assign_devices_nominal`).
pub(crate) const ACCELS_PER_LANE: usize = 4;

/// A validated lane partition of one server: which lane owns each directed
/// PCIe link, derived from the nominal refill routes.
///
/// Existence of a `LanePartition` *is* the eligibility proof: it is a pure
/// function of `(server, plan)` — never of the worker count, the tracer, or
/// the simulation config — so every entry point takes the same partitioning
/// decision and results stay one canonical answer per request.
pub(crate) struct LanePartition {
    /// Number of lanes (`n_accels / ACCELS_PER_LANE`, at least 2).
    pub(crate) lanes: usize,
    /// `link_owner[i]` = the lane whose nominal routes traverse directed
    /// link `i`, `None` for links no lane touches (e.g. root-complex
    /// uplinks the clustered design never crosses).
    link_owner: Vec<Option<usize>>,
}

impl LanePartition {
    /// Partition `server` into lanes, or `None` when the configuration
    /// cannot be partitioned soundly:
    ///
    /// * Only [`ServerKind::TrainBoxNoPool`] qualifies — the clustered
    ///   design whose refill path is strictly SSD → prep → accelerator
    ///   within one box half. The pooled TrainBox shares a global Ethernet
    ///   star; staged designs funnel everything through host memory.
    /// * Device counts must match the nominal assignment (one SSD and one
    ///   prep per 4 accelerators) and yield at least 2 lanes.
    /// * The lanes' nominal routes must be pairwise link-disjoint —
    ///   verified against the actual topology, so an exotic geometry simply
    ///   falls back to the single-engine path.
    /// * Every fault in `plan` must be lane-local. Prep crashes and
    ///   transients re-dispatch work across the whole prep complement, and
    ///   accelerator dropouts re-form the global ring: any of those makes
    ///   the run ineligible (it falls back, it never loses fidelity).
    pub(crate) fn of(server: &Server, plan: &FaultPlan) -> Option<LanePartition> {
        if server.kind() != ServerKind::TrainBoxNoPool {
            return None;
        }
        let topo = server.topology();
        let n = server.n_accels();
        if !n.is_multiple_of(ACCELS_PER_LANE) {
            return None;
        }
        let lanes = n / ACCELS_PER_LANE;
        if lanes < 2 || topo.ssds.len() != lanes || topo.preps.len() != lanes {
            return None;
        }
        let mut link_owner: Vec<Option<usize>> = vec![None; topo.topo.link_count()];
        for l in 0..lanes {
            let mut lane_links = topo.topo.route(topo.ssds[l], topo.preps[l]);
            for a in l * ACCELS_PER_LANE..(l + 1) * ACCELS_PER_LANE {
                lane_links.extend(topo.topo.route(topo.preps[l], topo.accs[a]));
            }
            for link in lane_links {
                match link_owner[link.index()] {
                    Some(owner) if owner != l => return None, // shared link
                    _ => link_owner[link.index()] = Some(l),
                }
            }
        }
        let part = LanePartition { lanes, link_owner };
        if plan.events.iter().any(|ev| part.fault_owner(ev.kind).is_none()) {
            return None;
        }
        Some(part)
    }

    /// The lane that must inject `kind`, or `None` when the fault's effect
    /// crosses lanes (which disqualifies the whole partition).
    fn fault_owner(&self, kind: FaultKind) -> Option<usize> {
        match kind {
            FaultKind::SsdStall { ssd, .. } => (ssd < self.lanes).then_some(ssd),
            FaultKind::PrepSlowdown { dev, .. } => (dev < self.lanes).then_some(dev),
            // A degraded link only reshapes flows that cross it; a link no
            // lane uses still gets injected (once, by lane 0) so the fault
            // statistics match the solo path.
            FaultKind::LinkDegrade { link, .. } => {
                Some(self.link_owner.get(link).copied().flatten().unwrap_or(0))
            }
            FaultKind::PrepCrash { .. }
            | FaultKind::PrepTransient { .. }
            | FaultKind::AccelDropout { .. } => None,
        }
    }

    /// The sub-plan lane `lane` replays: exactly the events it owns, same
    /// retry policy. Filtering preserves order, and every event lands in
    /// exactly one lane, so the merged fault statistics equal the solo
    /// path's.
    fn plan_for_lane(&self, plan: &FaultPlan, lane: usize) -> FaultPlan {
        FaultPlan {
            events: plan
                .events
                .iter()
                .copied()
                .filter(|ev| self.fault_owner(ev.kind) == Some(lane))
                .collect(),
            retry: plan.retry,
        }
    }
}

/// One closed generation as the coordinator saw it: the latest lane arrival,
/// the granted release, and the lookahead in force that window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LaneWindow {
    pub(crate) max_arrival: SimTime,
    pub(crate) release: SimTime,
    pub(crate) lookahead: SimTime,
}

/// The ring barrier between lanes: every generation closes at
/// `max(lane arrivals) + lookahead`, where the lookahead is the full-ring
/// all-reduce time — identical to the interval the solo path spans between
/// starting the sync and [`Ev::SyncDone`].
pub(crate) struct LaneCoord<T: Tracer> {
    t_sync: SimTime,
    releases: Vec<SimTime>,
    windows: Vec<LaneWindow>,
    _lp: PhantomData<fn(T)>,
}

impl<T: Tracer> LaneCoord<T> {
    pub(crate) fn new(t_sync: SimTime) -> Self {
        LaneCoord { t_sync, releases: Vec::new(), windows: Vec::new(), _lp: PhantomData }
    }

    /// The lookahead for the window being closed, recomputed at every
    /// barrier. It is the *minimum cross-lane event latency*: after a lane
    /// parks, the earliest instant another lane can affect it is the global
    /// sync completion, one full-ring all-reduce after the last arrival.
    /// Today that is a constant — lane mode excludes the dropout faults
    /// that re-form the ring — but a survivor-aware ring would change the
    /// value here, per window, without touching the protocol.
    fn window_lookahead(&self) -> SimTime {
        self.t_sync
    }

    /// Per-window barrier records (for tests and diagnostics).
    pub(crate) fn windows(&self) -> &[LaneWindow] {
        &self.windows
    }
}

impl<T: Tracer + Send> Coordinator for LaneCoord<T> {
    type Lp = ClusterLp<T>;

    fn exchange(
        &mut self,
        offers: Vec<LpOffer>,
    ) -> Result<Option<Vec<Option<SimTime>>>, SimError> {
        let latest = offers
            .iter()
            .filter_map(|o| match o {
                LpOffer::Barrier(now) => Some(*now),
                LpOffer::Done => None,
            })
            .max();
        let Some(latest) = latest else {
            return Ok(None); // every lane closed its final generation
        };
        // Identical target batches keep lanes in generation lockstep; a
        // mixed Barrier/Done window would be a protocol bug.
        let lookahead = self.window_lookahead();
        let release = latest.saturating_add(lookahead);
        self.windows.push(LaneWindow { max_arrival: latest, release, lookahead });
        self.releases.push(release);
        Ok(Some(
            offers
                .iter()
                .map(|o| match o {
                    LpOffer::Barrier(_) => Some(release),
                    LpOffer::Done => None,
                })
                .collect(),
        ))
    }
}

/// Simulate one server with its pipeline partitioned into lanes, under the
/// conservative window runner. Called from
/// [`crate::pipeline::try_simulate_traced_deadline`] for every eligible
/// `(server, plan)`; `cfg.parallel_workers` only selects how many threads
/// advance the lanes (`0`/`1` = the byte-identical sequential reference).
///
/// # Errors
///
/// A [`DesFailure`] exactly like the single-engine path's.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_lanes_traced_deadline<T: ForkTracer + Send>(
    server: &Server,
    workload: &Workload,
    cfg: &SimConfig,
    plan: &FaultPlan,
    part: &LanePartition,
    mut tracer: T,
    deadline: Option<Instant>,
) -> Result<(SimResult, T, par::RunStats), DesFailure> {
    let n = server.n_accels();
    // Same expression the model evaluates for its own `t_sync`, so the
    // coordinator's releases are bit-identical to the solo path's SyncDone
    // times (for any declared sync pattern, not just the ring).
    let eff = crate::profile::effective_workload(workload);
    let t_sync = server.sync_model(&eff).sync_time(eff.model_bytes(), n);

    let mut lps: Vec<ClusterLp<T>> = (0..part.lanes)
        .map(|l| {
            let lane_plan = part.plan_for_lane(plan, l);
            let mut model =
                PipelineModel::new(server, workload, cfg, &lane_plan, tracer.fork());
            model.set_lane(l * ACCELS_PER_LANE..(l + 1) * ACCELS_PER_LANE);
            let mut engine = Engine::new(model);
            engine.schedule_at(SimTime::ZERO, Ev::Start);
            ClusterLp { engine, max_events: cfg.max_events, deadline }
        })
        .collect();
    let mut coord = LaneCoord::<T>::new(t_sync);
    let stats = match par::run_windows_with(
        &mut coord,
        &mut lps,
        cfg.parallel_workers,
        WindowPolicy::fine_grained(),
    ) {
        Ok(stats) => stats,
        Err(error) => {
            let events = lps.iter().map(|lp| lp.engine.events_processed()).sum();
            let partial = merge_fault_stats(
                lps.iter().map(|lp| lp.engine.model().fault_stats().clone()).collect(),
            );
            return Err(DesFailure { error, events, partial_faults: partial });
        }
    };

    debug_assert!(
        coord
            .windows()
            .iter()
            .all(|w| w.release >= w.max_arrival.saturating_add(w.lookahead)),
        "every release must honor the window's lookahead"
    );
    let releases = coord.releases;
    debug_assert_eq!(releases.len() as u64, cfg.batches, "one release per generation");
    let warm = cfg.warmup_batches as usize;
    let first = releases[warm - 1];
    let last = *releases.last().expect("generations completed");
    let window = (last - first).as_secs_f64();
    let batches_measured = (cfg.batches - cfg.warmup_batches) as f64;

    let models: Vec<PipelineModel<T>> =
        lps.into_iter().map(|lp| lp.engine.into_model()).collect();
    // Each lane recorded only its own accelerators; per-generation sums
    // reconstruct the full server's counts.
    let batch_samples: Vec<u64> = (0..cfg.batches as usize)
        .map(|g| models.iter().map(|m| m.batch_samples()[g]).sum())
        .collect();
    let samples: u64 = batch_samples[warm..].iter().sum();
    let effective = samples as f64 / window;
    let useful: u64 = batch_samples.iter().sum();
    let recomputes: u64 = models.iter().map(PipelineModel::recompute_count).sum();
    let batch = models[0].batch_size();

    // Lanes' flows never share a link, so elementwise addition reproduces
    // the solo path's per-link byte totals exactly.
    let n_links = models[0].link_bytes().len();
    let mut link_bytes = vec![0.0f64; n_links];
    for m in &models {
        for (slot, b) in link_bytes.iter_mut().zip(m.link_bytes()) {
            *slot += b;
        }
    }
    let rc_bytes = server
        .topology()
        .rc_links()
        .iter()
        .map(|l| link_bytes[l.index()])
        .sum();

    let mut faults =
        merge_fault_stats(models.iter().map(|m| m.fault_stats().clone()).collect());
    // Lane mode excludes permanent losses, but keep the solo path's NaN
    // resolution so the accounting can never diverge.
    let end = last.as_secs_f64();
    for d in &mut faults.downtime {
        if d.secs.is_nan() {
            d.secs = (end - d.at_secs).max(0.0);
        }
    }
    faults.nominal_samples_per_sec = batches_measured * n as f64 * batch as f64 / window;
    faults.goodput_samples_per_sec = if faults.wasted_samples == 0 {
        effective
    } else {
        effective * useful as f64 / (useful + faults.wasted_samples) as f64
    };

    let result = SimResult {
        samples_per_sec: effective,
        batch_done_at: releases,
        events: stats.total_events(),
        recomputes,
        link_bytes,
        rc_bytes,
        faults,
        tenancy: None,
    };
    // Per-lane streams merge in lane-index order — deterministic for any
    // worker count, same discipline as the cluster runner.
    let parts: Vec<T> = models.into_iter().map(PipelineModel::into_tracer).collect();
    tracer.absorb(parts, CLUSTER_TRACK_STRIDE);
    Ok((result, tracer, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ServerConfig;
    use crate::faults::FaultEvent;

    fn trainbox_nopool(n: usize) -> Server {
        ServerConfig::new(ServerKind::TrainBoxNoPool, n).build()
    }

    #[test]
    fn eligibility_is_a_pure_function_of_server_and_plan() {
        let empty = FaultPlan::empty();
        let part = LanePartition::of(&trainbox_nopool(16), &empty)
            .expect("16-accel TrainBoxNoPool partitions");
        assert_eq!(part.lanes, 4);

        // One lane is not a partition; the solo engine handles it.
        assert!(LanePartition::of(&trainbox_nopool(4), &empty).is_none());
        // The pooled TrainBox shares a global Ethernet star.
        let pooled = ServerConfig::new(ServerKind::TrainBox, 16).build();
        assert!(LanePartition::of(&pooled, &empty).is_none());
        // Staged designs funnel refill traffic through host memory.
        let base = ServerConfig::new(ServerKind::Baseline, 16).build();
        assert!(LanePartition::of(&base, &empty).is_none());
    }

    #[test]
    fn cross_lane_faults_disqualify_lane_local_ones_do_not() {
        let server = trainbox_nopool(16);
        let local = FaultPlan {
            events: vec![
                FaultEvent { at_secs: 1e-4, kind: FaultKind::SsdStall { ssd: 1, secs: 1e-4 } },
                FaultEvent {
                    at_secs: 2e-4,
                    kind: FaultKind::PrepSlowdown { dev: 2, factor: 0.5, secs: 1e-4 },
                },
                FaultEvent {
                    at_secs: 3e-4,
                    kind: FaultKind::LinkDegrade { link: 0, fraction: 0.5, secs: 1e-4 },
                },
            ],
            retry: Default::default(),
        };
        let part = LanePartition::of(&server, &local).expect("lane-local plan qualifies");
        assert_eq!(part.fault_owner(local.events[0].kind), Some(1));
        assert_eq!(part.fault_owner(local.events[1].kind), Some(2));

        for kind in [
            FaultKind::PrepCrash { dev: 0 },
            FaultKind::AccelDropout { acc: 3 },
            FaultKind::PrepTransient { dev: 1, secs: 1e-4 },
        ] {
            let plan = FaultPlan {
                events: vec![FaultEvent { at_secs: 1e-4, kind }],
                retry: Default::default(),
            };
            assert!(
                LanePartition::of(&server, &plan).is_none(),
                "{} must fall back to the single engine",
                kind.label()
            );
        }
    }

    #[test]
    fn every_fault_lands_in_exactly_one_lane() {
        let server = trainbox_nopool(32);
        let plan = FaultPlan {
            events: (0..8)
                .map(|i| FaultEvent {
                    at_secs: 1e-4 * i as f64,
                    kind: FaultKind::SsdStall { ssd: i % 8, secs: 1e-5 },
                })
                .collect(),
            retry: Default::default(),
        };
        let part = LanePartition::of(&server, &plan).expect("eligible");
        let total: usize =
            (0..part.lanes).map(|l| part.plan_for_lane(&plan, l).events.len()).sum();
        assert_eq!(total, plan.events.len());
    }

    #[test]
    fn lookahead_lower_bounds_actual_cross_lane_latency() {
        // Protocol property, checked on the coordinator itself: whatever a
        // lane offered, the granted release is at least its own arrival plus
        // the window's lookahead — no lane can observe another before the
        // lookahead elapses, which is what makes the conservative window
        // sound.
        let t_sync = SimTime::from_secs_f64(1.5e-3);
        let mut coord = LaneCoord::<trainbox_sim::NoopTracer>::new(t_sync);
        let arrivals = [3.0e-3, 2.0e-3, 3.5e-3, 1.0e-3];
        let offers: Vec<LpOffer> = arrivals
            .iter()
            .map(|&s| LpOffer::Barrier(SimTime::from_secs_f64(s)))
            .collect();
        let grants = coord.exchange(offers).expect("exchange ok").expect("grants");
        let w = coord.windows()[0];
        assert!(w.lookahead > SimTime::ZERO, "lookahead must be positive");
        assert_eq!(w.lookahead, t_sync);
        for (&s, grant) in arrivals.iter().zip(grants) {
            let release = grant.expect("every parked lane gets a release");
            let arrival = SimTime::from_secs_f64(s);
            assert!(
                release >= arrival.saturating_add(w.lookahead),
                "release {release:?} violates the lookahead bound for arrival {arrival:?}"
            );
        }
        // All-done window ends the protocol.
        let done = vec![LpOffer::Done, LpOffer::Done, LpOffer::Done, LpOffer::Done];
        assert!(coord.exchange(done).expect("exchange ok").is_none());
    }

    #[test]
    fn lane_releases_are_spaced_by_at_least_the_lookahead() {
        // End-to-end: in a real partitioned run, consecutive generation
        // closes are separated by at least one full-ring sync — the next
        // generation's last arrival cannot precede the previous release.
        let server = trainbox_nopool(8);
        let w = Workload::resnet50();
        let cfg = SimConfig {
            chunk_samples: 128,
            batches: 4,
            warmup_batches: 1,
            max_events: 5_000_000,
            ..SimConfig::default()
        };
        let t_sync = server.ring_model().allreduce_time(w.model_bytes(), 8);
        let (result, _) = crate::pipeline::try_simulate_traced(
            &server,
            &w,
            &cfg,
            &FaultPlan::empty(),
            trainbox_sim::NoopTracer,
        )
        .expect("run completes");
        assert_eq!(result.batch_done_at.len(), 4);
        for pair in result.batch_done_at.windows(2) {
            assert!(
                pair[1] >= pair[0].saturating_add(t_sync),
                "generations must be separated by the ring sync"
            );
        }
    }
}

//! Scale-up vs scale-out (§III-A).
//!
//! The paper justifies a single giant node over a cluster with three
//! arguments: (1) shared host resources lower TCO; (2) intra-node
//! accelerator fabrics are an order of magnitude faster than NICs, so
//! scale-out synchronization drags — *"a scale-out system with 96 DGX-2
//! shows only 39.7× improvement over one DGX-2 in MLPerf results"*; (3) a
//! single OS keeps the software simple. This module models (1) and (2).

use serde::{Deserialize, Serialize};
use trainbox_collective::RingModel;
use trainbox_nn::Workload;

/// A scale-out cluster: `nodes` hosts of `accels_per_node` accelerators,
/// NVLink-class fabric inside a node, NIC-grade links between nodes.
///
/// The model captures the two effects that make scale-out drag (§III-A):
/// the inter-node ring runs at NIC speed, and — because the *global* batch
/// is capped to preserve accuracy — adding nodes shrinks each accelerator's
/// local batch, eroding its efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleOutCluster {
    /// Number of hosts.
    pub nodes: usize,
    /// Accelerators per host (16 for a DGX-2 class node).
    pub accels_per_node: usize,
    /// Inter-node link bandwidth, bytes/s (§III-A: "100 Gbps NIC").
    pub nic_bytes_per_sec: f64,
    /// Inter-node per-hop latency, seconds (kernel network stack + switch;
    /// orders of magnitude above NVLink's).
    pub nic_hop_secs: f64,
    /// Intra-node fabric model.
    pub fabric: RingModel,
    /// Largest global batch that preserves accuracy (§II-B third fold).
    pub global_batch_cap: u64,
}

impl ScaleOutCluster {
    /// A DGX-2-style cluster: 16 accelerators per node, 100 Gb NICs, ~10 µs
    /// effective per-hop network latency.
    pub fn dgx2_style(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        ScaleOutCluster {
            nodes,
            accels_per_node: 16,
            nic_bytes_per_sec: 12.5e9,
            nic_hop_secs: 10e-6,
            fabric: RingModel::nvlink_default(),
            global_batch_cap: 32_768,
        }
    }

    /// Accelerator efficiency at local batch `b` relative to large batches:
    /// `b/(b+16)` — the gentle GPU-utilization curve of the scale-out era
    /// (half rate at batch 16), distinct from the aggressive TPU curve in
    /// `calib::batch_efficiency`.
    fn local_efficiency(b: f64) -> f64 {
        b / (b + 16.0)
    }

    /// Total accelerators.
    pub fn accels(&self) -> usize {
        self.nodes * self.accels_per_node
    }

    /// Hierarchical synchronization time: intra-node ring, then an
    /// inter-node ring over the NICs, then intra-node broadcast (folded into
    /// the intra term). The inter-node ring's bandwidth term runs at NIC
    /// speed — the §III-A bottleneck.
    pub fn sync_secs(&self, model_bytes: u64) -> f64 {
        let intra = self.fabric.allreduce_secs(model_bytes, self.accels_per_node);
        if self.nodes == 1 {
            return intra;
        }
        let inter = RingModel {
            link_bytes_per_sec: self.nic_bytes_per_sec,
            hop_latency_secs: self.nic_hop_secs,
            chunk_bytes: 64 * 1024,
        }
        .allreduce_secs(model_bytes, self.nodes);
        intra + inter
    }

    /// Cluster training throughput for `workload`, assuming per-node data
    /// preparation is fully provisioned (the comparison isolates
    /// synchronization + batch effects, as MLPerf entries do). The global
    /// batch is capped, so each accelerator runs `cap / accels` samples per
    /// step.
    pub fn throughput(&self, workload: &Workload) -> f64 {
        let local = (self.global_batch_cap as f64 / self.accels() as f64).max(1.0);
        let rate = workload.accel_samples_per_sec * Self::local_efficiency(local);
        let t_comp = local / rate;
        let t_sync = self.sync_secs(workload.model_bytes());
        self.accels() as f64 * local / (t_comp + t_sync)
    }

    /// Throughput relative to a single node of the same design.
    pub fn speedup_over_one_node(&self, workload: &Workload) -> f64 {
        let one = ScaleOutCluster { nodes: 1, ..*self };
        self.throughput(workload) / one.throughput(workload)
    }
}

/// Host-resource TCO model (§III-A benefit 1): every node of a scale-out
/// cluster carries its own CPUs, DRAM, NICs, and chassis; a scale-up system
/// amortizes one host across all accelerators (plus its prep FPGAs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoModel {
    /// Cost of one accelerator (the dominant, design-independent term).
    pub accel_cost: f64,
    /// Cost of one host (CPUs + DRAM + chassis + NICs).
    pub host_cost: f64,
    /// Cost of one prep FPGA (TrainBox adds 1 per 4 accelerators).
    pub fpga_cost: f64,
}

impl TcoModel {
    /// Working dollar figures: $10k accelerator, $30k host, $5k FPGA.
    pub fn default_costs() -> Self {
        TcoModel { accel_cost: 10_000.0, host_cost: 30_000.0, fpga_cost: 5_000.0 }
    }

    /// Cost of a scale-out cluster serving `accels` accelerators with
    /// `accels_per_node` per host.
    pub fn scale_out_cost(&self, accels: usize, accels_per_node: usize) -> f64 {
        assert!(accels_per_node > 0, "need accelerators per node");
        let nodes = accels.div_ceil(accels_per_node) as f64;
        accels as f64 * self.accel_cost + nodes * self.host_cost
    }

    /// Cost of a scale-up TrainBox rack serving `accels` accelerators: one
    /// host plus a prep FPGA per four accelerators.
    pub fn scale_up_cost(&self, accels: usize) -> f64 {
        accels as f64 * self.accel_cost
            + self.host_cost
            + (accels as f64 / 4.0).ceil() * self.fpga_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlperf_scale_out_inefficiency_reproduced() {
        // §III-A: 96 DGX-2 give only ~39.7x one DGX-2 (41% efficiency) in
        // MLPerf. Across the Table-I workloads our model's 96-node speedups
        // span the same far-below-linear regime, with the best workload in
        // the tens and parameter-heavy VGG-19 in the single digits.
        let mut best = 0.0f64;
        for w in Workload::all() {
            let s = ScaleOutCluster::dgx2_style(96).speedup_over_one_node(&w);
            assert!(s < 60.0, "{}: {s} should be far below 96", w.name);
            best = best.max(s);
        }
        assert!((15.0..60.0).contains(&best), "best speedup {best}");
        let vgg = ScaleOutCluster::dgx2_style(96).speedup_over_one_node(&Workload::vgg19());
        assert!(vgg < 15.0, "parameter-heavy models scale worst: {vgg}");
        // Scale-up with the same 1536 accelerators on one fabric syncs far
        // faster than the NIC ring.
        let w = Workload::vgg19();
        let fabric = RingModel::nvlink_default();
        let scale_up_sync = fabric.allreduce_secs(w.model_bytes(), 1536);
        assert!(scale_up_sync < ScaleOutCluster::dgx2_style(96).sync_secs(w.model_bytes()) / 5.0);
    }

    #[test]
    fn small_models_scale_out_fine_at_modest_node_counts() {
        // RNN-S has 1 MB of gradients: at 4 nodes the NIC ring is cheap and
        // local batches are still healthy — near-linear scaling. The penalty
        // is model-size and scale dependent.
        let w = Workload::rnn_s();
        let s = ScaleOutCluster::dgx2_style(4).speedup_over_one_node(&w);
        assert!(s > 3.4, "4-node small-model scaling should be near-linear: {s}");
    }

    #[test]
    fn single_node_is_the_baseline() {
        let w = Workload::resnet50();
        let one = ScaleOutCluster::dgx2_style(1);
        assert!((one.speedup_over_one_node(&w) - 1.0).abs() < 1e-12);
        assert_eq!(one.accels(), 16);
    }

    #[test]
    fn sync_grows_with_nodes_but_sublinearly() {
        let m = 97_500_000u64;
        let t2 = ScaleOutCluster::dgx2_style(2).sync_secs(m);
        let t32 = ScaleOutCluster::dgx2_style(32).sync_secs(m);
        assert!(t32 > t2);
        assert!(t32 < t2 * 4.0, "ring saturates inter-node too: {t2} vs {t32}");
    }

    #[test]
    fn tco_favors_scale_up() {
        // §III-A: "one node with 256 accelerators vs 256 nodes with one
        // accelerator per node" — the extreme case — and the DGX-2 case.
        let tco = TcoModel::default_costs();
        let up = tco.scale_up_cost(256);
        let out_1 = tco.scale_out_cost(256, 1);
        let out_16 = tco.scale_out_cost(256, 16);
        assert!(up < out_1 / 2.0, "vs 1-acc nodes: {up} vs {out_1}");
        assert!(up < out_16, "vs 16-acc nodes: {up} vs {out_16}");
        // The FPGA adder is small relative to the host savings.
        let plain_accels = 256.0 * tco.accel_cost;
        assert!(up - plain_accels < out_16 - plain_accels);
    }
}

//! Scale-up vs scale-out (§III-A).
//!
//! The paper justifies a single giant node over a cluster with three
//! arguments: (1) shared host resources lower TCO; (2) intra-node
//! accelerator fabrics are an order of magnitude faster than NICs, so
//! scale-out synchronization drags — *"a scale-out system with 96 DGX-2
//! shows only 39.7× improvement over one DGX-2 in MLPerf results"*; (3) a
//! single OS keeps the software simple. This module models (1) and (2).

use crate::arch::Server;
use crate::faults::{FaultPlan, FaultStats};
use crate::pipeline::{DesFailure, Ev, PipelineModel, SimConfig};
use serde::{Deserialize, Serialize};
use std::marker::PhantomData;
use std::time::Instant;
use trainbox_collective::{HierarchicalModel, RingModel};
use trainbox_nn::Workload;
use trainbox_sim::par::{self, Coordinator, WindowedLp};
use trainbox_sim::{Engine, SimError, SimTime, Tracer};

/// A scale-out cluster: `nodes` hosts of `accels_per_node` accelerators,
/// NVLink-class fabric inside a node, NIC-grade links between nodes.
///
/// The model captures the two effects that make scale-out drag (§III-A):
/// the inter-node ring runs at NIC speed, and — because the *global* batch
/// is capped to preserve accuracy — adding nodes shrinks each accelerator's
/// local batch, eroding its efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleOutCluster {
    /// Number of hosts.
    pub nodes: usize,
    /// Accelerators per host (16 for a DGX-2 class node).
    pub accels_per_node: usize,
    /// Inter-node link bandwidth, bytes/s (§III-A: "100 Gbps NIC").
    pub nic_bytes_per_sec: f64,
    /// Inter-node per-hop latency, seconds (kernel network stack + switch;
    /// orders of magnitude above NVLink's).
    pub nic_hop_secs: f64,
    /// Intra-node fabric model.
    pub fabric: RingModel,
    /// Largest global batch that preserves accuracy (§II-B third fold).
    pub global_batch_cap: u64,
}

impl ScaleOutCluster {
    /// A DGX-2-style cluster: 16 accelerators per node, 100 Gb NICs, ~10 µs
    /// effective per-hop network latency.
    pub fn dgx2_style(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        ScaleOutCluster {
            nodes,
            accels_per_node: 16,
            nic_bytes_per_sec: 12.5e9,
            nic_hop_secs: 10e-6,
            fabric: RingModel::nvlink_default(),
            global_batch_cap: 32_768,
        }
    }

    /// Accelerator efficiency at local batch `b` relative to large batches:
    /// `b/(b+16)` — the gentle GPU-utilization curve of the scale-out era
    /// (half rate at batch 16), distinct from the aggressive TPU curve in
    /// `calib::batch_efficiency`.
    fn local_efficiency(b: f64) -> f64 {
        b / (b + 16.0)
    }

    /// Total accelerators.
    pub fn accels(&self) -> usize {
        self.nodes * self.accels_per_node
    }

    /// Hierarchical synchronization time: intra-node ring, then an
    /// inter-node ring over the NICs, then intra-node broadcast (folded into
    /// the intra term). The inter-node ring's bandwidth term runs at NIC
    /// speed — the §III-A bottleneck.
    pub fn sync_secs(&self, model_bytes: u64) -> f64 {
        let intra = self.fabric.allreduce_secs(model_bytes, self.accels_per_node);
        if self.nodes == 1 {
            return intra;
        }
        let inter = RingModel {
            link_bytes_per_sec: self.nic_bytes_per_sec,
            hop_latency_secs: self.nic_hop_secs,
            chunk_bytes: 64 * 1024,
        }
        .allreduce_secs(model_bytes, self.nodes);
        intra + inter
    }

    /// Cluster training throughput for `workload`, assuming per-node data
    /// preparation is fully provisioned (the comparison isolates
    /// synchronization + batch effects, as MLPerf entries do). The global
    /// batch is capped, so each accelerator runs `cap / accels` samples per
    /// step.
    pub fn throughput(&self, workload: &Workload) -> f64 {
        let local = (self.global_batch_cap as f64 / self.accels() as f64).max(1.0);
        let rate = workload.accel_samples_per_sec * Self::local_efficiency(local);
        let t_comp = local / rate;
        let t_sync = self.sync_secs(workload.model_bytes());
        self.accels() as f64 * local / (t_comp + t_sync)
    }

    /// Throughput relative to a single node of the same design.
    pub fn speedup_over_one_node(&self, workload: &Workload) -> f64 {
        let one = ScaleOutCluster { nodes: 1, ..*self };
        self.throughput(workload) / one.throughput(workload)
    }
}

/// Host-resource TCO model (§III-A benefit 1): every node of a scale-out
/// cluster carries its own CPUs, DRAM, NICs, and chassis; a scale-up system
/// amortizes one host across all accelerators (plus its prep FPGAs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoModel {
    /// Cost of one accelerator (the dominant, design-independent term).
    pub accel_cost: f64,
    /// Cost of one host (CPUs + DRAM + chassis + NICs).
    pub host_cost: f64,
    /// Cost of one prep FPGA (TrainBox adds 1 per 4 accelerators).
    pub fpga_cost: f64,
}

impl TcoModel {
    /// Working dollar figures: $10k accelerator, $30k host, $5k FPGA.
    pub fn default_costs() -> Self {
        TcoModel { accel_cost: 10_000.0, host_cost: 30_000.0, fpga_cost: 5_000.0 }
    }

    /// Cost of a scale-out cluster serving `accels` accelerators with
    /// `accels_per_node` per host.
    pub fn scale_out_cost(&self, accels: usize, accels_per_node: usize) -> f64 {
        assert!(accels_per_node > 0, "need accelerators per node");
        let nodes = accels.div_ceil(accels_per_node) as f64;
        accels as f64 * self.accel_cost + nodes * self.host_cost
    }

    /// Cost of a scale-up TrainBox rack serving `accels` accelerators: one
    /// host plus a prep FPGA per four accelerators.
    pub fn scale_up_cost(&self, accels: usize) -> f64 {
        accels as f64 * self.accel_cost
            + self.host_cost
            + (accels as f64 / 4.0).ceil() * self.fpga_cost
    }
}

/// Track-lane stride between servers when merging cluster traces: server
/// `i`'s lanes are offset by `i * CLUSTER_TRACK_STRIDE` so same-named lanes
/// from different servers stay distinguishable in the Chrome export.
pub const CLUSTER_TRACK_STRIDE: u32 = 4096;

/// A multi-rack TrainBox cluster for the DES: `servers` identical servers
/// (each simulated at full datapath fidelity) joined by a two-tier Ethernet
/// fabric — a ToR ring within each rack, a spine ring across racks.
///
/// This is the scenario the paper's evaluation could not touch (its simulator
/// is single-server); the conservative parallel engine in
/// [`trainbox_sim::par`] makes it tractable: each server is one logical
/// process, and the only cross-server interaction is the global gradient
/// synchronization, which happens at window boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClusterSpec {
    /// Number of servers (≥ 1).
    pub servers: usize,
    /// Servers attached to one ToR switch (≥ 1).
    pub servers_per_rack: usize,
    /// ToR-tier ring link model (NIC + ToR switch path).
    pub tor: RingModel,
    /// Spine-tier ring link model (rack-to-rack path).
    pub spine: RingModel,
}

impl ClusterSpec {
    /// A rack-scale default: 8 servers per rack, 100 GbE to the ToR (5 µs
    /// effective hop), 400 GbE rack-to-rack (10 µs hop), 64 KiB chunks.
    pub fn rack_default(servers: usize) -> Self {
        ClusterSpec {
            servers,
            servers_per_rack: 8,
            tor: RingModel {
                link_bytes_per_sec: 12.5e9,
                hop_latency_secs: 5e-6,
                chunk_bytes: 64 * 1024,
            },
            spine: RingModel {
                link_bytes_per_sec: 50e9,
                hop_latency_secs: 10e-6,
                chunk_bytes: 64 * 1024,
            },
        }
    }

    /// Validate the spec, naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.servers == 0 {
            return Err("cluster.servers must be at least 1".to_string());
        }
        if self.servers_per_rack == 0 {
            return Err("cluster.servers_per_rack must be at least 1".to_string());
        }
        for (name, m) in [("tor", &self.tor), ("spine", &self.spine)] {
            if !(m.link_bytes_per_sec.is_finite() && m.link_bytes_per_sec > 0.0) {
                return Err(format!("cluster.{name}.link_bytes_per_sec must be positive"));
            }
            if !(m.hop_latency_secs.is_finite() && m.hop_latency_secs >= 0.0) {
                return Err(format!("cluster.{name}.hop_latency_secs must be non-negative"));
            }
            if m.chunk_bytes == 0 {
                return Err(format!("cluster.{name}.chunk_bytes must be at least 1"));
            }
        }
        Ok(())
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.servers.div_ceil(self.servers_per_rack)
    }

    /// The cross-server phase of each global synchronization, seconds: a
    /// hierarchical all-reduce — ToR ring over the fullest rack's servers,
    /// then a spine ring over the racks ([`HierarchicalModel`]). Zero for a
    /// single server. The intra-server phase is *not* included: the DES
    /// simulates it per-server (`t_sync`), and the analytic twin reads it
    /// from the server model.
    pub fn cross_sync_secs(&self, model_bytes: u64) -> f64 {
        if self.servers <= 1 {
            return 0.0;
        }
        let tor_ring = self.servers.min(self.servers_per_rack);
        HierarchicalModel::new()
            .tier(self.tor, tor_ring)
            .tier(self.spine, self.racks())
            .allreduce_secs(model_bytes)
    }

    /// Closed-form cluster throughput: every server steps at its solo pace
    /// (intra-server contention and local sync included, from the analytic
    /// server model), and each step additionally pays the cross-server
    /// synchronization phase.
    pub fn analytic(&self, server: &Server, workload: &Workload) -> ClusterThroughput {
        let solo = server.throughput(workload).samples_per_sec;
        let step_samples = server.batch_for(workload) * server.n_accels() as u64;
        let t_step = step_samples as f64 / solo;
        let cross = self.cross_sync_secs(workload.model_bytes());
        let per_server = step_samples as f64 / (t_step + cross);
        ClusterThroughput {
            samples_per_sec: self.servers as f64 * per_server,
            per_server_samples_per_sec: per_server,
            solo_samples_per_sec: solo,
            cross_sync_secs: cross,
            speedup_over_one_server: self.servers as f64 * per_server / solo,
            servers: self.servers,
            total_accels: self.servers * server.n_accels(),
        }
    }
}

// Lenient: `servers` is required, everything else defaults to
// [`ClusterSpec::rack_default`].
impl Deserialize for ClusterSpec {
    fn from_json(v: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::json::JsonError::type_mismatch("ClusterSpec", "object"))?;
        let mut servers = None;
        let mut cluster = ClusterSpec::rack_default(1);
        for (key, val) in obj {
            if matches!(val, serde::json::Json::Null) {
                continue;
            }
            match key.as_str() {
                "servers" => servers = Some(Deserialize::from_json(val)?),
                "servers_per_rack" => cluster.servers_per_rack = Deserialize::from_json(val)?,
                "tor" => cluster.tor = Deserialize::from_json(val)?,
                "spine" => cluster.spine = Deserialize::from_json(val)?,
                other => {
                    return Err(serde::json::JsonError::new(format!(
                        "unknown field `{other}` in cluster spec"
                    )))
                }
            }
        }
        cluster.servers = servers
            .ok_or_else(|| serde::json::JsonError::missing_field("ClusterSpec", "servers"))?;
        Ok(cluster)
    }
}

/// Closed-form answer for a cluster question ([`ClusterSpec::analytic`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClusterThroughput {
    /// Aggregate cluster throughput, samples/s.
    pub samples_per_sec: f64,
    /// Throughput of one member server inside the cluster (solo pace
    /// stretched by the cross-server sync phase).
    pub per_server_samples_per_sec: f64,
    /// The same server running alone (no cluster), samples/s.
    pub solo_samples_per_sec: f64,
    /// Cross-server phase of each synchronization, seconds.
    pub cross_sync_secs: f64,
    /// `samples_per_sec` relative to the solo server.
    pub speedup_over_one_server: f64,
    /// Servers in the cluster.
    pub servers: usize,
    /// Total accelerators across the cluster.
    pub total_accels: usize,
}

/// Result of a cluster DES run ([`simulate_cluster_traced_deadline`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterResult {
    /// Aggregate steady-state throughput over the measured window,
    /// samples/s (all servers).
    pub samples_per_sec: f64,
    /// Global completion time of every generation (after the cross-server
    /// phase) — the coordinator's barrier release times.
    pub batch_done_at: Vec<SimTime>,
    /// Events processed across all servers.
    pub events: u64,
    /// Max-min rate recomputations across all servers' flow simulators.
    pub recomputes: u64,
    /// Synchronization windows the parallel runner crossed.
    pub windows: u64,
    /// Cross-server phase per synchronization, seconds.
    pub cross_sync_secs: f64,
    /// Servers simulated.
    pub servers: usize,
    /// Events per server (the partition load the runner balanced).
    pub server_events: Vec<u64>,
    /// Max/mean ratio of `server_events` (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Work-span speedup bound at 4 workers for this run's windows — the
    /// scaling a 4-core host could achieve on this partition.
    pub work_span_speedup_4: f64,
    /// Merged fault-layer statistics (the plan replays on server 0).
    pub faults: FaultStats,
}

/// One barrier-parking partition as a logical process: a private engine plus
/// its share of the global event budget and the shared wall-clock deadline.
///
/// Shared between the cluster runner (one LP per server) and the
/// intra-server lane runner (`crate::intraserver`, one LP per lane) — both
/// partitions park their model at `at_barrier` and resume on a coordinator
/// grant.
pub(crate) struct ClusterLp<T: Tracer> {
    pub(crate) engine: Engine<PipelineModel<T>>,
    pub(crate) max_events: u64,
    pub(crate) deadline: Option<Instant>,
}

/// What a partition reports at a window boundary.
pub(crate) enum LpOffer {
    /// Local ring sync finished at `now`; parked at the global barrier.
    Barrier(SimTime),
    /// All generations closed.
    Done,
}

impl<T: Tracer + Send> WindowedLp for ClusterLp<T> {
    type Offer = LpOffer;
    /// The coordinator's global release time (`None` for already-done LPs).
    type Grant = Option<SimTime>;

    fn advance(&mut self) -> Result<LpOffer, SimError> {
        if self.engine.model().is_done() {
            return Ok(LpOffer::Done);
        }
        let budget = self.max_events.saturating_sub(self.engine.events_processed());
        let hit = self.engine.run_while_deadline(budget, self.deadline, |m| {
            m.is_done() || m.at_barrier()
        })?;
        if !hit {
            return Err(SimError::Stalled {
                events: self.engine.events_processed(),
                queued: self.engine.queued(),
            });
        }
        if self.engine.model_mut().take_barrier() {
            Ok(LpOffer::Barrier(self.engine.now()))
        } else {
            Ok(LpOffer::Done)
        }
    }

    fn apply(&mut self, grant: Option<SimTime>) -> Result<(), SimError> {
        if let Some(release) = grant {
            self.engine.schedule_at(release, Ev::ClusterResume);
        }
        Ok(())
    }

    fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }
}

/// The global synchronization barrier: every generation closes at
/// `max(local sync completion) + cross_sync` across all servers.
struct BarrierCoord<T: Tracer> {
    cross_sync: SimTime,
    releases: Vec<SimTime>,
    _lp: PhantomData<fn(T)>,
}

impl<T: Tracer + Send> Coordinator for BarrierCoord<T> {
    type Lp = ClusterLp<T>;

    fn exchange(
        &mut self,
        offers: Vec<LpOffer>,
    ) -> Result<Option<Vec<Option<SimTime>>>, SimError> {
        let latest = offers
            .iter()
            .filter_map(|o| match o {
                LpOffer::Barrier(now) => Some(*now),
                LpOffer::Done => None,
            })
            .max();
        let Some(latest) = latest else {
            return Ok(None); // every server closed its final generation
        };
        // Identical target batches keep the servers in generation lockstep,
        // so a mixed Barrier/Done window would be a protocol bug; done LPs
        // simply receive no grant.
        let release = latest.saturating_add(self.cross_sync);
        self.releases.push(release);
        Ok(Some(
            offers
                .iter()
                .map(|o| match o {
                    LpOffer::Barrier(_) => Some(release),
                    LpOffer::Done => None,
                })
                .collect(),
        ))
    }
}

pub(crate) fn merge_fault_stats(per_server: Vec<FaultStats>) -> FaultStats {
    let mut merged = FaultStats::default();
    for s in per_server {
        merged.injected += s.injected;
        merged.retries += s.retries;
        merged.failed_requests += s.failed_requests;
        merged.wasted_samples += s.wasted_samples;
        merged.accels_lost += s.accels_lost;
        merged.preps_lost += s.preps_lost;
        merged.downtime.extend(s.downtime);
    }
    merged
}

/// Simulate a cluster of `cluster.servers` identical `server`s at full DES
/// fidelity, with the cross-server synchronization handled by the
/// conservative parallel runner ([`par::run_windows`]).
///
/// * Each server is one logical process; `cfg.parallel_workers` selects how
///   many threads advance them (`0`/`1` = the sequential reference; results
///   are byte-identical for any value).
/// * The fault `plan` replays on **server 0 only** — a fault storm strikes
///   specific hardware, not every rack identically — which also makes the
///   load imbalance observable.
/// * `make_tracer(i)` builds server `i`'s private tracer; sharing one tracer
///   across logical processes would interleave records in thread order, so
///   the per-server streams are kept separate and merged deterministically
///   afterwards ([`trainbox_sim::trace::merge_lp_records`] with
///   [`CLUSTER_TRACK_STRIDE`]).
///
/// # Errors
///
/// A [`DesFailure`] exactly like the solo path's: `DeadlineExceeded` when
/// the shared wall-clock deadline expires (no panic, no deadlock — the
/// window barrier is the only synchronization point), `Stalled` when a
/// server exhausts the event budget.
///
/// # Panics
///
/// Under the conditions of [`crate::pipeline::try_simulate_traced_deadline`]
/// (invalid config or fault plan), or if `cluster` fails
/// [`ClusterSpec::validate`].
pub fn simulate_cluster_traced_deadline<T: Tracer + Send>(
    server: &Server,
    workload: &Workload,
    cfg: &SimConfig,
    plan: &FaultPlan,
    cluster: &ClusterSpec,
    mut make_tracer: impl FnMut(usize) -> T,
    deadline: Option<Instant>,
) -> Result<(ClusterResult, Vec<T>), DesFailure> {
    assert!(cfg.batches > cfg.warmup_batches, "need batches after warmup");
    if let Err(e) = cluster.validate() {
        panic!("invalid cluster spec: {e}");
    }
    let cross_secs = cluster.cross_sync_secs(workload.model_bytes());
    let empty_plan = FaultPlan::empty();
    let mut lps: Vec<ClusterLp<T>> = (0..cluster.servers)
        .map(|i| {
            let lp_plan = if i == 0 { plan } else { &empty_plan };
            let mut model =
                PipelineModel::new(server, workload, cfg, lp_plan, make_tracer(i));
            model.set_cluster_hold();
            let mut engine = Engine::new(model);
            engine.schedule_at(SimTime::ZERO, Ev::Start);
            ClusterLp { engine, max_events: cfg.max_events, deadline }
        })
        .collect();
    let mut coord = BarrierCoord::<T> {
        cross_sync: SimTime::from_secs_f64(cross_secs),
        releases: Vec::new(),
        _lp: PhantomData,
    };
    let stats = match par::run_windows(&mut coord, &mut lps, cfg.parallel_workers) {
        Ok(stats) => stats,
        Err(error) => {
            let events = lps.iter().map(|lp| lp.engine.events_processed()).sum();
            let partial = merge_fault_stats(
                lps.iter().map(|lp| lp.engine.model().fault_stats().clone()).collect(),
            );
            return Err(DesFailure { error, events, partial_faults: partial });
        }
    };

    let releases = coord.releases;
    debug_assert_eq!(releases.len() as u64, cfg.batches, "one release per generation");
    let warm = cfg.warmup_batches as usize;
    let first = releases[warm - 1];
    let last = *releases.last().expect("generations completed");
    let window = (last - first).as_secs_f64();
    let batches_measured = (cfg.batches - cfg.warmup_batches) as f64;

    let models: Vec<PipelineModel<T>> =
        lps.into_iter().map(|lp| lp.engine.into_model()).collect();
    let samples: u64 = models
        .iter()
        .flat_map(|m| m.batch_samples()[warm..].iter())
        .sum();
    let effective = samples as f64 / window;
    let useful: u64 = models.iter().flat_map(|m| m.batch_samples().iter()).sum();
    let recomputes: u64 = models.iter().map(PipelineModel::recompute_count).sum();
    let n0: f64 = models.iter().map(|m| m.n_accels() as f64).sum();
    let batch = models[0].batch_size();

    let mut faults =
        merge_fault_stats(models.iter().map(|m| m.fault_stats().clone()).collect());
    let end = last.as_secs_f64();
    for d in &mut faults.downtime {
        if d.secs.is_nan() {
            d.secs = (end - d.at_secs).max(0.0);
        }
    }
    faults.nominal_samples_per_sec = batches_measured * n0 * batch as f64 / window;
    faults.goodput_samples_per_sec = if faults.wasted_samples == 0 {
        effective
    } else {
        effective * useful as f64 / (useful + faults.wasted_samples) as f64
    };

    let result = ClusterResult {
        samples_per_sec: effective,
        batch_done_at: releases,
        events: stats.total_events(),
        recomputes,
        windows: stats.windows,
        cross_sync_secs: cross_secs,
        servers: cluster.servers,
        imbalance: par::imbalance(&stats.lp_events),
        work_span_speedup_4: par::work_span_speedup(&stats.window_events, 4),
        server_events: stats.lp_events,
        faults,
    };
    let tracers = models.into_iter().map(PipelineModel::into_tracer).collect();
    Ok((result, tracers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerKind;

    #[test]
    fn mlperf_scale_out_inefficiency_reproduced() {
        // §III-A: 96 DGX-2 give only ~39.7x one DGX-2 (41% efficiency) in
        // MLPerf. Across the Table-I workloads our model's 96-node speedups
        // span the same far-below-linear regime, with the best workload in
        // the tens and parameter-heavy VGG-19 in the single digits.
        let mut best = 0.0f64;
        for w in Workload::all() {
            let s = ScaleOutCluster::dgx2_style(96).speedup_over_one_node(&w);
            assert!(s < 60.0, "{}: {s} should be far below 96", w.name);
            best = best.max(s);
        }
        assert!((15.0..60.0).contains(&best), "best speedup {best}");
        let vgg = ScaleOutCluster::dgx2_style(96).speedup_over_one_node(&Workload::vgg19());
        assert!(vgg < 15.0, "parameter-heavy models scale worst: {vgg}");
        // Scale-up with the same 1536 accelerators on one fabric syncs far
        // faster than the NIC ring.
        let w = Workload::vgg19();
        let fabric = RingModel::nvlink_default();
        let scale_up_sync = fabric.allreduce_secs(w.model_bytes(), 1536);
        assert!(scale_up_sync < ScaleOutCluster::dgx2_style(96).sync_secs(w.model_bytes()) / 5.0);
    }

    #[test]
    fn small_models_scale_out_fine_at_modest_node_counts() {
        // RNN-S has 1 MB of gradients: at 4 nodes the NIC ring is cheap and
        // local batches are still healthy — near-linear scaling. The penalty
        // is model-size and scale dependent.
        let w = Workload::rnn_s();
        let s = ScaleOutCluster::dgx2_style(4).speedup_over_one_node(&w);
        assert!(s > 3.4, "4-node small-model scaling should be near-linear: {s}");
    }

    #[test]
    fn single_node_is_the_baseline() {
        let w = Workload::resnet50();
        let one = ScaleOutCluster::dgx2_style(1);
        assert!((one.speedup_over_one_node(&w) - 1.0).abs() < 1e-12);
        assert_eq!(one.accels(), 16);
    }

    #[test]
    fn sync_grows_with_nodes_but_sublinearly() {
        let m = 97_500_000u64;
        let t2 = ScaleOutCluster::dgx2_style(2).sync_secs(m);
        let t32 = ScaleOutCluster::dgx2_style(32).sync_secs(m);
        assert!(t32 > t2);
        assert!(t32 < t2 * 4.0, "ring saturates inter-node too: {t2} vs {t32}");
    }

    #[test]
    fn cluster_analytic_one_server_is_solo() {
        let server = crate::arch::ServerConfig::new(ServerKind::TrainBoxNoPool, 16).build();
        let w = Workload::resnet50();
        let t = ClusterSpec::rack_default(1).analytic(&server, &w);
        assert_eq!(t.cross_sync_secs, 0.0);
        assert!((t.samples_per_sec - t.solo_samples_per_sec).abs() < 1e-9);
        assert!((t.speedup_over_one_server - 1.0).abs() < 1e-12);
        assert_eq!(t.total_accels, 16);
    }

    #[test]
    fn cluster_analytic_scales_sublinearly() {
        let server = crate::arch::ServerConfig::new(ServerKind::TrainBoxNoPool, 16).build();
        let w = Workload::inception_v4();
        let spec = ClusterSpec::rack_default(32);
        assert_eq!(spec.racks(), 4);
        let t = spec.analytic(&server, &w);
        assert!(t.speedup_over_one_server > 8.0, "{}", t.speedup_over_one_server);
        assert!(t.speedup_over_one_server < 32.0, "{}", t.speedup_over_one_server);
        // The cross-server phase is what separates it from linear.
        assert!(t.cross_sync_secs > 0.0);
    }

    #[test]
    fn cluster_spec_validation_names_the_field() {
        let mut spec = ClusterSpec::rack_default(0);
        assert!(spec.validate().unwrap_err().contains("servers"));
        spec.servers = 2;
        spec.tor.link_bytes_per_sec = f64::NAN;
        assert!(spec.validate().unwrap_err().contains("tor"));
    }

    fn quick_cfg(workers: usize) -> SimConfig {
        SimConfig {
            chunk_samples: 128,
            batches: 6,
            warmup_batches: 2,
            prefetch_batches: 1,
            max_events: 5_000_000,
            reference_allocator: false,
            parallel_workers: workers,
        }
    }

    #[test]
    fn cluster_des_is_worker_count_invariant() {
        use crate::faults::FaultKind;
        use trainbox_sim::NoopTracer;
        let server = crate::arch::ServerConfig::new(ServerKind::TrainBoxNoPool, 4)
            .batch_size(64)
            .build();
        let w = Workload::rnn_s();
        let spec = ClusterSpec::rack_default(3);
        let plan = FaultPlan::empty()
            .at(1e-4, FaultKind::PrepSlowdown { dev: 0, factor: 0.5, secs: 0.05 })
            .at(2e-4, FaultKind::AccelDropout { acc: 1 });
        let reference = simulate_cluster_traced_deadline(
            &server,
            &w,
            &quick_cfg(0),
            &plan,
            &spec,
            |_| NoopTracer,
            None,
        )
        .expect("sequential reference")
        .0;
        for workers in [1usize, 2, 3, 8] {
            let got = simulate_cluster_traced_deadline(
                &server,
                &w,
                &quick_cfg(workers),
                &plan,
                &spec,
                |_| NoopTracer,
                None,
            )
            .expect("parallel run")
            .0;
            assert_eq!(got, reference, "workers={workers} diverged");
        }
        assert_eq!(reference.servers, 3);
        assert_eq!(reference.batch_done_at.len(), 6);
        assert_eq!(reference.server_events.len(), 3);
        // The storm replays on server 0 only, so it carries more events.
        assert!(reference.imbalance >= 1.0);
        assert!(reference.faults.injected > 0);
    }

    #[test]
    fn one_server_cluster_matches_the_solo_des() {
        use crate::pipeline::try_simulate_traced_deadline;
        use trainbox_sim::NoopTracer;
        let server = crate::arch::ServerConfig::new(ServerKind::TrainBoxNoPool, 4)
            .batch_size(64)
            .build();
        let w = Workload::rnn_s();
        let cfg = quick_cfg(2);
        let solo = try_simulate_traced_deadline(
            &server,
            &w,
            &cfg,
            &FaultPlan::empty(),
            NoopTracer,
            None,
        )
        .expect("solo run")
        .0;
        let cluster = simulate_cluster_traced_deadline(
            &server,
            &w,
            &cfg,
            &FaultPlan::empty(),
            &ClusterSpec::rack_default(1),
            |_| NoopTracer,
            None,
        )
        .expect("cluster run")
        .0;
        // A 1-server cluster pays no cross-server phase: the barrier releases
        // at the local sync time, so throughput matches the solo engine.
        assert_eq!(cluster.cross_sync_secs, 0.0);
        assert!(
            (cluster.samples_per_sec - solo.samples_per_sec).abs()
                < 1e-9 * solo.samples_per_sec,
            "cluster {} vs solo {}",
            cluster.samples_per_sec,
            solo.samples_per_sec
        );
    }

    #[test]
    fn expired_deadline_fails_cleanly_at_any_worker_count() {
        use trainbox_sim::NoopTracer;
        let server = crate::arch::ServerConfig::new(ServerKind::TrainBoxNoPool, 4)
            .batch_size(64)
            .build();
        let w = Workload::rnn_s();
        let expired = Some(Instant::now() - std::time::Duration::from_secs(1));
        for workers in [0usize, 4] {
            let err = simulate_cluster_traced_deadline(
                &server,
                &w,
                &quick_cfg(workers),
                &FaultPlan::empty(),
                &ClusterSpec::rack_default(2),
                |_| NoopTracer,
                expired,
            )
            .expect_err("deadline must trip");
            assert!(
                matches!(err.error, SimError::DeadlineExceeded { .. }),
                "workers={workers}: {:?}",
                err.error
            );
        }
    }

    #[test]
    fn tco_favors_scale_up() {
        // §III-A: "one node with 256 accelerators vs 256 nodes with one
        // accelerator per node" — the extreme case — and the DGX-2 case.
        let tco = TcoModel::default_costs();
        let up = tco.scale_up_cost(256);
        let out_1 = tco.scale_out_cost(256, 1);
        let out_16 = tco.scale_out_cost(256, 16);
        assert!(up < out_1 / 2.0, "vs 1-acc nodes: {up} vs {out_1}");
        assert!(up < out_16, "vs 16-acc nodes: {up} vs {out_16}");
        // The FPGA adder is small relative to the host savings.
        let plain_accels = 256.0 * tco.accel_cost;
        assert!(up - plain_accels < out_16 - plain_accels);
    }
}

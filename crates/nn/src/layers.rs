//! Dense layers, activations, loss, and SGD — enough of a training stack to
//! run the Fig 5 augmentation-accuracy experiment for real.

use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully connected layer `y = xW + b` with cached activations for backprop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    // Momentum buffers.
    vw: Matrix,
    vb: Vec<f32>,
    // Forward cache.
    last_input: Option<Matrix>,
}

impl Dense {
    /// He-initialized layer mapping `inputs` features to `outputs`.
    pub fn new<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        let scale = (2.0 / inputs as f32).sqrt();
        let w = Matrix::from_fn(inputs, outputs, |_, _| {
            // Box–Muller standard normal.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos() * scale
        });
        Dense {
            vw: Matrix::zeros(inputs, outputs),
            vb: vec![0.0; outputs],
            b: vec![0.0; outputs],
            w,
            last_input: None,
        }
    }

    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.w.rows()
    }

    /// Number of output features.
    pub fn outputs(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass over a batch (`batch × inputs`), caching the input.
    ///
    /// # Panics
    ///
    /// Panics on feature-count mismatch.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.forward_owned(x.clone())
    }

    /// [`Dense::forward`] taking ownership of the batch, so callers that
    /// already own it (the layer-to-layer handoff in [`Mlp`]) skip the
    /// input-cache clone.
    pub fn forward_owned(&mut self, x: Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        let cols = y.cols();
        for row in y.data_mut().chunks_exact_mut(cols) {
            for (v, &b) in row.iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        self.last_input = Some(x);
        y
    }

    /// Backward pass: given `dL/dy`, update parameters with SGD+momentum and
    /// return `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix, lr: f32, momentum: f32) -> Matrix {
        self.backward_steps(dy, lr, momentum, true).expect("dx requested")
    }

    /// [`Dense::backward`] with the input gradient made optional: the first
    /// layer of a network has no upstream to feed, and `dL/dx` is its single
    /// most expensive product — a full `dy · Wᵀ` product per step that would
    /// be dropped on the floor.
    pub fn backward_steps(
        &mut self,
        dy: &Matrix,
        lr: f32,
        momentum: f32,
        need_dx: bool,
    ) -> Option<Matrix> {
        let x = self.last_input.as_ref().expect("backward before forward");
        let batch = x.rows() as f32;
        let mut dw = x.transpose().matmul(dy);
        for v in dw.data_mut() {
            *v /= batch;
        }
        let mut db = vec![0.0f32; self.b.len()];
        let cols = dy.cols();
        for row in dy.data().chunks_exact(cols) {
            for (d, &v) in db.iter_mut().zip(row) {
                *d += v / batch;
            }
        }
        let dx = if need_dx { Some(dy.matmul(&self.w.transpose())) } else { None };
        // Momentum update, in place (same arithmetic as `v*momentum - lr*d`
        // built into a fresh buffer, without the per-step allocation).
        for v in self.vw.data_mut() {
            *v *= momentum;
        }
        self.vw.add_scaled(&dw, -lr);
        self.w.add_scaled(&self.vw, 1.0);
        for ((vb, b), &d) in self.vb.iter_mut().zip(&mut self.b).zip(&db) {
            *vb = momentum * *vb - lr * d;
            *b += *vb;
        }
        dx
    }
}

/// ReLU activation with cached mask.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    mask: Option<Matrix>,
}

impl Relu {
    /// A fresh activation.
    pub fn new() -> Self {
        Relu::default()
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.mask = Some(x.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        x.map(|v| v.max(0.0))
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&self, dy: &Matrix) -> Matrix {
        let mask = self.mask.as_ref().expect("backward before forward");
        dy.hadamard(mask)
    }
}

/// Softmax over rows followed by cross-entropy against integer labels.
///
/// Returns `(loss, dlogits)` where `dlogits` is ready to feed backward.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "one label per row");
    let classes = logits.cols();
    let mut dlogits = Matrix::zeros(logits.rows(), classes);
    let mut loss = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        let row = logits.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (c, &e) in exps.iter().enumerate() {
            let p = e / sum;
            dlogits.set(r, c, p - if c == label { 1.0 } else { 0.0 });
            if c == label {
                loss -= (p.max(1e-12)).ln() as f64;
            }
        }
    }
    (loss as f32 / logits.rows() as f32, dlogits)
}

/// A small multi-layer perceptron classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    relus: Vec<Relu>,
}

impl Mlp {
    /// Build with the given layer widths, e.g. `&[432, 64, 10]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new<R: Rng + ?Sized>(widths: &[usize], rng: &mut R) -> Self {
        assert!(widths.len() >= 2, "an MLP needs input and output widths");
        let layers: Vec<Dense> = widths
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        let relus = (0..layers.len() - 1).map(|_| Relu::new()).collect();
        Mlp { layers, relus }
    }

    /// Number of dense layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass producing logits.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let n = self.layers.len();
        for i in 0..n {
            h = self.layers[i].forward_owned(h);
            if i + 1 < n {
                h = self.relus[i].forward(&h);
            }
        }
        h
    }

    /// One SGD step on a batch; returns the loss.
    pub fn train_step(&mut self, x: &Matrix, labels: &[usize], lr: f32, momentum: f32) -> f32 {
        let logits = self.forward(x);
        let (loss, mut grad) = softmax_cross_entropy(&logits, labels);
        let n = self.layers.len();
        for i in (0..n).rev() {
            // The first layer has nothing upstream — skip its dL/dx product.
            match self.layers[i].backward_steps(&grad, lr, momentum, i > 0) {
                Some(dx) => grad = self.relus[i - 1].backward(&dx),
                None => break,
            }
        }
        loss
    }

    /// Top-`k` accuracy of the current model on a labeled batch.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the class count.
    pub fn top_k_accuracy(&mut self, x: &Matrix, labels: &[usize], k: usize) -> f64 {
        self.top_k_accuracies(x, labels, &[k])[0]
    }

    /// Top-`k` accuracy for several `k` values from a *single* forward pass —
    /// evaluating top-1 and top-5 per epoch costs one inference, not two.
    ///
    /// # Panics
    ///
    /// Panics if any `k` is zero or exceeds the class count.
    pub fn top_k_accuracies(&mut self, x: &Matrix, labels: &[usize], ks: &[usize]) -> Vec<f64> {
        let logits = self.forward(x);
        assert_eq!(labels.len(), logits.rows(), "one label per row");
        for &k in ks {
            assert!(k >= 1 && k <= logits.cols(), "invalid k");
        }
        let mut hits = vec![0usize; ks.len()];
        let mut idx: Vec<usize> = Vec::new();
        for (r, label) in labels.iter().enumerate() {
            let row = logits.row(r);
            idx.clear();
            idx.extend(0..row.len());
            idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap());
            for (h, &k) in hits.iter_mut().zip(ks) {
                if idx[..k].contains(label) {
                    *h += 1;
                }
            }
        }
        hits.iter().map(|&h| h as f64 / logits.rows() as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(3, 2, &mut rng);
        assert_eq!((d.inputs(), d.outputs()), (3, 2));
        let x = Matrix::zeros(4, 3);
        let y = d.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        // Zero input -> output equals bias (zero-initialized).
        assert!(y.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn softmax_loss_at_uniform_is_log_classes() {
        let logits = Matrix::zeros(2, 4);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Check dL/dlogits from softmax_cross_entropy numerically.
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.2]]);
        let labels = [2usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for c in 0..3 {
            let mut plus = logits.clone();
            plus.set(0, c, logits.at(0, c) + eps);
            let mut minus = logits.clone();
            minus.set(0, c, logits.at(0, c) - eps);
            let (lp, _) = softmax_cross_entropy(&plus, &labels);
            let (lm, _) = softmax_cross_entropy(&minus, &labels);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad.at(0, c)).abs() < 1e-3,
                "c={c}: numeric {num} vs analytic {}",
                grad.at(0, c)
            );
        }
    }

    #[test]
    fn relu_masks_gradient() {
        let mut relu = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 2.0, -3.0, 4.0]]);
        let y = relu.forward(&x);
        assert_eq!(y, Matrix::from_rows(&[&[0.0, 2.0, 0.0, 4.0]]));
        let dy = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]);
        assert_eq!(relu.backward(&dy), Matrix::from_rows(&[&[0.0, 1.0, 0.0, 1.0]]));
    }

    #[test]
    fn mlp_learns_xor() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut mlp = Mlp::new(&[2, 8, 2], &mut rng);
        assert_eq!(mlp.depth(), 2);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let labels = [0usize, 1, 1, 0];
        let mut last = f32::INFINITY;
        for epoch in 0..2000 {
            last = mlp.train_step(&x, &labels, 0.1, 0.9);
            if epoch % 500 == 0 && last < 0.01 {
                break;
            }
        }
        assert!(last < 0.05, "XOR did not converge: loss={last}");
        assert_eq!(mlp.top_k_accuracy(&x, &labels, 1), 1.0);
    }

    #[test]
    fn top_k_accuracy_monotone_in_k() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&[4, 6], &mut rng);
        let x = Matrix::from_fn(10, 4, |r, c| ((r * 3 + c) % 5) as f32 / 5.0);
        let labels: Vec<usize> = (0..10).map(|i| i % 6).collect();
        let a1 = mlp.top_k_accuracy(&x, &labels, 1);
        let a3 = mlp.top_k_accuracy(&x, &labels, 3);
        let a6 = mlp.top_k_accuracy(&x, &labels, 6);
        assert!(a1 <= a3 && a3 <= a6);
        assert_eq!(a6, 1.0);
    }

    #[test]
    #[should_panic(expected = "label 9 out of range")]
    fn bad_label_rejected() {
        let logits = Matrix::zeros(1, 3);
        softmax_cross_entropy(&logits, &[9]);
    }
}

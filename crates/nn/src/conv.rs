//! Convolution and pooling layers — the CNN building blocks of the Table-I
//! image workloads, small but real (forward + backward, gradient-checked).
//!
//! Layout convention: a batch is a flat `f32` buffer in `[n][c][h][w]`
//! order, with the shape carried alongside as a [`FeatShape`].

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shape of a feature map batch (`channels × height × width`; the batch
/// dimension is implied by buffer length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatShape {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl FeatShape {
    /// Elements per sample.
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// A feature map is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// 2-D convolution, stride 1, no padding ("valid"), with SGD+momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    /// Weights `[out_ch][in_ch][k][k]`.
    w: Vec<f32>,
    b: Vec<f32>,
    vw: Vec<f32>,
    vb: Vec<f32>,
    cache: Option<(Vec<f32>, FeatShape, usize)>,
}

impl Conv2d {
    /// He-initialized `k × k` convolution from `in_ch` to `out_ch` channels.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new<R: Rng + ?Sized>(in_ch: usize, out_ch: usize, k: usize, rng: &mut R) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && k > 0, "dimensions must be positive");
        let fan_in = (in_ch * k * k) as f32;
        let scale = (2.0 / fan_in).sqrt();
        let w = (0..out_ch * in_ch * k * k)
            .map(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos() * scale
            })
            .collect();
        Conv2d {
            in_ch,
            out_ch,
            k,
            vw: vec![0.0; out_ch * in_ch * k * k],
            vb: vec![0.0; out_ch],
            b: vec![0.0; out_ch],
            w,
            cache: None,
        }
    }

    /// Output shape for an input shape.
    ///
    /// # Panics
    ///
    /// Panics on channel mismatch or inputs smaller than the kernel.
    pub fn out_shape(&self, input: FeatShape) -> FeatShape {
        assert_eq!(input.c, self.in_ch, "channel mismatch");
        assert!(
            input.h >= self.k && input.w >= self.k,
            "input smaller than kernel"
        );
        FeatShape { c: self.out_ch, h: input.h - self.k + 1, w: input.w - self.k + 1 }
    }

    fn widx(&self, o: usize, i: usize, dy: usize, dx: usize) -> usize {
        ((o * self.in_ch + i) * self.k + dy) * self.k + dx
    }

    /// Forward pass over a batch.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of the input shape.
    pub fn forward(&mut self, x: &[f32], shape: FeatShape) -> (Vec<f32>, FeatShape) {
        let per = shape.len();
        assert_eq!(x.len() % per, 0, "batch buffer size mismatch");
        let n = x.len() / per;
        let os = self.out_shape(shape);
        let mut y = vec![0.0f32; n * os.len()];
        for s in 0..n {
            let xin = &x[s * per..(s + 1) * per];
            let yout = &mut y[s * os.len()..(s + 1) * os.len()];
            for o in 0..self.out_ch {
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let mut acc = self.b[o];
                        for i in 0..self.in_ch {
                            for dy in 0..self.k {
                                let row = i * shape.h * shape.w + (oy + dy) * shape.w + ox;
                                let wrow = self.widx(o, i, dy, 0);
                                for dx in 0..self.k {
                                    acc += xin[row + dx] * self.w[wrow + dx];
                                }
                            }
                        }
                        yout[o * os.h * os.w + oy * os.w + ox] = acc;
                    }
                }
            }
        }
        self.cache = Some((x.to_vec(), shape, n));
        (y, os)
    }

    /// Backward pass: update parameters, return `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched gradient size.
    pub fn backward(&mut self, dy: &[f32], lr: f32, momentum: f32) -> Vec<f32> {
        let (x, shape, n) = self.cache.take().expect("backward before forward");
        let os = self.out_shape(shape);
        assert_eq!(dy.len(), n * os.len(), "gradient size mismatch");
        let per = shape.len();
        let mut dw = vec![0.0f32; self.w.len()];
        let mut db = vec![0.0f32; self.out_ch];
        let mut dx = vec![0.0f32; x.len()];
        let inv_n = 1.0 / n as f32;
        for s in 0..n {
            let xin = &x[s * per..(s + 1) * per];
            let dys = &dy[s * os.len()..(s + 1) * os.len()];
            let dxs = &mut dx[s * per..(s + 1) * per];
            for o in 0..self.out_ch {
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let g = dys[o * os.h * os.w + oy * os.w + ox];
                        if g == 0.0 {
                            continue;
                        }
                        db[o] += g * inv_n;
                        for i in 0..self.in_ch {
                            for dyk in 0..self.k {
                                let row = i * shape.h * shape.w + (oy + dyk) * shape.w + ox;
                                let wrow = self.widx(o, i, dyk, 0);
                                for dxk in 0..self.k {
                                    dw[wrow + dxk] += g * xin[row + dxk] * inv_n;
                                    dxs[row + dxk] += g * self.w[wrow + dxk];
                                }
                            }
                        }
                    }
                }
            }
        }
        for (j, g) in dw.iter().enumerate() {
            self.vw[j] = momentum * self.vw[j] - lr * g;
            self.w[j] += self.vw[j];
        }
        for (o, g) in db.iter().enumerate() {
            self.vb[o] = momentum * self.vb[o] - lr * g;
            self.b[o] += self.vb[o];
        }
        dx
    }
}

/// 2×2 max pooling, stride 2.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MaxPool2 {
    /// Cached argmax indices into the input buffer.
    cache: Option<(Vec<usize>, usize)>,
}

impl MaxPool2 {
    /// A fresh pooling layer.
    pub fn new() -> Self {
        MaxPool2::default()
    }

    /// Output shape (floor division; odd trailing rows/cols are dropped).
    pub fn out_shape(&self, input: FeatShape) -> FeatShape {
        FeatShape { c: input.c, h: input.h / 2, w: input.w / 2 }
    }

    /// Forward pass over a batch.
    pub fn forward(&mut self, x: &[f32], shape: FeatShape) -> (Vec<f32>, FeatShape) {
        let per = shape.len();
        let n = x.len() / per;
        let os = self.out_shape(shape);
        let mut y = vec![0.0f32; n * os.len()];
        let mut argmax = vec![0usize; n * os.len()];
        for s in 0..n {
            for c in 0..shape.c {
                for oy in 0..os.h {
                    for ox in 0..os.w {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = s * per
                                    + c * shape.h * shape.w
                                    + (oy * 2 + dy) * shape.w
                                    + (ox * 2 + dx);
                                if x[idx] > best {
                                    best = x[idx];
                                    best_i = idx;
                                }
                            }
                        }
                        let oidx = s * os.len() + c * os.h * os.w + oy * os.w + ox;
                        y[oidx] = best;
                        argmax[oidx] = best_i;
                    }
                }
            }
        }
        self.cache = Some((argmax, x.len()));
        (y, os)
    }

    /// Backward pass: routes gradients to the argmax positions.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &[f32]) -> Vec<f32> {
        let (argmax, in_len) = self.cache.take().expect("backward before forward");
        let mut dx = vec![0.0f32; in_len];
        for (oidx, &iidx) in argmax.iter().enumerate() {
            dx[iidx] += dy[oidx];
        }
        dx
    }
}


/// A small CNN classifier: conv → ReLU → pool → conv → ReLU → pool →
/// flatten → dense. Enough structure to validate the convolution stack on
/// the augmentation dataset.
#[derive(Debug, Clone)]
pub struct SmallCnn {
    conv1: Conv2d,
    pool1: MaxPool2,
    conv2: Conv2d,
    pool2: MaxPool2,
    head: crate::layers::Dense,
    input: FeatShape,
    relu1_mask: Vec<f32>,
    relu2_mask: Vec<f32>,
    flat_shape: usize,
}

impl SmallCnn {
    /// Build for inputs of `input` shape with `classes` outputs.
    ///
    /// # Panics
    ///
    /// Panics if the input is too small for two conv+pool stages.
    pub fn new<R: Rng + ?Sized>(input: FeatShape, classes: usize, rng: &mut R) -> Self {
        let conv1 = Conv2d::new(input.c, 8, 3, rng);
        let s1 = conv1.out_shape(input);
        let pool1 = MaxPool2::new();
        let s1p = pool1.out_shape(s1);
        let conv2 = Conv2d::new(8, 16, 3, rng);
        let s2 = conv2.out_shape(s1p);
        let pool2 = MaxPool2::new();
        let s2p = pool2.out_shape(s2);
        assert!(s2p.h >= 1 && s2p.w >= 1, "input too small for the network");
        let flat = s2p.len();
        SmallCnn {
            conv1,
            pool1,
            conv2,
            pool2,
            head: crate::layers::Dense::new(flat, classes, rng),
            input,
            relu1_mask: Vec::new(),
            relu2_mask: Vec::new(),
            flat_shape: flat,
        }
    }

    fn relu(buf: &mut [f32], mask: &mut Vec<f32>) {
        mask.clear();
        mask.extend(buf.iter().map(|&v| if v > 0.0 { 1.0 } else { 0.0 }));
        for v in buf.iter_mut() {
            *v = v.max(0.0);
        }
    }

    /// Forward pass producing logits (`batch × classes`).
    pub fn forward(&mut self, x: &[f32]) -> crate::tensor::Matrix {
        let n = x.len() / self.input.len();
        let (mut h1, s1) = self.conv1.forward(x, self.input);
        Self::relu(&mut h1, &mut self.relu1_mask);
        let (h1p, s1p) = self.pool1.forward(&h1, s1);
        let (mut h2, s2) = self.conv2.forward(&h1p, s1p);
        Self::relu(&mut h2, &mut self.relu2_mask);
        let (h2p, _s2p) = self.pool2.forward(&h2, s2);
        let flat = crate::tensor::Matrix::from_vec(n, self.flat_shape, h2p);
        self.head.forward(&flat)
    }

    /// One SGD step on a labeled batch; returns the loss.
    pub fn train_step(&mut self, x: &[f32], labels: &[usize], lr: f32, momentum: f32) -> f32 {
        let logits = self.forward(x);
        let (loss, grad) = crate::layers::softmax_cross_entropy(&logits, labels);
        let dflat = self.head.backward(&grad, lr, momentum);
        let dpool2 = self.pool2.backward(dflat.data());
        let drelu2: Vec<f32> = dpool2
            .iter()
            .zip(&self.relu2_mask)
            .map(|(g, m)| g * m)
            .collect();
        let dpool1_in = self.conv2.backward(&drelu2, lr, momentum);
        let dpool1 = self.pool1.backward(&dpool1_in);
        let drelu1: Vec<f32> = dpool1
            .iter()
            .zip(&self.relu1_mask)
            .map(|(g, m)| g * m)
            .collect();
        let _ = self.conv1.backward(&drelu1, lr, momentum);
        loss
    }

    /// Top-1 accuracy on a labeled batch.
    pub fn accuracy(&mut self, x: &[f32], labels: &[usize]) -> f64 {
        let logits = self.forward(x);
        assert_eq!(labels.len(), logits.rows(), "one label per row");
        let mut hits = 0;
        for (r, &label) in labels.iter().enumerate() {
            let row = logits.row(r);
            let best = (0..row.len())
                .max_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap())
                .unwrap();
            if best == label {
                hits += 1;
            }
        }
        hits as f64 / logits.rows() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_identity_kernel() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 1, &mut rng);
        // Force weight 1, bias 0: a 1x1 identity.
        conv.w[0] = 1.0;
        conv.b[0] = 0.0;
        let shape = FeatShape { c: 1, h: 3, w: 3 };
        let x: Vec<f32> = (0..9).map(|v| v as f32).collect();
        let (y, os) = conv.forward(&x, shape);
        assert_eq!(os, shape);
        assert_eq!(y, x);
    }

    #[test]
    fn conv_known_sum_kernel() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 2, &mut rng);
        conv.w.iter_mut().for_each(|w| *w = 1.0);
        conv.b[0] = 0.5;
        let shape = FeatShape { c: 1, h: 2, w: 3 };
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let (y, os) = conv.forward(&x, shape);
        assert_eq!((os.h, os.w), (1, 2));
        assert_eq!(y, vec![1.0 + 2.0 + 4.0 + 5.0 + 0.5, 2.0 + 3.0 + 5.0 + 6.0 + 0.5]);
    }

    #[test]
    fn conv_gradient_matches_finite_difference() {
        let shape = FeatShape { c: 2, h: 5, w: 4 };
        let x: Vec<f32> = (0..2 * shape.len()).map(|i| ((i * 31) % 17) as f32 / 17.0 - 0.5).collect();
        // Loss = sum(y * probe) with a fixed probe.
        let mk = || {
            let mut r = StdRng::seed_from_u64(3);
            Conv2d::new(2, 3, 3, &mut r)
        };
        let mut conv = mk();
        let os = conv.out_shape(shape);
        let probe: Vec<f32> = (0..2 * os.len()).map(|i| ((i * 7) % 5) as f32 / 5.0 - 0.4).collect();
        let (_y, _) = conv.forward(&x, shape);
        // lr=0 so parameters stay put; we only want dx.
        let dx = conv.backward(&probe, 0.0, 0.0);
        let loss = |xs: &[f32]| -> f32 {
            let mut c = mk();
            let (y, _) = c.forward(xs, shape);
            y.iter().zip(&probe).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2f32;
        for &idx in &[0usize, 7, 19, 40, x.len() - 1] {
            let mut xp = x.clone();
            xp[idx] += eps;
            let mut xm = x.clone();
            xm[idx] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx[idx]).abs() < 2e-2 * (1.0 + num.abs()),
                "idx {idx}: numeric {num} vs analytic {}",
                dx[idx]
            );
        }
    }

    #[test]
    fn conv_weight_gradient_direction_reduces_loss() {
        // One SGD step on loss = sum(y) must reduce sum(y) (descent check).
        let mut rng = StdRng::seed_from_u64(4);
        let shape = FeatShape { c: 1, h: 6, w: 6 };
        let x: Vec<f32> = (0..shape.len()).map(|i| (i % 7) as f32 / 7.0).collect();
        let mut conv = Conv2d::new(1, 2, 3, &mut rng);
        let (y0, _) = conv.forward(&x, shape);
        let s0: f32 = y0.iter().sum();
        let ones = vec![1.0f32; y0.len()];
        conv.backward(&ones, 0.05, 0.0);
        let (y1, _) = conv.forward(&x, shape);
        let s1: f32 = y1.iter().sum();
        assert!(s1 < s0, "descent failed: {s0} -> {s1}");
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let shape = FeatShape { c: 1, h: 4, w: 4 };
        #[rustfmt::skip]
        let x = vec![
            1.0, 2.0,  3.0, 4.0,
            5.0, 6.0,  7.0, 8.0,
            9.0, 1.0,  2.0, 3.0,
            4.0, 5.0,  6.0, 7.0,
        ];
        let mut pool = MaxPool2::new();
        let (y, os) = pool.forward(&x, shape);
        assert_eq!((os.h, os.w), (2, 2));
        assert_eq!(y, vec![6.0, 8.0, 9.0, 7.0]);
        let dy = vec![1.0, 2.0, 3.0, 4.0];
        let dx = pool.backward(&dy);
        // Gradient lands exactly on the argmax cells.
        assert_eq!(dx[5], 1.0); // 6.0
        assert_eq!(dx[7], 2.0); // 8.0
        assert_eq!(dx[8], 3.0); // 9.0
        assert_eq!(dx[15], 4.0); // 7.0
        assert_eq!(dx.iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let shape = FeatShape { c: 1, h: 5, w: 3 };
        let x = vec![0.0; shape.len()];
        let mut pool = MaxPool2::new();
        let (_, os) = pool.forward(&x, shape);
        assert_eq!((os.h, os.w), (2, 1));
    }

    #[test]
    fn conv_batch_independence() {
        // Processing two samples in one batch equals processing them alone.
        let mut rng = StdRng::seed_from_u64(5);
        let shape = FeatShape { c: 1, h: 4, w: 4 };
        let a: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..16).map(|i| (15 - i) as f32).collect();
        let mut conv = Conv2d::new(1, 2, 2, &mut rng);
        let mut both = a.clone();
        both.extend_from_slice(&b);
        let (y, os) = conv.forward(&both, shape);
        let (ya, _) = conv.forward(&a, shape);
        let (yb, _) = conv.forward(&b, shape);
        assert_eq!(&y[..os.len()], &ya[..]);
        assert_eq!(&y[os.len()..], &yb[..]);
    }

    #[test]
    fn small_cnn_learns_two_patterns() {
        // Two 12x12 single-channel patterns (vertical vs horizontal stripes),
        // noisy instances; the CNN must separate them quickly.
        let mut rng = StdRng::seed_from_u64(9);
        use rand::Rng;
        let shape = FeatShape { c: 1, h: 12, w: 12 };
        let sample = |class: usize, rng: &mut StdRng| -> Vec<f32> {
            let mut v = vec![0.0f32; shape.len()];
            for y in 0..12 {
                for x in 0..12 {
                    let stripe = if class == 0 { x / 2 % 2 } else { y / 2 % 2 };
                    v[y * 12 + x] = stripe as f32 + rng.gen_range(-0.2..0.2);
                }
            }
            v
        };
        let mut cnn = SmallCnn::new(shape, 2, &mut rng);
        for _ in 0..60 {
            let mut xs = Vec::new();
            let mut labels = Vec::new();
            for _ in 0..16 {
                let class = rng.gen_range(0..2usize);
                xs.extend(sample(class, &mut rng));
                labels.push(class);
            }
            cnn.train_step(&xs, &labels, 0.05, 0.9);
        }
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let class = i % 2;
            xs.extend(sample(class, &mut rng));
            labels.push(class);
        }
        let acc = cnn.accuracy(&xs, &labels);
        assert!(acc > 0.9, "cnn should separate stripes: acc={acc}");
    }

    #[test]
    #[should_panic(expected = "input smaller than kernel")]
    fn kernel_larger_than_input_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(1, 1, 5, &mut rng);
        conv.out_shape(FeatShape { c: 1, h: 3, w: 3 });
    }
}

//! Minimal neural-network training substrate and the paper's workload models.
//!
//! Two roles in the reproduction:
//!
//! 1. [`workload`] defines the seven Table-I workloads (name, type, batch
//!    size, model size, per-accelerator throughput) that parameterize every
//!    evaluation figure.
//! 2. [`tensor`], [`layers`], and [`train`] form a small but real training
//!    stack (dense layers, softmax cross-entropy, SGD with momentum) used to
//!    reproduce Figure 5 — *training with data augmentation shows higher
//!    accuracy than training without it* — with the actual augmentation
//!    kernels from `trainbox-dataprep` in the loop.
//!
//! The stack is deliberately CPU-sized: the paper treats model computation as
//! a black-box throughput number measured on TPUs (§VI-A); what must be real
//! here is the *data preparation's effect on accuracy*, not TPU-scale math.

pub mod conv;
pub mod layers;
pub mod tensor;
pub mod train;
pub mod workload;

pub use tensor::Matrix;
pub use workload::{
    InputKind, NnKind, PrepClass, StageCost, StageGraph, StageSpec, SyncPattern, Workload,
    WorkloadBuilder, WorkloadError,
};

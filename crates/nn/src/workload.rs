//! The seven Table-I workloads and their derived quantities.
//!
//! Table I of the paper:
//!
//! | Type | Name | Task | Batch | Model (MB) | Throughput (sample/s) |
//! |------|------|------|-------|-----------|----------------------|
//! | CNN | VGG-19 | Image classification | 2,048 | 548.0 | 3,062 |
//! | CNN | Resnet-50 | Image classification | 8,192 | 97.5 | 7,431 |
//! | CNN | Inception-v4 | Image classification | 2,048 | 162.7 | 1,669 |
//! | RNN | RNN-S | Image captioning | 4,096 | 1.0 | 12,022 |
//! | RNN | RNN-L | Image captioning | 2,048 | 16.0 | 6,495 |
//! | TF | TF-SR | Speech recognition | 512 | 268.3 | 2,001 |
//! | TF | TF-AA | Audio analysis | 512 | 162.5 | 2,889 |
//!
//! Throughput is the measured rate of one TPU v3-8 at the largest batch it
//! can run (§III-B1); batch size is that largest batch. These numbers drive
//! every evaluation figure.

use serde::{Deserialize, Serialize};

/// Neural-network family (Table I "NN Type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NnKind {
    /// Convolutional network.
    Cnn,
    /// LSTM-based recurrent network.
    Rnn,
    /// Transformer.
    Transformer,
}

/// Input data modality, which selects the data-preparation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputKind {
    /// JPEG images (ImageNet-style).
    Image,
    /// PCM audio streams (LibriSpeech-style).
    Audio,
}

/// One training workload (a row of Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Display name, exactly as the paper prints it.
    pub name: &'static str,
    /// Network family.
    pub kind: NnKind,
    /// Input modality.
    pub input: InputKind,
    /// Task description.
    pub task: &'static str,
    /// Batch size (largest a single TPU v3-8 runs).
    pub batch_size: u64,
    /// Model parameter size in MB.
    pub model_mbytes: f64,
    /// Per-accelerator training throughput, samples/s.
    pub accel_samples_per_sec: f64,
}

impl Workload {
    /// VGG-19 image classification.
    pub fn vgg19() -> Self {
        Workload {
            name: "VGG-19",
            kind: NnKind::Cnn,
            input: InputKind::Image,
            task: "Image classification",
            batch_size: 2048,
            model_mbytes: 548.0,
            accel_samples_per_sec: 3062.0,
        }
    }

    /// ResNet-50 image classification.
    pub fn resnet50() -> Self {
        Workload {
            name: "Resnet-50",
            kind: NnKind::Cnn,
            input: InputKind::Image,
            task: "Image classification",
            batch_size: 8192,
            model_mbytes: 97.5,
            accel_samples_per_sec: 7431.0,
        }
    }

    /// Inception-v4 image classification.
    pub fn inception_v4() -> Self {
        Workload {
            name: "Inception-v4",
            kind: NnKind::Cnn,
            input: InputKind::Image,
            task: "Image classification",
            batch_size: 2048,
            model_mbytes: 162.7,
            accel_samples_per_sec: 1669.0,
        }
    }

    /// Small LSTM captioning model.
    pub fn rnn_s() -> Self {
        Workload {
            name: "RNN-S",
            kind: NnKind::Rnn,
            input: InputKind::Image,
            task: "Image captioning",
            batch_size: 4096,
            model_mbytes: 1.0,
            accel_samples_per_sec: 12022.0,
        }
    }

    /// Large LSTM captioning model.
    pub fn rnn_l() -> Self {
        Workload {
            name: "RNN-L",
            kind: NnKind::Rnn,
            input: InputKind::Image,
            task: "Image captioning",
            batch_size: 2048,
            model_mbytes: 16.0,
            accel_samples_per_sec: 6495.0,
        }
    }

    /// Transformer speech recognition.
    pub fn transformer_sr() -> Self {
        Workload {
            name: "TF-SR",
            kind: NnKind::Transformer,
            input: InputKind::Audio,
            task: "Speech recognition",
            batch_size: 512,
            model_mbytes: 268.3,
            accel_samples_per_sec: 2001.0,
        }
    }

    /// Transformer audio analysis.
    pub fn transformer_aa() -> Self {
        Workload {
            name: "TF-AA",
            kind: NnKind::Transformer,
            input: InputKind::Audio,
            task: "Audio analysis",
            batch_size: 512,
            model_mbytes: 162.5,
            accel_samples_per_sec: 2889.0,
        }
    }

    /// All seven Table-I workloads, in the paper's order.
    pub fn all() -> Vec<Workload> {
        vec![
            Workload::vgg19(),
            Workload::resnet50(),
            Workload::inception_v4(),
            Workload::rnn_s(),
            Workload::rnn_l(),
            Workload::transformer_sr(),
            Workload::transformer_aa(),
        ]
    }

    /// Look up a workload by its Table-I name (case-insensitive).
    pub fn by_name(name: &str) -> Option<Workload> {
        Workload::all()
            .into_iter()
            .find(|w| w.name.eq_ignore_ascii_case(name))
    }

    /// Model size in bytes.
    pub fn model_bytes(&self) -> u64 {
        (self.model_mbytes * 1e6) as u64
    }

    /// Seconds one accelerator spends computing one batch.
    pub fn batch_compute_secs(&self) -> f64 {
        self.batch_size as f64 / self.accel_samples_per_sec
    }

    /// Aggregate demand of `n` accelerators in samples/s (the data-prep
    /// throughput required to keep them fed).
    pub fn aggregate_demand(&self, n_accels: usize) -> f64 {
        self.accel_samples_per_sec * n_accels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_rows_in_paper_order() {
        let all = Workload::all();
        assert_eq!(all.len(), 7);
        let names: Vec<&str> = all.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["VGG-19", "Resnet-50", "Inception-v4", "RNN-S", "RNN-L", "TF-SR", "TF-AA"]
        );
    }

    #[test]
    fn modality_split_matches_paper() {
        // Five image-input workloads (CNNs + caption RNNs), two audio.
        let all = Workload::all();
        assert_eq!(all.iter().filter(|w| w.input == InputKind::Image).count(), 5);
        assert_eq!(all.iter().filter(|w| w.input == InputKind::Audio).count(), 2);
        assert!(all
            .iter()
            .filter(|w| w.kind == NnKind::Transformer)
            .all(|w| w.input == InputKind::Audio));
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Workload::by_name("resnet-50").unwrap().name, "Resnet-50");
        assert_eq!(Workload::by_name("TF-sr").unwrap().name, "TF-SR");
        assert!(Workload::by_name("AlexNet").is_none());
    }

    #[test]
    fn derived_quantities() {
        let r = Workload::resnet50();
        assert_eq!(r.model_bytes(), 97_500_000);
        assert!((r.batch_compute_secs() - 8192.0 / 7431.0).abs() < 1e-9);
        assert!((r.aggregate_demand(256) - 256.0 * 7431.0).abs() < 1e-6);
    }

    #[test]
    fn rnn_s_is_fastest_per_accelerator() {
        let all = Workload::all();
        let fastest = all
            .iter()
            .max_by(|a, b| a.accel_samples_per_sec.partial_cmp(&b.accel_samples_per_sec).unwrap())
            .unwrap();
        assert_eq!(fastest.name, "RNN-S");
    }
}

//! Workload descriptions: the seven Table-I presets and the composable
//! stage-graph DSL they lower to.
//!
//! Table I of the paper:
//!
//! | Type | Name | Task | Batch | Model (MB) | Throughput (sample/s) |
//! |------|------|------|-------|-----------|----------------------|
//! | CNN | VGG-19 | Image classification | 2,048 | 548.0 | 3,062 |
//! | CNN | Resnet-50 | Image classification | 8,192 | 97.5 | 7,431 |
//! | CNN | Inception-v4 | Image classification | 2,048 | 162.7 | 1,669 |
//! | RNN | RNN-S | Image captioning | 4,096 | 1.0 | 12,022 |
//! | RNN | RNN-L | Image captioning | 2,048 | 16.0 | 6,495 |
//! | TF | TF-SR | Speech recognition | 512 | 268.3 | 2,001 |
//! | TF | TF-AA | Audio analysis | 512 | 162.5 | 2,889 |
//!
//! Throughput is the measured rate of one TPU v3-8 at the largest batch it
//! can run (§III-B1); batch size is that largest batch. These numbers drive
//! every evaluation figure.
//!
//! # The stage-graph DSL
//!
//! Beyond the fixed table, a [`Workload`] may carry an explicit
//! [`StageGraph`]: named preparation stages with per-stage byte flows and
//! cost models ([`StageCost`]), plus a declared synchronization pattern
//! ([`SyncPattern`]). The seven Table-I names stay presets that *lower* to
//! the same DSL (the lowering lives in `trainbox-core`, next to the
//! calibration constants it copies); four additional families —
//! LLM training, embedding-dominated recsys, video pipelines, and mixed
//! tenancy — ship as presets whose graphs are spelled out here.
//!
//! Serialization is hash-compatible by construction: the DSL fields
//! (`sync`, `stages`, `tenants`) are emitted **only when they differ from
//! their defaults**, so a legacy workload's canonical JSON — and therefore
//! every `SimRequest::canonical_hash` over it — is byte-identical to what
//! the flat struct produced before the DSL existed.

use serde::{Deserialize, Serialize};

/// Neural-network family (Table I "NN Type", plus families the DSL adds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NnKind {
    /// Convolutional network.
    Cnn,
    /// LSTM-based recurrent network.
    Rnn,
    /// Transformer.
    Transformer,
    /// Embedding-table-dominated model (recommendation systems).
    Embedding,
}

/// Input data modality, which selects the data-preparation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputKind {
    /// JPEG images (ImageNet-style).
    Image,
    /// PCM audio streams (LibriSpeech-style).
    Audio,
    /// UTF-8 text shards (LLM pretraining corpora).
    Text,
    /// Multi-frame video clips (MJPEG-style shards).
    Video,
    /// Tabular click logs (recsys embedding lookups).
    Tabular,
}

/// How gradients (or embeddings) are exchanged at batch boundaries.
///
/// Serialized as a bare string (`"ParameterServer"`); the default
/// [`SyncPattern::RingAllReduce`] is omitted from a workload's canonical
/// form so legacy requests keep their bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncPattern {
    /// The paper's chunked ring all-reduce (Fig 2b).
    #[default]
    RingAllReduce,
    /// Sharded parameter servers: push gradients, pull fresh weights.
    ParameterServer,
    /// Pairwise all-to-all exchange (embedding-style synchronization).
    AllToAll,
}

/// Which preparation resource class a stage's host-CPU time accounts
/// against. Mirrors the paper's Figure-4 breakdown (§III-B2) so lowered
/// Table-I presets keep their per-class CPU products bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrepClass {
    /// Reading records off SSD (driver + checksum time).
    SsdRead,
    /// Decode / parse (JPEG, PCM, tokenization, frame demux).
    Formatting,
    /// Randomized augmentation (crop, flip, noise, negative sampling).
    Augmentation,
    /// Batching + tensor layout for the accelerator copy.
    DataLoad,
    /// Everything else (bookkeeping, shuffle indices).
    Others,
}

impl PrepClass {
    /// All classes, in the fixed Figure-4 accounting order.
    pub fn all() -> [PrepClass; 5] {
        [
            PrepClass::SsdRead,
            PrepClass::Formatting,
            PrepClass::Augmentation,
            PrepClass::DataLoad,
            PrepClass::Others,
        ]
    }
}

/// What one stage costs per sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StageCost {
    /// Host CPU seconds per sample (accounted against the stage's
    /// [`PrepClass`]).
    HostCpuSecs(f64),
    /// The stage runs on a preparation accelerator at this rate.
    AccelSamplesPerSec(f64),
    /// FLOP-derived: `flops_per_sample / device_flops_per_sec` seconds on
    /// the preparation device.
    Flops {
        flops_per_sample: f64,
        device_flops_per_sec: f64,
    },
}

impl StageCost {
    /// Host-CPU seconds this cost contributes per sample (zero for
    /// device-resident costs).
    pub fn host_cpu_secs(&self) -> f64 {
        match self {
            StageCost::HostCpuSecs(s) => *s,
            StageCost::AccelSamplesPerSec(_) | StageCost::Flops { .. } => 0.0,
        }
    }

    /// Device seconds per sample (zero for host-CPU costs).
    pub fn device_secs(&self) -> f64 {
        match self {
            StageCost::HostCpuSecs(_) => 0.0,
            StageCost::AccelSamplesPerSec(r) => {
                if *r > 0.0 {
                    1.0 / *r
                } else {
                    f64::INFINITY
                }
            }
            StageCost::Flops { flops_per_sample, device_flops_per_sec } => {
                if *device_flops_per_sec > 0.0 {
                    flops_per_sample / device_flops_per_sec
                } else {
                    f64::INFINITY
                }
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        let ok = |x: f64| x.is_finite() && x >= 0.0;
        match self {
            StageCost::HostCpuSecs(s) => {
                if !ok(*s) {
                    return Err(format!("HostCpuSecs must be finite and >= 0, got {s}"));
                }
            }
            StageCost::AccelSamplesPerSec(r) => {
                if !(r.is_finite() && *r > 0.0) {
                    return Err(format!("AccelSamplesPerSec must be finite and > 0, got {r}"));
                }
            }
            StageCost::Flops { flops_per_sample, device_flops_per_sec } => {
                if !ok(*flops_per_sample) {
                    return Err(format!(
                        "flops_per_sample must be finite and >= 0, got {flops_per_sample}"
                    ));
                }
                if !(device_flops_per_sec.is_finite() && *device_flops_per_sec > 0.0) {
                    return Err(format!(
                        "device_flops_per_sec must be finite and > 0, got {device_flops_per_sec}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// One named stage of a preparation graph.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageSpec {
    /// Stage name, unique within its graph.
    pub name: String,
    /// Resource class the stage's host-CPU time accounts against.
    pub class: PrepClass,
    /// Bytes read per sample on entry (the first stage's `bytes_in` is the
    /// workload's stored-record size).
    pub bytes_in: u64,
    /// Bytes produced per sample (the last producing stage's `bytes_out`
    /// is the tensor size shipped to accelerators).
    pub bytes_out: u64,
    /// Per-sample cost model.
    pub cost: StageCost,
    /// Parallelism hint: how many ways the stage splits across workers.
    pub parallelism: u32,
    /// Names of stages that must complete first (the graph must be
    /// acyclic).
    pub after: Vec<String>,
}

impl StageSpec {
    /// A stage with the given name, class, and cost; bytes default to zero,
    /// parallelism to 1, no predecessors.
    pub fn new(name: impl Into<String>, class: PrepClass, cost: StageCost) -> Self {
        StageSpec {
            name: name.into(),
            class,
            bytes_in: 0,
            bytes_out: 0,
            cost,
            parallelism: 1,
            after: Vec::new(),
        }
    }

    /// Set the per-sample byte flow.
    pub fn bytes(mut self, bytes_in: u64, bytes_out: u64) -> Self {
        self.bytes_in = bytes_in;
        self.bytes_out = bytes_out;
        self
    }

    /// Set the parallelism hint.
    pub fn parallelism(mut self, ways: u32) -> Self {
        self.parallelism = ways;
        self
    }

    /// Add a predecessor by name.
    pub fn after(mut self, stage: impl Into<String>) -> Self {
        self.after.push(stage.into());
        self
    }
}

// Lenient: `name`, `class`, and `cost` are required; bytes, parallelism,
// and predecessors default.
impl Deserialize for StageSpec {
    fn from_json(v: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::json::JsonError::type_mismatch("StageSpec", "object"))?;
        let mut name: Option<String> = None;
        let mut class: Option<PrepClass> = None;
        let mut cost: Option<StageCost> = None;
        let mut bytes_in = 0u64;
        let mut bytes_out = 0u64;
        let mut parallelism = 1u32;
        let mut after = Vec::new();
        for (key, val) in obj {
            if matches!(val, serde::json::Json::Null) {
                continue;
            }
            match key.as_str() {
                "name" => name = Some(Deserialize::from_json(val)?),
                "class" => class = Some(Deserialize::from_json(val)?),
                "cost" => cost = Some(Deserialize::from_json(val)?),
                "bytes_in" => bytes_in = Deserialize::from_json(val)?,
                "bytes_out" => bytes_out = Deserialize::from_json(val)?,
                "parallelism" => parallelism = Deserialize::from_json(val)?,
                "after" => after = Deserialize::from_json(val)?,
                other => {
                    return Err(serde::json::JsonError::new(format!(
                        "unknown field `{other}` in stage spec"
                    )))
                }
            }
        }
        Ok(StageSpec {
            name: name
                .ok_or_else(|| serde::json::JsonError::missing_field("StageSpec", "name"))?,
            class: class
                .ok_or_else(|| serde::json::JsonError::missing_field("StageSpec", "class"))?,
            bytes_in,
            bytes_out,
            cost: cost
                .ok_or_else(|| serde::json::JsonError::missing_field("StageSpec", "cost"))?,
            parallelism,
            after,
        })
    }
}

/// A validated preparation graph: named stages plus optional declared
/// aggregates.
///
/// The declared aggregates exist for bit-exactness: a lowered Table-I
/// preset must reproduce the calibrated totals *without* re-deriving them
/// from per-stage values (floating-point recombination is not bitwise
/// stable), so the lowering declares the calibrated total CPU seconds and
/// device rates verbatim and the graph validates that the stage sum agrees
/// within tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct StageGraph {
    /// The stages, in declaration order.
    pub stages: Vec<StageSpec>,
    /// Declared total host-CPU seconds per sample (omitted = the sum of
    /// the stages' host-CPU costs).
    pub cpu_secs_per_sample: Option<f64>,
    /// Declared FPGA preparation rate, samples/s (omitted = the modality
    /// calibration for the workload's `input`).
    pub fpga_samples_per_sec: Option<f64>,
    /// Declared GPU preparation rate, samples/s (omitted = the modality
    /// calibration for the workload's `input`).
    pub gpu_samples_per_sec: Option<f64>,
}

impl StageGraph {
    /// A graph over the given stages with no declared aggregates.
    pub fn new(stages: Vec<StageSpec>) -> Self {
        StageGraph {
            stages,
            cpu_secs_per_sample: None,
            fpga_samples_per_sec: None,
            gpu_samples_per_sec: None,
        }
    }

    /// Sum of the stages' host-CPU costs, seconds per sample.
    pub fn stage_cpu_sum(&self) -> f64 {
        self.stages.iter().map(|s| s.cost.host_cpu_secs()).sum()
    }

    /// Effective total host-CPU seconds per sample: the declared aggregate
    /// when present, otherwise the stage sum.
    pub fn total_cpu_secs_per_sample(&self) -> f64 {
        self.cpu_secs_per_sample.unwrap_or_else(|| self.stage_cpu_sum())
    }

    /// Host-CPU seconds per sample accounted against `class` (sum over the
    /// class's stages, in declaration order).
    pub fn class_cpu_secs(&self, class: PrepClass) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.class == class)
            .map(|s| s.cost.host_cpu_secs())
            .sum()
    }

    /// Stored-record bytes per sample: `bytes_in` of the first stage.
    pub fn stored_bytes(&self) -> u64 {
        self.stages.first().map_or(0, |s| s.bytes_in)
    }

    /// Tensor bytes per sample shipped to accelerators: `bytes_out` of the
    /// last stage that produces any (a trailing zero-byte bookkeeping
    /// stage does not zero the tensor).
    pub fn tensor_bytes(&self) -> u64 {
        self.stages
            .iter()
            .rev()
            .map(|s| s.bytes_out)
            .find(|&b| b > 0)
            .unwrap_or(0)
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        if self.stages.is_empty() {
            return Err(WorkloadError::EmptyStages);
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.name.is_empty() {
                return Err(WorkloadError::Stage {
                    index: i,
                    stage: s.name.clone(),
                    reason: "stage name must be non-empty".to_string(),
                });
            }
            if self.stages[..i].iter().any(|p| p.name == s.name) {
                return Err(WorkloadError::Stage {
                    index: i,
                    stage: s.name.clone(),
                    reason: "duplicate stage name".to_string(),
                });
            }
            if s.parallelism == 0 {
                return Err(WorkloadError::Stage {
                    index: i,
                    stage: s.name.clone(),
                    reason: "parallelism must be >= 1".to_string(),
                });
            }
            if let Err(reason) = s.cost.validate() {
                return Err(WorkloadError::Stage { index: i, stage: s.name.clone(), reason });
            }
            for dep in &s.after {
                if !self.stages.iter().any(|p| &p.name == dep) {
                    return Err(WorkloadError::Stage {
                        index: i,
                        stage: s.name.clone(),
                        reason: format!("unknown predecessor `{dep}`"),
                    });
                }
            }
        }
        self.check_acyclic()?;
        for (field, v) in [
            ("cpu_secs_per_sample", self.cpu_secs_per_sample),
            ("fpga_samples_per_sec", self.fpga_samples_per_sec),
            ("gpu_samples_per_sec", self.gpu_samples_per_sec),
        ] {
            if let Some(v) = v {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(WorkloadError::Graph {
                        field,
                        reason: format!("must be finite and >= 0, got {v}"),
                    });
                }
            }
        }
        if let Some(declared) = self.cpu_secs_per_sample {
            let sum = self.stage_cpu_sum();
            let scale = declared.abs().max(sum.abs()).max(1e-12);
            if (declared - sum).abs() > 1e-3 * scale {
                return Err(WorkloadError::Graph {
                    field: "cpu_secs_per_sample",
                    reason: format!(
                        "declared aggregate {declared} disagrees with the stage sum {sum} \
                         by more than 0.1%"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Kahn's algorithm over the `after` edges; an unprocessable residue
    /// is a cycle.
    fn check_acyclic(&self) -> Result<(), WorkloadError> {
        let n = self.stages.len();
        let idx_of = |name: &str| self.stages.iter().position(|s| s.name == name);
        let mut indegree = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, s) in self.stages.iter().enumerate() {
            for dep in &s.after {
                let d = idx_of(dep).expect("validated above");
                indegree[i] += 1;
                out[d].push(i);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &j in &out[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if seen != n {
            let stuck = (0..n).find(|&i| indegree[i] > 0).unwrap_or(0);
            return Err(WorkloadError::Stage {
                index: stuck,
                stage: self.stages[stuck].name.clone(),
                reason: "dependency cycle through this stage".to_string(),
            });
        }
        Ok(())
    }
}

// Declared aggregates are emitted only when present, so a graph's
// canonical form does not grow `null` fields.
impl Serialize for StageGraph {
    fn to_json(&self) -> serde::json::Json {
        let mut fields =
            vec![("stages".to_string(), self.stages.to_json())];
        if let Some(v) = self.cpu_secs_per_sample {
            fields.push(("cpu_secs_per_sample".to_string(), v.to_json()));
        }
        if let Some(v) = self.fpga_samples_per_sec {
            fields.push(("fpga_samples_per_sec".to_string(), v.to_json()));
        }
        if let Some(v) = self.gpu_samples_per_sec {
            fields.push(("gpu_samples_per_sec".to_string(), v.to_json()));
        }
        serde::json::Json::Object(fields)
    }
}

impl Deserialize for StageGraph {
    fn from_json(v: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::json::JsonError::type_mismatch("StageGraph", "object"))?;
        let mut graph = StageGraph::new(Vec::new());
        let mut saw_stages = false;
        for (key, val) in obj {
            if matches!(val, serde::json::Json::Null) {
                continue;
            }
            match key.as_str() {
                "stages" => {
                    graph.stages = Deserialize::from_json(val)?;
                    saw_stages = true;
                }
                "cpu_secs_per_sample" => {
                    graph.cpu_secs_per_sample = Some(Deserialize::from_json(val)?)
                }
                "fpga_samples_per_sec" => {
                    graph.fpga_samples_per_sec = Some(Deserialize::from_json(val)?)
                }
                "gpu_samples_per_sec" => {
                    graph.gpu_samples_per_sec = Some(Deserialize::from_json(val)?)
                }
                other => {
                    return Err(serde::json::JsonError::new(format!(
                        "unknown field `{other}` in stage graph"
                    )))
                }
            }
        }
        if !saw_stages {
            return Err(serde::json::JsonError::missing_field("StageGraph", "stages"));
        }
        Ok(graph)
    }
}

/// What is wrong with a workload description. Mirrors
/// `trainbox_core::arch::ConfigError`: every variant names the field at
/// fault so the serving tier can emit field-level 400s.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The display name is empty.
    EmptyName,
    /// A scalar field must be positive (and finite) but is not.
    NonPositive { field: &'static str, value: f64 },
    /// A stage graph was given with no stages.
    EmptyStages,
    /// One stage is invalid (duplicate name, bad cost, unknown
    /// predecessor, cycle, zero parallelism).
    Stage { index: usize, stage: String, reason: String },
    /// A graph-level declared aggregate is invalid or inconsistent.
    Graph { field: &'static str, reason: String },
    /// Mixed tenancy needs at least two tenants.
    TooFewTenants { count: usize },
    /// Tenants cannot themselves be tenanted (one level of sharing only).
    NestedTenants { index: usize },
    /// One tenant is itself invalid.
    Tenant { index: usize, source: Box<WorkloadError> },
}

impl WorkloadError {
    /// Dotted path of the workload field at fault (relative to the
    /// workload object), e.g. `stages.stages[2]` or `tenants[1].batch_size`.
    pub fn field(&self) -> String {
        match self {
            WorkloadError::EmptyName => "name".to_string(),
            WorkloadError::NonPositive { field, .. } => (*field).to_string(),
            WorkloadError::EmptyStages => "stages.stages".to_string(),
            WorkloadError::Stage { index, .. } => format!("stages.stages[{index}]"),
            WorkloadError::Graph { field, .. } => format!("stages.{field}"),
            WorkloadError::TooFewTenants { .. } | WorkloadError::NestedTenants { .. } => {
                "tenants".to_string()
            }
            WorkloadError::Tenant { index, source } => {
                format!("tenants[{index}].{}", source.field())
            }
        }
    }
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::EmptyName => write!(f, "workload name must be non-empty"),
            WorkloadError::NonPositive { field, value } => {
                write!(f, "{field} must be finite and > 0, got {value}")
            }
            WorkloadError::EmptyStages => write!(f, "stage graph must have at least one stage"),
            WorkloadError::Stage { index, stage, reason } => {
                write!(f, "stage {index} (`{stage}`): {reason}")
            }
            WorkloadError::Graph { field, reason } => write!(f, "{field}: {reason}"),
            WorkloadError::TooFewTenants { count } => {
                write!(f, "mixed tenancy needs at least 2 tenants, got {count}")
            }
            WorkloadError::NestedTenants { index } => {
                write!(f, "tenant {index} has tenants of its own; sharing is one level deep")
            }
            WorkloadError::Tenant { index, source } => write!(f, "tenant {index}: {source}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// One training workload: a Table-I row, or a composed description built
/// through [`Workload::builder`].
///
/// Construct presets with the named constructors ([`Workload::resnet50`],
/// [`Workload::llm`], …) or custom workloads with the validated builder;
/// direct struct construction is deprecated in favor of the builder (the
/// struct grew DSL fields, and the builder is what validates them).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Display name, exactly as the paper prints it for Table-I rows.
    pub name: String,
    /// Network family.
    pub kind: NnKind,
    /// Input modality.
    pub input: InputKind,
    /// Task description.
    pub task: String,
    /// Batch size (largest a single TPU v3-8 runs).
    pub batch_size: u64,
    /// Model parameter size in MB.
    pub model_mbytes: f64,
    /// Per-accelerator training throughput, samples/s.
    pub accel_samples_per_sec: f64,
    /// Synchronization pattern (default: the paper's ring all-reduce).
    pub sync: SyncPattern,
    /// Explicit preparation graph (`None` = the modality's calibrated
    /// legacy pipeline).
    pub stages: Option<StageGraph>,
    /// Co-located workloads sharing this server (empty = single tenant).
    /// When non-empty, the flat fields above describe the blended
    /// aggregate and the engine reports per-tenant fairness statistics.
    pub tenants: Vec<Workload>,
}

// Hand-written: the seven legacy fields always, in their historical order;
// DSL fields only when they differ from their defaults. A pre-DSL workload
// therefore serializes to exactly the bytes the flat struct produced, which
// is what keeps every legacy `canonical_hash` (and the serving tier's
// verified cache) valid.
impl Serialize for Workload {
    fn to_json(&self) -> serde::json::Json {
        let mut fields = vec![
            ("name".to_string(), self.name.to_json()),
            ("kind".to_string(), self.kind.to_json()),
            ("input".to_string(), self.input.to_json()),
            ("task".to_string(), self.task.to_json()),
            ("batch_size".to_string(), self.batch_size.to_json()),
            ("model_mbytes".to_string(), self.model_mbytes.to_json()),
            (
                "accel_samples_per_sec".to_string(),
                self.accel_samples_per_sec.to_json(),
            ),
        ];
        if self.sync != SyncPattern::RingAllReduce {
            fields.push(("sync".to_string(), self.sync.to_json()));
        }
        if let Some(stages) = &self.stages {
            fields.push(("stages".to_string(), stages.to_json()));
        }
        if !self.tenants.is_empty() {
            fields.push(("tenants".to_string(), self.tenants.to_json()));
        }
        serde::json::Json::Object(fields)
    }
}

// Lenient like the old derived impl (unknown keys ignored, so clients that
// annotate workload objects keep parsing); the seven legacy fields are
// required, DSL fields default.
impl Deserialize for Workload {
    fn from_json(v: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::json::JsonError::type_mismatch("Workload", "object"))?;
        let mut name: Option<String> = None;
        let mut kind: Option<NnKind> = None;
        let mut input: Option<InputKind> = None;
        let mut task: Option<String> = None;
        let mut batch_size: Option<u64> = None;
        let mut model_mbytes: Option<f64> = None;
        let mut accel: Option<f64> = None;
        let mut sync = SyncPattern::default();
        let mut stages = None;
        let mut tenants = Vec::new();
        for (key, val) in obj {
            if matches!(val, serde::json::Json::Null) {
                continue;
            }
            match key.as_str() {
                "name" => name = Some(Deserialize::from_json(val)?),
                "kind" => kind = Some(Deserialize::from_json(val)?),
                "input" => input = Some(Deserialize::from_json(val)?),
                "task" => task = Some(Deserialize::from_json(val)?),
                "batch_size" => batch_size = Some(Deserialize::from_json(val)?),
                "model_mbytes" => model_mbytes = Some(Deserialize::from_json(val)?),
                "accel_samples_per_sec" => accel = Some(Deserialize::from_json(val)?),
                "sync" => sync = Deserialize::from_json(val)?,
                "stages" => stages = Some(Deserialize::from_json(val)?),
                "tenants" => tenants = Deserialize::from_json(val)?,
                _ => {} // unknown keys ignored, as the derived impl did
            }
        }
        let missing = |f| serde::json::JsonError::missing_field("Workload", f);
        Ok(Workload {
            name: name.ok_or_else(|| missing("name"))?,
            kind: kind.ok_or_else(|| missing("kind"))?,
            input: input.ok_or_else(|| missing("input"))?,
            task: task.ok_or_else(|| missing("task"))?,
            batch_size: batch_size.ok_or_else(|| missing("batch_size"))?,
            model_mbytes: model_mbytes.ok_or_else(|| missing("model_mbytes"))?,
            accel_samples_per_sec: accel.ok_or_else(|| missing("accel_samples_per_sec"))?,
            sync,
            stages,
            tenants,
        })
    }
}

/// Validated step-by-step construction of a [`Workload`].
///
/// ```
/// use trainbox_nn::workload::{PrepClass, StageCost, StageSpec, Workload};
///
/// let w = Workload::builder("My-CNN")
///     .task("Image classification")
///     .batch_size(1024)
///     .model_mbytes(120.0)
///     .accel_samples_per_sec(5000.0)
///     .stage(
///         StageSpec::new("decode", PrepClass::Formatting, StageCost::HostCpuSecs(1.0e-3))
///             .bytes(35_000, 602_112),
///     )
///     .try_build()
///     .unwrap();
/// assert_eq!(w.name, "My-CNN");
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    w: Workload,
    stages: Vec<StageSpec>,
    cpu_secs_per_sample: Option<f64>,
    fpga_samples_per_sec: Option<f64>,
    gpu_samples_per_sec: Option<f64>,
}

impl WorkloadBuilder {
    /// Network family (default [`NnKind::Cnn`]).
    pub fn kind(mut self, kind: NnKind) -> Self {
        self.w.kind = kind;
        self
    }

    /// Input modality (default [`InputKind::Image`]).
    pub fn input(mut self, input: InputKind) -> Self {
        self.w.input = input;
        self
    }

    /// Task description.
    pub fn task(mut self, task: impl Into<String>) -> Self {
        self.w.task = task.into();
        self
    }

    /// Batch size.
    pub fn batch_size(mut self, batch: u64) -> Self {
        self.w.batch_size = batch;
        self
    }

    /// Model parameter size, MB.
    pub fn model_mbytes(mut self, mb: f64) -> Self {
        self.w.model_mbytes = mb;
        self
    }

    /// Per-accelerator training throughput, samples/s.
    pub fn accel_samples_per_sec(mut self, rate: f64) -> Self {
        self.w.accel_samples_per_sec = rate;
        self
    }

    /// Synchronization pattern (default ring all-reduce).
    pub fn sync(mut self, sync: SyncPattern) -> Self {
        self.w.sync = sync;
        self
    }

    /// Append one preparation stage (building an explicit graph).
    pub fn stage(mut self, stage: StageSpec) -> Self {
        self.stages.push(stage);
        self
    }

    /// Use a complete pre-built graph (replaces any staged-in stages).
    pub fn stage_graph(mut self, graph: StageGraph) -> Self {
        self.stages = graph.stages;
        self.cpu_secs_per_sample = graph.cpu_secs_per_sample;
        self.fpga_samples_per_sec = graph.fpga_samples_per_sec;
        self.gpu_samples_per_sec = graph.gpu_samples_per_sec;
        self
    }

    /// Declare the graph's total host-CPU seconds per sample.
    pub fn cpu_secs_per_sample(mut self, secs: f64) -> Self {
        self.cpu_secs_per_sample = Some(secs);
        self
    }

    /// Declare the graph's FPGA preparation rate, samples/s.
    pub fn fpga_samples_per_sec(mut self, rate: f64) -> Self {
        self.fpga_samples_per_sec = Some(rate);
        self
    }

    /// Declare the graph's GPU preparation rate, samples/s.
    pub fn gpu_samples_per_sec(mut self, rate: f64) -> Self {
        self.gpu_samples_per_sec = Some(rate);
        self
    }

    /// Add a co-located tenant workload.
    pub fn tenant(mut self, tenant: Workload) -> Self {
        self.w.tenants.push(tenant);
        self
    }

    /// Validate and build.
    pub fn try_build(mut self) -> Result<Workload, WorkloadError> {
        if !self.stages.is_empty() {
            self.w.stages = Some(StageGraph {
                stages: self.stages,
                cpu_secs_per_sample: self.cpu_secs_per_sample,
                fpga_samples_per_sec: self.fpga_samples_per_sec,
                gpu_samples_per_sec: self.gpu_samples_per_sec,
            });
        }
        self.w.validate()?;
        Ok(self.w)
    }

    /// Build, panicking on an invalid description (use [`Self::try_build`]
    /// for a `Result`).
    pub fn build(self) -> Workload {
        self.try_build().unwrap_or_else(|e| panic!("invalid workload: {e}"))
    }
}

impl Workload {
    /// Start a validated workload description. Defaults: CNN over images,
    /// batch 1, 1 MB model, 1 sample/s — callers set what matters and
    /// [`WorkloadBuilder::try_build`] validates the result.
    pub fn builder(name: impl Into<String>) -> WorkloadBuilder {
        WorkloadBuilder {
            w: Workload {
                name: name.into(),
                kind: NnKind::Cnn,
                input: InputKind::Image,
                task: String::new(),
                batch_size: 1,
                model_mbytes: 1.0,
                accel_samples_per_sec: 1.0,
                sync: SyncPattern::default(),
                stages: None,
                tenants: Vec::new(),
            },
            stages: Vec::new(),
            cpu_secs_per_sample: None,
            fpga_samples_per_sec: None,
            gpu_samples_per_sec: None,
        }
    }

    /// Validate this description (the builder calls this; wire parsing
    /// does too, so a hand-assembled struct can be checked explicitly).
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.name.is_empty() {
            return Err(WorkloadError::EmptyName);
        }
        if self.batch_size == 0 {
            return Err(WorkloadError::NonPositive { field: "batch_size", value: 0.0 });
        }
        for (field, v) in [
            ("model_mbytes", self.model_mbytes),
            ("accel_samples_per_sec", self.accel_samples_per_sec),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(WorkloadError::NonPositive { field, value: v });
            }
        }
        if let Some(graph) = &self.stages {
            graph.validate()?;
        }
        if !self.tenants.is_empty() {
            if self.tenants.len() < 2 {
                return Err(WorkloadError::TooFewTenants { count: self.tenants.len() });
            }
            for (i, t) in self.tenants.iter().enumerate() {
                if !t.tenants.is_empty() {
                    return Err(WorkloadError::NestedTenants { index: i });
                }
                t.validate()
                    .map_err(|e| WorkloadError::Tenant { index: i, source: Box::new(e) })?;
            }
        }
        Ok(())
    }

    /// A legacy flat row: the seven Table-I fields, default sync, no graph.
    fn table1(
        name: &str,
        kind: NnKind,
        input: InputKind,
        task: &str,
        batch_size: u64,
        model_mbytes: f64,
        accel_samples_per_sec: f64,
    ) -> Self {
        Workload {
            name: name.to_string(),
            kind,
            input,
            task: task.to_string(),
            batch_size,
            model_mbytes,
            accel_samples_per_sec,
            sync: SyncPattern::default(),
            stages: None,
            tenants: Vec::new(),
        }
    }

    /// VGG-19 image classification.
    pub fn vgg19() -> Self {
        Workload::table1("VGG-19", NnKind::Cnn, InputKind::Image, "Image classification", 2048, 548.0, 3062.0)
    }

    /// ResNet-50 image classification.
    pub fn resnet50() -> Self {
        Workload::table1("Resnet-50", NnKind::Cnn, InputKind::Image, "Image classification", 8192, 97.5, 7431.0)
    }

    /// Inception-v4 image classification.
    pub fn inception_v4() -> Self {
        Workload::table1("Inception-v4", NnKind::Cnn, InputKind::Image, "Image classification", 2048, 162.7, 1669.0)
    }

    /// Small LSTM captioning model.
    pub fn rnn_s() -> Self {
        Workload::table1("RNN-S", NnKind::Rnn, InputKind::Image, "Image captioning", 4096, 1.0, 12022.0)
    }

    /// Large LSTM captioning model.
    pub fn rnn_l() -> Self {
        Workload::table1("RNN-L", NnKind::Rnn, InputKind::Image, "Image captioning", 2048, 16.0, 6495.0)
    }

    /// Transformer speech recognition.
    pub fn transformer_sr() -> Self {
        Workload::table1("TF-SR", NnKind::Transformer, InputKind::Audio, "Speech recognition", 512, 268.3, 2001.0)
    }

    /// Transformer audio analysis.
    pub fn transformer_aa() -> Self {
        Workload::table1("TF-AA", NnKind::Transformer, InputKind::Audio, "Audio analysis", 512, 162.5, 2889.0)
    }

    /// LLM pretraining: activation-heavy transformer over long text
    /// sequences, with tokenization dominating preparation. One "sample"
    /// is one packed 2048-token sequence (~16 KB of UTF-8 in, 8 KB of
    /// `u32` token ids out); BPE-style tokenization of long sequences is
    /// the formatting cost.
    pub fn llm() -> Self {
        Workload::builder("LLM-7B")
            .kind(NnKind::Transformer)
            .input(InputKind::Text)
            .task("Language modeling")
            .batch_size(2048)
            .model_mbytes(14_000.0)
            .accel_samples_per_sec(48.0)
            .stage(
                StageSpec::new("shard_read", PrepClass::SsdRead, StageCost::HostCpuSecs(6.0e-5))
                    .bytes(16_384, 16_384),
            )
            .stage(
                StageSpec::new(
                    "tokenize",
                    PrepClass::Formatting,
                    StageCost::HostCpuSecs(trainbox_dataprep::tokenize::LLM_TOKENIZE_SECS),
                )
                .bytes(
                    trainbox_dataprep::tokenize::LLM_SEQ_BYTES,
                    trainbox_dataprep::tokenize::LLM_TOKEN_BYTES,
                )
                .parallelism(8)
                .after("shard_read"),
            )
            .stage(
                StageSpec::new("pack_sequences", PrepClass::DataLoad, StageCost::HostCpuSecs(2.4e-4))
                    .bytes(8_192, 8_192)
                    .after("tokenize"),
            )
            .build()
    }

    /// Embedding-dominated recommendation training: tiny dense samples,
    /// irregular embedding-lookup traffic, and an all-to-all exchange in
    /// place of the ring (each accelerator owns a shard of the embedding
    /// tables, so every batch shuffles activations and gradients pairwise
    /// — the Parameter-Box-style pattern).
    pub fn recsys() -> Self {
        Workload::builder("DLRM")
            .kind(NnKind::Embedding)
            .input(InputKind::Tabular)
            .task("Click-through prediction")
            .batch_size(65_536)
            .model_mbytes(2_000.0)
            .accel_samples_per_sec(220_000.0)
            .sync(SyncPattern::AllToAll)
            .stage(
                StageSpec::new("log_read", PrepClass::SsdRead, StageCost::HostCpuSecs(1.2e-6))
                    .bytes(512, 512),
            )
            .stage(
                StageSpec::new("embedding_lookup", PrepClass::DataLoad, StageCost::HostCpuSecs(6.5e-6))
                    .bytes(512, 2_048)
                    .parallelism(16)
                    .after("log_read"),
            )
            .stage(
                StageSpec::new("negative_sample", PrepClass::Augmentation, StageCost::HostCpuSecs(1.8e-6))
                    .bytes(2_048, 2_176)
                    .after("embedding_lookup"),
            )
            .build()
    }

    /// Video understanding: multi-frame decode dominates preparation. One
    /// sample is an 8-frame clip sampled from an MJPEG-style shard; each
    /// frame pays an image-decode-class cost, so formatting carries ~8x
    /// the single-image decode time.
    pub fn video() -> Self {
        Workload::builder("Video-TF")
            .kind(NnKind::Transformer)
            .input(InputKind::Video)
            .task("Video understanding")
            .batch_size(256)
            .model_mbytes(300.0)
            .accel_samples_per_sec(900.0)
            .stage(
                StageSpec::new("clip_demux", PrepClass::SsdRead, StageCost::HostCpuSecs(1.6e-4))
                    .bytes(280_000, 280_000),
            )
            .stage(
                StageSpec::new(
                    "frame_decode",
                    PrepClass::Formatting,
                    StageCost::HostCpuSecs(trainbox_dataprep::video::CLIP_DECODE_SECS),
                )
                .bytes(280_000, 4_816_896)
                .parallelism(8)
                .after("clip_demux"),
            )
            .stage(
                StageSpec::new("temporal_sample", PrepClass::Augmentation, StageCost::HostCpuSecs(4.0e-4))
                    .bytes(4_816_896, 4_816_896)
                    .after("frame_decode"),
            )
            .stage(
                StageSpec::new("tensorize", PrepClass::DataLoad, StageCost::HostCpuSecs(5.5e-4))
                    .bytes(4_816_896, 4_816_896)
                    .after("temporal_sample"),
            )
            .build()
    }

    /// Two workloads sharing one box: ResNet-50 alongside TF-SR. The flat
    /// fields are the blended aggregate ([`Workload::blended_flat`]); the
    /// engine reports per-tenant interference and fairness statistics.
    pub fn mixed() -> Self {
        let tenants = vec![Workload::resnet50(), Workload::transformer_sr()];
        Workload::blended_flat("Mixed-RN50-TFSR", tenants)
    }

    /// Blend tenants into an aggregate flat description: batches and model
    /// sizes sum (each tenant synchronizes its own gradients on the shared
    /// fabric), the compute rate is the time-shared harmonic blend, and
    /// kind/input follow the largest-batch tenant. The preparation-side
    /// blend (a merged stage graph) is applied by the engine, which owns
    /// the calibration constants.
    pub fn blended_flat(name: impl Into<String>, tenants: Vec<Workload>) -> Workload {
        assert!(tenants.len() >= 2, "mixed tenancy needs at least 2 tenants");
        let batch: u64 = tenants.iter().map(|t| t.batch_size).sum();
        let model: f64 = tenants.iter().map(|t| t.model_mbytes).sum();
        let time: f64 = tenants
            .iter()
            .map(|t| t.batch_size as f64 / t.accel_samples_per_sec)
            .sum();
        let dominant = tenants
            .iter()
            .max_by_key(|t| t.batch_size)
            .expect("at least two tenants");
        Workload {
            name: name.into(),
            kind: dominant.kind,
            input: dominant.input,
            task: "Mixed tenancy".to_string(),
            batch_size: batch,
            model_mbytes: model,
            accel_samples_per_sec: batch as f64 / time,
            sync: SyncPattern::default(),
            stages: None,
            tenants,
        }
    }

    /// All seven Table-I workloads, in the paper's order.
    pub fn all() -> Vec<Workload> {
        vec![
            Workload::vgg19(),
            Workload::resnet50(),
            Workload::inception_v4(),
            Workload::rnn_s(),
            Workload::rnn_l(),
            Workload::transformer_sr(),
            Workload::transformer_aa(),
        ]
    }

    /// The full preset catalog: Table I plus the DSL scenario families.
    pub fn presets() -> Vec<Workload> {
        let mut all = Workload::all();
        all.push(Workload::llm());
        all.push(Workload::recsys());
        all.push(Workload::video());
        all.push(Workload::mixed());
        all
    }

    /// Look up a preset by name (case-insensitive; Table I and the DSL
    /// families).
    pub fn by_name(name: &str) -> Option<Workload> {
        Workload::presets()
            .into_iter()
            .find(|w| w.name.eq_ignore_ascii_case(name))
    }

    /// Model size in bytes.
    pub fn model_bytes(&self) -> u64 {
        (self.model_mbytes * 1e6) as u64
    }

    /// Seconds one accelerator spends computing one batch.
    pub fn batch_compute_secs(&self) -> f64 {
        self.batch_size as f64 / self.accel_samples_per_sec
    }

    /// Aggregate demand of `n` accelerators in samples/s (the data-prep
    /// throughput required to keep them fed).
    pub fn aggregate_demand(&self, n_accels: usize) -> f64 {
        self.accel_samples_per_sec * n_accels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_rows_in_paper_order() {
        let all = Workload::all();
        assert_eq!(all.len(), 7);
        let names: Vec<&str> = all.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["VGG-19", "Resnet-50", "Inception-v4", "RNN-S", "RNN-L", "TF-SR", "TF-AA"]
        );
    }

    #[test]
    fn modality_split_matches_paper() {
        // Five image-input workloads (CNNs + caption RNNs), two audio.
        let all = Workload::all();
        assert_eq!(all.iter().filter(|w| w.input == InputKind::Image).count(), 5);
        assert_eq!(all.iter().filter(|w| w.input == InputKind::Audio).count(), 2);
        assert!(all
            .iter()
            .filter(|w| w.kind == NnKind::Transformer)
            .all(|w| w.input == InputKind::Audio));
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Workload::by_name("resnet-50").unwrap().name, "Resnet-50");
        assert_eq!(Workload::by_name("TF-sr").unwrap().name, "TF-SR");
        assert_eq!(Workload::by_name("dlrm").unwrap().name, "DLRM");
        assert!(Workload::by_name("AlexNet").is_none());
    }

    #[test]
    fn derived_quantities() {
        let r = Workload::resnet50();
        assert_eq!(r.model_bytes(), 97_500_000);
        assert!((r.batch_compute_secs() - 8192.0 / 7431.0).abs() < 1e-9);
        assert!((r.aggregate_demand(256) - 256.0 * 7431.0).abs() < 1e-6);
    }

    #[test]
    fn rnn_s_is_fastest_per_accelerator() {
        let all = Workload::all();
        let fastest = all
            .iter()
            .max_by(|a, b| a.accel_samples_per_sec.partial_cmp(&b.accel_samples_per_sec).unwrap())
            .unwrap();
        assert_eq!(fastest.name, "RNN-S");
    }

    #[test]
    fn legacy_serialization_is_the_flat_seven_field_object() {
        // The exact pre-DSL bytes: new fields must not appear for a
        // Table-I row. This is what preserves every legacy canonical hash.
        let json = serde_json::to_string(&Workload::resnet50()).unwrap();
        assert_eq!(
            json,
            "{\"name\":\"Resnet-50\",\"kind\":\"Cnn\",\"input\":\"Image\",\
             \"task\":\"Image classification\",\"batch_size\":8192,\
             \"model_mbytes\":97.5,\"accel_samples_per_sec\":7431.0}"
        );
    }

    #[test]
    fn dsl_fields_round_trip() {
        for preset in [Workload::llm(), Workload::recsys(), Workload::video(), Workload::mixed()] {
            let json = serde_json::to_string(&preset).unwrap();
            let parsed = trainbox_sim_free_parse(&json);
            let back = Workload::from_json(&parsed).unwrap();
            assert_eq!(preset, back, "{} must round-trip", preset.name);
            back.validate().unwrap();
        }
    }

    /// Parse JSON text into the vendored data model without depending on
    /// trainbox-sim (nn sits below it): a minimal recursive-descent parse
    /// via serde_json's own renderer is unavailable, so re-parse through
    /// the test-only helper below.
    fn trainbox_sim_free_parse(text: &str) -> serde::json::Json {
        json_parse(&mut text.chars().peekable()).expect("test JSON parses")
    }

    fn json_parse(
        it: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Option<serde::json::Json> {
        use serde::json::Json;
        while matches!(it.peek(), Some(c) if c.is_whitespace()) {
            it.next();
        }
        match *it.peek()? {
            '{' => {
                it.next();
                let mut fields = Vec::new();
                loop {
                    while matches!(it.peek(), Some(c) if c.is_whitespace() || *c == ',') {
                        it.next();
                    }
                    if it.peek() == Some(&'}') {
                        it.next();
                        return Some(Json::Object(fields));
                    }
                    let Json::Str(key) = json_parse(it)? else { return None };
                    while matches!(it.peek(), Some(c) if c.is_whitespace() || *c == ':') {
                        it.next();
                    }
                    fields.push((key, json_parse(it)?));
                }
            }
            '[' => {
                it.next();
                let mut items = Vec::new();
                loop {
                    while matches!(it.peek(), Some(c) if c.is_whitespace() || *c == ',') {
                        it.next();
                    }
                    if it.peek() == Some(&']') {
                        it.next();
                        return Some(Json::Array(items));
                    }
                    items.push(json_parse(it)?);
                }
            }
            '"' => {
                it.next();
                let mut s = String::new();
                loop {
                    match it.next()? {
                        '"' => return Some(Json::Str(s)),
                        '\\' => s.push(it.next()?),
                        c => s.push(c),
                    }
                }
            }
            't' => {
                for _ in 0..4 {
                    it.next();
                }
                Some(Json::Bool(true))
            }
            'f' => {
                for _ in 0..5 {
                    it.next();
                }
                Some(Json::Bool(false))
            }
            'n' => {
                for _ in 0..4 {
                    it.next();
                }
                Some(Json::Null)
            }
            _ => {
                let mut s = String::new();
                while matches!(it.peek(), Some(c) if c.is_ascii_digit() || "+-.eE".contains(*c)) {
                    s.push(it.next()?);
                }
                let x: f64 = s.parse().ok()?;
                if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
                    if x >= 0.0 {
                        Some(Json::U64(x as u64))
                    } else {
                        Some(Json::I64(x as i64))
                    }
                } else {
                    Some(Json::F64(x))
                }
            }
        }
    }

    #[test]
    fn builder_validates_field_by_field() {
        let empty = Workload::builder("").try_build().unwrap_err();
        assert_eq!(empty.field(), "name");

        let zero_rate =
            Workload::builder("X").accel_samples_per_sec(0.0).try_build().unwrap_err();
        assert_eq!(zero_rate.field(), "accel_samples_per_sec");
        assert!(zero_rate.to_string().contains("accel_samples_per_sec"));

        let dup = Workload::builder("X")
            .stage(StageSpec::new("a", PrepClass::SsdRead, StageCost::HostCpuSecs(1e-6)))
            .stage(StageSpec::new("a", PrepClass::Others, StageCost::HostCpuSecs(1e-6)))
            .try_build()
            .unwrap_err();
        assert_eq!(dup.field(), "stages.stages[1]");
        assert!(dup.to_string().contains("duplicate"), "{dup}");

        let dangling = Workload::builder("X")
            .stage(
                StageSpec::new("a", PrepClass::SsdRead, StageCost::HostCpuSecs(1e-6))
                    .after("ghost"),
            )
            .try_build()
            .unwrap_err();
        assert!(dangling.to_string().contains("ghost"), "{dangling}");

        let cycle = Workload::builder("X")
            .stage(StageSpec::new("a", PrepClass::SsdRead, StageCost::HostCpuSecs(1e-6)).after("b"))
            .stage(StageSpec::new("b", PrepClass::Others, StageCost::HostCpuSecs(1e-6)).after("a"))
            .try_build()
            .unwrap_err();
        assert!(cycle.to_string().contains("cycle"), "{cycle}");

        let drift = Workload::builder("X")
            .stage(StageSpec::new("a", PrepClass::SsdRead, StageCost::HostCpuSecs(1.0e-3)))
            .cpu_secs_per_sample(2.0e-3)
            .try_build()
            .unwrap_err();
        assert_eq!(drift.field(), "stages.cpu_secs_per_sample");

        let bad_cost = Workload::builder("X")
            .stage(StageSpec::new("a", PrepClass::SsdRead, StageCost::AccelSamplesPerSec(-1.0)))
            .try_build()
            .unwrap_err();
        assert_eq!(bad_cost.field(), "stages.stages[0]");
    }

    #[test]
    fn tenancy_validation() {
        let one = Workload {
            tenants: vec![Workload::resnet50()],
            ..Workload::resnet50()
        };
        assert_eq!(one.validate().unwrap_err().field(), "tenants");

        let nested = Workload {
            tenants: vec![Workload::mixed(), Workload::resnet50()],
            ..Workload::resnet50()
        };
        assert!(matches!(nested.validate().unwrap_err(), WorkloadError::NestedTenants { index: 0 }));

        let mut bad_tenant = Workload::transformer_sr();
        bad_tenant.model_mbytes = f64::NAN;
        let mixed = Workload {
            tenants: vec![Workload::resnet50(), bad_tenant],
            ..Workload::resnet50()
        };
        let err = mixed.validate().unwrap_err();
        assert_eq!(err.field(), "tenants[1].model_mbytes");
    }

    #[test]
    fn new_presets_are_valid_and_distinctive() {
        let llm = Workload::llm();
        llm.validate().unwrap();
        let g = llm.stages.as_ref().unwrap();
        // Tokenization dominates LLM preparation.
        assert!(g.class_cpu_secs(PrepClass::Formatting) > 0.8 * g.total_cpu_secs_per_sample());
        assert_eq!(g.stored_bytes(), 16_384);
        assert_eq!(g.tensor_bytes(), 8_192);

        let rec = Workload::recsys();
        rec.validate().unwrap();
        assert_eq!(rec.sync, SyncPattern::AllToAll);
        // Irregular lookup traffic: DataLoad is the recsys prep center.
        let g = rec.stages.as_ref().unwrap();
        assert!(
            g.class_cpu_secs(PrepClass::DataLoad) > g.class_cpu_secs(PrepClass::Formatting)
        );

        let vid = Workload::video();
        vid.validate().unwrap();
        let g = vid.stages.as_ref().unwrap();
        // Multi-frame decode dominates video preparation.
        assert!(g.class_cpu_secs(PrepClass::Formatting) > 0.7 * g.total_cpu_secs_per_sample());
        // 8 frames of 224x224x3 floats.
        assert_eq!(g.tensor_bytes(), 8 * 602_112);

        let mixed = Workload::mixed();
        mixed.validate().unwrap();
        assert_eq!(mixed.tenants.len(), 2);
        assert_eq!(mixed.batch_size, 8192 + 512);
        // Harmonic blend sits between the tenants' rates.
        assert!(mixed.accel_samples_per_sec > 2001.0);
        assert!(mixed.accel_samples_per_sec < 7431.0);
    }

    #[test]
    fn preset_catalog_is_table1_plus_four_families() {
        let presets = Workload::presets();
        assert_eq!(presets.len(), 11);
        let names: Vec<String> = presets.iter().map(|w| w.name.clone()).collect();
        let table1: Vec<String> = Workload::all().iter().map(|w| w.name.clone()).collect();
        assert_eq!(&names[..7], table1.as_slice());
        assert_eq!(&names[7..], &["LLM-7B", "DLRM", "Video-TF", "Mixed-RN50-TFSR"]);
        // Names are unique (the catalog doubles as a lookup table).
        let mut sorted: Vec<String> = names.iter().map(|n| n.to_lowercase()).collect();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), presets.len());
    }

    #[test]
    fn sync_pattern_serializes_as_bare_string() {
        assert_eq!(serde_json::to_string(&SyncPattern::ParameterServer).unwrap(), "\"ParameterServer\"");
        let json = serde_json::to_string(&Workload::recsys()).unwrap();
        assert!(json.contains("\"sync\":\"AllToAll\""), "{json}");
        // Ring is the default and stays off the wire.
        assert!(!serde_json::to_string(&Workload::vgg19()).unwrap().contains("sync"));
    }
}

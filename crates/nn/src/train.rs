//! The Figure 5 experiment: data augmentation improves held-out accuracy.
//!
//! §II-A claims (and Fig 5 shows) that augmentation — random crop basis,
//! mirror, noise — yields substantially higher accuracy than training without
//! it. We reproduce the *mechanism*: a classifier trained on a fixed
//! (center-cropped) view of each class overfits that view, while one trained
//! through the real augmentation kernels of `trainbox-dataprep` generalizes
//! to the shifted/flipped views the test set draws.
//!
//! The dataset is procedural: each class is a textured prototype image;
//! observations are crops of the prototype plus pixel noise. Test crops are
//! drawn at random offsets (and flips), so only an augmentation-trained model
//! sees that distribution during training.

use crate::layers::Mlp;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use trainbox_dataprep::image::Image;

/// Configuration for the augmentation experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AugExperimentConfig {
    /// Number of classes (prototype textures).
    pub classes: usize,
    /// Prototype edge length in pixels.
    pub proto_edge: usize,
    /// Crop edge length (model input is `crop_edge² × 3`).
    pub crop_edge: usize,
    /// Training samples per epoch.
    pub train_per_epoch: usize,
    /// Test samples for evaluation.
    pub test_samples: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Pixel-noise sigma applied to every observation.
    pub noise_sigma: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AugExperimentConfig {
    fn default() -> Self {
        AugExperimentConfig {
            classes: 8,
            proto_edge: 24,
            crop_edge: 16,
            train_per_epoch: 256,
            test_samples: 512,
            epochs: 18,
            hidden: 48,
            lr: 0.05,
            noise_sigma: 4.0,
            seed: 7,
        }
    }
}

/// Accuracy trajectory of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyCurve {
    /// Top-1 accuracy after each epoch.
    pub top1: Vec<f64>,
    /// Top-5 accuracy after each epoch (the metric Fig 5 plots).
    pub top5: Vec<f64>,
}

impl AccuracyCurve {
    /// Final top-5 accuracy (0 when no epochs ran).
    pub fn final_top5(&self) -> f64 {
        self.top5.last().copied().unwrap_or(0.0)
    }
}

/// Both arms of the Fig 5 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AugExperimentResult {
    /// Trained *with* augmentation.
    pub with_augmentation: AccuracyCurve,
    /// Trained *without* augmentation (fixed center crop, no flip/noise).
    pub without_augmentation: AccuracyCurve,
}

/// A class prototype: a blocky random texture. Block structure makes crops
/// position-sensitive — a shifted crop misaligns the blocks — so a model
/// trained only on the center view genuinely fails on shifted test views,
/// which is the failure mode augmentation exists to fix.
fn prototype(edge: usize, seed: u64) -> Image {
    const BLOCK: usize = 3;
    let mut rng = StdRng::seed_from_u64(seed);
    let blocks = edge.div_ceil(BLOCK);
    let palette: Vec<[u8; 3]> = (0..blocks * blocks)
        .map(|_| [rng.gen(), rng.gen(), rng.gen()])
        .collect();
    let mut img = Image::filled(edge, edge, [0, 0, 0]);
    for y in 0..edge {
        for x in 0..edge {
            let b = (y / BLOCK) * blocks + x / BLOCK;
            img.set_pixel(x, y, palette[b]);
        }
    }
    img
}

/// A sampled observation.
fn observe(
    proto: &Image,
    crop_edge: usize,
    augment: bool,
    noise_sigma: f32,
    rng: &mut StdRng,
) -> Image {
    
    if augment {
        let c = proto
            .random_crop(crop_edge, crop_edge, rng)
            .expect("crop fits prototype");
        let c = if rng.gen_bool(0.5) { c.mirror() } else { c };
        c.gaussian_noise(noise_sigma, rng)
    } else {
        // Fixed center view, no augmentation at all.
        let off = (proto.width() - crop_edge) / 2;
        proto
            .crop(off, off, crop_edge, crop_edge)
            .expect("crop fits prototype")
    }
}

/// Flatten an RGB image into a feature row in `[0, 1]`.
fn features(img: &Image) -> Vec<f32> {
    img.data().iter().map(|&b| b as f32 / 255.0).collect()
}

/// The test distribution: random crops with flips and noise — the "unseen
/// data" augmentation is meant to cover (§II-A).
fn test_set(
    protos: &[Image],
    cfg: &AugExperimentConfig,
    rng: &mut StdRng,
) -> (Matrix, Vec<usize>) {
    let dim = cfg.crop_edge * cfg.crop_edge * 3;
    let mut rows = Vec::with_capacity(cfg.test_samples * dim);
    let mut labels = Vec::with_capacity(cfg.test_samples);
    for _ in 0..cfg.test_samples {
        let class = rng.gen_range(0..protos.len());
        let img = observe(&protos[class], cfg.crop_edge, true, cfg.noise_sigma, rng);
        rows.extend(features(&img));
        labels.push(class);
    }
    (Matrix::from_vec(cfg.test_samples, dim, rows), labels)
}

/// Run one arm (augmented or not) and return its accuracy curve.
///
/// # Panics
///
/// Panics if `crop_edge > proto_edge` or `classes < 2`.
pub fn run_arm(cfg: &AugExperimentConfig, augment: bool) -> AccuracyCurve {
    assert!(cfg.crop_edge <= cfg.proto_edge, "crop larger than prototype");
    assert!(cfg.classes >= 2, "need at least two classes");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let protos: Vec<Image> = (0..cfg.classes)
        .map(|c| prototype(cfg.proto_edge, cfg.seed * 1000 + c as u64))
        .collect();
    let (test_x, test_labels) = test_set(&protos, cfg, &mut rng);
    let dim = cfg.crop_edge * cfg.crop_edge * 3;
    let mut mlp = Mlp::new(&[dim, cfg.hidden, cfg.classes], &mut rng);
    let mut curve = AccuracyCurve { top1: Vec::new(), top5: Vec::new() };
    let batch = 32usize;
    for _epoch in 0..cfg.epochs {
        let mut done = 0;
        while done < cfg.train_per_epoch {
            let take = batch.min(cfg.train_per_epoch - done);
            let mut rows = Vec::with_capacity(take * dim);
            let mut labels = Vec::with_capacity(take);
            for _ in 0..take {
                let class = rng.gen_range(0..cfg.classes);
                let img = observe(&protos[class], cfg.crop_edge, augment, cfg.noise_sigma, &mut rng);
                rows.extend(features(&img));
                labels.push(class);
            }
            let x = Matrix::from_vec(take, dim, rows);
            mlp.train_step(&x, &labels, cfg.lr, 0.9);
            done += take;
        }
        let k5 = 5.min(cfg.classes);
        let accs = mlp.top_k_accuracies(&test_x, &test_labels, &[1, k5]);
        curve.top1.push(accs[0]);
        curve.top5.push(accs[1]);
    }
    curve
}

/// Run both arms of the Fig 5 experiment.
pub fn run_experiment(cfg: &AugExperimentConfig) -> AugExperimentResult {
    AugExperimentResult {
        with_augmentation: run_arm(cfg, true),
        without_augmentation: run_arm(cfg, false),
    }
}


/// The large-batch experiment of §II-B's third fold: Goyal et al. (the
/// paper's \[13\]) showed "using a proper learning rate can remove" the
/// accuracy loss of large batches. With a fixed sample budget, a larger
/// batch means fewer SGD updates; keeping the base learning rate starves
/// training, while retuning the rate upward (linearly on ImageNet-scale
/// models; a smaller factor on this toy) recovers it.
///
/// For each batch size, runs the base rate and a small upward rate grid and
/// reports `(batch, top1_base_lr, top1_best_tuned_lr, best_lr)` rows.
pub fn run_batch_scaling(
    cfg: &AugExperimentConfig,
    base_batch: usize,
    batches: &[usize],
) -> Vec<(usize, f64, f64, f32)> {
    let points = batch_scaling_points(base_batch, batches, cfg.lr);
    let prep = prepare_scaling(cfg);
    let accs: Vec<f64> =
        points.iter().map(|&(b, lr)| run_with_batch_prepared(&prep, b, lr)).collect();
    reduce_batch_scaling(base_batch, batches, cfg.lr, &accs)
}

/// Every `(batch, learning rate)` training run [`run_batch_scaling`]
/// performs, in evaluation order. Each run is independent and fully
/// self-seeded ([`run_with_batch`]), so callers may execute the points in
/// parallel and fold the accuracies back with [`reduce_batch_scaling`] for a
/// result identical to the sequential one.
pub fn batch_scaling_points(
    base_batch: usize,
    batches: &[usize],
    base_lr: f32,
) -> Vec<(usize, f32)> {
    assert!(base_batch > 0, "base batch must be positive");
    let mut points = Vec::new();
    for &batch in batches {
        assert!(batch > 0, "batch must be positive");
        points.push((batch, base_lr));
        let ratio = (batch as f32 / base_batch as f32).max(1.0);
        // Rate grid from the base up to the linear-rule value.
        for mult in [ratio.sqrt() / 2.0, ratio.sqrt(), ratio / 2.0, ratio] {
            if mult <= 1.0 {
                continue;
            }
            points.push((batch, base_lr * mult));
        }
    }
    points
}

/// Fold per-point accuracies (in [`batch_scaling_points`] order) into the
/// `(batch, top1_base_lr, top1_best_tuned_lr, best_lr)` rows of
/// [`run_batch_scaling`]. Ties keep the earlier grid entry, exactly like the
/// sequential strict-improvement scan.
pub fn reduce_batch_scaling(
    base_batch: usize,
    batches: &[usize],
    base_lr: f32,
    accs: &[f64],
) -> Vec<(usize, f64, f64, f32)> {
    assert!(base_batch > 0, "base batch must be positive");
    let mut it = accs.iter().copied();
    let mut rows = Vec::with_capacity(batches.len());
    for &batch in batches {
        let fixed = it.next().expect("accuracy for the base-rate run");
        let ratio = (batch as f32 / base_batch as f32).max(1.0);
        let mut best = (fixed, base_lr);
        for mult in [ratio.sqrt() / 2.0, ratio.sqrt(), ratio / 2.0, ratio] {
            if mult <= 1.0 {
                continue;
            }
            let acc = it.next().expect("accuracy for a tuned-rate run");
            if acc > best.0 {
                best = (acc, base_lr * mult);
            }
        }
        rows.push((batch, fixed, best.0, best.1));
    }
    assert!(it.next().is_none(), "more accuracies than sweep points");
    rows
}

/// Everything a batch-scaling sweep point needs that does *not* depend on
/// `(batch, lr)`: the test set, the freshly initialized model, and the full
/// augmented training stream in draw order.
///
/// The RNG draw sequence of [`run_with_batch`] — test set, then weight init,
/// then one `(class, observation)` draw per training sample — is independent
/// of how samples are grouped into batches, so every point of a sweep over
/// the same `cfg` consumes the *identical* stream. Materializing it once
/// turns O(points) augmentation work into O(1).
pub struct PreparedScaling {
    cfg: AugExperimentConfig,
    test_x: Matrix,
    test_labels: Vec<usize>,
    mlp0: Mlp,
    /// Training features, flattened `total × dim` in draw order.
    feats: Vec<f32>,
    /// Training labels in draw order.
    labels: Vec<usize>,
    dim: usize,
}

/// Generate the shared state for [`run_with_batch_prepared`], replaying the
/// exact RNG consumption order of a standalone [`run_with_batch`] call.
///
/// # Panics
///
/// Panics if `crop_edge > proto_edge` or `classes < 2`.
pub fn prepare_scaling(cfg: &AugExperimentConfig) -> PreparedScaling {
    assert!(cfg.crop_edge <= cfg.proto_edge, "crop larger than prototype");
    assert!(cfg.classes >= 2, "need at least two classes");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let protos: Vec<Image> = (0..cfg.classes)
        .map(|c| prototype(cfg.proto_edge, cfg.seed * 1000 + c as u64))
        .collect();
    let (test_x, test_labels) = test_set(&protos, cfg, &mut rng);
    let dim = cfg.crop_edge * cfg.crop_edge * 3;
    let mlp0 = Mlp::new(&[dim, cfg.hidden, cfg.classes], &mut rng);
    let total = cfg.epochs * cfg.train_per_epoch;
    let mut feats = Vec::with_capacity(total * dim);
    let mut labels = Vec::with_capacity(total);
    for _ in 0..total {
        let class = rng.gen_range(0..cfg.classes);
        let img = observe(&protos[class], cfg.crop_edge, true, cfg.noise_sigma, &mut rng);
        feats.extend(features(&img));
        labels.push(class);
    }
    PreparedScaling { cfg: *cfg, test_x, test_labels, mlp0, feats, labels, dim }
}

/// [`run_with_batch`] over pre-generated data: clone the shared initial
/// model and train it on the shared stream with this point's batch size and
/// learning rate. Bit-identical to the standalone path.
pub fn run_with_batch_prepared(prep: &PreparedScaling, batch: usize, lr: f32) -> f64 {
    let cfg = &prep.cfg;
    let mut mlp = prep.mlp0.clone();
    // Fixed sample budget across batch sizes: epochs x train_per_epoch.
    let total = cfg.epochs * cfg.train_per_epoch;
    let updates = total.div_ceil(batch).max(1);
    let warmup = (updates / 4).max(1);
    let mut step = 0usize;
    let mut done = 0;
    while done < total {
        let ramp = ((step + 1) as f32 / warmup as f32).min(1.0);
        let lr_t = lr * ramp;
        step += 1;
        let take = batch.min(total - done);
        let x = Matrix::from_vec(
            take,
            prep.dim,
            prep.feats[done * prep.dim..(done + take) * prep.dim].to_vec(),
        );
        let labels = &prep.labels[done..done + take];
        mlp.train_step(&x, labels, lr_t, 0.9);
        done += take;
    }
    mlp.top_k_accuracy(&prep.test_x, &prep.test_labels, 1)
}

/// Train the augmented arm with an explicit batch size and learning rate
/// (with the gradual-warmup schedule Goyal et al. pair with the scaling
/// rule: the rate ramps linearly over the first quarter of the updates);
/// returns final test top-1 accuracy. Fully self-seeded from `cfg.seed`.
pub fn run_with_batch(cfg: &AugExperimentConfig, batch: usize, lr: f32) -> f64 {
    run_with_batch_prepared(&prepare_scaling(cfg), batch, lr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> AugExperimentConfig {
        AugExperimentConfig {
            classes: 6,
            proto_edge: 20,
            crop_edge: 12,
            train_per_epoch: 512,
            test_samples: 256,
            epochs: 12,
            hidden: 64,
            lr: 0.05,
            noise_sigma: 4.0,
            seed: 11,
        }
    }

    #[test]
    fn augmentation_beats_no_augmentation() {
        // The Fig 5 shape: augmented training reaches clearly higher held-out
        // accuracy than center-crop-only training (compared on top-1, since
        // with few classes top-5 saturates).
        let res = run_experiment(&quick_cfg());
        let tail_mean = |c: &[f64]| c.iter().rev().take(3).sum::<f64>() / 3.0;
        let aug = tail_mean(&res.with_augmentation.top1);
        let plain = tail_mean(&res.without_augmentation.top1);
        assert!(
            aug > plain + 0.15,
            "expected augmentation to win: aug={aug:.3} plain={plain:.3}"
        );
        assert!(aug > 0.55, "augmented arm should learn well, got {aug:.3}");
    }

    #[test]
    fn accuracy_improves_over_epochs_with_augmentation() {
        let curve = run_arm(&quick_cfg(), true);
        assert_eq!(curve.top5.len(), 12);
        let early = curve.top5[0];
        let late = curve.final_top5();
        assert!(late >= early, "accuracy should not regress: {early} -> {late}");
        // Top-1 never exceeds top-5.
        for (a1, a5) in curve.top1.iter().zip(&curve.top5) {
            assert!(a1 <= a5);
        }
    }

    #[test]
    fn experiment_is_deterministic() {
        let cfg = AugExperimentConfig { epochs: 2, ..quick_cfg() };
        let a = run_arm(&cfg, true);
        let b = run_arm(&cfg, true);
        assert_eq!(a.top5, b.top5);
        assert_eq!(a.top1, b.top1);
    }



    #[test]
    fn retuned_lr_rescues_large_batches() {
        // §II-B third fold (Goyal et al.): with a fixed sample budget, an
        // 8x batch at the base learning rate underperforms; a properly
        // retuned (larger) rate recovers a large part of the gap.
        let cfg = AugExperimentConfig { epochs: 16, ..quick_cfg() };
        let rows = run_batch_scaling(&cfg, 32, &[32, 256]);
        let (_, small_fixed, _, _) = rows[0];
        let (_, big_fixed, big_tuned, best_lr) = rows[1];
        assert!(
            big_fixed < small_fixed - 0.1,
            "large batch at base lr should lag: {small_fixed:.3} vs {big_fixed:.3}"
        );
        // Margin kept modest: the recovery size (unlike its sign) is
        // sensitive to the exact RNG stream, and the vendored offline rand
        // generates a different (equally valid) stream than upstream.
        assert!(
            big_tuned > big_fixed + 0.02,
            "retuned lr should recover: fixed {big_fixed:.3}, tuned {big_tuned:.3}"
        );
        assert!(best_lr > cfg.lr, "the proper large-batch rate is larger");
    }

    #[test]
    #[should_panic(expected = "crop larger than prototype")]
    fn invalid_geometry_rejected() {
        let cfg = AugExperimentConfig { crop_edge: 64, proto_edge: 32, ..quick_cfg() };
        run_arm(&cfg, true);
    }
}

//! A minimal row-major `f32` matrix.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
///
/// # Example
///
/// ```
/// use trainbox_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    ///
    /// Panics on ragged input or empty rows.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let n = rhs.cols;
        let mut out = Matrix::zeros(self.rows, n);
        // Register-tiled i-k-j product: each output element still accumulates
        // its terms in ascending-k order (skipping zero lhs entries), exactly
        // like the naive loop — only the memory traffic changes, so results
        // are bit-identical. The tile keeps a strip of the output row in
        // registers across the whole k loop instead of re-loading and
        // re-storing it once per k.
        const TILE: usize = 48;
        for r in 0..self.rows {
            let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
            let out_row = &mut out.data[r * n..(r + 1) * n];
            let mut c0 = 0;
            // Full tiles: the compile-time strip width lets the accumulator
            // live entirely in vector registers across the k loop.
            while c0 + TILE <= n {
                let mut acc = [0.0f32; TILE];
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let base = k * n + c0;
                    let strip: &[f32; TILE] =
                        rhs.data[base..base + TILE].try_into().expect("tile-sized strip");
                    for (t, &b) in acc.iter_mut().zip(strip) {
                        *t += a * b;
                    }
                }
                out_row[c0..c0 + TILE].copy_from_slice(&acc);
                c0 += TILE;
            }
            // Ragged tail strip, if the output width is not a tile multiple.
            if c0 < n {
                let w = n - c0;
                let mut acc = [0.0f32; TILE];
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let base = k * n + c0;
                    for (t, &b) in acc[..w].iter_mut().zip(&rhs.data[base..base + w]) {
                        *t += a * b;
                    }
                }
                out_row[c0..].copy_from_slice(&acc[..w]);
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// `self += alpha * other`, in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise product (Hadamard).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).collect(),
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.matmul(&Matrix::identity(5)), a);
        assert_eq!(Matrix::identity(3).matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(4, 7, |r, c| (r * 31 + c * 7) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(3, 2), a.at(2, 3));
    }

    #[test]
    fn add_scaled_and_map() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a, Matrix::from_rows(&[&[6.0, 12.0]]));
        assert_eq!(a.map(|v| v * 2.0), Matrix::from_rows(&[&[12.0, 24.0]]));
    }

    #[test]
    fn hadamard_and_norm() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.norm(), 5.0);
        let h = a.hadamard(&a);
        assert_eq!(h, Matrix::from_rows(&[&[9.0, 16.0]]));
    }

    #[test]
    fn rows_accessor() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
    }

    proptest! {
        #[test]
        fn matmul_distributes_over_addition(
            seed in 0u64..1000,
        ) {
            // (A+B)C == AC + BC within float tolerance, on small random matrices.
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut gen = |r: usize, c: usize| Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0));
            let a = gen(3, 4);
            let b = gen(3, 4);
            let c = gen(4, 2);
            let mut ab = a.clone();
            ab.add_scaled(&b, 1.0);
            let lhs = ab.matmul(&c);
            let mut rhs = a.matmul(&c);
            rhs.add_scaled(&b.matmul(&c), 1.0);
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}

//! Minimal std-only HTTP/1.1 plumbing: request parsing, response writing,
//! and the bounded admission queue between the acceptor and the workers.
//!
//! The service speaks just enough HTTP for its API — one request per
//! connection (`Connection: close`), `Content-Length` bodies only. That
//! keeps the parser a few dozen lines, auditable, and dependency-free,
//! which is the point: the container has no HTTP framework to lean on.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};

/// Largest request body accepted, matching the service's use: a SimRequest
/// is well under a kilobyte; anything megabytes long is not one.
pub const MAX_BODY_BYTES: usize = 1 << 20;

#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
}

#[derive(Debug)]
pub enum ParseError {
    Io(io::Error),
    /// Malformed request line, header, or body framing; the message is
    /// client-facing.
    Bad(String),
    TooLarge,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error reading request: {e}"),
            ParseError::Bad(msg) => write!(f, "malformed HTTP request: {msg}"),
            ParseError::TooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Read one HTTP/1.1 request (line + headers + `Content-Length` body).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Err(ParseError::Bad(format!("bad request line {line:?}"))),
    };

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(ParseError::Bad("connection closed mid-headers".to_string()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Bad(format!("bad header {header:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Bad(format!("bad content-length {value:?}")))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge);
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| ParseError::Bad("request body is not UTF-8".to_string()))?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write a full JSON response and flush. Failures are returned for the
/// caller to log; a client that hung up mid-write is not a server error.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Answer a connection that is being refused *before* its request was read
/// (load shedding): write the response, half-close, then discard whatever
/// the client had already sent. Closing with unread data queued would RST
/// the socket and destroy the response before the client reads it. The
/// drain is bounded (read timeout + byte cap) so a slow-trickling client
/// cannot pin the acceptor.
pub fn refuse(mut stream: TcpStream, status: u16, headers: &[(&str, &str)], body: &str) {
    let _ = write_response(&mut stream, status, headers, body);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(100)));
    let mut discard = [0u8; 4096];
    let mut budget = MAX_BODY_BYTES;
    while budget > 0 {
        match stream.read(&mut discard) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// Bounded MPMC hand-off between the acceptor and the worker pool.
///
/// `push` never blocks: over capacity the item comes straight back so the
/// acceptor can shed load (HTTP 429) instead of building an invisible
/// backlog. `pop` blocks until an item arrives or the queue is closed *and*
/// drained — closing is how graceful shutdown lets workers finish the
/// admitted backlog before exiting.
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    cv: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner { items: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit `item`, or hand it back if the queue is full or closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Next admitted item; `None` once closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Stop admitting; wake every blocked `pop` so workers can drain out.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// Current backlog (metrics gauge).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_over_capacity_returns_the_item() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3), "third push must shed");
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok(), "space freed by pop re-admits");
    }

    #[test]
    fn close_drains_the_backlog_then_stops() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3), "closed queue admits nothing");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}

//! Minimal std-only HTTP/1.1 plumbing: an incremental (push) request
//! parser, response byte builders, chunked-transfer helpers for NDJSON
//! streaming, and the bounded hand-off queue between the event loops and
//! the compute pool.
//!
//! The service speaks just enough HTTP for its API — one request per
//! connection (`Connection: close`), `Content-Length` bodies only. That
//! keeps the parser a few hundred lines, auditable, and dependency-free,
//! which is the point: the container has no HTTP framework to lean on.
//!
//! The parser is a byte-fed state machine ([`RequestParser`]) so the
//! non-blocking event loop can feed it whatever `read(2)` returned and
//! resume later; the blocking [`read_request`] used by tests and fuzzing
//! is a thin wrapper that pumps socket reads through the same machine,
//! so both tiers share one set of framing rules and limits.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};

/// Largest request body accepted, matching the service's use: a SimRequest
/// is well under a kilobyte; anything megabytes long is not one.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Longest accepted request line, bytes. Our longest real path is a few
/// dozen characters; 8 KiB matches common server defaults.
pub const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024;

/// Longest accepted single header line, bytes.
pub const MAX_HEADER_LINE_BYTES: usize = 8 * 1024;

/// Most headers accepted on one request. The API needs three.
pub const MAX_HEADERS: usize = 64;

#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
    /// Value of the `X-Deadline-Ms` header, if the client sent one: the
    /// wall-clock budget it is willing to wait for the answer.
    pub deadline_ms: Option<u64>,
}

#[derive(Debug)]
pub enum ParseError {
    Io(io::Error),
    /// Malformed request line, header, or body framing; the message is
    /// client-facing.
    Bad(String),
    /// Body longer than [`MAX_BODY_BYTES`] (HTTP 413).
    TooLarge,
    /// Request line or header section over the caps (HTTP 431); the
    /// message names the violated limit.
    HeadersTooLarge(String),
    /// The socket read timeout (or the overall header budget) expired
    /// before a full request arrived (HTTP 408): a slowloris or stalled
    /// client, disconnected instead of pinning the worker.
    Timeout,
    /// Valid HTTP the service deliberately does not speak (HTTP 501) —
    /// today that is exactly `Transfer-Encoding: chunked` request bodies.
    NotImplemented(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error reading request: {e}"),
            ParseError::Bad(msg) => write!(f, "malformed HTTP request: {msg}"),
            ParseError::TooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
            ParseError::HeadersTooLarge(msg) => write!(f, "request header section too large: {msg}"),
            ParseError::Timeout => write!(f, "timed out waiting for the request"),
            ParseError::NotImplemented(msg) => write!(f, "unsupported HTTP feature: {msg}"),
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        classify_io(e)
    }
}

/// Sort an I/O failure: a read that hit the socket timeout is a slow
/// client (408), everything else is a transport error.
fn classify_io(e: io::Error) -> ParseError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ParseError::Timeout,
        _ => ParseError::Io(e),
    }
}

/// What [`RequestParser::feed`] produced so far.
#[derive(Debug)]
pub enum ParseStatus {
    /// The bytes so far frame no complete request; feed more when they
    /// arrive.
    NeedMore,
    /// A full request line + headers + body was consumed.
    Done(Request),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    RequestLine,
    Headers,
    Body,
    Done,
}

/// Incremental HTTP/1.1 request parser: feed it whatever the socket
/// yielded, get back [`ParseStatus::NeedMore`] or a finished request.
/// All framing limits ([`MAX_REQUEST_LINE_BYTES`], [`MAX_HEADER_LINE_BYTES`],
/// [`MAX_HEADERS`], [`MAX_BODY_BYTES`]) are enforced *while* bytes arrive,
/// so a client streaming an endless line is cut off at the cap, not
/// buffered forever.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    pos: usize,
    phase: Phase,
    method: String,
    path: String,
    /// `Content-Length`, once seen. Duplicate headers must agree: accepting
    /// mismatched duplicates last-one-wins is the classic request-smuggling
    /// ambiguity, so a conflict is a hard 400.
    content_length: Option<usize>,
    /// A `Transfer-Encoding` header listed `chunked`. The service does not
    /// speak chunked request bodies; this is answered with an explicit 501
    /// instead of silently misreading the framing as a zero-length body.
    chunked: bool,
    expect_continue: bool,
    continue_sent: bool,
    deadline_ms: Option<u64>,
    n_headers: usize,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    pub fn new() -> Self {
        RequestParser {
            buf: Vec::new(),
            pos: 0,
            phase: Phase::RequestLine,
            method: String::new(),
            path: String::new(),
            content_length: None,
            chunked: false,
            expect_continue: false,
            continue_sent: false,
            deadline_ms: None,
            n_headers: 0,
        }
    }

    /// True while the request line + header section is still arriving —
    /// the window the overall header budget applies to.
    pub fn headers_incomplete(&self) -> bool {
        matches!(self.phase, Phase::RequestLine | Phase::Headers)
    }

    /// True once any byte has been fed: distinguishes a clean
    /// connect-then-close from a request truncated mid-flight.
    pub fn saw_bytes(&self) -> bool {
        !self.buf.is_empty()
    }

    /// The client sent `Expect: 100-continue` and is now waiting for the
    /// interim response before it ships the body. Returns true exactly
    /// once, after the header section is parsed.
    pub fn take_continue_request(&mut self) -> bool {
        if self.phase == Phase::Body && self.expect_continue && !self.continue_sent {
            self.continue_sent = true;
            return true;
        }
        false
    }

    /// Feed freshly read bytes and advance the state machine.
    pub fn feed(&mut self, data: &[u8]) -> Result<ParseStatus, ParseError> {
        self.buf.extend_from_slice(data);
        self.advance()
    }

    /// The peer hit EOF: classify what was lost. A complete request never
    /// reaches here (feed returns `Done` first), so EOF is always an error;
    /// `Io(UnexpectedEof)` means the client closed without sending anything
    /// (nothing to answer).
    pub fn finish_eof(&self) -> ParseError {
        match self.phase {
            Phase::RequestLine if self.buf.is_empty() => ParseError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before any request",
            )),
            Phase::RequestLine => ParseError::Bad("connection closed mid-request line".to_string()),
            Phase::Headers if self.pos == self.buf.len() => {
                ParseError::Bad("connection closed mid-headers".to_string())
            }
            Phase::Headers => ParseError::Bad("connection closed mid-header".to_string()),
            Phase::Body => ParseError::Bad(format!(
                "body shorter than content-length {}",
                self.content_length.unwrap_or(0)
            )),
            Phase::Done => ParseError::Bad("bytes after a complete request".to_string()),
        }
    }

    fn advance(&mut self) -> Result<ParseStatus, ParseError> {
        loop {
            match self.phase {
                Phase::RequestLine => {
                    let Some(line) = self.take_line(MAX_REQUEST_LINE_BYTES, "request line")?
                    else {
                        return Ok(ParseStatus::NeedMore);
                    };
                    let mut parts = line.split_whitespace();
                    let (method, path) = match (parts.next(), parts.next()) {
                        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
                        _ => return Err(ParseError::Bad(format!("bad request line {line:?}"))),
                    };
                    self.method = method;
                    self.path = path;
                    self.phase = Phase::Headers;
                }
                Phase::Headers => {
                    let Some(line) = self.take_line(MAX_HEADER_LINE_BYTES, "header")? else {
                        return Ok(ParseStatus::NeedMore);
                    };
                    if line.is_empty() {
                        self.end_headers()?;
                        self.phase = Phase::Body;
                        continue;
                    }
                    self.header_line(&line)?;
                }
                Phase::Body => {
                    let need = self.content_length.unwrap_or(0);
                    if self.buf.len() - self.pos < need {
                        return Ok(ParseStatus::NeedMore);
                    }
                    let body = String::from_utf8(self.buf[self.pos..self.pos + need].to_vec())
                        .map_err(|_| ParseError::Bad("request body is not UTF-8".to_string()))?;
                    self.pos += need;
                    self.phase = Phase::Done;
                    return Ok(ParseStatus::Done(Request {
                        method: std::mem::take(&mut self.method),
                        path: std::mem::take(&mut self.path),
                        body,
                        deadline_ms: self.deadline_ms,
                    }));
                }
                // Trailing bytes after the request (we never keep-alive);
                // ignored, the connection closes after the response.
                Phase::Done => return Ok(ParseStatus::NeedMore),
            }
        }
    }

    /// Take one CRLF/LF-terminated line out of the buffer, or `None` if no
    /// terminator has arrived yet. The cap is enforced against buffered
    /// bytes too, so an endless unterminated line still trips it.
    fn take_line(&mut self, cap: usize, what: &str) -> Result<Option<String>, ParseError> {
        let avail = &self.buf[self.pos..];
        let Some(nl) = avail.iter().position(|&b| b == b'\n') else {
            if avail.len() > cap + 2 {
                // +2 tolerates the CR LF terminator on an exactly-cap line.
                return Err(ParseError::HeadersTooLarge(format!("{what} exceeds {cap} bytes")));
            }
            return Ok(None);
        };
        if nl + 1 > cap + 2 {
            return Err(ParseError::HeadersTooLarge(format!("{what} exceeds {cap} bytes")));
        }
        let mut end = self.pos + nl;
        while end > self.pos && self.buf[end - 1] == b'\r' {
            end -= 1;
        }
        let line = String::from_utf8(self.buf[self.pos..end].to_vec())
            .map_err(|_| ParseError::Bad(format!("{what} is not UTF-8")))?;
        self.pos += nl + 1;
        Ok(Some(line))
    }

    fn header_line(&mut self, header: &str) -> Result<(), ParseError> {
        self.n_headers += 1;
        if self.n_headers > MAX_HEADERS {
            return Err(ParseError::HeadersTooLarge(format!("more than {MAX_HEADERS} headers")));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Bad(format!("bad header {header:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Bad(format!("bad content-length {value:?}")))?;
            match self.content_length {
                Some(prev) if prev != parsed => {
                    return Err(ParseError::Bad(format!(
                        "conflicting content-length headers: {prev} then {parsed}"
                    )));
                }
                _ => self.content_length = Some(parsed),
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            if value.split(',').any(|t| t.trim().eq_ignore_ascii_case("chunked")) {
                self.chunked = true;
            }
        } else if name.eq_ignore_ascii_case("x-deadline-ms") {
            let ms: u64 = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Bad(format!("bad x-deadline-ms {value:?}")))?;
            self.deadline_ms = Some(ms);
        } else if name.eq_ignore_ascii_case("expect")
            && value.trim().eq_ignore_ascii_case("100-continue")
        {
            self.expect_continue = true;
        }
        Ok(())
    }

    fn end_headers(&mut self) -> Result<(), ParseError> {
        if self.chunked {
            return Err(ParseError::NotImplemented(
                "transfer-encoding: chunked is not supported; send a content-length body"
                    .to_string(),
            ));
        }
        if self.content_length.unwrap_or(0) > MAX_BODY_BYTES {
            return Err(ParseError::TooLarge);
        }
        Ok(())
    }
}

/// Read one HTTP/1.1 request (line + headers + `Content-Length` body),
/// blocking. A wrapper over [`RequestParser`] for the tests, the fuzzer,
/// and any synchronous caller.
///
/// Every read is bounded twice over: the stream's socket read timeout caps
/// each wait for bytes, and `header_budget` caps the *total* wall-clock
/// spent on the request line + headers — so a client trickling one byte
/// per just-under-timeout cannot stretch the read indefinitely.
pub fn read_request(
    stream: &mut TcpStream,
    header_budget: std::time::Duration,
) -> Result<Request, ParseError> {
    let started = std::time::Instant::now();
    let mut parser = RequestParser::new();
    let mut buf = [0u8; 4096];
    loop {
        if parser.headers_incomplete() && started.elapsed() > header_budget {
            return Err(ParseError::Timeout);
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err(parser.finish_eof()),
            Ok(n) => {
                if let ParseStatus::Done(req) = parser.feed(&buf[..n])? {
                    return Ok(req);
                }
                if parser.take_continue_request() {
                    let _ = stream.write_all(CONTINUE_100);
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(classify_io(e)),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// The interim response for `Expect: 100-continue` clients (curl sends it
/// for bodies over a kilobyte and stalls up to a second waiting).
pub const CONTINUE_100: &[u8] = b"HTTP/1.1 100 Continue\r\n\r\n";

/// Serialize a full JSON response (status line, headers, body) to bytes —
/// the form the non-blocking writer needs.
pub fn response_bytes(status: u16, extra_headers: &[(&str, &str)], body: &str) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Response head for an NDJSON stream: chunked transfer encoding, one
/// chunk per line, terminated by [`LAST_CHUNK`].
pub fn streaming_head_bytes(status: u16, extra_headers: &[(&str, &str)]) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\nconnection: close\r\n",
        reason(status),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    head.into_bytes()
}

/// One NDJSON line as an HTTP chunk (the newline travels inside the chunk).
pub fn chunk_bytes(line: &str) -> Vec<u8> {
    let mut out = format!("{:x}\r\n", line.len() + 1).into_bytes();
    out.extend_from_slice(line.as_bytes());
    out.extend_from_slice(b"\n\r\n");
    out
}

/// The zero-length chunk ending a chunked response.
pub const LAST_CHUNK: &[u8] = b"0\r\n\r\n";

/// Write a full JSON response and flush. Failures are returned for the
/// caller to log; a client that hung up mid-write is not a server error.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    stream.write_all(&response_bytes(status, extra_headers, body))?;
    stream.flush()
}

/// Answer a connection that is being refused *before* its request was read
/// (load shedding): write the response, half-close, then discard whatever
/// the client had already sent. Closing with unread data queued would RST
/// the socket and destroy the response before the client reads it. The
/// drain is bounded (read timeout + byte cap) so a slow-trickling client
/// cannot pin the acceptor.
pub fn refuse(mut stream: TcpStream, status: u16, headers: &[(&str, &str)], body: &str) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(1)));
    let _ = write_response(&mut stream, status, headers, body);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(100)));
    let mut discard = [0u8; 4096];
    let mut budget = MAX_BODY_BYTES;
    while budget > 0 {
        match stream.read(&mut discard) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// Bounded MPMC hand-off between the event loops and the compute pool.
///
/// `push` never blocks: over capacity the item comes straight back so the
/// caller can shed load (HTTP 429) instead of building an invisible
/// backlog. `pop` blocks until an item arrives or the queue is closed *and*
/// drained — closing is how graceful shutdown lets workers finish the
/// admitted backlog before exiting.
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    cv: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner { items: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit `item`, or hand it back if the queue is full or closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Next admitted item; `None` once closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Stop admitting; wake every blocked `pop` so workers can drain out.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// Current backlog (metrics gauge).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Admission capacity (readiness gauge).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    /// A connected client/server socket pair over loopback.
    fn pipe() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    const BUDGET: Duration = Duration::from_secs(5);

    #[test]
    fn well_formed_request_parses_with_deadline_header() {
        let (mut client, mut server) = pipe();
        client
            .write_all(
                b"POST /simulate HTTP/1.1\r\nX-Deadline-Ms: 250\r\n\
                  content-length: 4\r\n\r\nbody",
            )
            .unwrap();
        let req = read_request(&mut server, BUDGET).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/simulate");
        assert_eq!(req.body, "body");
        assert_eq!(req.deadline_ms, Some(250));
    }

    #[test]
    fn byte_at_a_time_feed_parses_identically() {
        let raw = b"POST /simulate HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody";
        let mut parser = RequestParser::new();
        let mut done = None;
        for (i, b) in raw.iter().enumerate() {
            match parser.feed(std::slice::from_ref(b)).unwrap() {
                ParseStatus::Done(req) => {
                    assert_eq!(i, raw.len() - 1, "must finish exactly on the last byte");
                    done = Some(req);
                }
                ParseStatus::NeedMore => {}
            }
        }
        let req = done.expect("request must complete");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/simulate");
        assert_eq!(req.body, "body");
    }

    #[test]
    fn duplicate_equal_content_length_is_tolerated() {
        let (mut client, mut server) = pipe();
        client
            .write_all(
                b"POST /simulate HTTP/1.1\r\ncontent-length: 4\r\n\
                  Content-Length: 4\r\n\r\nbody",
            )
            .unwrap();
        let req = read_request(&mut server, BUDGET).unwrap();
        assert_eq!(req.body, "body");
    }

    #[test]
    fn conflicting_content_lengths_are_a_clean_400() {
        let (mut client, mut server) = pipe();
        client
            .write_all(
                b"POST /simulate HTTP/1.1\r\ncontent-length: 4\r\n\
                  Content-Length: 5\r\n\r\nbody!",
            )
            .unwrap();
        let err = read_request(&mut server, BUDGET).unwrap_err();
        match err {
            ParseError::Bad(msg) => {
                assert!(msg.contains("conflicting content-length"), "{msg}")
            }
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn chunked_transfer_encoding_is_an_explicit_501() {
        let (mut client, mut server) = pipe();
        client
            .write_all(
                b"POST /simulate HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n\
                  4\r\nbody\r\n0\r\n\r\n",
            )
            .unwrap();
        let err = read_request(&mut server, BUDGET).unwrap_err();
        assert!(matches!(err, ParseError::NotImplemented(_)), "{err:?}");
    }

    #[test]
    fn expect_100_continue_is_surfaced_once() {
        let mut parser = RequestParser::new();
        let status = parser
            .feed(b"POST /simulate HTTP/1.1\r\nexpect: 100-continue\r\ncontent-length: 4\r\n\r\n")
            .unwrap();
        assert!(matches!(status, ParseStatus::NeedMore));
        assert!(parser.take_continue_request(), "continue must be requested");
        assert!(!parser.take_continue_request(), "and only surfaced once");
        match parser.feed(b"body").unwrap() {
            ParseStatus::Done(req) => assert_eq!(req.body, "body"),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn endless_request_line_is_cut_off_at_the_cap() {
        let (mut client, mut server) = pipe();
        let writer = thread::spawn(move || {
            // No newline ever: a client streaming one endless "line".
            let chunk = [b'A'; 4096];
            for _ in 0..8 {
                if client.write_all(&chunk).is_err() {
                    break;
                }
            }
        });
        let err = read_request(&mut server, BUDGET).unwrap_err();
        assert!(
            matches!(err, ParseError::HeadersTooLarge(_)),
            "cap must trip while reading, got {err:?}"
        );
        writer.join().unwrap();
    }

    #[test]
    fn too_many_headers_is_rejected() {
        let (mut client, mut server) = pipe();
        let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("x-filler-{i}: {i}\r\n"));
        }
        raw.push_str("\r\n");
        client.write_all(raw.as_bytes()).unwrap();
        let err = read_request(&mut server, BUDGET).unwrap_err();
        assert!(matches!(err, ParseError::HeadersTooLarge(_)), "{err:?}");
    }

    #[test]
    fn short_body_is_a_clean_400_not_a_blocked_read() {
        let (mut client, mut server) = pipe();
        client
            .write_all(b"POST /simulate HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort")
            .unwrap();
        drop(client); // hang up 95 bytes early
        let err = read_request(&mut server, BUDGET).unwrap_err();
        match err {
            ParseError::Bad(msg) => assert!(msg.contains("content-length"), "{msg}"),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn idle_client_hits_the_socket_timeout() {
        let (_client, mut server) = pipe();
        server.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let started = std::time::Instant::now();
        let err = read_request(&mut server, BUDGET).unwrap_err();
        assert!(matches!(err, ParseError::Timeout), "{err:?}");
        assert!(started.elapsed() < Duration::from_secs(2), "must not block");
    }

    #[test]
    fn trickler_is_cut_off_by_the_header_budget() {
        // One byte per 20 ms keeps every socket read alive, so only the
        // overall budget can end this request.
        let (mut client, mut server) = pipe();
        server.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        let writer = thread::spawn(move || {
            for b in b"GET /healthz HTTP/1.1\r\nx-slow: 1\r".iter() {
                if client.write_all(&[*b]).is_err() {
                    return;
                }
                thread::sleep(Duration::from_millis(20));
            }
            // Never send the final newline; keep the socket open.
            thread::sleep(Duration::from_millis(500));
        });
        let started = std::time::Instant::now();
        let err = read_request(&mut server, Duration::from_millis(150)).unwrap_err();
        assert!(matches!(err, ParseError::Timeout), "{err:?}");
        assert!(
            started.elapsed() < Duration::from_millis(1500),
            "budget must bound total header time, took {:?}",
            started.elapsed()
        );
        writer.join().unwrap();
    }

    #[test]
    fn deadline_header_must_be_numeric() {
        let (mut client, mut server) = pipe();
        client
            .write_all(b"POST /simulate HTTP/1.1\r\nx-deadline-ms: soon\r\n\r\n")
            .unwrap();
        let err = read_request(&mut server, BUDGET).unwrap_err();
        assert!(matches!(err, ParseError::Bad(_)), "{err:?}");
    }

    #[test]
    fn chunk_framing_round_trips() {
        let head = String::from_utf8(streaming_head_bytes(200, &[])).unwrap();
        assert!(head.contains("transfer-encoding: chunked"), "{head}");
        assert!(head.contains("application/x-ndjson"), "{head}");
        let chunk = String::from_utf8(chunk_bytes("{\"point\":0}")).unwrap();
        // 11 payload bytes + the NDJSON newline = 0xc.
        assert_eq!(chunk, "c\r\n{\"point\":0}\n\r\n");
    }

    #[test]
    fn push_over_capacity_returns_the_item() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3), "third push must shed");
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok(), "space freed by pop re-admits");
    }

    #[test]
    fn close_drains_the_backlog_then_stops() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3), "closed queue admits nothing");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}

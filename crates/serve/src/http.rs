//! Minimal std-only HTTP/1.1 plumbing: request parsing, response writing,
//! and the bounded admission queue between the acceptor and the workers.
//!
//! The service speaks just enough HTTP for its API — one request per
//! connection (`Connection: close`), `Content-Length` bodies only. That
//! keeps the parser a few dozen lines, auditable, and dependency-free,
//! which is the point: the container has no HTTP framework to lean on.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};

/// Largest request body accepted, matching the service's use: a SimRequest
/// is well under a kilobyte; anything megabytes long is not one.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Longest accepted request line, bytes. Our longest real path is a few
/// dozen characters; 8 KiB matches common server defaults.
pub const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024;

/// Longest accepted single header line, bytes.
pub const MAX_HEADER_LINE_BYTES: usize = 8 * 1024;

/// Most headers accepted on one request. The API needs three.
pub const MAX_HEADERS: usize = 64;

#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
    /// Value of the `X-Deadline-Ms` header, if the client sent one: the
    /// wall-clock budget it is willing to wait for the answer.
    pub deadline_ms: Option<u64>,
}

#[derive(Debug)]
pub enum ParseError {
    Io(io::Error),
    /// Malformed request line, header, or body framing; the message is
    /// client-facing.
    Bad(String),
    /// Body longer than [`MAX_BODY_BYTES`] (HTTP 413).
    TooLarge,
    /// Request line or header section over the caps (HTTP 431); the
    /// message names the violated limit.
    HeadersTooLarge(String),
    /// The socket read timeout (or the overall header budget) expired
    /// before a full request arrived (HTTP 408): a slowloris or stalled
    /// client, disconnected instead of pinning the worker.
    Timeout,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error reading request: {e}"),
            ParseError::Bad(msg) => write!(f, "malformed HTTP request: {msg}"),
            ParseError::TooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
            ParseError::HeadersTooLarge(msg) => write!(f, "request header section too large: {msg}"),
            ParseError::Timeout => write!(f, "timed out waiting for the request"),
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        classify_io(e)
    }
}

/// Sort an I/O failure: a read that hit the socket timeout is a slow
/// client (408), everything else is a transport error.
fn classify_io(e: io::Error) -> ParseError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ParseError::Timeout,
        _ => ParseError::Io(e),
    }
}

/// Read one CRLF/LF-terminated line of at most `cap` bytes. `Ok(None)`
/// means clean EOF before any byte arrived; EOF mid-line is an error
/// (truncated request). The cap is enforced *while* reading, so a client
/// streaming an endless line is cut off at `cap`, not buffered forever.
fn read_line_bounded(
    reader: &mut impl BufRead,
    cap: usize,
    what: &str,
) -> Result<Option<String>, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(classify_io(e)),
        };
        if available.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(ParseError::Bad(format!("connection closed mid-{what}")));
        }
        let (chunk, terminated) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (available.len(), false),
        };
        if line.len() + chunk > cap + 2 {
            // +2 tolerates the CR LF terminator on an exactly-cap line.
            reader.consume(chunk);
            return Err(ParseError::HeadersTooLarge(format!("{what} exceeds {cap} bytes")));
        }
        line.extend_from_slice(&available[..chunk]);
        reader.consume(chunk);
        if terminated {
            while matches!(line.last(), Some(b'\n' | b'\r')) {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| ParseError::Bad(format!("{what} is not UTF-8")));
        }
    }
}

/// Read one HTTP/1.1 request (line + headers + `Content-Length` body).
///
/// Every read is bounded twice over: the stream's socket read timeout caps
/// each wait for bytes, and `header_budget` caps the *total* wall-clock
/// spent on the request line + headers — so a client trickling one byte
/// per just-under-timeout cannot stretch the read indefinitely.
pub fn read_request(
    stream: &mut TcpStream,
    header_budget: std::time::Duration,
) -> Result<Request, ParseError> {
    let started = std::time::Instant::now();
    let mut reader = BufReader::new(stream);
    let line = match read_line_bounded(&mut reader, MAX_REQUEST_LINE_BYTES, "request line")? {
        Some(line) => line,
        // Closed without sending anything: nothing to answer.
        None => {
            return Err(ParseError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before any request",
            )))
        }
    };
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Err(ParseError::Bad(format!("bad request line {line:?}"))),
    };

    let mut content_length = 0usize;
    let mut deadline_ms = None;
    let mut n_headers = 0usize;
    loop {
        if started.elapsed() > header_budget {
            return Err(ParseError::Timeout);
        }
        let header = match read_line_bounded(&mut reader, MAX_HEADER_LINE_BYTES, "header")? {
            Some(header) => header,
            None => return Err(ParseError::Bad("connection closed mid-headers".to_string())),
        };
        if header.is_empty() {
            break;
        }
        n_headers += 1;
        if n_headers > MAX_HEADERS {
            return Err(ParseError::HeadersTooLarge(format!("more than {MAX_HEADERS} headers")));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Bad(format!("bad header {header:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Bad(format!("bad content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("x-deadline-ms") {
            let ms: u64 = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Bad(format!("bad x-deadline-ms {value:?}")))?;
            deadline_ms = Some(ms);
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge);
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| match e.kind() {
        // The client promised `content-length` bytes and hung up early: a
        // framing violation answered with a clean 400 + close, never a
        // blocked read.
        io::ErrorKind::UnexpectedEof => ParseError::Bad(format!(
            "body shorter than content-length {content_length}"
        )),
        _ => classify_io(e),
    })?;
    let body = String::from_utf8(body)
        .map_err(|_| ParseError::Bad("request body is not UTF-8".to_string()))?;
    Ok(Request { method, path, body, deadline_ms })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a full JSON response and flush. Failures are returned for the
/// caller to log; a client that hung up mid-write is not a server error.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Answer a connection that is being refused *before* its request was read
/// (load shedding): write the response, half-close, then discard whatever
/// the client had already sent. Closing with unread data queued would RST
/// the socket and destroy the response before the client reads it. The
/// drain is bounded (read timeout + byte cap) so a slow-trickling client
/// cannot pin the acceptor.
pub fn refuse(mut stream: TcpStream, status: u16, headers: &[(&str, &str)], body: &str) {
    let _ = write_response(&mut stream, status, headers, body);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(100)));
    let mut discard = [0u8; 4096];
    let mut budget = MAX_BODY_BYTES;
    while budget > 0 {
        match stream.read(&mut discard) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// Bounded MPMC hand-off between the acceptor and the worker pool.
///
/// `push` never blocks: over capacity the item comes straight back so the
/// acceptor can shed load (HTTP 429) instead of building an invisible
/// backlog. `pop` blocks until an item arrives or the queue is closed *and*
/// drained — closing is how graceful shutdown lets workers finish the
/// admitted backlog before exiting.
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    cv: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner { items: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit `item`, or hand it back if the queue is full or closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Next admitted item; `None` once closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Stop admitting; wake every blocked `pop` so workers can drain out.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// Current backlog (metrics gauge).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Admission capacity (readiness gauge).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    /// A connected client/server socket pair over loopback.
    fn pipe() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    const BUDGET: Duration = Duration::from_secs(5);

    #[test]
    fn well_formed_request_parses_with_deadline_header() {
        let (mut client, mut server) = pipe();
        client
            .write_all(
                b"POST /simulate HTTP/1.1\r\nX-Deadline-Ms: 250\r\n\
                  content-length: 4\r\n\r\nbody",
            )
            .unwrap();
        let req = read_request(&mut server, BUDGET).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/simulate");
        assert_eq!(req.body, "body");
        assert_eq!(req.deadline_ms, Some(250));
    }

    #[test]
    fn endless_request_line_is_cut_off_at_the_cap() {
        let (mut client, mut server) = pipe();
        let writer = thread::spawn(move || {
            // No newline ever: a client streaming one endless "line".
            let chunk = [b'A'; 4096];
            for _ in 0..8 {
                if client.write_all(&chunk).is_err() {
                    break;
                }
            }
        });
        let err = read_request(&mut server, BUDGET).unwrap_err();
        assert!(
            matches!(err, ParseError::HeadersTooLarge(_)),
            "cap must trip while reading, got {err:?}"
        );
        writer.join().unwrap();
    }

    #[test]
    fn too_many_headers_is_rejected() {
        let (mut client, mut server) = pipe();
        let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("x-filler-{i}: {i}\r\n"));
        }
        raw.push_str("\r\n");
        client.write_all(raw.as_bytes()).unwrap();
        let err = read_request(&mut server, BUDGET).unwrap_err();
        assert!(matches!(err, ParseError::HeadersTooLarge(_)), "{err:?}");
    }

    #[test]
    fn short_body_is_a_clean_400_not_a_blocked_read() {
        let (mut client, mut server) = pipe();
        client
            .write_all(b"POST /simulate HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort")
            .unwrap();
        drop(client); // hang up 95 bytes early
        let err = read_request(&mut server, BUDGET).unwrap_err();
        match err {
            ParseError::Bad(msg) => assert!(msg.contains("content-length"), "{msg}"),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn idle_client_hits_the_socket_timeout() {
        let (_client, mut server) = pipe();
        server.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let started = std::time::Instant::now();
        let err = read_request(&mut server, BUDGET).unwrap_err();
        assert!(matches!(err, ParseError::Timeout), "{err:?}");
        assert!(started.elapsed() < Duration::from_secs(2), "must not block");
    }

    #[test]
    fn trickler_is_cut_off_by_the_header_budget() {
        // One byte per 20 ms keeps every socket read alive, so only the
        // overall budget can end this request.
        let (mut client, mut server) = pipe();
        server.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        let writer = thread::spawn(move || {
            for b in b"GET /healthz HTTP/1.1\r\nx-slow: 1\r".iter() {
                if client.write_all(&[*b]).is_err() {
                    return;
                }
                thread::sleep(Duration::from_millis(20));
            }
            // Never send the final newline; keep the socket open.
            thread::sleep(Duration::from_millis(500));
        });
        let started = std::time::Instant::now();
        let err = read_request(&mut server, Duration::from_millis(150)).unwrap_err();
        assert!(matches!(err, ParseError::Timeout), "{err:?}");
        assert!(
            started.elapsed() < Duration::from_millis(1500),
            "budget must bound total header time, took {:?}",
            started.elapsed()
        );
        writer.join().unwrap();
    }

    #[test]
    fn deadline_header_must_be_numeric() {
        let (mut client, mut server) = pipe();
        client
            .write_all(b"POST /simulate HTTP/1.1\r\nx-deadline-ms: soon\r\n\r\n")
            .unwrap();
        let err = read_request(&mut server, BUDGET).unwrap_err();
        assert!(matches!(err, ParseError::Bad(_)), "{err:?}");
    }

    #[test]
    fn push_over_capacity_returns_the_item() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3), "third push must shed");
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok(), "space freed by pop re-admits");
    }

    #[test]
    fn close_drains_the_backlog_then_stops() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3), "closed queue admits nothing");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}

//! Sharded LRU cache for finished simulation responses.
//!
//! Keyed by [`SimRequest::canonical_hash`], so every wire spelling of the
//! same question hits the same entry. The 64-bit FNV-1a hash alone is not
//! proof of identity — on a collision two distinct requests would silently
//! serve each other's results — so every entry also stores the canonical
//! JSON it answers and a hit verifies the bytes match; a mismatch is
//! reported as [`Lookup::Collision`] and treated as a miss (the caller
//! counts it in `/metrics` as `cache_collisions`).
//!
//! Sharding keeps the hot path a short single-shard critical section
//! instead of one service-wide lock; the per-shard LRU is exact (last-use
//! ticks, evict the stalest), which is O(shard capacity) on eviction —
//! fine at service cache sizes, where the simulation behind a miss costs
//! orders of magnitude more than the scan.
//!
//! [`SimRequest::canonical_hash`]: trainbox_core::request::SimRequest::canonical_hash

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Entry {
    /// The canonical request JSON this body answers; checked on every hit.
    canonical: Box<str>,
    body: Arc<String>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
}

/// Result of a verified cache lookup.
#[derive(Debug)]
pub enum Lookup {
    /// Key present and the canonical bytes match: a true hit.
    Hit(Arc<String>),
    /// Key present but stored for a *different* canonical request — a
    /// 64-bit hash collision. Treated as a miss by callers; surfaced so
    /// `/metrics` can count how often the improbable happens.
    Collision,
    Miss,
}

pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    /// Global logical clock for recency; relaxed is fine — ticks only need
    /// to be distinct-ish and roughly ordered, not sequentially consistent.
    clock: AtomicU64,
}

impl ShardedLru {
    /// A cache holding at most `capacity` responses, spread over `shards`
    /// independently-locked shards. `capacity = 0` disables caching.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedLru {
            per_shard_capacity: capacity.div_ceil(shards),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            clock: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // The canonical hash is FNV-1a: well-mixed in the low bits.
        &self.shards[(key as usize) % self.shards.len()]
    }

    /// Look up `key`, verifying the entry answers exactly `canonical`.
    pub fn get(&self, key: u64, canonical: &str) -> Lookup {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().unwrap();
        let Some(entry) = shard.map.get_mut(&key) else {
            return Lookup::Miss;
        };
        if &*entry.canonical != canonical {
            return Lookup::Collision;
        }
        entry.last_used = tick;
        Lookup::Hit(Arc::clone(&entry.body))
    }

    /// Store `body` as the answer to `canonical`. On a hash collision the
    /// newer entry wins — the displaced question simply recomputes later.
    pub fn insert(&self, key: u64, canonical: &str, body: Arc<String>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().unwrap();
        if shard.map.len() >= self.per_shard_capacity && !shard.map.contains_key(&key) {
            if let Some(&stalest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                shard.map.remove(&stalest);
            }
        }
        shard
            .map
            .insert(key, Entry { canonical: Box::from(canonical), body, last_used: tick });
    }

    /// Total entries across all shards (metrics gauge).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    fn hit(c: &ShardedLru, key: u64, canonical: &str) -> Option<String> {
        match c.get(key, canonical) {
            Lookup::Hit(b) => Some(b.as_str().to_string()),
            _ => None,
        }
    }

    #[test]
    fn hit_returns_the_inserted_body() {
        let c = ShardedLru::new(8, 2);
        c.insert(1, "q1", body("a"));
        assert_eq!(hit(&c, 1, "q1").as_deref(), Some("a"));
        assert!(matches!(c.get(2, "q2"), Lookup::Miss));
    }

    #[test]
    fn colliding_key_with_different_canonical_is_not_served() {
        let c = ShardedLru::new(8, 2);
        c.insert(1, "question A", body("answer A"));
        // Same 64-bit key, different question: must never serve A's answer.
        assert!(matches!(c.get(1, "question B"), Lookup::Collision));
        // The original is still intact and served.
        assert_eq!(hit(&c, 1, "question A").as_deref(), Some("answer A"));
        // The collider overwrites; the displaced question recomputes later.
        c.insert(1, "question B", body("answer B"));
        assert_eq!(hit(&c, 1, "question B").as_deref(), Some("answer B"));
        assert!(matches!(c.get(1, "question A"), Lookup::Collision));
    }

    #[test]
    fn eviction_drops_the_least_recently_used() {
        // One shard, capacity 2: keys collide into the same shard.
        let c = ShardedLru::new(2, 1);
        c.insert(1, "q1", body("a"));
        c.insert(2, "q2", body("b"));
        c.get(1, "q1"); // 2 is now the stalest
        c.insert(3, "q3", body("c"));
        assert!(hit(&c, 1, "q1").is_some());
        assert!(matches!(c.get(2, "q2"), Lookup::Miss), "stalest entry must be evicted");
        assert!(hit(&c, 3, "q3").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ShardedLru::new(0, 4);
        c.insert(1, "q1", body("a"));
        assert!(matches!(c.get(1, "q1"), Lookup::Miss));
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_at_capacity_does_not_evict_a_sibling() {
        let c = ShardedLru::new(2, 1);
        c.insert(1, "q1", body("a"));
        c.insert(2, "q2", body("b"));
        c.insert(2, "q2", body("b2"));
        assert!(hit(&c, 1, "q1").is_some());
        assert_eq!(hit(&c, 2, "q2").as_deref(), Some("b2"));
        assert_eq!(c.len(), 2);
    }
}

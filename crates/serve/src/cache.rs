//! Sharded LRU cache for finished simulation responses.
//!
//! Keyed by [`SimRequest::canonical_hash`], so every wire spelling of the
//! same question hits the same entry. Sharding keeps the hot path a short
//! single-shard critical section instead of one service-wide lock; the
//! per-shard LRU is exact (last-use ticks, evict the stalest), which is
//! O(shard capacity) on eviction — fine at service cache sizes, where the
//! simulation behind a miss costs orders of magnitude more than the scan.
//!
//! [`SimRequest::canonical_hash`]: trainbox_core::request::SimRequest::canonical_hash

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Entry {
    body: Arc<String>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
}

pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    /// Global logical clock for recency; relaxed is fine — ticks only need
    /// to be distinct-ish and roughly ordered, not sequentially consistent.
    clock: AtomicU64,
}

impl ShardedLru {
    /// A cache holding at most `capacity` responses, spread over `shards`
    /// independently-locked shards. `capacity = 0` disables caching.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedLru {
            per_shard_capacity: capacity.div_ceil(shards),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            clock: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // The canonical hash is FNV-1a: well-mixed in the low bits.
        &self.shards[(key as usize) % self.shards.len()]
    }

    pub fn get(&self, key: u64) -> Option<Arc<String>> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().unwrap();
        let entry = shard.map.get_mut(&key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.body))
    }

    pub fn insert(&self, key: u64, body: Arc<String>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().unwrap();
        if shard.map.len() >= self.per_shard_capacity && !shard.map.contains_key(&key) {
            if let Some(&stalest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                shard.map.remove(&stalest);
            }
        }
        shard.map.insert(key, Entry { body, last_used: tick });
    }

    /// Total entries across all shards (metrics gauge).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn hit_returns_the_inserted_body() {
        let c = ShardedLru::new(8, 2);
        c.insert(1, body("a"));
        assert_eq!(c.get(1).as_deref().map(String::as_str), Some("a"));
        assert!(c.get(2).is_none());
    }

    #[test]
    fn eviction_drops_the_least_recently_used() {
        // One shard, capacity 2: keys collide into the same shard.
        let c = ShardedLru::new(2, 1);
        c.insert(1, body("a"));
        c.insert(2, body("b"));
        c.get(1); // 2 is now the stalest
        c.insert(3, body("c"));
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none(), "stalest entry must be evicted");
        assert!(c.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ShardedLru::new(0, 4);
        c.insert(1, body("a"));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_at_capacity_does_not_evict_a_sibling() {
        let c = ShardedLru::new(2, 1);
        c.insert(1, body("a"));
        c.insert(2, body("b"));
        c.insert(2, body("b2"));
        assert!(c.get(1).is_some());
        assert_eq!(c.get(2).as_deref().map(String::as_str), Some("b2"));
        assert_eq!(c.len(), 2);
    }
}

//! Event-loop shards: nonblocking connection ownership for the serve tier.
//!
//! Each shard is one thread running a level-triggered readiness loop
//! ([`crate::sys::Poller`]) over the connections the acceptor handed it.
//! A connection is a small state machine:
//!
//! ```text
//!   Reading ──parsed──▶ Waiting ──completion──▶ Writing ──drained──▶ close
//!      │                                           ▲
//!      ├─inline route (metrics/healthz/…) ─────────┘
//!      └─POST /sweep ─▶ Sweeping (stream chunks until done) ─▶ close
//! ```
//!
//! The shard never simulates: `/simulate` bodies and sweep points are
//! pushed onto the bounded job queue and the connection parks in `Waiting`
//! (no I/O interest) until the compute pool posts a [`Completion`] back
//! through the shard's wakeup channel. Timeouts are the shard's own
//! bookkeeping — read-inactivity, the total header budget, and write
//! stalls — so a malicious client costs a connection slot, never a thread.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::http::{self, ParseError, ParseStatus, RequestParser, Request};
use crate::metrics::Metrics;
use crate::sweep::{self, SweepState};
use crate::sys::{Interest, Poller, WakeReceiver, WakeSender};
use crate::{breaker::BreakerState, retry_after_secs, Ctx, Job};

/// Poller token reserved for the shard's wakeup receiver.
const WAKE_TOKEN: u64 = 0;

/// How soon to retry dispatching a sweep that has points pending but
/// nothing in flight (the job queue was full and no completion of our own
/// will wake us).
const STARVED_SWEEP_RETRY: Duration = Duration::from_millis(5);

/// A finished unit of compute, routed back to the shard that owns the
/// connection. Completions for connections that died in the meantime are
/// dropped silently — the work was already paid for, nobody is listening.
pub(crate) enum Completion {
    /// Full response bytes for a `/simulate` (ready to write verbatim).
    Simulate { conn_id: u64, bytes: Vec<u8> },
    /// One answered sweep point; the shard re-orders and streams it.
    SweepPoint { conn_id: u64, index: usize, line: String, ok: bool },
}

/// The cross-thread face of one shard: the acceptor submits connections,
/// the compute pool posts completions, anyone may wake it.
pub(crate) struct ShardHandle {
    inbox: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<Completion>>,
    waker: WakeSender,
}

impl ShardHandle {
    pub(crate) fn new(waker: WakeSender) -> Self {
        ShardHandle { inbox: Mutex::new(Vec::new()), completions: Mutex::new(Vec::new()), waker }
    }

    pub(crate) fn submit(&self, stream: TcpStream) {
        self.inbox.lock().unwrap().push(stream);
        self.waker.wake();
    }

    pub(crate) fn post(&self, c: Completion) {
        self.completions.lock().unwrap().push(c);
        self.waker.wake();
    }

    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    fn take_inbox(&self) -> Vec<TcpStream> {
        std::mem::take(&mut *self.inbox.lock().unwrap())
    }

    fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().unwrap())
    }

    fn is_drained(&self) -> bool {
        self.inbox.lock().unwrap().is_empty() && self.completions.lock().unwrap().is_empty()
    }
}

enum State {
    /// Request line/headers/body still arriving through the push parser.
    Reading,
    /// A job is in the compute pool; no I/O interest until it completes.
    Waiting,
    /// Final response queued in `out`; close once drained.
    Writing,
    /// Streaming an NDJSON sweep; closes once the done line is drained.
    Sweeping(SweepState),
}

struct Conn {
    stream: TcpStream,
    fd: RawFd,
    state: State,
    parser: RequestParser,
    /// Outbound bytes not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    started: Instant,
    /// Last byte of I/O progress in either direction (timeout anchor).
    last_activity: Instant,
    /// Peer half-closed its write side (EOF seen); stop reading but keep
    /// serving — only a write error proves it is really gone.
    read_closed: bool,
    registered: Interest,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        let fd = stream.as_raw_fd();
        let now = Instant::now();
        Conn {
            stream,
            fd,
            state: State::Reading,
            parser: RequestParser::new(),
            out: Vec::new(),
            out_pos: 0,
            started: now,
            last_activity: now,
            read_closed: false,
            registered: Interest::READ,
        }
    }

    fn queue(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// Queue a complete response and move to the final-write state.
    fn respond(&mut self, status: u16, headers: &[(&str, &str)], body: &str) {
        self.queue(&http::response_bytes(status, headers, body));
        self.state = State::Writing;
    }

    /// Push pending bytes at the socket until it would block. `Err` means
    /// the peer is gone (reset/EPIPE) and the connection should be reaped.
    fn flush(&mut self) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(())
    }

    fn out_pending(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// All work done: final bytes flushed, nothing more will be produced.
    fn finished(&self) -> bool {
        if self.out_pending() {
            return false;
        }
        match &self.state {
            State::Writing => true,
            State::Sweeping(st) => st.finished,
            _ => false,
        }
    }

    fn desired_interest(&self) -> Interest {
        let readable = !self.read_closed
            && matches!(self.state, State::Reading | State::Sweeping(_));
        Interest { readable, writable: self.out_pending() }
    }

    fn update_interest(&mut self, poller: &mut Poller, id: u64) -> io::Result<()> {
        let want = self.desired_interest();
        if want != self.registered {
            poller.modify(self.fd, id, want)?;
            self.registered = want;
        }
        Ok(())
    }

    /// The instant at which this connection times out, if any applies.
    fn deadline(&self, ctx: &Ctx) -> Option<Instant> {
        let mut deadline: Option<Instant> = None;
        let mut consider = |d: Instant| {
            deadline = Some(deadline.map_or(d, |cur| cur.min(d)));
        };
        if matches!(self.state, State::Reading) {
            if let Some(t) = ctx.read_timeout {
                consider(self.last_activity + t);
                if self.parser.headers_incomplete() {
                    consider(self.started + ctx.header_budget);
                }
            }
        }
        if self.out_pending() {
            if let Some(t) = ctx.write_timeout {
                consider(self.last_activity + t);
            }
        }
        deadline
    }
}

/// One shard's event loop. Exits when shutdown is flagged, the acceptor has
/// stopped, and every owned connection has drained.
pub(crate) fn run_shard(ctx: Arc<Ctx>, shard_idx: usize, mut wake_rx: WakeReceiver) {
    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("trainbox-serve shard {shard_idx}: poller setup failed: {e}");
            return;
        }
    };
    if poller.register(wake_rx.raw_fd(), WAKE_TOKEN, Interest::READ).is_err() {
        return;
    }

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 1;
    let mut events = Vec::new();
    let mut dead: Vec<u64> = Vec::new();

    loop {
        // 1. Adopt newly accepted connections.
        for stream in ctx.shards[shard_idx].take_inbox() {
            if stream.set_nonblocking(true).is_err() {
                ctx.active_connections.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let id = next_id;
            next_id += 1;
            ctx.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            let conn = Conn::new(stream);
            if poller.register(conn.fd, id, Interest::READ).is_err() {
                ctx.active_connections.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            conns.insert(id, conn);
        }

        // 2. Apply completions from the compute pool.
        for completion in ctx.shards[shard_idx].take_completions() {
            match completion {
                Completion::Simulate { conn_id, bytes } => {
                    if let Some(conn) = conns.get_mut(&conn_id) {
                        conn.queue(&bytes);
                        conn.state = State::Writing;
                    }
                }
                Completion::SweepPoint { conn_id, index, line, ok } => {
                    if let Some(conn) = conns.get_mut(&conn_id) {
                        if let State::Sweeping(ref mut st) = conn.state {
                            let chunks = sweep::on_point(&ctx, st, index, &line, ok);
                            conn.out.extend_from_slice(&chunks);
                        }
                    }
                }
            }
        }

        // 3. Keep sweeps fed (completions free queue slots; retry after a
        // full-queue backoff too).
        for (&id, conn) in conns.iter_mut() {
            if let State::Sweeping(ref mut st) = conn.state {
                if !st.finished {
                    sweep::dispatch(&ctx, shard_idx, id, st);
                }
            }
        }

        // 4. Flush opportunistically, reap finished/dead conns, re-arm
        // interest before sleeping.
        dead.clear();
        for (&id, conn) in conns.iter_mut() {
            if conn.out_pending() && conn.flush().is_err() {
                dead.push(id);
                continue;
            }
            if conn.finished() {
                dead.push(id);
                continue;
            }
            if conn.update_interest(&mut poller, id).is_err() {
                dead.push(id);
            }
        }
        for &id in &dead {
            remove_conn(&ctx, &mut conns, &mut poller, id);
        }

        // 5. Exit when nothing can arrive anymore and nothing is owned.
        if ctx.acceptor_done.load(Ordering::SeqCst)
            && conns.is_empty()
            && ctx.shards[shard_idx].is_drained()
        {
            break;
        }

        // 6. Sleep until the nearest deadline (or a wakeup).
        let now = Instant::now();
        let mut timeout: Option<Duration> = None;
        let mut consider = |d: Duration| {
            timeout = Some(timeout.map_or(d, |cur| cur.min(d)));
        };
        for conn in conns.values() {
            if let Some(d) = conn.deadline(&ctx) {
                consider(d.saturating_duration_since(now).max(Duration::from_millis(1)));
            }
            if let State::Sweeping(ref st) = conn.state {
                if !st.finished && st.starved() {
                    consider(STARVED_SWEEP_RETRY);
                }
            }
        }
        if poller.wait(timeout, &mut events).is_err() {
            // Transient poller failure: behave like a timeout tick.
            events.clear();
        }

        // 7. Handle readiness.
        for ev in events.iter().copied() {
            if ev.token == WAKE_TOKEN {
                wake_rx.drain();
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else { continue };
            let mut drop_conn = false;
            if ev.readable {
                drop_conn = handle_read(&ctx, shard_idx, ev.token, conn);
            }
            if !drop_conn && ev.writable && conn.out_pending() {
                drop_conn = conn.flush().is_err();
            }
            if !drop_conn && ev.hangup && !ev.readable {
                drop_conn = true;
            }
            if !drop_conn && conn.finished() {
                drop_conn = true;
            }
            if drop_conn {
                remove_conn(&ctx, &mut conns, &mut poller, ev.token);
            } else if let Some(conn) = conns.get_mut(&ev.token) {
                if conn.update_interest(&mut poller, ev.token).is_err() {
                    remove_conn(&ctx, &mut conns, &mut poller, ev.token);
                }
            }
        }

        // 8. Expire deadlines.
        let now = Instant::now();
        dead.clear();
        let mut timed_out: Vec<u64> = Vec::new();
        for (&id, conn) in conns.iter() {
            if let Some(d) = conn.deadline(&ctx) {
                if now >= d {
                    if matches!(conn.state, State::Reading) {
                        timed_out.push(id);
                    } else {
                        dead.push(id); // write stall: nothing more to say
                    }
                }
            }
        }
        for id in timed_out {
            if let Some(conn) = conns.get_mut(&id) {
                // A trickling or stalled client: answer 408 if it is still
                // listening and close either way.
                ctx.metrics.http_408.fetch_add(1, Ordering::Relaxed);
                conn.respond(
                    408,
                    &[],
                    "{\"error\":\"timed out waiting for the request\",\"field\":\"\"}",
                );
                if conn.flush().is_err()
                    || !conn.out_pending()
                    || conn.update_interest(&mut poller, id).is_err()
                {
                    dead.push(id);
                }
            }
        }
        for &id in &dead {
            remove_conn(&ctx, &mut conns, &mut poller, id);
        }
    }
}

fn remove_conn(ctx: &Ctx, conns: &mut HashMap<u64, Conn>, poller: &mut Poller, id: u64) {
    if let Some(conn) = conns.remove(&id) {
        let _ = poller.deregister(conn.fd);
        if let State::Sweeping(st) = &conn.state {
            if !st.finished {
                // Aborted mid-stream: free the sweep slot; in-flight point
                // completions for this conn id will be dropped on arrival.
                ctx.active_sweeps.fetch_sub(1, Ordering::SeqCst);
            }
        }
        ctx.active_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Drain the socket. Returns true when the connection must be dropped
/// (transport error, or EOF before any answerable request).
fn handle_read(ctx: &Ctx, shard_idx: usize, id: u64, conn: &mut Conn) -> bool {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.read_closed = true;
                return match conn.state {
                    State::Reading => match conn.parser.finish_eof() {
                        // Clean connect-then-close: nothing to answer.
                        ParseError::Io(_) => true,
                        e => {
                            queue_parse_error(&ctx.metrics, conn, e);
                            false
                        }
                    },
                    // Half-close after a complete request: the peer may
                    // still be reading; keep serving until a write fails.
                    _ => false,
                };
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                if matches!(conn.state, State::Reading) {
                    match conn.parser.feed(&buf[..n]) {
                        Ok(ParseStatus::Done(req)) => route(ctx, shard_idx, id, conn, req),
                        Ok(ParseStatus::NeedMore) => {
                            if conn.parser.take_continue_request() {
                                conn.queue(http::CONTINUE_100);
                            }
                        }
                        Err(e) => {
                            queue_parse_error(&ctx.metrics, conn, e);
                            return false;
                        }
                    }
                }
                // In any later state, trailing bytes are discarded (one
                // request per connection; we never keep-alive).
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
}

/// Map a parse failure to its wire answer and counters — the same contract
/// the blocking tier had, plus the explicit 501 for chunked uploads.
fn queue_parse_error(metrics: &Metrics, conn: &mut Conn, e: ParseError) {
    match e {
        ParseError::Bad(_) => {
            metrics.http_400.fetch_add(1, Ordering::Relaxed);
            let body = format!("{{\"error\":{:?},\"field\":\"body\"}}", e.to_string());
            conn.respond(400, &[], &body);
        }
        ParseError::TooLarge => {
            metrics.http_400.fetch_add(1, Ordering::Relaxed);
            conn.respond(413, &[], "{\"error\":\"request body too large\",\"field\":\"body\"}");
        }
        ParseError::HeadersTooLarge(_) => {
            metrics.http_431.fetch_add(1, Ordering::Relaxed);
            let body = format!("{{\"error\":{:?},\"field\":\"\"}}", e.to_string());
            conn.respond(431, &[], &body);
        }
        ParseError::NotImplemented(_) => {
            metrics.http_501.fetch_add(1, Ordering::Relaxed);
            let body = format!("{{\"error\":{:?},\"field\":\"\"}}", e.to_string());
            conn.respond(501, &[], &body);
        }
        ParseError::Timeout => {
            metrics.http_408.fetch_add(1, Ordering::Relaxed);
            conn.respond(408, &[], "{\"error\":\"timed out waiting for the request\",\"field\":\"\"}");
        }
        // Transport errors are handled by the caller (silent close).
        ParseError::Io(_) => {
            conn.state = State::Writing;
        }
    }
}

/// Dispatch a complete request: compute-pool work for `/simulate` and
/// `/sweep`, everything else answered inline on the shard.
fn route(ctx: &Ctx, shard_idx: usize, id: u64, conn: &mut Conn, req: Request) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/simulate") => {
            let job = Job::Simulate {
                conn_id: id,
                shard: shard_idx,
                body: req.body,
                deadline_ms: req.deadline_ms,
                started: Instant::now(),
            };
            match ctx.jobs.push(job) {
                Ok(()) => {
                    ctx.metrics.simulate_requests.fetch_add(1, Ordering::Relaxed);
                    conn.state = State::Waiting;
                }
                Err(_) => {
                    ctx.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                    let ra = retry_after_secs(ctx).to_string();
                    conn.respond(
                        429,
                        &[("retry-after", &ra)],
                        "{\"error\":\"admission queue full, retry later\",\"field\":\"\"}",
                    );
                }
            }
        }
        ("POST", "/sweep") => match sweep::begin(ctx, &req.body) {
            Ok(state) => {
                conn.queue(&http::streaming_head_bytes(200, &[]));
                conn.state = State::Sweeping(state);
                // First dispatch happens on the next loop pass.
            }
            Err((status, body)) => {
                if status == 429 {
                    let ra = retry_after_secs(ctx).to_string();
                    conn.respond(429, &[("retry-after", &ra)], &body);
                } else {
                    conn.respond(status, &[], &body);
                }
            }
        },
        ("GET", "/metrics") => {
            let body = ctx.metrics.render(
                ctx.jobs.len(),
                ctx.cache.len(),
                ctx.breaker.state().name(),
                ctx.breaker.trips(),
                ctx.active_connections.load(Ordering::SeqCst),
            );
            conn.respond(200, &[], &body);
        }
        ("GET", "/workloads") => {
            let body = trainbox_core::request::workload_catalog_json();
            conn.respond(200, &[], &body);
        }
        ("GET", "/healthz") => conn.respond(200, &[], "{\"status\":\"ok\"}"),
        ("GET", "/readyz") => {
            let breaker = ctx.breaker.state();
            let shutting_down = ctx.shutdown.load(Ordering::SeqCst);
            let queue_depth = ctx.jobs.len();
            let queue_capacity = ctx.jobs.capacity();
            // Ready = this instance should receive new traffic. A half-open
            // breaker counts as ready: the tier is probing its way back.
            let ready =
                !shutting_down && breaker != BreakerState::Open && queue_depth < queue_capacity;
            let body = format!(
                "{{\"ready\":{ready},\"shutting_down\":{shutting_down},\
                 \"breaker\":\"{}\",\"queue_depth\":{queue_depth},\
                 \"queue_capacity\":{queue_capacity}}}",
                breaker.name()
            );
            conn.respond(if ready { 200 } else { 503 }, &[], &body);
        }
        ("POST", "/admin/shutdown") => {
            conn.respond(200, &[], "{\"status\":\"shutting down\"}");
            crate::initiate_shutdown(ctx);
        }
        (
            _,
            "/simulate" | "/sweep" | "/workloads" | "/metrics" | "/healthz" | "/readyz"
            | "/admin/shutdown",
        ) => {
            conn.respond(405, &[], "{\"error\":\"method not allowed\",\"field\":\"\"}");
        }
        _ => conn.respond(404, &[], "{\"error\":\"no such endpoint\",\"field\":\"\"}"),
    }
}

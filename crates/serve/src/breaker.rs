//! Circuit breaker around the DES simulation tier.
//!
//! The DES is the expensive path: a request that times out or panics has
//! already burned a worker for its whole deadline. When that starts
//! happening *consecutively* the box is overloaded (or the engine is
//! tripping over a pathological input family), and letting more DES
//! requests pile in turns a latency problem into queue collapse. The
//! breaker converts that state into fast, honest, degraded answers:
//!
//! * **Closed** — normal operation. Failures increment a consecutive
//!   counter; any completed run resets it. At `threshold` consecutive
//!   failures the breaker opens.
//! * **Open** — DES admission is refused outright (callers degrade to the
//!   analytic model or shed) until `cooldown` has elapsed.
//! * **Half-open** — after the cooldown, exactly one probe request is let
//!   through. Success closes the breaker; failure re-opens it for another
//!   cooldown.
//!
//! "Failure" means a deadline timeout or an engine panic — the signals of
//! an unhealthy tier. Typed request errors (bad config, invalid plan)
//! complete promptly and count as successes: they prove the tier answers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker position, as reported by [`CircuitBreaker::state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    /// Lowercase name for `/metrics` and `/readyz`.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Verdict of [`CircuitBreaker::try_acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the DES. `probe: true` marks the single half-open trial whose
    /// outcome decides whether the breaker closes or re-opens.
    Allow { probe: bool },
    /// The breaker is open (or a probe is already in flight): do not run
    /// the DES; answer degraded or shed.
    Reject,
}

struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<Inner>,
    trips: AtomicU64,
}

impl CircuitBreaker {
    /// `threshold` consecutive failures open the breaker for `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
            }),
            trips: AtomicU64::new(0),
        }
    }

    /// Ask to run one DES request. An `Allow` MUST be paired with exactly
    /// one later [`Self::on_success`] or [`Self::on_failure`] carrying the
    /// same `probe` flag, or a half-open breaker would wedge waiting for
    /// its probe verdict.
    pub fn try_acquire(&self) -> Admission {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Closed => Admission::Allow { probe: false },
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_some_and(|at| at.elapsed() >= self.cooldown);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_in_flight = true;
                    Admission::Allow { probe: true }
                } else {
                    Admission::Reject
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    Admission::Reject
                } else {
                    inner.probe_in_flight = true;
                    Admission::Allow { probe: true }
                }
            }
        }
    }

    /// The admitted run completed (with any answer, including typed request
    /// errors): the tier is responsive.
    pub fn on_success(&self, probe: bool) {
        let mut inner = self.inner.lock().unwrap();
        if probe {
            inner.probe_in_flight = false;
        }
        inner.consecutive_failures = 0;
        inner.state = BreakerState::Closed;
        inner.opened_at = None;
    }

    /// The admitted run timed out or panicked.
    pub fn on_failure(&self, probe: bool) {
        let mut inner = self.inner.lock().unwrap();
        if probe {
            inner.probe_in_flight = false;
            self.open(&mut inner);
            return;
        }
        inner.consecutive_failures += 1;
        if inner.state == BreakerState::Closed && inner.consecutive_failures >= self.threshold {
            self.open(&mut inner);
        }
    }

    fn open(&self, inner: &mut Inner) {
        inner.state = BreakerState::Open;
        inner.opened_at = Some(Instant::now());
        inner.consecutive_failures = 0;
        self.trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Current position. An open breaker whose cooldown has elapsed reads
    /// as half-open (the next acquire would probe), without mutating state.
    pub fn state(&self) -> BreakerState {
        let inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Open
                if inner
                    .opened_at
                    .is_some_and(|at| at.elapsed() >= self.cooldown) =>
            {
                BreakerState::HalfOpen
            }
            s => s,
        }
    }

    /// Times the breaker has opened over its lifetime (metrics counter).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// How much of the cooldown is left while open; `None` when the breaker
    /// is closed, half-open, or already cooled. Drives honest `Retry-After`
    /// values on breaker refusals.
    pub fn cooldown_remaining(&self) -> Option<Duration> {
        let inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Open => {
                let remaining = self.cooldown.saturating_sub(inner.opened_at?.elapsed());
                (remaining > Duration::ZERO).then_some(remaining)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(threshold, Duration::from_millis(cooldown_ms))
    }

    #[test]
    fn opens_after_consecutive_failures_only() {
        let b = breaker(3, 60_000);
        for _ in 0..2 {
            assert_eq!(b.try_acquire(), Admission::Allow { probe: false });
            b.on_failure(false);
        }
        // A success resets the streak: two more failures stay closed.
        b.on_success(false);
        b.on_failure(false);
        b.on_failure(false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.try_acquire(), Admission::Reject);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn half_open_probe_decides_the_outcome() {
        let b = breaker(1, 0); // zero cooldown: open immediately probes
        b.on_failure(false);
        assert_eq!(b.state(), BreakerState::HalfOpen, "cooldown elapsed");
        let Admission::Allow { probe: true } = b.try_acquire() else {
            panic!("cooled-down breaker must admit a probe");
        };
        // Only one probe at a time.
        assert_eq!(b.try_acquire(), Admission::Reject);
        b.on_failure(true);
        assert_eq!(b.trips(), 2, "failed probe re-opens");

        let Admission::Allow { probe: true } = b.try_acquire() else {
            panic!("re-cooled breaker must admit another probe");
        };
        b.on_success(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.try_acquire(), Admission::Allow { probe: false });
    }

    #[test]
    fn open_breaker_rejects_until_cooldown() {
        let b = breaker(1, 50);
        b.on_failure(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.try_acquire(), Admission::Reject);
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(matches!(b.try_acquire(), Admission::Allow { probe: true }));
    }

    #[test]
    fn cooldown_remaining_tracks_the_open_window() {
        let b = breaker(1, 60_000);
        assert!(b.cooldown_remaining().is_none(), "closed breaker has no cooldown");
        b.on_failure(false);
        let remaining = b.cooldown_remaining().expect("open breaker reports remaining");
        assert!(remaining <= Duration::from_millis(60_000));
        assert!(remaining > Duration::from_millis(55_000), "{remaining:?}");
        b.on_success(false);
        assert!(b.cooldown_remaining().is_none(), "closing clears it");
    }
}

//! `trainbox-serve`: the what-if simulation service.
//!
//! One canonical question format — [`SimRequest`] — over plain HTTP/1.1:
//!
//! * `POST /simulate` — body is a SimRequest (lenient wire JSON); answer is
//!   the [`SimResponse`] with outcome and provenance. Config errors come
//!   back as HTTP 400 with the offending field named. An optional deadline
//!   (`deadline_ms` in the body, or an `X-Deadline-Ms` header) bounds the
//!   wall-clock spent answering.
//! * `GET /metrics` — cache hit rate, queue depth, shed count, breaker
//!   state, degradation counters, and p50/p99 simulate latency, as JSON.
//! * `GET /healthz` — liveness probe: the process answers.
//! * `GET /readyz` — readiness probe: 200 only when the service should
//!   receive traffic (not shutting down, breaker not open, queue not full).
//! * `POST /admin/shutdown` — graceful shutdown: stop accepting, drain the
//!   admitted backlog, answer everything in flight, then exit.
//!
//! Production behaviors, all std-only:
//!
//! * **Result cache** — sharded LRU keyed by the canonical content hash, so
//!   any wire spelling of an already-answered question is served from
//!   memory ([`cache`]).
//! * **Request coalescing** — concurrent identical questions run the
//!   simulation once; followers receive the leader's bytes ([`coalesce`]).
//!   Deadline'd requests bypass coalescing: a follower must never stall on
//!   an untimed leader, and an untimed follower must never inherit a
//!   deadline failure.
//! * **Load shedding** — a bounded admission queue between the acceptor
//!   and the worker pool; over capacity the service answers 429 with
//!   `Retry-After` instead of queueing unboundedly ([`http::BoundedQueue`]).
//! * **Socket hygiene** — read/write timeouts on every accepted connection
//!   plus an overall header budget, so a trickling or stalled client is cut
//!   off (408) instead of pinning a worker ([`http::read_request`]).
//! * **Graceful degradation** — a deadline'd DES question that cannot be
//!   answered in budget (deadline too tight, queue too deep, breaker open,
//!   or the run cancelled at its deadline) falls back to the analytic model
//!   with `degraded: true` in the provenance and an `x-degraded` reason
//!   header — unless the request carries faults the analytic model cannot
//!   replay, in which case it is refused honestly (503/504).
//! * **Circuit breaker** — consecutive DES timeouts/panics open the breaker
//!   ([`breaker`]); while open, deadline'd DES work is answered degraded
//!   (or refused) without burning a worker, and a half-open probe decides
//!   recovery.
//!
//! [`SimRequest`]: trainbox_core::request::SimRequest
//! [`SimResponse`]: trainbox_core::request::SimResponse

pub mod breaker;
pub mod cache;
pub mod coalesce;
pub mod http;
pub mod metrics;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use breaker::{Admission, BreakerState, CircuitBreaker};
use cache::ShardedLru;
use coalesce::{Coalescer, Role};
use http::{read_request, write_response, BoundedQueue, ParseError};
use metrics::Metrics;
use trainbox_core::request::{SimError, SimMode, SimRequest};

#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (tests).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed with 429.
    pub queue_depth: usize,
    /// Result-cache capacity in responses; 0 disables caching.
    pub cache_capacity: usize,
    /// Socket read timeout per wait, milliseconds; 0 disables socket
    /// timeouts *and* the header budget (test/debug only).
    pub read_timeout_ms: u64,
    /// Socket write timeout, milliseconds; 0 disables.
    pub write_timeout_ms: u64,
    /// Consecutive DES timeouts/panics that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker refuses DES work before probing,
    /// milliseconds.
    pub breaker_cooldown_ms: u64,
    /// Admission-queue depth at which deadline'd DES requests degrade to
    /// the analytic model instead of queueing behind a backlog they would
    /// time out in anyway.
    pub degrade_queue_depth: usize,
    /// Deadlines below this many milliseconds are assumed too tight for any
    /// DES run and degrade immediately.
    pub min_des_deadline_ms: u64,
    /// Worker threads for the *parallel DES engine* inside each simulation.
    /// Cluster requests partition one logical process per server; eligible
    /// single-server requests partition into intra-server lanes (four
    /// accelerators plus their nominal SSD/prep each) — both engines are
    /// byte-identical to the sequential reference at any worker count, so
    /// this knob only moves wall-clock. `0` (the default) leaves every run
    /// on the sequential reference engine: the serve worker pool already
    /// runs `workers` simulations concurrently, and `workers × des_workers`
    /// threads would oversubscribe the host. Raise it only when the service
    /// runs few concurrent simulations on a many-core box. Applied as a
    /// default — a request whose own `sim.parallel_workers` is set keeps
    /// its value — and never part of the cache key (like `deadline_ms`,
    /// it changes how fast the answer arrives, not what is asked).
    pub des_workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_capacity: 256,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            breaker_threshold: 5,
            breaker_cooldown_ms: 1_000,
            degrade_queue_depth: 48,
            min_des_deadline_ms: 10,
            des_workers: 0,
        }
    }
}

struct Ctx {
    addr: SocketAddr,
    cache: ShardedLru,
    coalescer: Coalescer,
    metrics: Metrics,
    queue: BoundedQueue<TcpStream>,
    shutdown: AtomicBool,
    breaker: CircuitBreaker,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    /// Total wall-clock allowed for request line + headers (2× the read
    /// timeout): per-read timeouts alone can be stretched indefinitely by a
    /// client trickling one byte per just-under-timeout.
    header_budget: Duration,
    degrade_queue_depth: usize,
    min_des_deadline_ms: u64,
    des_workers: usize,
}

/// A running service. Dropping the handle does NOT stop the server; call
/// [`ServeHandle::shutdown`] (tests) or let `POST /admin/shutdown` end it
/// and [`ServeHandle::join`] the threads.
pub struct ServeHandle {
    ctx: Arc<Ctx>,
    threads: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// Block until the service exits (via `/admin/shutdown` or [`Self::shutdown`]).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Trigger graceful shutdown and wait for the drain to finish.
    pub fn shutdown(self) {
        initiate_shutdown(&self.ctx);
        self.join();
    }
}

/// Bind and start the service: one acceptor thread plus a worker pool.
pub fn serve(cfg: ServeConfig) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let read_timeout = (cfg.read_timeout_ms > 0).then(|| Duration::from_millis(cfg.read_timeout_ms));
    let ctx = Arc::new(Ctx {
        addr,
        cache: ShardedLru::new(cfg.cache_capacity, 8),
        coalescer: Coalescer::new(),
        metrics: Metrics::new(),
        queue: BoundedQueue::new(cfg.queue_depth),
        shutdown: AtomicBool::new(false),
        breaker: CircuitBreaker::new(
            cfg.breaker_threshold,
            Duration::from_millis(cfg.breaker_cooldown_ms),
        ),
        read_timeout,
        write_timeout: (cfg.write_timeout_ms > 0)
            .then(|| Duration::from_millis(cfg.write_timeout_ms)),
        header_budget: read_timeout.map_or(Duration::MAX, |t| t * 2),
        degrade_queue_depth: cfg.degrade_queue_depth.max(1),
        min_des_deadline_ms: cfg.min_des_deadline_ms,
        des_workers: cfg.des_workers,
    });

    let mut threads = Vec::new();
    for _ in 0..cfg.workers.max(1) {
        let ctx = Arc::clone(&ctx);
        threads.push(std::thread::spawn(move || {
            while let Some(mut stream) = ctx.queue.pop() {
                handle_conn(&mut stream, &ctx);
            }
        }));
    }

    {
        let ctx = Arc::clone(&ctx);
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Socket timeouts are the first line of defense: no read or
                // write on this connection may block a worker indefinitely.
                let _ = stream.set_read_timeout(ctx.read_timeout);
                let _ = stream.set_write_timeout(ctx.write_timeout);
                if let Err(shed) = ctx.queue.push(stream) {
                    ctx.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                    http::refuse(
                        shed,
                        429,
                        &[("retry-after", "1")],
                        "{\"error\":\"admission queue full, retry later\",\"field\":\"\"}",
                    );
                }
            }
            // Stop admitting and let the workers drain what was accepted.
            ctx.queue.close();
        }));
    }

    Ok(ServeHandle { ctx, threads })
}

fn initiate_shutdown(ctx: &Ctx) {
    ctx.shutdown.store(true, Ordering::SeqCst);
    // Unblock the acceptor: it only observes the flag after `accept`
    // returns, so poke it with a throwaway connection.
    let _ = TcpStream::connect(ctx.addr);
}

#[derive(serde::Serialize)]
struct ErrorBody {
    error: String,
    field: String,
}

fn error_json(e: &SimError) -> Arc<String> {
    let body = ErrorBody { error: e.to_string(), field: e.field().to_string() };
    Arc::new(serde_json::to_string(&body).expect("error serialization is infallible"))
}

fn handle_conn(stream: &mut TcpStream, ctx: &Ctx) {
    ctx.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
    let req = match read_request(stream, ctx.header_budget) {
        Ok(req) => req,
        Err(ParseError::Io(_)) => return, // client hung up; nothing to answer
        Err(e @ ParseError::Bad(_)) => {
            ctx.metrics.http_400.fetch_add(1, Ordering::Relaxed);
            let body = format!("{{\"error\":{:?},\"field\":\"body\"}}", e.to_string());
            let _ = write_response(stream, 400, &[], &body);
            return;
        }
        Err(ParseError::TooLarge) => {
            ctx.metrics.http_400.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                stream,
                413,
                &[],
                "{\"error\":\"request body too large\",\"field\":\"body\"}",
            );
            return;
        }
        Err(e @ ParseError::HeadersTooLarge(_)) => {
            ctx.metrics.http_431.fetch_add(1, Ordering::Relaxed);
            let body = format!("{{\"error\":{:?},\"field\":\"\"}}", e.to_string());
            let _ = write_response(stream, 431, &[], &body);
            return;
        }
        Err(ParseError::Timeout) => {
            // A trickling or stalled client: answer 408 if it is still
            // listening and close either way — the worker moves on.
            ctx.metrics.http_408.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                stream,
                408,
                &[],
                "{\"error\":\"timed out waiting for the request\",\"field\":\"\"}",
            );
            return;
        }
    };

    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/simulate") => simulate(stream, ctx, &req),
        ("GET", "/metrics") => {
            let body = ctx.metrics.render(
                ctx.queue.len(),
                ctx.cache.len(),
                ctx.breaker.state().name(),
                ctx.breaker.trips(),
            );
            let _ = write_response(stream, 200, &[], &body);
        }
        ("GET", "/healthz") => {
            let _ = write_response(stream, 200, &[], "{\"status\":\"ok\"}");
        }
        ("GET", "/readyz") => {
            let breaker = ctx.breaker.state();
            let shutting_down = ctx.shutdown.load(Ordering::SeqCst);
            let queue_depth = ctx.queue.len();
            let queue_capacity = ctx.queue.capacity();
            // Ready = this instance should receive new traffic. A half-open
            // breaker counts as ready: the tier is probing its way back.
            let ready =
                !shutting_down && breaker != BreakerState::Open && queue_depth < queue_capacity;
            let body = format!(
                "{{\"ready\":{ready},\"shutting_down\":{shutting_down},\
                 \"breaker\":\"{}\",\"queue_depth\":{queue_depth},\
                 \"queue_capacity\":{queue_capacity}}}",
                breaker.name()
            );
            let _ = write_response(stream, if ready { 200 } else { 503 }, &[], &body);
        }
        ("POST", "/admin/shutdown") => {
            let _ = write_response(stream, 200, &[], "{\"status\":\"shutting down\"}");
            initiate_shutdown(ctx);
        }
        (_, "/simulate" | "/metrics" | "/healthz" | "/readyz" | "/admin/shutdown") => {
            let _ = write_response(
                stream,
                405,
                &[],
                "{\"error\":\"method not allowed\",\"field\":\"\"}",
            );
        }
        _ => {
            let _ = write_response(stream, 404, &[], "{\"error\":\"no such endpoint\",\"field\":\"\"}");
        }
    }
}

/// One `/simulate` verdict: status, body, `x-cache` disposition, and the
/// `x-degraded` reason when the analytic model stood in for the DES.
type Outcome = (u16, Arc<String>, &'static str, Option<&'static str>);

fn simulate(stream: &mut TcpStream, ctx: &Ctx, req: &http::Request) {
    ctx.metrics.simulate_requests.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let (status, body, disposition, degraded) = simulate_outcome(ctx, &req.body, req.deadline_ms);
    match status {
        400 => drop(ctx.metrics.http_400.fetch_add(1, Ordering::Relaxed)),
        500 => drop(ctx.metrics.http_500.fetch_add(1, Ordering::Relaxed)),
        503 => drop(ctx.metrics.http_503.fetch_add(1, Ordering::Relaxed)),
        504 => drop(ctx.metrics.http_504.fetch_add(1, Ordering::Relaxed)),
        _ => {}
    }
    let mut headers = vec![("x-cache", disposition)];
    if let Some(reason) = degraded {
        headers.push(("x-degraded", reason));
    }
    if status == 503 {
        headers.push(("retry-after", "1"));
    }
    let _ = write_response(stream, status, &headers, &body);
    ctx.metrics.simulate_latency.record(started.elapsed());
}

fn simulate_outcome(ctx: &Ctx, text: &str, header_deadline_ms: Option<u64>) -> Outcome {
    let mut req = match SimRequest::from_json_str(text) {
        Ok(req) => req,
        Err(e) => return (400, error_json(&e), "none", None),
    };
    // The body's own deadline wins; the header covers clients that cannot
    // edit the body (load balancers, curl one-liners).
    if req.deadline_ms.is_none() {
        req.deadline_ms = header_deadline_ms;
    }
    // Service-level parallel-DES default: like the deadline, a QoS knob,
    // excluded from the canonical hash — injecting it here cannot split the
    // cache, and every downstream path (deadline'd, breaker-gated,
    // coalesced) sees the same effective config.
    if ctx.des_workers > 1 {
        if let SimMode::Des(ref mut cfg) = req.sim {
            if cfg.parallel_workers == 0 {
                cfg.parallel_workers = ctx.des_workers;
            }
        }
    }
    let key = req.canonical_hash();

    // The key excludes the deadline, so a timed asker shares the cache
    // entry of the untimed question — the fastest possible answer.
    if let Some(body) = ctx.cache.get(key) {
        ctx.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return (200, body, "hit", None);
    }
    ctx.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

    if req.deadline_ms.is_some() {
        return simulate_deadlined(ctx, &req, key);
    }

    match ctx.coalescer.begin(key) {
        Role::Follower(flight) => {
            ctx.metrics.coalesced_waits.fetch_add(1, Ordering::Relaxed);
            let (status, body) = flight.wait();
            (status, body, "coalesced", None)
        }
        Role::Leader => {
            // A panic inside the engine must not strand followers on an
            // unfinished flight (or kill the worker); surface it as a 500.
            let outcome = catch_unwind(AssertUnwindSafe(|| req.run()));
            let (status, body) = match outcome {
                Ok(Ok(resp)) => {
                    let body = serde_json::to_string(&resp)
                        .expect("response serialization is infallible");
                    (200, Arc::new(body))
                }
                Ok(Err(e)) => {
                    let status = if e.is_client_error() { 400 } else { 500 };
                    (status, error_json(&e))
                }
                Err(_) => (
                    500,
                    Arc::new(
                        "{\"error\":\"simulation panicked\",\"field\":\"sim\"}".to_string(),
                    ),
                ),
            };
            if status == 200 {
                ctx.cache.insert(key, Arc::clone(&body));
            }
            ctx.coalescer.complete(key, (status, Arc::clone(&body)));
            (status, body, "miss", None)
        }
    }
}

/// The deadline'd request path: no coalescing, DES work gated by the
/// breaker and degradation pre-checks.
fn simulate_deadlined(ctx: &Ctx, req: &SimRequest, key: u64) -> Outcome {
    let deadline_ms = req.deadline_ms.expect("caller checked deadline_ms");

    // Analytic answers are closed-form — microseconds. No deadline is too
    // tight for them and the breaker (which guards the DES tier) does not
    // apply.
    if matches!(req.sim, SimMode::Analytic) {
        return run_uncoalesced(ctx, req, key);
    }

    // A faulted request cannot degrade: the analytic model has no fault
    // replay, and silently dropping the fault plan would answer a different
    // question than was asked.
    let degradable = req.faults.as_ref().is_none_or(|p| p.is_empty());

    // Pre-checks, cheapest first, all BEFORE breaker admission so a
    // degrade here can never leak a half-open probe slot.
    if deadline_ms < ctx.min_des_deadline_ms {
        return degrade_or_refuse(ctx, req, "deadline_too_tight", degradable);
    }
    if ctx.queue.len() >= ctx.degrade_queue_depth {
        return degrade_or_refuse(ctx, req, "queue_deep", degradable);
    }
    let probe = match ctx.breaker.try_acquire() {
        Admission::Reject => return degrade_or_refuse(ctx, req, "breaker_open", degradable),
        Admission::Allow { probe } => probe,
    };

    let outcome = catch_unwind(AssertUnwindSafe(|| req.run()));
    match outcome {
        Ok(Ok(resp)) => {
            ctx.breaker.on_success(probe);
            let body = Arc::new(
                serde_json::to_string(&resp).expect("response serialization is infallible"),
            );
            // A timed run that finished in budget IS the untimed answer:
            // safe to cache under the deadline-free canonical key.
            ctx.cache.insert(key, Arc::clone(&body));
            (200, body, "miss", None)
        }
        Ok(Err(e @ SimError::DeadlineExceeded { .. })) => {
            ctx.breaker.on_failure(probe);
            ctx.metrics.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
            if degradable {
                degrade(ctx, req, "deadline_exceeded")
            } else {
                // The error message carries the partial progress (events
                // processed, faults observed so far).
                (504, error_json(&e), "miss", None)
            }
        }
        Ok(Err(e)) => {
            // Typed request errors complete promptly: the tier is healthy.
            ctx.breaker.on_success(probe);
            let status = if e.is_client_error() { 400 } else { 500 };
            (status, error_json(&e), "miss", None)
        }
        Err(_) => {
            ctx.breaker.on_failure(probe);
            (
                500,
                Arc::new("{\"error\":\"simulation panicked\",\"field\":\"sim\"}".to_string()),
                "miss",
                None,
            )
        }
    }
}

/// Run a request directly (no coalescing, no breaker), caching a 200.
fn run_uncoalesced(ctx: &Ctx, req: &SimRequest, key: u64) -> Outcome {
    let outcome = catch_unwind(AssertUnwindSafe(|| req.run()));
    match outcome {
        Ok(Ok(resp)) => {
            let body = Arc::new(
                serde_json::to_string(&resp).expect("response serialization is infallible"),
            );
            ctx.cache.insert(key, Arc::clone(&body));
            (200, body, "miss", None)
        }
        Ok(Err(e)) => {
            let status = if e.is_client_error() { 400 } else { 500 };
            (status, error_json(&e), "miss", None)
        }
        Err(_) => (
            500,
            Arc::new("{\"error\":\"simulation panicked\",\"field\":\"sim\"}".to_string()),
            "miss",
            None,
        ),
    }
}

/// Degrade if the fault plan allows it, else refuse with 503 so the client
/// can retry against a recovered tier.
fn degrade_or_refuse(
    ctx: &Ctx,
    req: &SimRequest,
    reason: &'static str,
    degradable: bool,
) -> Outcome {
    if degradable {
        return degrade(ctx, req, reason);
    }
    let body = format!(
        "{{\"error\":\"DES tier unavailable ({reason}); faulted requests cannot \
         degrade to the analytic model\",\"field\":\"sim\"}}"
    );
    (503, Arc::new(body), "none", None)
}

/// Answer a DES question with the analytic model, honestly flagged:
/// `degraded: true` in the body, the *original* request's `config_hash` in
/// the provenance, an `x-degraded` reason header — and never cached, since
/// the canonical key names the DES answer this is standing in for.
fn degrade(ctx: &Ctx, req: &SimRequest, reason: &'static str) -> Outcome {
    // Keeping `cluster` means a degraded cluster question still answers the
    // cluster (via the closed-form cluster model), not a single server.
    let twin = SimRequest {
        server: req.server.clone(),
        workload: req.workload.clone(),
        sim: SimMode::Analytic,
        faults: None,
        trace: false,
        deadline_ms: None,
        cluster: req.cluster,
    };
    match twin.run() {
        Ok(mut resp) => {
            resp.degraded = true;
            resp.config_hash = req.hash_hex();
            ctx.metrics.degraded_total.fetch_add(1, Ordering::Relaxed);
            let body = Arc::new(
                serde_json::to_string(&resp).expect("response serialization is infallible"),
            );
            (200, body, "degraded", Some(reason))
        }
        // The spec itself is broken (bad server config): tell the client.
        Err(e) => {
            let status = if e.is_client_error() { 400 } else { 500 };
            (status, error_json(&e), "none", None)
        }
    }
}

//! `trainbox-serve`: the what-if simulation service.
//!
//! One canonical question format — [`SimRequest`] — over plain HTTP/1.1:
//!
//! * `POST /simulate` — body is a SimRequest (lenient wire JSON); answer is
//!   the [`SimResponse`] with outcome and provenance. Config errors come
//!   back as HTTP 400 with the offending field named.
//! * `GET /metrics` — cache hit rate, queue depth, shed count, and p50/p99
//!   simulate latency, as JSON.
//! * `GET /healthz` — liveness probe.
//! * `POST /admin/shutdown` — graceful shutdown: stop accepting, drain the
//!   admitted backlog, answer everything in flight, then exit.
//!
//! Production behaviors, all std-only:
//!
//! * **Result cache** — sharded LRU keyed by the canonical content hash, so
//!   any wire spelling of an already-answered question is served from
//!   memory ([`cache`]).
//! * **Request coalescing** — concurrent identical questions run the
//!   simulation once; followers receive the leader's bytes ([`coalesce`]).
//! * **Load shedding** — a bounded admission queue between the acceptor
//!   and the worker pool; over capacity the service answers 429 with
//!   `Retry-After` instead of queueing unboundedly ([`http::BoundedQueue`]).
//!
//! [`SimRequest`]: trainbox_core::request::SimRequest
//! [`SimResponse`]: trainbox_core::request::SimResponse

pub mod cache;
pub mod coalesce;
pub mod http;
pub mod metrics;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use cache::ShardedLru;
use coalesce::{Coalescer, Role};
use http::{read_request, write_response, BoundedQueue, ParseError};
use metrics::Metrics;
use trainbox_core::request::{SimError, SimRequest};

#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (tests).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed with 429.
    pub queue_depth: usize,
    /// Result-cache capacity in responses; 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_capacity: 256,
        }
    }
}

struct Ctx {
    addr: SocketAddr,
    cache: ShardedLru,
    coalescer: Coalescer,
    metrics: Metrics,
    queue: BoundedQueue<TcpStream>,
    shutdown: AtomicBool,
}

/// A running service. Dropping the handle does NOT stop the server; call
/// [`ServeHandle::shutdown`] (tests) or let `POST /admin/shutdown` end it
/// and [`ServeHandle::join`] the threads.
pub struct ServeHandle {
    ctx: Arc<Ctx>,
    threads: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// Block until the service exits (via `/admin/shutdown` or [`Self::shutdown`]).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Trigger graceful shutdown and wait for the drain to finish.
    pub fn shutdown(self) {
        initiate_shutdown(&self.ctx);
        self.join();
    }
}

/// Bind and start the service: one acceptor thread plus a worker pool.
pub fn serve(cfg: ServeConfig) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let ctx = Arc::new(Ctx {
        addr,
        cache: ShardedLru::new(cfg.cache_capacity, 8),
        coalescer: Coalescer::new(),
        metrics: Metrics::new(),
        queue: BoundedQueue::new(cfg.queue_depth),
        shutdown: AtomicBool::new(false),
    });

    let mut threads = Vec::new();
    for _ in 0..cfg.workers.max(1) {
        let ctx = Arc::clone(&ctx);
        threads.push(std::thread::spawn(move || {
            while let Some(mut stream) = ctx.queue.pop() {
                handle_conn(&mut stream, &ctx);
            }
        }));
    }

    {
        let ctx = Arc::clone(&ctx);
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if let Err(shed) = ctx.queue.push(stream) {
                    ctx.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                    http::refuse(
                        shed,
                        429,
                        &[("retry-after", "1")],
                        "{\"error\":\"admission queue full, retry later\",\"field\":\"\"}",
                    );
                }
            }
            // Stop admitting and let the workers drain what was accepted.
            ctx.queue.close();
        }));
    }

    Ok(ServeHandle { ctx, threads })
}

fn initiate_shutdown(ctx: &Ctx) {
    ctx.shutdown.store(true, Ordering::SeqCst);
    // Unblock the acceptor: it only observes the flag after `accept`
    // returns, so poke it with a throwaway connection.
    let _ = TcpStream::connect(ctx.addr);
}

#[derive(serde::Serialize)]
struct ErrorBody {
    error: String,
    field: String,
}

fn error_json(e: &SimError) -> Arc<String> {
    let body = ErrorBody { error: e.to_string(), field: e.field().to_string() };
    Arc::new(serde_json::to_string(&body).expect("error serialization is infallible"))
}

fn handle_conn(stream: &mut TcpStream, ctx: &Ctx) {
    ctx.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
    let req = match read_request(stream) {
        Ok(req) => req,
        Err(ParseError::Io(_)) => return, // client hung up; nothing to answer
        Err(e @ ParseError::Bad(_)) => {
            ctx.metrics.http_400.fetch_add(1, Ordering::Relaxed);
            let body = format!("{{\"error\":{:?},\"field\":\"body\"}}", e.to_string());
            let _ = write_response(stream, 400, &[], &body);
            return;
        }
        Err(ParseError::TooLarge) => {
            ctx.metrics.http_400.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                stream,
                413,
                &[],
                "{\"error\":\"request body too large\",\"field\":\"body\"}",
            );
            return;
        }
    };

    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/simulate") => simulate(stream, ctx, &req.body),
        ("GET", "/metrics") => {
            let body = ctx.metrics.render(ctx.queue.len(), ctx.cache.len());
            let _ = write_response(stream, 200, &[], &body);
        }
        ("GET", "/healthz") => {
            let _ = write_response(stream, 200, &[], "{\"status\":\"ok\"}");
        }
        ("POST", "/admin/shutdown") => {
            let _ = write_response(stream, 200, &[], "{\"status\":\"shutting down\"}");
            initiate_shutdown(ctx);
        }
        (_, "/simulate" | "/metrics" | "/healthz" | "/admin/shutdown") => {
            let _ = write_response(
                stream,
                405,
                &[],
                "{\"error\":\"method not allowed\",\"field\":\"\"}",
            );
        }
        _ => {
            let _ = write_response(stream, 404, &[], "{\"error\":\"no such endpoint\",\"field\":\"\"}");
        }
    }
}

fn simulate(stream: &mut TcpStream, ctx: &Ctx, body: &str) {
    ctx.metrics.simulate_requests.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let (status, body, disposition) = simulate_outcome(ctx, body);
    match status {
        400 => drop(ctx.metrics.http_400.fetch_add(1, Ordering::Relaxed)),
        500 => drop(ctx.metrics.http_500.fetch_add(1, Ordering::Relaxed)),
        _ => {}
    }
    let _ = write_response(stream, status, &[("x-cache", disposition)], &body);
    ctx.metrics.simulate_latency.record(started.elapsed());
}

fn simulate_outcome(ctx: &Ctx, text: &str) -> (u16, Arc<String>, &'static str) {
    let req = match SimRequest::from_json_str(text) {
        Ok(req) => req,
        Err(e) => return (400, error_json(&e), "none"),
    };
    let key = req.canonical_hash();

    if let Some(body) = ctx.cache.get(key) {
        ctx.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return (200, body, "hit");
    }
    ctx.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

    match ctx.coalescer.begin(key) {
        Role::Follower(flight) => {
            ctx.metrics.coalesced_waits.fetch_add(1, Ordering::Relaxed);
            let (status, body) = flight.wait();
            (status, body, "coalesced")
        }
        Role::Leader => {
            // A panic inside the engine must not strand followers on an
            // unfinished flight (or kill the worker); surface it as a 500.
            let outcome = catch_unwind(AssertUnwindSafe(|| req.run()));
            let (status, body) = match outcome {
                Ok(Ok(resp)) => {
                    let body = serde_json::to_string(&resp)
                        .expect("response serialization is infallible");
                    (200, Arc::new(body))
                }
                Ok(Err(e)) => {
                    let status = if e.is_client_error() { 400 } else { 500 };
                    (status, error_json(&e))
                }
                Err(_) => (
                    500,
                    Arc::new(
                        "{\"error\":\"simulation panicked\",\"field\":\"sim\"}".to_string(),
                    ),
                ),
            };
            if status == 200 {
                ctx.cache.insert(key, Arc::clone(&body));
            }
            ctx.coalescer.complete(key, (status, Arc::clone(&body)));
            (status, body, "miss")
        }
    }
}

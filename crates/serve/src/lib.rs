//! `trainbox-serve`: the what-if simulation service.
//!
//! One canonical question format — [`SimRequest`] — over plain HTTP/1.1:
//!
//! * `POST /simulate` — body is a SimRequest (lenient wire JSON); answer is
//!   the [`SimResponse`] with outcome and provenance. Config errors come
//!   back as HTTP 400 with the offending field named. An optional deadline
//!   (`deadline_ms` in the body, or an `X-Deadline-Ms` header) bounds the
//!   wall-clock spent answering.
//! * `POST /sweep` — body is a SimRequest *template* plus a parameter grid
//!   (workload × batch size × accelerator count × link generation × fault
//!   plan). The grid is expanded server-side and streamed back as NDJSON
//!   over chunked transfer encoding: one line per point, in grid order,
//!   each carrying the point's parameters and the exact bytes `/simulate`
//!   would answer for it, then a summary line. Every point shares the
//!   `/simulate` cache.
//! * `GET /workloads` — the preset catalog: every Table-I name plus the
//!   DSL families (LLM, recsys, video, mixed tenancy), each with its
//!   declared sync pattern, full workload JSON, and the stage graph it
//!   lowers to.
//! * `GET /metrics` — cache hit rate, queue depth, shed count, breaker
//!   state, degradation counters, sweep counters, and p50/p99 simulate
//!   latency, as JSON.
//! * `GET /healthz` — liveness probe: the process answers.
//! * `GET /readyz` — readiness probe: 200 only when the service should
//!   receive traffic (not shutting down, breaker not open, queue not full).
//! * `POST /admin/shutdown` — graceful shutdown: stop accepting, drain the
//!   admitted backlog, answer everything in flight, then exit.
//!
//! # Architecture
//!
//! The tier is readiness-driven, not thread-per-connection:
//!
//! ```text
//!  acceptor ──round-robin──▶ event-loop shards (epoll/poll, nonblocking)
//!                                │  parse / route / write / stream
//!                                ▼  bounded job queue (shed ▶ 429)
//!                           compute pool (blocking DES workers)
//!                                │  completions + wakeup
//!                                ▼
//!                           back to the owning shard
//! ```
//!
//! Each shard owns its connections outright: nonblocking sockets, a
//! per-connection push parser ([`http::RequestParser`]), explicit timeout
//! bookkeeping, and the outbound byte queue. Simulation never runs on a
//! shard — `/simulate` bodies and expanded sweep points travel to the
//! compute pool over a [`http::BoundedQueue`], and finished answers come
//! back as completions through a [`sys::wake_pair`] wakeup. A slow or
//! stalled client therefore costs one connection slot, never a worker.
//!
//! Production behaviors, all std-only:
//!
//! * **Result cache** — sharded LRU keyed by the canonical content hash
//!   *and verified against the canonical bytes* on every hit, so a 64-bit
//!   hash collision is counted (`cache_collisions`) and recomputed instead
//!   of serving the wrong answer ([`cache`]).
//! * **Request coalescing** — concurrent identical questions run the
//!   simulation once; followers receive the leader's bytes ([`coalesce`]).
//!   Deadline'd requests bypass coalescing: a follower must never stall on
//!   an untimed leader, and an untimed follower must never inherit a
//!   deadline failure.
//! * **Load shedding** — a bounded job queue between the shards and the
//!   compute pool; over capacity the service answers 429 with a
//!   `Retry-After` derived from the live backlog and breaker state instead
//!   of queueing unboundedly. A connection cap sheds at the acceptor.
//! * **Socket hygiene** — per-connection read/write inactivity deadlines
//!   plus an overall header budget, enforced by the shard's timer wheel, so
//!   a trickling or stalled client is cut off (408) without ever occupying
//!   a compute worker.
//! * **Graceful degradation** — a deadline'd DES question that cannot be
//!   answered in budget (deadline too tight, queue too deep, breaker open,
//!   or the run cancelled at its deadline) falls back to the analytic model
//!   with `degraded: true` in the provenance and an `x-degraded` reason
//!   header — unless the request carries faults the analytic model cannot
//!   replay, in which case it is refused honestly (503/504).
//! * **Circuit breaker** — consecutive DES timeouts/panics open the breaker
//!   ([`breaker`]); while open, deadline'd DES work is answered degraded
//!   (or refused) without burning a worker, and a half-open probe decides
//!   recovery.
//!
//! [`SimRequest`]: trainbox_core::request::SimRequest
//! [`SimResponse`]: trainbox_core::request::SimResponse

pub mod breaker;
pub mod cache;
pub mod coalesce;
mod conn;
pub mod http;
pub mod metrics;
mod sweep;
pub mod sys;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use breaker::{Admission, CircuitBreaker};
use cache::{Lookup, ShardedLru};
use coalesce::{Coalescer, Role};
use conn::{Completion, ShardHandle};
use http::BoundedQueue;
use metrics::Metrics;
use trainbox_core::request::{canonical_hash_of, SimError, SimMode, SimRequest};

#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (tests).
    pub addr: String,
    /// Simulation worker threads (the compute pool).
    pub workers: usize,
    /// Event-loop shard threads; 0 picks a default from the host's
    /// parallelism. Shards only do socket I/O and parsing, so a handful
    /// carries thousands of connections.
    pub loops: usize,
    /// Job-queue capacity between the shards and the compute pool;
    /// simulate/sweep work beyond it is shed with 429.
    pub queue_depth: usize,
    /// Open connections accepted at once; beyond it the acceptor refuses
    /// with 429 before reading a byte.
    pub max_connections: usize,
    /// Result-cache capacity in responses; 0 disables caching.
    pub cache_capacity: usize,
    /// Read-inactivity timeout, milliseconds; 0 disables inactivity
    /// deadlines *and* the header budget (test/debug only).
    pub read_timeout_ms: u64,
    /// Write-stall timeout, milliseconds; 0 disables.
    pub write_timeout_ms: u64,
    /// Consecutive DES timeouts/panics that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker refuses DES work before probing,
    /// milliseconds.
    pub breaker_cooldown_ms: u64,
    /// Job-queue depth at which deadline'd DES requests degrade to the
    /// analytic model instead of queueing behind a backlog they would time
    /// out in anyway.
    pub degrade_queue_depth: usize,
    /// Deadlines below this many milliseconds are assumed too tight for any
    /// DES run and degrade immediately.
    pub min_des_deadline_ms: u64,
    /// Worker threads for the *parallel DES engine* inside each simulation.
    /// Cluster requests partition one logical process per server; eligible
    /// single-server requests partition into intra-server lanes (four
    /// accelerators plus their nominal SSD/prep each) — both engines are
    /// byte-identical to the sequential reference at any worker count, so
    /// this knob only moves wall-clock. `0` (the default) leaves every run
    /// on the sequential reference engine: the serve worker pool already
    /// runs `workers` simulations concurrently, and `workers × des_workers`
    /// threads would oversubscribe the host. Raise it only when the service
    /// runs few concurrent simulations on a many-core box. Applied as a
    /// default — a request whose own `sim.parallel_workers` is set keeps
    /// its value — and never part of the cache key (like `deadline_ms`,
    /// it changes how fast the answer arrives, not what is asked).
    pub des_workers: usize,
    /// Largest grid one `POST /sweep` may expand to on this server (the
    /// core caps at [`trainbox_core::request::SweepRequest::MAX_POINTS`]
    /// regardless); over it is a 400.
    pub sweep_max_points: usize,
    /// Sweeps streaming concurrently; beyond it `POST /sweep` answers 429
    /// so a burst of grids cannot starve interactive `/simulate` traffic.
    pub max_active_sweeps: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 4,
            loops: 0,
            queue_depth: 64,
            max_connections: 1024,
            cache_capacity: 256,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            breaker_threshold: 5,
            breaker_cooldown_ms: 1_000,
            degrade_queue_depth: 48,
            min_des_deadline_ms: 10,
            des_workers: 0,
            sweep_max_points: 4_096,
            max_active_sweeps: 2,
        }
    }
}

/// A unit of compute handed from an event-loop shard to the worker pool.
/// Carries the shard index and connection id so the finished answer can be
/// routed back as a [`Completion`].
pub(crate) enum Job {
    Simulate {
        conn_id: u64,
        shard: usize,
        body: String,
        deadline_ms: Option<u64>,
        started: Instant,
    },
    SweepPoint {
        conn_id: u64,
        shard: usize,
        index: usize,
        params: String,
        request: Box<SimRequest>,
    },
}

pub(crate) struct Ctx {
    addr: SocketAddr,
    pub(crate) cache: ShardedLru,
    pub(crate) coalescer: Coalescer,
    pub(crate) metrics: Metrics,
    pub(crate) jobs: BoundedQueue<Job>,
    pub(crate) shutdown: AtomicBool,
    /// Set by the acceptor after it stops: no more connections will ever be
    /// submitted, so a drained shard may exit.
    pub(crate) acceptor_done: AtomicBool,
    pub(crate) breaker: CircuitBreaker,
    pub(crate) read_timeout: Option<Duration>,
    pub(crate) write_timeout: Option<Duration>,
    /// Total wall-clock allowed for request line + headers (2× the read
    /// timeout): per-read inactivity deadlines alone can be stretched
    /// indefinitely by a client trickling one byte per just-under-timeout.
    pub(crate) header_budget: Duration,
    pub(crate) degrade_queue_depth: usize,
    pub(crate) min_des_deadline_ms: u64,
    pub(crate) des_workers: usize,
    pub(crate) workers: usize,
    pub(crate) shards: Vec<ShardHandle>,
    pub(crate) active_connections: AtomicUsize,
    pub(crate) max_connections: usize,
    pub(crate) sweep_max_points: usize,
    pub(crate) max_active_sweeps: usize,
    pub(crate) active_sweeps: AtomicUsize,
}

/// A running service. Dropping the handle does NOT stop the server; call
/// [`ServeHandle::shutdown`] (tests) or let `POST /admin/shutdown` end it
/// and [`ServeHandle::join`] the threads.
pub struct ServeHandle {
    ctx: Arc<Ctx>,
    acceptor: JoinHandle<()>,
    loops: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// Block until the service exits (via `/admin/shutdown` or
    /// [`Self::shutdown`]). Join order mirrors the data flow: the acceptor
    /// stops first, then the shards drain their connections (which keeps
    /// feeding the job queue), and only then is the queue closed so the
    /// workers can run out the admitted backlog and exit.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for t in self.loops {
            let _ = t.join();
        }
        self.ctx.jobs.close();
        for t in self.workers {
            let _ = t.join();
        }
    }

    /// Trigger graceful shutdown and wait for the drain to finish.
    pub fn shutdown(self) {
        initiate_shutdown(&self.ctx);
        self.join();
    }
}

/// Bind and start the service: one acceptor, `loops` event-loop shards,
/// and a `workers`-deep compute pool.
pub fn serve(cfg: ServeConfig) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let n_loops = if cfg.loops == 0 {
        std::thread::available_parallelism().map_or(2, |n| n.get().clamp(1, 4))
    } else {
        cfg.loops
    };
    let read_timeout = (cfg.read_timeout_ms > 0).then(|| Duration::from_millis(cfg.read_timeout_ms));

    let mut shards = Vec::with_capacity(n_loops);
    let mut wake_rxs = Vec::with_capacity(n_loops);
    for _ in 0..n_loops {
        let (tx, rx) = sys::wake_pair()?;
        shards.push(ShardHandle::new(tx));
        wake_rxs.push(rx);
    }

    let ctx = Arc::new(Ctx {
        addr,
        cache: ShardedLru::new(cfg.cache_capacity, 8),
        coalescer: Coalescer::new(),
        metrics: Metrics::new(),
        jobs: BoundedQueue::new(cfg.queue_depth),
        shutdown: AtomicBool::new(false),
        acceptor_done: AtomicBool::new(false),
        breaker: CircuitBreaker::new(
            cfg.breaker_threshold,
            Duration::from_millis(cfg.breaker_cooldown_ms),
        ),
        read_timeout,
        write_timeout: (cfg.write_timeout_ms > 0)
            .then(|| Duration::from_millis(cfg.write_timeout_ms)),
        header_budget: read_timeout.map_or(Duration::MAX, |t| t * 2),
        degrade_queue_depth: cfg.degrade_queue_depth.max(1),
        min_des_deadline_ms: cfg.min_des_deadline_ms,
        des_workers: cfg.des_workers,
        workers: cfg.workers.max(1),
        shards,
        active_connections: AtomicUsize::new(0),
        max_connections: cfg.max_connections.max(1),
        sweep_max_points: cfg.sweep_max_points.max(1),
        max_active_sweeps: cfg.max_active_sweeps.max(1),
        active_sweeps: AtomicUsize::new(0),
    });

    let mut workers = Vec::new();
    for _ in 0..ctx.workers {
        let ctx = Arc::clone(&ctx);
        workers.push(std::thread::spawn(move || worker_loop(&ctx)));
    }

    let mut loops = Vec::new();
    for (idx, rx) in wake_rxs.into_iter().enumerate() {
        let ctx = Arc::clone(&ctx);
        loops.push(std::thread::spawn(move || conn::run_shard(ctx, idx, rx)));
    }

    let acceptor = {
        let ctx = Arc::clone(&ctx);
        std::thread::spawn(move || acceptor_loop(&ctx, listener))
    };

    Ok(ServeHandle { ctx, acceptor, loops, workers })
}

fn acceptor_loop(ctx: &Ctx, listener: TcpListener) {
    let n_shards = ctx.shards.len();
    let mut next = 0usize;
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if ctx.active_connections.load(Ordering::SeqCst) >= ctx.max_connections {
            ctx.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
            let ra = retry_after_secs(ctx).to_string();
            http::refuse(
                stream,
                429,
                &[("retry-after", &ra)],
                "{\"error\":\"connection limit reached, retry later\",\"field\":\"\"}",
            );
            continue;
        }
        ctx.active_connections.fetch_add(1, Ordering::SeqCst);
        ctx.shards[next % n_shards].submit(stream);
        next = next.wrapping_add(1);
    }
    // No further submissions are possible; let drained shards exit.
    ctx.acceptor_done.store(true, Ordering::SeqCst);
    for shard in &ctx.shards {
        shard.wake();
    }
}

pub(crate) fn initiate_shutdown(ctx: &Ctx) {
    ctx.shutdown.store(true, Ordering::SeqCst);
    // Unblock the acceptor: it only observes the flag after `accept`
    // returns, so poke it with a throwaway connection.
    let _ = TcpStream::connect(ctx.addr);
    for shard in &ctx.shards {
        shard.wake();
    }
}

/// Honest `Retry-After` seconds: how long until this server can plausibly
/// take the refused work. Backlog drain time (queue depth × p50 latency ÷
/// workers) or the breaker's remaining cooldown, whichever is longer,
/// clamped to [1, 60] so a cold histogram still answers something sane.
pub(crate) fn retry_after_secs(ctx: &Ctx) -> u64 {
    let backlog = (ctx.jobs.len() + 1) as f64;
    let p50_ms = ctx.metrics.simulate_latency.quantile_ms(0.50).max(1.0);
    let drain = (backlog * p50_ms / 1_000.0 / ctx.workers as f64).ceil() as u64;
    let cooldown = ctx
        .breaker
        .cooldown_remaining()
        .map_or(0, |d| d.as_secs_f64().ceil() as u64);
    drain.max(cooldown).clamp(1, 60)
}

#[derive(serde::Serialize)]
struct ErrorBody {
    error: String,
    field: String,
}

pub(crate) fn error_json(e: &SimError) -> Arc<String> {
    let body = ErrorBody { error: e.to_string(), field: e.field().to_string() };
    Arc::new(serde_json::to_string(&body).expect("error serialization is infallible"))
}

/// The compute pool: pops jobs, runs the simulation tier, posts the
/// finished bytes back to the owning shard.
fn worker_loop(ctx: &Arc<Ctx>) {
    while let Some(job) = ctx.jobs.pop() {
        match job {
            Job::Simulate { conn_id, shard, body, deadline_ms, started } => {
                let (status, body, disposition, degraded) =
                    simulate_outcome(ctx, &body, deadline_ms);
                match status {
                    400 => drop(ctx.metrics.http_400.fetch_add(1, Ordering::Relaxed)),
                    500 => drop(ctx.metrics.http_500.fetch_add(1, Ordering::Relaxed)),
                    503 => drop(ctx.metrics.http_503.fetch_add(1, Ordering::Relaxed)),
                    504 => drop(ctx.metrics.http_504.fetch_add(1, Ordering::Relaxed)),
                    _ => {}
                }
                let mut headers = vec![("x-cache", disposition)];
                if let Some(reason) = degraded {
                    headers.push(("x-degraded", reason));
                }
                let ra;
                if status == 503 {
                    ra = retry_after_secs(ctx).to_string();
                    headers.push(("retry-after", &ra));
                }
                let bytes = http::response_bytes(status, &headers, &body);
                ctx.metrics.simulate_latency.record(started.elapsed());
                ctx.shards[shard].post(Completion::Simulate { conn_id, bytes });
            }
            Job::SweepPoint { conn_id, shard, index, params, request } => {
                let outcome = answer(ctx, &request);
                let (line, ok) = sweep::point_line(index, &params, &outcome);
                if !ok {
                    ctx.metrics.sweep_point_errors.fetch_add(1, Ordering::Relaxed);
                }
                ctx.shards[shard].post(Completion::SweepPoint { conn_id, index, line, ok });
            }
        }
    }
}

/// One `/simulate` verdict: status, body, `x-cache` disposition, and the
/// `x-degraded` reason when the analytic model stood in for the DES.
type Outcome = (u16, Arc<String>, &'static str, Option<&'static str>);

fn simulate_outcome(ctx: &Ctx, text: &str, header_deadline_ms: Option<u64>) -> Outcome {
    let mut req = match SimRequest::from_json_str(text) {
        Ok(req) => req,
        Err(e) => return (400, error_json(&e), "none", None),
    };
    // The body's own deadline wins; the header covers clients that cannot
    // edit the body (load balancers, curl one-liners).
    if req.deadline_ms.is_none() {
        req.deadline_ms = header_deadline_ms;
    }
    answer(ctx, &req)
}

/// Answer one fully-formed request: verified cache, then the deadline'd or
/// coalesced simulation path. Shared verbatim by `/simulate` bodies and
/// every expanded sweep point, which is what makes a sweep point
/// byte-identical to the individual ask.
pub(crate) fn answer(ctx: &Ctx, req: &SimRequest) -> Outcome {
    let mut req = req.clone();
    // Service-level parallel-DES default: like the deadline, a QoS knob,
    // excluded from the canonical hash — injecting it here cannot split the
    // cache, and every downstream path (deadline'd, breaker-gated,
    // coalesced) sees the same effective config.
    if ctx.des_workers > 1 {
        if let SimMode::Des(ref mut cfg) = req.sim {
            if cfg.parallel_workers == 0 {
                cfg.parallel_workers = ctx.des_workers;
            }
        }
    }
    let canonical = req.canonical_json();
    let key = canonical_hash_of(&canonical);

    // The key excludes the deadline, so a timed asker shares the cache
    // entry of the untimed question — the fastest possible answer. The
    // stored canonical bytes are verified on every hit; a 64-bit collision
    // is counted and recomputed, never served cross-keyed.
    match ctx.cache.get(key, &canonical) {
        Lookup::Hit(body) => {
            ctx.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return (200, body, "hit", None);
        }
        Lookup::Collision => {
            ctx.metrics.cache_collisions.fetch_add(1, Ordering::Relaxed);
        }
        Lookup::Miss => {}
    }
    ctx.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

    if req.deadline_ms.is_some() {
        return simulate_deadlined(ctx, &req, key, &canonical);
    }

    match ctx.coalescer.begin(key) {
        Role::Follower(flight) => {
            ctx.metrics.coalesced_waits.fetch_add(1, Ordering::Relaxed);
            let (status, body) = flight.wait();
            (status, body, "coalesced", None)
        }
        Role::Leader => {
            // A panic inside the engine must not strand followers on an
            // unfinished flight (or kill the worker); surface it as a 500.
            let outcome = catch_unwind(AssertUnwindSafe(|| req.run()));
            let (status, body) = match outcome {
                Ok(Ok(resp)) => {
                    let body = serde_json::to_string(&resp)
                        .expect("response serialization is infallible");
                    (200, Arc::new(body))
                }
                Ok(Err(e)) => {
                    let status = if e.is_client_error() { 400 } else { 500 };
                    (status, error_json(&e))
                }
                Err(_) => (
                    500,
                    Arc::new(
                        "{\"error\":\"simulation panicked\",\"field\":\"sim\"}".to_string(),
                    ),
                ),
            };
            if status == 200 {
                ctx.cache.insert(key, &canonical, Arc::clone(&body));
            }
            ctx.coalescer.complete(key, (status, Arc::clone(&body)));
            (status, body, "miss", None)
        }
    }
}

/// The deadline'd request path: no coalescing, DES work gated by the
/// breaker and degradation pre-checks.
fn simulate_deadlined(ctx: &Ctx, req: &SimRequest, key: u64, canonical: &str) -> Outcome {
    let deadline_ms = req.deadline_ms.expect("caller checked deadline_ms");

    // Analytic answers are closed-form — microseconds. No deadline is too
    // tight for them and the breaker (which guards the DES tier) does not
    // apply.
    if matches!(req.sim, SimMode::Analytic) {
        return run_uncoalesced(ctx, req, key, canonical);
    }

    // A faulted request cannot degrade: the analytic model has no fault
    // replay, and silently dropping the fault plan would answer a different
    // question than was asked.
    let degradable = req.faults.as_ref().is_none_or(|p| p.is_empty());

    // Pre-checks, cheapest first, all BEFORE breaker admission so a
    // degrade here can never leak a half-open probe slot.
    if deadline_ms < ctx.min_des_deadline_ms {
        return degrade_or_refuse(ctx, req, "deadline_too_tight", degradable);
    }
    if ctx.jobs.len() >= ctx.degrade_queue_depth {
        return degrade_or_refuse(ctx, req, "queue_deep", degradable);
    }
    let probe = match ctx.breaker.try_acquire() {
        Admission::Reject => return degrade_or_refuse(ctx, req, "breaker_open", degradable),
        Admission::Allow { probe } => probe,
    };

    let outcome = catch_unwind(AssertUnwindSafe(|| req.run()));
    match outcome {
        Ok(Ok(resp)) => {
            ctx.breaker.on_success(probe);
            let body = Arc::new(
                serde_json::to_string(&resp).expect("response serialization is infallible"),
            );
            // A timed run that finished in budget IS the untimed answer:
            // safe to cache under the deadline-free canonical key.
            ctx.cache.insert(key, canonical, Arc::clone(&body));
            (200, body, "miss", None)
        }
        Ok(Err(e @ SimError::DeadlineExceeded { .. })) => {
            ctx.breaker.on_failure(probe);
            ctx.metrics.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
            if degradable {
                degrade(ctx, req, "deadline_exceeded")
            } else {
                // The error message carries the partial progress (events
                // processed, faults observed so far).
                (504, error_json(&e), "miss", None)
            }
        }
        Ok(Err(e)) => {
            // Typed request errors complete promptly: the tier is healthy.
            ctx.breaker.on_success(probe);
            let status = if e.is_client_error() { 400 } else { 500 };
            (status, error_json(&e), "miss", None)
        }
        Err(_) => {
            ctx.breaker.on_failure(probe);
            (
                500,
                Arc::new("{\"error\":\"simulation panicked\",\"field\":\"sim\"}".to_string()),
                "miss",
                None,
            )
        }
    }
}

/// Run a request directly (no coalescing, no breaker), caching a 200.
fn run_uncoalesced(ctx: &Ctx, req: &SimRequest, key: u64, canonical: &str) -> Outcome {
    let outcome = catch_unwind(AssertUnwindSafe(|| req.run()));
    match outcome {
        Ok(Ok(resp)) => {
            let body = Arc::new(
                serde_json::to_string(&resp).expect("response serialization is infallible"),
            );
            ctx.cache.insert(key, canonical, Arc::clone(&body));
            (200, body, "miss", None)
        }
        Ok(Err(e)) => {
            let status = if e.is_client_error() { 400 } else { 500 };
            (status, error_json(&e), "miss", None)
        }
        Err(_) => (
            500,
            Arc::new("{\"error\":\"simulation panicked\",\"field\":\"sim\"}".to_string()),
            "miss",
            None,
        ),
    }
}

/// Degrade if the fault plan allows it, else refuse with 503 so the client
/// can retry against a recovered tier.
fn degrade_or_refuse(
    ctx: &Ctx,
    req: &SimRequest,
    reason: &'static str,
    degradable: bool,
) -> Outcome {
    if degradable {
        return degrade(ctx, req, reason);
    }
    let body = format!(
        "{{\"error\":\"DES tier unavailable ({reason}); faulted requests cannot \
         degrade to the analytic model\",\"field\":\"sim\"}}"
    );
    (503, Arc::new(body), "none", None)
}

/// Answer a DES question with the analytic model, honestly flagged:
/// `degraded: true` in the body, the *original* request's `config_hash` in
/// the provenance, an `x-degraded` reason header — and never cached, since
/// the canonical key names the DES answer this is standing in for.
fn degrade(ctx: &Ctx, req: &SimRequest, reason: &'static str) -> Outcome {
    // Keeping `cluster` means a degraded cluster question still answers the
    // cluster (via the closed-form cluster model), not a single server.
    let twin = SimRequest {
        server: req.server.clone(),
        workload: req.workload.clone(),
        sim: SimMode::Analytic,
        faults: None,
        trace: false,
        deadline_ms: None,
        cluster: req.cluster,
    };
    match twin.run() {
        Ok(mut resp) => {
            resp.degraded = true;
            resp.config_hash = req.hash_hex();
            ctx.metrics.degraded_total.fetch_add(1, Ordering::Relaxed);
            let body = Arc::new(
                serde_json::to_string(&resp).expect("response serialization is infallible"),
            );
            (200, body, "degraded", Some(reason))
        }
        // The spec itself is broken (bad server config): tell the client.
        Err(e) => {
            let status = if e.is_client_error() { 400 } else { 500 };
            (status, error_json(&e), "none", None)
        }
    }
}

//! `trainbox-serve` — run the what-if simulation service.
//!
//! ```sh
//! trainbox-serve --port 8080
//! curl -s localhost:8080/simulate -d \
//!   '{"server":{"kind":"TrainBox","n_accels":256},"workload":"Resnet-50"}'
//! ```
//!
//! Stop it with `POST /admin/shutdown`; in-flight and queued requests are
//! answered before the process exits.

use trainbox_serve::{serve, ServeConfig};

const USAGE: &str = "usage: trainbox-serve [--port N] [--addr HOST:PORT] \
[--workers N] [--queue-depth N] [--cache-capacity N] \
[--read-timeout-ms N] [--write-timeout-ms N] \
[--breaker-threshold N] [--breaker-cooldown-ms N] \
[--degrade-queue-depth N] [--min-des-deadline-ms N] [--des-workers N] \
[--loops N] [--max-connections N] [--sweep-max-points N] \
[--max-active-sweeps N]";

fn parse_args() -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--port" => {
                let port: u16 = value("--port")?
                    .parse()
                    .map_err(|e| format!("bad --port: {e}"))?;
                cfg.addr = format!("127.0.0.1:{port}");
            }
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--queue-depth" => {
                cfg.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("bad --queue-depth: {e}"))?;
            }
            "--cache-capacity" => {
                cfg.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("bad --cache-capacity: {e}"))?;
            }
            "--read-timeout-ms" => {
                cfg.read_timeout_ms = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad --read-timeout-ms: {e}"))?;
            }
            "--write-timeout-ms" => {
                cfg.write_timeout_ms = value("--write-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad --write-timeout-ms: {e}"))?;
            }
            "--breaker-threshold" => {
                cfg.breaker_threshold = value("--breaker-threshold")?
                    .parse()
                    .map_err(|e| format!("bad --breaker-threshold: {e}"))?;
            }
            "--breaker-cooldown-ms" => {
                cfg.breaker_cooldown_ms = value("--breaker-cooldown-ms")?
                    .parse()
                    .map_err(|e| format!("bad --breaker-cooldown-ms: {e}"))?;
            }
            "--degrade-queue-depth" => {
                cfg.degrade_queue_depth = value("--degrade-queue-depth")?
                    .parse()
                    .map_err(|e| format!("bad --degrade-queue-depth: {e}"))?;
            }
            "--min-des-deadline-ms" => {
                cfg.min_des_deadline_ms = value("--min-des-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("bad --min-des-deadline-ms: {e}"))?;
            }
            // Default 0 = sequential engine: the serve pool already runs
            // `--workers` simulations concurrently, so parallel DES inside
            // each one oversubscribes unless the host has cores to spare.
            // Applies to cluster requests (one LP per server) and eligible
            // single-server requests (one LP per intra-server lane) alike;
            // results are byte-identical at any worker count.
            "--des-workers" => {
                cfg.des_workers = value("--des-workers")?
                    .parse()
                    .map_err(|e| format!("bad --des-workers: {e}"))?;
            }
            // 0 = auto-size from available parallelism. Event loops are
            // cheap (they only shuffle bytes); a couple is plenty.
            "--loops" => {
                cfg.loops = value("--loops")?
                    .parse()
                    .map_err(|e| format!("bad --loops: {e}"))?;
            }
            "--max-connections" => {
                cfg.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("bad --max-connections: {e}"))?;
            }
            "--sweep-max-points" => {
                cfg.sweep_max_points = value("--sweep-max-points")?
                    .parse()
                    .map_err(|e| format!("bad --sweep-max-points: {e}"))?;
            }
            "--max-active-sweeps" => {
                cfg.max_active_sweeps = value("--max-active-sweeps")?
                    .parse()
                    .map_err(|e| format!("bad --max-active-sweeps: {e}"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = parse_args().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let workers = cfg.workers;
    let handle = serve(cfg).unwrap_or_else(|e| {
        eprintln!("failed to bind: {e}");
        std::process::exit(1);
    });
    println!(
        "trainbox-serve listening on http://{} ({workers} workers); \
         POST /admin/shutdown to stop",
        handle.addr()
    );
    handle.join();
    println!("trainbox-serve: drained and stopped");
}

//! Readiness notification for the non-blocking serve tier, vendored
//! against the platform C library the Rust binary already links — no
//! `libc`/`mio` crates, per the repo's std-only rule.
//!
//! Linux gets a real `epoll` [`Poller`]; every other Unix falls back to a
//! `poll(2)` implementation behind the same API. Both are level-triggered:
//! the event loop re-arms interest explicitly (write interest only while
//! bytes are pending), which keeps the loop logic free of edge-trigger
//! bookkeeping. Cross-thread wakeups ride a loopback socket pair
//! ([`wake_pair`]) instead of a pipe so no extra syscall surface is
//! needed.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::RawFd;

/// What a registered fd should be watched for. Level-triggered: a readable
/// fd keeps reporting until drained, a writable one until the socket
/// buffer fills — so only subscribe `writable` while output is pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest { readable: true, writable: false };
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// No I/O interest; errors and hangups are still reported (the kernel
    /// always delivers those), which lets a loop reap dead peers while a
    /// connection waits on the compute pool.
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One readiness event. `hangup` folds the platform's HUP/ERR signals
/// together: either way the peer is gone and the connection should be
/// reaped once pending work allows.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
}

/// Cap on events returned per wait; the loop drains the rest next turn.
pub const MAX_EVENTS: usize = 256;

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Interest, MAX_EVENTS};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // x86 packs epoll_event to match the 32-bit layout; other Linux
    // architectures use natural alignment.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Level-triggered epoll instance.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall wrapper; a negative return is errno.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS] })
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask(interest), data: token };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, Interest::NONE, 0)
        }

        /// Wait for readiness; `None` blocks until something happens.
        pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            let timeout_ms = match timeout {
                // Round up so a 0.4 ms deadline does not busy-spin at 0.
                Some(t) => i32::try_from(t.as_millis().max(1)).unwrap_or(i32::MAX),
                None => -1,
            };
            // SAFETY: buf is MAX_EVENTS long and lives across the call.
            let n = unsafe {
                epoll_wait(self.epfd, self.buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &self.buf[..n as usize] {
                let events = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: events & EPOLLIN != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd came from epoll_create1 and is closed once.
            unsafe {
                close(self.epfd);
            }
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Pollfd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        // nfds_t is u32 on the BSD family this fallback serves.
        fn poll(fds: *mut Pollfd, nfds: u32, timeout: i32) -> i32;
    }

    /// `poll(2)`-backed fallback with the same level-triggered contract as
    /// the Linux epoll poller. O(n) per wait — fine for the connection
    /// counts a dev laptop sees; production deploys on Linux.
    pub struct Poller {
        registered: HashMap<RawFd, (u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { registered: HashMap::new() })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.remove(&fd);
            Ok(())
        }

        pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<Pollfd> = Vec::with_capacity(self.registered.len());
            let mut tokens: Vec<u64> = Vec::with_capacity(self.registered.len());
            for (&fd, &(token, interest)) in &self.registered {
                let mut events = 0i16;
                if interest.readable {
                    events |= POLLIN;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                fds.push(Pollfd { fd, events, revents: 0 });
                tokens.push(token);
            }
            let timeout_ms = match timeout {
                Some(t) => i32::try_from(t.as_millis().max(1)).unwrap_or(i32::MAX),
                None => -1,
            };
            // SAFETY: fds is a live contiguous buffer for the call.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, &token) in fds.iter().zip(&tokens) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLHUP | POLLERR) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
compile_error!("trainbox-serve's event loop needs a Unix readiness API (epoll or poll)");

pub use imp::Poller;

/// Sender half of a cross-thread wakeup channel: any thread may signal the
/// owning event loop. Writes are non-blocking; a full socket buffer means
/// wakeups are already pending, so dropping the byte loses nothing.
pub struct WakeSender {
    tx: std::sync::Mutex<TcpStream>,
}

impl WakeSender {
    pub fn wake(&self) {
        let mut tx = self.tx.lock().unwrap();
        let _ = tx.write(&[1u8]);
    }
}

/// Receiver half; registered with the poller and drained on wakeup.
pub struct WakeReceiver {
    rx: TcpStream,
}

impl WakeReceiver {
    pub fn raw_fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Swallow all pending wakeup bytes.
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.rx.read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// A connected loopback socket pair serving as a self-wakeup channel —
/// pure std, no pipes, works on every platform with TCP.
pub fn wake_pair() -> io::Result<(WakeSender, WakeReceiver)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let tx = TcpStream::connect(addr)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((WakeSender { tx: std::sync::Mutex::new(tx) }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    #[test]
    fn wake_pair_delivers_readiness_through_the_poller() {
        let (tx, mut rx) = wake_pair().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(rx.raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a short wait returns empty.
        poller.wait(Some(Duration::from_millis(10)), &mut events).unwrap();
        assert!(events.is_empty(), "no wakeup sent yet");
        tx.wake();
        poller.wait(Some(Duration::from_millis(1000)), &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable), "{events:?}");
        rx.drain();
        poller.wait(Some(Duration::from_millis(10)), &mut events).unwrap();
        assert!(
            events.iter().all(|e| e.token != 7 || !e.readable),
            "drained receiver must go quiet: {events:?}"
        );
    }

    #[test]
    fn write_interest_reports_until_buffer_full() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(client.as_raw_fd(), 1, Interest::WRITE).unwrap();
        let mut events = Vec::new();
        poller.wait(Some(Duration::from_millis(1000)), &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable), "{events:?}");
        // Dropping interest silences it (level-triggered re-arm contract).
        poller.modify(client.as_raw_fd(), 1, Interest::NONE).unwrap();
        poller.wait(Some(Duration::from_millis(10)), &mut events).unwrap();
        assert!(events.iter().all(|e| !e.writable), "{events:?}");
    }
}

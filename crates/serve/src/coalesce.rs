//! In-flight request coalescing ("single-flight").
//!
//! When several clients ask the same canonical question concurrently, only
//! the first runs the simulation; the rest block on the leader's flight and
//! receive the same response bytes. Keyed by the canonical request hash,
//! like the cache, so coalescing sees through wire-spelling differences.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// What a flight resolves to: the HTTP status and response body the leader
/// produced. Errors coalesce too — an invalid request is invalid for every
/// waiter asking the same thing.
pub type Outcome = (u16, Arc<String>);

pub struct Flight {
    slot: Mutex<Option<Outcome>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight { slot: Mutex::new(None), cv: Condvar::new() }
    }

    /// Block until the leader completes the flight.
    pub fn wait(&self) -> Outcome {
        let mut slot = self.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.cv.wait(slot).unwrap();
        }
        slot.clone().unwrap()
    }

    fn fill(&self, outcome: Outcome) {
        *self.slot.lock().unwrap() = Some(outcome);
        self.cv.notify_all();
    }
}

pub enum Role {
    /// This caller runs the simulation and must call [`Coalescer::complete`].
    Leader,
    /// Another caller is already running it; wait on the flight.
    Follower(Arc<Flight>),
}

#[derive(Default)]
pub struct Coalescer {
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
}

impl Coalescer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Join the flight for `key`, creating it if absent.
    pub fn begin(&self, key: u64) -> Role {
        let mut map = self.inflight.lock().unwrap();
        match map.get(&key) {
            Some(flight) => Role::Follower(Arc::clone(flight)),
            None => {
                map.insert(key, Arc::new(Flight::new()));
                Role::Leader
            }
        }
    }

    /// Leader only: publish the outcome to every follower and retire the
    /// flight. Later requests for `key` start fresh (or hit the cache).
    pub fn complete(&self, key: u64, outcome: Outcome) {
        let flight = self.inflight.lock().unwrap().remove(&key);
        if let Some(flight) = flight {
            flight.fill(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn followers_receive_the_leaders_outcome() {
        let c = Arc::new(Coalescer::new());
        assert!(matches!(c.begin(7), Role::Leader));
        let mut waiters = Vec::new();
        for _ in 0..4 {
            let Role::Follower(flight) = c.begin(7) else {
                panic!("second begin must be a follower");
            };
            waiters.push(thread::spawn(move || flight.wait()));
        }
        c.complete(7, (200, Arc::new("body".to_string())));
        for w in waiters {
            let (status, body) = w.join().unwrap();
            assert_eq!(status, 200);
            assert_eq!(body.as_str(), "body");
        }
        // The flight is retired: a new request leads again.
        assert!(matches!(c.begin(7), Role::Leader));
        c.complete(7, (200, Arc::new(String::new())));
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let c = Coalescer::new();
        assert!(matches!(c.begin(1), Role::Leader));
        assert!(matches!(c.begin(2), Role::Leader));
        c.complete(1, (200, Arc::new(String::new())));
        c.complete(2, (200, Arc::new(String::new())));
    }
}

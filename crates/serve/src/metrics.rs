//! Service counters and a lock-free log-bucketed latency histogram.
//!
//! Everything is plain atomics so the request hot path never takes a lock
//! for accounting. The histogram buckets latency by `floor(log2(µs))`,
//! which bounds quantile error to 2× — plenty for a p50/p99 health signal
//! on a path whose cost spans microseconds (cache hit) to hundreds of
//! milliseconds (cold DES run).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 40; // 2^40 µs ≈ 13 days: unreachable in practice

pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl Histogram {
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().max(1) as u64;
        let bucket = (63 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound of the bucket holding quantile `q` (0..=1), in
    /// milliseconds; 0.0 when nothing has been recorded.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                return (1u64 << (i + 1)) as f64 / 1e3;
            }
        }
        (1u64 << BUCKETS) as f64 / 1e3
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

#[derive(Default)]
pub struct Metrics {
    pub requests_total: AtomicU64,
    pub simulate_requests: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    /// Verified-hit failures: the 64-bit canonical hash matched an entry
    /// whose stored canonical bytes differ — a real FNV-1a collision,
    /// served as a miss instead of the wrong answer.
    pub cache_collisions: AtomicU64,
    pub coalesced_waits: AtomicU64,
    /// `POST /sweep` requests accepted (grid expanded and streamed).
    pub sweep_requests: AtomicU64,
    /// Grid points dispatched across all sweeps.
    pub sweep_points_total: AtomicU64,
    /// Grid points that answered with an error line (the stream survives).
    pub sweep_point_errors: AtomicU64,
    pub shed_total: AtomicU64,
    pub http_400: AtomicU64,
    pub http_500: AtomicU64,
    /// Clients cut off for trickling or stalling (HTTP 408).
    pub http_408: AtomicU64,
    /// Requests over the header caps (HTTP 431).
    pub http_431: AtomicU64,
    /// DES requests refused while the breaker was open and no degraded
    /// answer was possible (HTTP 503).
    pub http_503: AtomicU64,
    /// DES runs cancelled at their deadline with no degraded fallback
    /// (HTTP 504).
    pub http_504: AtomicU64,
    /// Requests using HTTP the service deliberately does not speak —
    /// today, `Transfer-Encoding: chunked` bodies (HTTP 501).
    pub http_501: AtomicU64,
    /// DES runs cancelled by their wall-clock deadline (whether or not a
    /// degraded answer followed).
    pub deadline_timeouts: AtomicU64,
    /// DES questions answered by the analytic model with `degraded: true`.
    pub degraded_total: AtomicU64,
    pub simulate_latency: Histogram,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Render the `/metrics` JSON document. Queue depth, cache size,
    /// connection count, and breaker readings are gauges owned elsewhere,
    /// so the caller passes current values.
    pub fn render(
        &self,
        queue_depth: usize,
        cache_entries: usize,
        breaker_state: &str,
        breaker_trips: u64,
        active_connections: usize,
    ) -> String {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let hits = get(&self.cache_hits);
        let misses = get(&self.cache_misses);
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
        format!(
            concat!(
                "{{\"requests_total\":{},\"simulate_requests\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{},",
                "\"cache_collisions\":{},",
                "\"cache_entries\":{},\"coalesced_waits\":{},",
                "\"sweep_requests\":{},\"sweep_points_total\":{},",
                "\"sweep_point_errors\":{},",
                "\"queue_depth\":{},\"shed_total\":{},\"active_connections\":{},",
                "\"http_400\":{},\"http_500\":{},\"http_408\":{},\"http_431\":{},",
                "\"http_501\":{},\"http_503\":{},\"http_504\":{},",
                "\"deadline_timeouts\":{},\"degraded_total\":{},",
                "\"breaker_state\":\"{}\",\"breaker_trips\":{},",
                "\"simulate_latency_ms\":{{\"count\":{},\"p50\":{},\"p99\":{}}}}}"
            ),
            get(&self.requests_total),
            get(&self.simulate_requests),
            hits,
            misses,
            hit_rate,
            get(&self.cache_collisions),
            cache_entries,
            get(&self.coalesced_waits),
            get(&self.sweep_requests),
            get(&self.sweep_points_total),
            get(&self.sweep_point_errors),
            queue_depth,
            get(&self.shed_total),
            active_connections,
            get(&self.http_400),
            get(&self.http_500),
            get(&self.http_408),
            get(&self.http_431),
            get(&self.http_501),
            get(&self.http_503),
            get(&self.http_504),
            get(&self.deadline_timeouts),
            get(&self.degraded_total),
            breaker_state,
            breaker_trips,
            self.simulate_latency.count(),
            self.simulate_latency.quantile_ms(0.50),
            self.simulate_latency.quantile_ms(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_recorded_latencies() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket 6: 64..128 µs
        }
        h.record(Duration::from_millis(80)); // the single tail outlier
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ms(0.50);
        assert!(p50 <= 0.2, "p50 {p50} ms must sit in the 100 µs bucket");
        let p99 = h.quantile_ms(0.99);
        assert!(p99 <= 0.2, "p99 {p99} ms: 99 of 100 samples are ~100 µs");
        let p100 = h.quantile_ms(1.0);
        assert!(p100 >= 80.0, "max {p100} ms must cover the 80 ms outlier");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_ms(0.99), 0.0);
    }

    #[test]
    fn render_is_valid_json_shape() {
        let m = Metrics::new();
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        m.deadline_timeouts.fetch_add(2, Ordering::Relaxed);
        m.degraded_total.fetch_add(1, Ordering::Relaxed);
        m.cache_collisions.fetch_add(1, Ordering::Relaxed);
        m.sweep_points_total.fetch_add(9, Ordering::Relaxed);
        let doc = m.render(2, 5, "closed", 7, 3);
        assert!(doc.contains("\"cache_hit_rate\":0.75"));
        assert!(doc.contains("\"cache_collisions\":1"));
        assert!(doc.contains("\"sweep_points_total\":9"));
        assert!(doc.contains("\"active_connections\":3"));
        assert!(doc.contains("\"queue_depth\":2"));
        assert!(doc.contains("\"cache_entries\":5"));
        assert!(doc.contains("\"deadline_timeouts\":2"));
        assert!(doc.contains("\"degraded_total\":1"));
        assert!(doc.contains("\"breaker_state\":\"closed\""));
        assert!(doc.contains("\"breaker_trips\":7"));
        assert!(doc.starts_with('{') && doc.ends_with('}'));
    }
}

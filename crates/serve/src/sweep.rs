//! `/sweep` streaming state: grid expansion, windowed dispatch, in-order
//! NDJSON emission.
//!
//! A sweep is one HTTP request that fans a parameter grid across the
//! compute pool and streams one NDJSON line per point as chunked transfer
//! encoding. The shard owns a [`SweepState`] per streaming connection:
//!
//! * **Windowed dispatch** — at most `window` points of one sweep sit in
//!   the job queue at a time, so a 4096-point sweep cannot monopolize the
//!   bounded queue and starve `/simulate` traffic.
//! * **In-order emission** — workers finish points out of order; lines are
//!   buffered by index and released in grid order so the stream is
//!   deterministic and clients can line up points against the grid without
//!   bookkeeping.
//! * **Failure isolation** — a point that fails (bad config for that
//!   combination, deadline, engine error) becomes a `"status":"error"`
//!   line; the stream continues and the trailing summary line counts it.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::Ordering;

use trainbox_core::request::SweepRequest;

use crate::http;
use crate::{error_json, Ctx, Job, Outcome};

/// Per-connection streaming state for one active sweep.
pub(crate) struct SweepState {
    /// Total points in the expanded grid.
    total: usize,
    /// Points not yet handed to the compute pool, in grid order.
    pending: VecDeque<PendingPoint>,
    /// Points currently in the job queue or running on a worker.
    in_flight: usize,
    /// Next grid index the stream owes the client.
    next_emit: usize,
    /// Finished lines waiting for their turn (completion order is not
    /// grid order).
    buffered: BTreeMap<usize, String>,
    ok: usize,
    errors: usize,
    /// Max points of this sweep in the job queue at once.
    window: usize,
    /// Done line and last-chunk emitted; connection closes once drained.
    pub(crate) finished: bool,
}

struct PendingPoint {
    index: usize,
    params: String,
    request: Box<trainbox_core::request::SimRequest>,
}

impl SweepState {
    /// True when no progress can arrive without a retry: points remain but
    /// none are in flight (the job queue was full at dispatch time).
    pub(crate) fn starved(&self) -> bool {
        self.in_flight == 0 && !self.pending.is_empty()
    }
}

/// Parse and validate a sweep body; admit it against the concurrent-sweep
/// cap. On success the caller owes the stream a `200` chunked head and a
/// dispatch pass. On failure returns `(status, body)` for a plain response.
pub(crate) fn begin(ctx: &Ctx, body: &str) -> Result<SweepState, (u16, String)> {
    let req = match SweepRequest::from_json_str(body) {
        Ok(req) => req,
        Err(e) => return Err((400, error_json(&e).as_str().to_owned())),
    };
    let n_points = req.n_points();
    if n_points > ctx.sweep_max_points {
        return Err((
            400,
            format!(
                "{{\"error\":\"sweep grid has {} points, over the limit of {}\",\
                 \"field\":\"grid\"}}",
                n_points, ctx.sweep_max_points
            ),
        ));
    }
    // Sweeps hold a connection and stream for a long time; cap how many run
    // at once so a burst of grids cannot crowd out interactive traffic.
    let prev = ctx.active_sweeps.fetch_add(1, Ordering::SeqCst);
    if prev >= ctx.max_active_sweeps {
        ctx.active_sweeps.fetch_sub(1, Ordering::SeqCst);
        return Err((429, "{\"error\":\"too many active sweeps, retry later\",\"field\":\"\"}".into()));
    }
    ctx.metrics.sweep_requests.fetch_add(1, Ordering::Relaxed);
    let points = req.expand();
    let total = points.len();
    let pending = points
        .into_iter()
        .map(|p| PendingPoint {
            index: p.index,
            params: p.params,
            request: Box::new(p.request),
        })
        .collect();
    Ok(SweepState {
        total,
        pending,
        in_flight: 0,
        next_emit: 0,
        buffered: BTreeMap::new(),
        ok: 0,
        errors: 0,
        window: (ctx.workers * 2).clamp(1, 32),
        finished: false,
    })
}

/// Feed the compute pool up to the window. Called after every completion
/// and on the shard's starvation-retry tick; a full job queue just leaves
/// the remainder pending for next time.
pub(crate) fn dispatch(ctx: &Ctx, shard_idx: usize, conn_id: u64, st: &mut SweepState) {
    while st.in_flight < st.window {
        let Some(point) = st.pending.pop_front() else { break };
        let job = Job::SweepPoint {
            conn_id,
            shard: shard_idx,
            index: point.index,
            params: point.params,
            request: point.request,
        };
        match ctx.jobs.push(job) {
            Ok(()) => {
                st.in_flight += 1;
                ctx.metrics.sweep_points_total.fetch_add(1, Ordering::Relaxed);
            }
            Err(job) => {
                // Queue full: put the point back and wait for a slot.
                let Job::SweepPoint { index, params, request, .. } = job else {
                    unreachable!("push returns the job it was given");
                };
                st.pending.push_front(PendingPoint { index, params, request });
                break;
            }
        }
    }
}

/// Absorb one finished point and return the chunk bytes now due on the
/// wire: zero or more in-order point lines, plus the summary line and
/// terminating chunk when the grid is complete.
pub(crate) fn on_point(
    ctx: &Ctx,
    st: &mut SweepState,
    index: usize,
    line: &str,
    ok: bool,
) -> Vec<u8> {
    st.in_flight = st.in_flight.saturating_sub(1);
    if ok {
        st.ok += 1;
    } else {
        st.errors += 1;
    }
    st.buffered.insert(index, line.to_owned());

    let mut out = Vec::new();
    while let Some(line) = st.buffered.remove(&st.next_emit) {
        out.extend_from_slice(&http::chunk_bytes(&line));
        st.next_emit += 1;
    }
    if st.next_emit == st.total && st.pending.is_empty() && st.in_flight == 0 {
        let done = format!(
            "{{\"done\":true,\"points\":{},\"ok\":{},\"errors\":{}}}",
            st.total, st.ok, st.errors
        );
        out.extend_from_slice(&http::chunk_bytes(&done));
        out.extend_from_slice(http::LAST_CHUNK);
        st.finished = true;
        ctx.active_sweeps.fetch_sub(1, Ordering::SeqCst);
    }
    out
}

/// Render one point's NDJSON line from its simulate outcome. The happy
/// path embeds the cached/computed response JSON **verbatim** as the
/// `response` field, so a sweep point is byte-identical to the body an
/// individual `POST /simulate` of the same request would return.
pub(crate) fn point_line(index: usize, params: &str, outcome: &Outcome) -> (String, bool) {
    let (status, body, cache, _) = outcome;
    if *status == 200 {
        (
            format!(
                "{{\"point\":{index},\"params\":{params},\"status\":\"ok\",\
                 \"cache\":\"{cache}\",\"response\":{body}}}"
            ),
            true,
        )
    } else {
        (
            format!(
                "{{\"point\":{index},\"params\":{params},\"status\":\"error\",\
                 \"http_status\":{status},\"error\":{body}}}"
            ),
            false,
        )
    }
}

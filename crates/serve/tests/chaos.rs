//! Chaos suite: a fault-injecting TCP client driving a live service.
//!
//! Each scenario throws one class of network misbehavior at the server —
//! byte-trickling, header floods, garbage bytes, abrupt resets, mid-body
//! stalls, connection floods, deadline storms — and asserts the contract
//! of the robust serve tier:
//!
//! * the server never hangs: every probe gets a bounded-latency answer;
//! * the server never panics: it keeps answering after every storm;
//! * it sheds and degrades *honestly* (408/429/431/503/504, or a degraded
//!   analytic answer flagged as such);
//! * it recovers: `/readyz` reports healthy once the storm passes.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use trainbox_serve::{serve, ServeConfig, ServeHandle};

/// Chaos-tier config: aggressive timeouts and a hair-trigger breaker so
/// the suite runs in seconds rather than minutes.
fn chaos_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_depth: 16,
        cache_capacity: 64,
        read_timeout_ms: 150,
        write_timeout_ms: 1_000,
        breaker_threshold: 2,
        breaker_cooldown_ms: 800,
        degrade_queue_depth: 12,
        min_des_deadline_ms: 10,
        des_workers: 2,
        ..ServeConfig::default()
    }
}

fn start(cfg: ServeConfig) -> (SocketAddr, ServeHandle) {
    let handle = serve(cfg).expect("bind");
    (handle.addr(), handle)
}

/// One-shot HTTP client with client-side timeouts so a wedged server fails
/// the test instead of hanging it. Returns (status, headers, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    http_with_headers(addr, method, path, &[], body)
}

fn http_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut req = format!("{method} {path} HTTP/1.1\r\nhost: chaos\r\n");
    for (name, value) in extra {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str(&format!("content-length: {}\r\nconnection: close\r\n\r\n{body}", body.len()));
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status code");
    (status, head.to_string(), body.to_string())
}

/// A DES request slow enough (hundreds of ms) that a tight deadline always
/// cancels it. `salt` varies `max_events` so each spelling hashes — and
/// caches — separately.
fn slow_des(salt: u64, deadline_ms: Option<u64>, faulted: bool) -> String {
    let deadline = match deadline_ms {
        Some(ms) => format!(r#""deadline_ms": {ms},"#),
        None => String::new(),
    };
    let faults = if faulted {
        r#""faults": {"events": [{"at_secs": 0.5, "kind": {"AccelDropout": {"acc": 0}}}]},"#
    } else {
        ""
    };
    format!(
        r#"{{"server": {{"kind": "TrainBoxNoPool", "n_accels": 16, "batch_size": 512}},
            "workload": "Inception-v4",
            {deadline}
            {faults}
            "sim": {{"Des": {{"chunk_samples": 32, "batches": 100, "warmup_batches": 2,
                            "prefetch_batches": 1, "max_events": {},
                            "reference_allocator": false}}}}}}"#,
        400_000_000 + salt
    )
}

/// A DES request small enough to finish in well under a second.
fn fast_des(salt: u64, deadline_ms: u64) -> String {
    format!(
        r#"{{"server": {{"kind": "TrainBoxNoPool", "n_accels": 4, "batch_size": 512}},
            "workload": "Resnet-50",
            "deadline_ms": {deadline_ms},
            "sim": {{"Des": {{"chunk_samples": 64, "batches": 3, "warmup_batches": 1,
                            "prefetch_batches": 1, "max_events": {},
                            "reference_allocator": false}}}}}}"#,
        10_000_000 + salt
    )
}

fn metric(doc: &str, name: &str) -> f64 {
    let key = format!("\"{name}\":");
    let rest = &doc[doc.find(&key).unwrap_or_else(|| panic!("no {name} in {doc}")) + key.len()..];
    let end = rest.find([',', '}']).expect("metric value terminator");
    rest[..end].trim().parse().unwrap_or_else(|e| panic!("bad {name} in {doc}: {e}"))
}

#[test]
fn slowloris_trickler_is_disconnected_not_served_forever() {
    // ONE worker: if the trickler could pin it, nothing else would ever be
    // answered — the strongest form of the regression.
    let (addr, handle) = start(ServeConfig { workers: 1, ..chaos_config() });

    let trickler = thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
        let started = Instant::now();
        // One byte per 50 ms keeps each socket read alive; only the header
        // budget (2× read timeout = 300 ms) can end this.
        for b in b"GET /healthz HTTP/1.1\r\nx-drip: 0123456789abcdef\r".iter() {
            if stream.write_all(&[*b]).is_err() {
                break; // server cut us off — exactly what we want
            }
            thread::sleep(Duration::from_millis(50));
        }
        // Whether cut off mid-write or answered 408, the connection must
        // reach EOF promptly rather than idling forever.
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
        (started.elapsed(), String::from_utf8_lossy(&sink).into_owned())
    });

    let (elapsed, answer) = trickler.join().unwrap();
    assert!(
        elapsed < Duration::from_secs(4),
        "trickler must be disconnected in bounded time, held for {elapsed:?}"
    );
    if !answer.is_empty() {
        assert!(answer.contains("408"), "a trickler that got an answer gets 408: {answer}");
    }

    // The lone worker is free again: liveness answered quickly.
    let started = Instant::now();
    let (status, _, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(started.elapsed() < Duration::from_secs(2), "worker still pinned");

    handle.shutdown();
}

#[test]
fn header_flood_is_rejected_with_431() {
    let (addr, handle) = start(chaos_config());

    // Too many headers.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..200 {
        raw.push_str(&format!("x-flood-{i}: {i}\r\n"));
    }
    raw.push_str("\r\n");
    stream.write_all(raw.as_bytes()).unwrap();
    let mut answer = String::new();
    let _ = stream.read_to_string(&mut answer);
    assert!(answer.contains("431"), "{answer}");

    // One absurdly long header line.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let raw = format!("GET /healthz HTTP/1.1\r\nx-big: {}\r\n\r\n", "v".repeat(64 * 1024));
    // The server may close mid-upload; ignore the write error and read on.
    let _ = stream.write_all(raw.as_bytes());
    let mut answer = String::new();
    let _ = stream.read_to_string(&mut answer);
    assert!(answer.contains("431"), "{answer}");

    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    assert!(metric(&metrics, "http_431") >= 2.0, "{metrics}");
    handle.shutdown();
}

#[test]
fn mid_body_stall_times_out_with_408() {
    let (addr, handle) = start(chaos_config());
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(b"POST /simulate HTTP/1.1\r\ncontent-length: 4096\r\n\r\npartial-then-silence")
        .unwrap();
    // Promise 4096 bytes, send 20, stall with the socket open.
    let started = Instant::now();
    let mut answer = String::new();
    let _ = stream.read_to_string(&mut answer);
    assert!(answer.contains("408"), "stalled body must be answered 408: {answer}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stall must end at the read timeout, took {:?}",
        started.elapsed()
    );
    handle.shutdown();
}

#[test]
fn garbage_and_reset_storm_leaves_the_server_healthy() {
    let (addr, handle) = start(chaos_config());

    let mut storm = Vec::new();
    for i in 0..24u64 {
        storm.push(thread::spawn(move || {
            let Ok(mut stream) = TcpStream::connect(addr) else { return };
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            // Deterministic junk, different every connection.
            let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let junk: Vec<u8> = (0..256)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u8
                })
                .collect();
            match i % 4 {
                // Garbage then a clean half-close: parser sees a bad line.
                0 => {
                    let _ = stream.write_all(&junk);
                    let _ = stream.write_all(b"\r\n");
                    let _ = stream.shutdown(Shutdown::Write);
                    let mut sink = Vec::new();
                    let _ = stream.read_to_end(&mut sink);
                }
                // Garbage then vanish: abrupt drop with data in flight.
                1 => {
                    let _ = stream.write_all(&junk);
                    drop(stream);
                }
                // A valid-looking start, then gone mid-header.
                2 => {
                    let _ = stream.write_all(b"POST /simulate HTTP/1.1\r\ncontent-le");
                    drop(stream);
                }
                // Connect and immediately reset both directions.
                _ => {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }));
    }
    for t in storm {
        t.join().unwrap();
    }

    // The service survived: a real question is answered, and readiness is
    // restored once the junk connections are drained.
    let (status, _, body) = http(
        addr,
        "POST",
        "/simulate",
        r#"{"server": {"kind": "TrainBox", "n_accels": 256}, "workload": "Resnet-50"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = http(addr, "GET", "/readyz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ready\":true"), "{body}");
    handle.shutdown();
}

#[test]
fn connection_flood_sheds_then_recovers_to_ready() {
    let (addr, handle) = start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        cache_capacity: 0,
        ..chaos_config()
    });

    let burst: Vec<_> = (0..10)
        .map(|i| {
            // Untimed slow DES bodies, all distinct: every admitted request
            // occupies the single worker for real.
            let body = slow_des(1000 + i, None, false);
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).ok()?;
                stream.set_read_timeout(Some(Duration::from_secs(60))).ok()?;
                let req = format!(
                    "POST /simulate HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                    body.len()
                );
                stream.write_all(req.as_bytes()).ok()?;
                let mut raw = String::new();
                stream.read_to_string(&mut raw).ok()?;
                raw.split_whitespace().nth(1).and_then(|s| s.parse::<u16>().ok())
            })
        })
        .collect();
    let statuses: Vec<u16> = burst.into_iter().filter_map(|t| t.join().unwrap()).collect();

    let shed = statuses.iter().filter(|&&s| s == 429).count();
    assert!(shed > 0, "a 10-deep burst into 1 worker + 1 slot must shed: {statuses:?}");
    for &s in &statuses {
        assert!(
            matches!(s, 200 | 429 | 500),
            "every flooded request gets an honest answer, got {s} in {statuses:?}"
        );
    }

    // Storm over: the tier reports ready and the breaker never tripped
    // (slow-but-successful untimed runs are not failures).
    let (status, _, body) = http(addr, "GET", "/readyz", "");
    assert_eq!(status, 200, "{body}");
    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    assert!(metric(&metrics, "shed_total") >= shed as f64, "{metrics}");
    assert!(metrics.contains("\"breaker_state\":\"closed\""), "{metrics}");
    handle.shutdown();
}

#[test]
fn deadline_storm_degrades_breaks_and_recovers() {
    let (addr, handle) = start(chaos_config());

    // 1. A deadline below the DES floor degrades instantly — no DES run,
    //    no breaker involvement. Delivered via the X-Deadline-Ms header to
    //    exercise header→request propagation.
    let started = Instant::now();
    let (status, head, body) = http_with_headers(
        addr,
        "POST",
        "/simulate",
        &[("X-Deadline-Ms", "1")],
        &slow_des(1, None, false),
    );
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("x-degraded: deadline_too_tight"), "{head}");
    assert!(body.contains("\"degraded\":true"), "{body}");
    assert!(started.elapsed() < Duration::from_secs(2), "too-tight path must not run the DES");

    // 2. A faulted request cannot degrade: its deadline timeout is an
    //    honest 504 carrying the partial progress.
    let (status, _, body) = http(addr, "POST", "/simulate", &slow_des(2, Some(30), true));
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline of 30 ms exceeded"), "{body}");
    assert!(body.contains("events"), "504 must carry partial progress: {body}");

    // 3. A fault-free timeout degrades to the analytic answer...
    let (status, head, body) = http(addr, "POST", "/simulate", &slow_des(3, Some(30), false));
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("x-degraded: deadline_exceeded"), "{head}");
    assert!(body.contains("\"degraded\":true"), "{body}");

    // ...and that second consecutive failure (threshold 2) opens the
    // breaker: the tier stops burning workers on doomed runs.
    let (status, _, body) = http(addr, "GET", "/readyz", "");
    assert_eq!(status, 503, "breaker open must fail readiness: {body}");
    assert!(body.contains("\"breaker\":\"open\""), "{body}");

    // 4. While open, a deadline'd DES request is answered degraded at
    //    once — even with a generous deadline — because admission refused.
    let started = Instant::now();
    let (status, head, body) = http(addr, "POST", "/simulate", &slow_des(4, Some(30_000), false));
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("x-degraded: breaker_open"), "{head}");
    assert!(
        started.elapsed() < Duration::from_millis(700),
        "open breaker must answer without running the DES, took {:?}",
        started.elapsed()
    );

    // 5. After the cooldown, a half-open probe that succeeds closes the
    //    breaker and readiness returns.
    thread::sleep(Duration::from_millis(900));
    let (status, head, body) = http(addr, "POST", "/simulate", &fast_des(5, 30_000));
    assert_eq!(status, 200, "probe must run and succeed: {body}");
    assert!(!head.contains("x-degraded"), "probe answer is the real DES: {head}");
    assert!(body.contains("\"degraded\":false"), "{body}");

    let (status, _, body) = http(addr, "GET", "/readyz", "");
    assert_eq!(status, 200, "recovered tier must be ready: {body}");
    assert!(body.contains("\"breaker\":\"closed\""), "{body}");

    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    assert!(metric(&metrics, "breaker_trips") >= 1.0, "{metrics}");
    assert!(metric(&metrics, "deadline_timeouts") >= 2.0, "{metrics}");
    assert!(metric(&metrics, "degraded_total") >= 3.0, "{metrics}");
    assert!(metric(&metrics, "http_504") >= 1.0, "{metrics}");
    handle.shutdown();
}

//! Adversarial fuzzing of the HTTP parser: arbitrary, truncated, and
//! bit-flipped byte streams must never panic [`read_request`] and must
//! always resolve promptly — a typed error, a parsed request, or a clean
//! close — never a hang.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use trainbox_serve::http::read_request;

/// Feed `bytes` to the parser over a real socket (close after writing) and
/// return how long it took to resolve. Panics propagate to proptest.
fn parse_bytes(bytes: Vec<u8>) -> Duration {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let writer = thread::spawn(move || {
        if let Ok(mut client) = TcpStream::connect(addr) {
            let _ = client.set_write_timeout(Some(Duration::from_secs(5)));
            let _ = client.write_all(&bytes);
        }
        // Dropping the stream closes it: the parser sees EOF, not a stall.
    });
    let (mut server, _) = listener.accept().expect("accept");
    server.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
    let started = Instant::now();
    let _ = read_request(&mut server, Duration::from_secs(2));
    let elapsed = started.elapsed();
    writer.join().unwrap();
    elapsed
}

/// A well-formed request to mutate.
fn valid_request() -> Vec<u8> {
    b"POST /simulate HTTP/1.1\r\nhost: fuzz\r\nx-deadline-ms: 250\r\ncontent-length: 24\r\n\r\n{\"server\":{},\"workload\"}"
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary byte soup: typed error or parsed request, never a panic,
    /// never unbounded time.
    #[test]
    fn arbitrary_bytes_never_panic_the_parser(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let elapsed = parse_bytes(bytes);
        prop_assert!(elapsed < Duration::from_secs(10), "parser took {elapsed:?}");
    }

    /// A valid request cut off at any byte: the parser must classify the
    /// truncation (EOF mid-line, mid-headers, or short body) cleanly.
    #[test]
    fn truncated_requests_resolve_cleanly(cut in 0usize..100) {
        let mut bytes = valid_request();
        bytes.truncate(cut.min(bytes.len()));
        let elapsed = parse_bytes(bytes);
        prop_assert!(elapsed < Duration::from_secs(10), "parser took {elapsed:?}");
    }

    /// A valid request with random bit flips: framing fields (method,
    /// content-length, header names) corrupt in arbitrary ways.
    #[test]
    fn bit_flipped_requests_resolve_cleanly(
        flips in proptest::collection::vec((0usize..100, 0u8..8), 1..8),
    ) {
        let mut bytes = valid_request();
        let n = bytes.len();
        for (pos, bit) in flips {
            bytes[pos % n] ^= 1 << bit;
        }
        let elapsed = parse_bytes(bytes);
        prop_assert!(elapsed < Duration::from_secs(10), "parser took {elapsed:?}");
    }
}

//! End-to-end tests for `POST /sweep`: chunked NDJSON streaming, grid
//! expansion order, per-point provenance, failure isolation, shared-cache
//! dedupe, and — the acceptance bar — byte-identity between every sweep
//! point's `response` field and the body an individual `POST /simulate`
//! of the same question returns.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use proptest::prelude::*;
use trainbox_serve::{serve, ServeConfig, ServeHandle};

/// One-shot HTTP client: returns (status, head, raw body bytes as text).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

fn start(cfg: ServeConfig) -> (SocketAddr, ServeHandle) {
    let handle = serve(ServeConfig { addr: "127.0.0.1:0".to_string(), ..cfg }).expect("bind");
    (handle.addr(), handle)
}

fn json(text: &str) -> trainbox_sim::json::Value {
    trainbox_sim::json::parse(text).unwrap_or_else(|e| panic!("bad JSON {text:?}: {e}"))
}

/// Decode a chunked transfer-encoding body into NDJSON lines, checking the
/// framing as it goes (hex size, CRLF discipline, terminating 0-chunk).
fn dechunk(body: &str) -> Vec<String> {
    let mut rest = body;
    let mut decoded = String::new();
    loop {
        let (size_line, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16)
            .unwrap_or_else(|e| panic!("bad chunk size {size_line:?}: {e}"));
        if size == 0 {
            assert!(tail.is_empty() || tail == "\r\n", "bytes after last chunk: {tail:?}");
            break;
        }
        assert!(tail.len() >= size + 2, "truncated chunk of {size} bytes");
        decoded.push_str(&tail[..size]);
        assert_eq!(&tail[size..size + 2], "\r\n", "chunk data must end in CRLF");
        rest = &tail[size + 2..];
    }
    decoded.lines().map(str::to_owned).collect()
}

/// Extract the verbatim bytes of the trailing `"response":` field from an
/// ok point line (the field is emitted last precisely so this is exact).
fn response_bytes(line: &str) -> &str {
    let marker = "\"response\":";
    let at = line.find(marker).unwrap_or_else(|| panic!("no response field in {line}"));
    &line[at + marker.len()..line.len() - 1]
}

const TEMPLATE: &str = r#"{"server": {"kind": "TrainBox", "n_accels": 256},
                           "workload": "Resnet-50"}"#;

#[test]
fn sweep_streams_a_64_point_grid_in_order_and_byte_identical() {
    let (addr, handle) = start(ServeConfig::default());
    let batches: Vec<u64> = (0..8).map(|i| 64 << i).collect(); // 64..8192
    let accels: Vec<usize> = (0..8).map(|i| 8 << i).collect(); // 8..1024
    let body = format!(
        r#"{{"template": {TEMPLATE},
            "grid": {{"batch_size": {batches:?}, "n_accels": {accels:?}}}}}"#
    );
    let (status, head, raw) = http(addr, "POST", "/sweep", &body);
    assert_eq!(status, 200, "{raw}");
    let head_lower = head.to_lowercase();
    assert!(head_lower.contains("transfer-encoding: chunked"), "{head}");
    assert!(head_lower.contains("content-type: application/x-ndjson"), "{head}");

    let lines = dechunk(&raw);
    assert_eq!(lines.len(), 65, "64 points + 1 summary line");

    for (i, line) in lines[..64].iter().enumerate() {
        let v = json(line);
        assert_eq!(v.get("point").and_then(|p| p.as_f64()), Some(i as f64), "{line}");
        assert_eq!(
            v.get("status").and_then(|s| s.as_str()),
            Some("ok"),
            "point {i} errored: {line}"
        );
        // Row-major order: batch_size is the outer axis, n_accels inner.
        let params = v.get("params").expect("params provenance");
        assert_eq!(
            params.get("batch_size").and_then(|b| b.as_f64()),
            Some(batches[i / 8] as f64),
            "{line}"
        );
        assert_eq!(
            params.get("n_accels").and_then(|a| a.as_f64()),
            Some(accels[i % 8] as f64),
            "{line}"
        );

        // The acceptance bar: the embedded response is byte-identical to
        // the corresponding individual /simulate answer.
        let individual = format!(
            r#"{{"server": {{"kind": "TrainBox", "n_accels": {}, "batch_size": {}}},
                "workload": "Resnet-50"}}"#,
            accels[i % 8],
            batches[i / 8]
        );
        let (istatus, ihead, ibody) = http(addr, "POST", "/simulate", &individual);
        assert_eq!(istatus, 200, "{ibody}");
        assert_eq!(response_bytes(line), ibody, "point {i} diverged from /simulate");
        // Same question, same cache entry: the sweep already answered it.
        assert!(ihead.contains("x-cache: hit"), "point {i} missed the shared cache: {ihead}");
    }

    let done = json(&lines[64]);
    assert_eq!(done.get("done").and_then(|d| d.as_bool()), Some(true), "{}", lines[64]);
    assert_eq!(done.get("points").and_then(|p| p.as_f64()), Some(64.0), "{}", lines[64]);
    assert_eq!(done.get("ok").and_then(|p| p.as_f64()), Some(64.0), "{}", lines[64]);
    assert_eq!(done.get("errors").and_then(|p| p.as_f64()), Some(0.0), "{}", lines[64]);

    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    let m = json(&metrics);
    assert_eq!(m.get("sweep_requests").and_then(|v| v.as_f64()), Some(1.0), "{metrics}");
    assert_eq!(m.get("sweep_points_total").and_then(|v| v.as_f64()), Some(64.0), "{metrics}");
    assert_eq!(m.get("sweep_point_errors").and_then(|v| v.as_f64()), Some(0.0), "{metrics}");

    handle.shutdown();
}

#[test]
fn sweep_workload_axis_matches_individual_simulate() {
    let (addr, handle) = start(ServeConfig::default());
    let names = ["Resnet-50", "LLM-7B", "DLRM"];
    let body = format!(
        r#"{{"template": {TEMPLATE},
            "grid": {{"workload": {names:?}, "n_accels": [64, 256]}}}}"#
    );
    let (status, _, raw) = http(addr, "POST", "/sweep", &body);
    assert_eq!(status, 200, "{raw}");
    let lines = dechunk(&raw);
    assert_eq!(lines.len(), 7, "6 points + 1 summary line: {raw}");
    for (i, line) in lines[..6].iter().enumerate() {
        let v = json(line);
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"), "{line}");
        // Workload is the outermost axis.
        let params = v.get("params").expect("params provenance");
        assert_eq!(
            params.get("workload").and_then(|w| w.as_str()),
            Some(names[i / 2]),
            "{line}"
        );
        let individual = format!(
            r#"{{"server": {{"kind": "TrainBox", "n_accels": {}}},
                "workload": "{}"}}"#,
            [64, 256][i % 2],
            names[i / 2]
        );
        let (istatus, _, ibody) = http(addr, "POST", "/simulate", &individual);
        assert_eq!(istatus, 200, "{ibody}");
        assert_eq!(response_bytes(line), ibody, "point {i} diverged from /simulate");
    }
    handle.shutdown();
}

#[test]
fn sweep_reports_failing_points_without_killing_the_stream() {
    let (addr, handle) = start(ServeConfig::default());
    // n_accels = 0 is parseable but unbuildable: that one point must come
    // back as an error line while its neighbors answer normally.
    let body = format!(
        r#"{{"template": {TEMPLATE}, "grid": {{"n_accels": [16, 0, 32]}}}}"#
    );
    let (status, _, raw) = http(addr, "POST", "/sweep", &body);
    assert_eq!(status, 200, "{raw}");
    let lines = dechunk(&raw);
    assert_eq!(lines.len(), 4, "3 points + summary: {lines:?}");

    for (i, expect_ok) in [(0, true), (1, false), (2, true)] {
        let v = json(&lines[i]);
        let status = v.get("status").and_then(|s| s.as_str()).unwrap();
        assert_eq!(status, if expect_ok { "ok" } else { "error" }, "{}", lines[i]);
    }
    let failed = json(&lines[1]);
    assert_eq!(failed.get("http_status").and_then(|s| s.as_f64()), Some(400.0), "{}", lines[1]);
    let err = failed.get("error").expect("error body");
    assert_eq!(err.get("field").and_then(|f| f.as_str()), Some("server.n_accels"), "{}", lines[1]);

    let done = json(&lines[3]);
    assert_eq!(done.get("ok").and_then(|p| p.as_f64()), Some(2.0), "{}", lines[3]);
    assert_eq!(done.get("errors").and_then(|p| p.as_f64()), Some(1.0), "{}", lines[3]);

    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    let m = json(&metrics);
    assert_eq!(m.get("sweep_point_errors").and_then(|v| v.as_f64()), Some(1.0), "{metrics}");

    handle.shutdown();
}

#[test]
fn sweep_rejects_malformed_and_oversized_requests() {
    let (addr, handle) = start(ServeConfig { sweep_max_points: 4, ..ServeConfig::default() });

    let (status, _, body) = http(addr, "POST", "/sweep", "{\"grid\": {}}");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("template"), "{body}");

    let deadlined = r#"{"template": {"server": {"kind": "TrainBox", "n_accels": 16},
                                     "workload": "Resnet-50", "deadline_ms": 50}}"#;
    let (status, _, body) = http(addr, "POST", "/sweep", deadlined);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("deadline_ms"), "{body}");

    // 8 points > the server's 4-point cap: refused before any work runs.
    let oversized = format!(
        r#"{{"template": {TEMPLATE}, "grid": {{"batch_size": [1, 2, 4, 8, 16, 32, 64, 128]}}}}"#
    );
    let (status, _, body) = http(addr, "POST", "/sweep", &oversized);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("over the limit"), "{body}");
    assert!(body.contains("\"field\":\"grid\""), "{body}");

    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    let m = json(&metrics);
    assert_eq!(m.get("sweep_requests").and_then(|v| v.as_f64()), Some(0.0), "{metrics}");

    handle.shutdown();
}

#[test]
fn sweep_concurrency_cap_sheds_with_429() {
    // Cap of one: while a slow DES sweep streams, a second sweep must be
    // refused with an honest 429 instead of queuing behind it.
    let (addr, handle) =
        start(ServeConfig { workers: 1, max_active_sweeps: 1, ..ServeConfig::default() });
    let slow_template = r#"{"server": {"kind": "TrainBoxNoPool", "n_accels": 16,
                                       "batch_size": 512},
                            "workload": "Inception-v4",
                            "sim": {"Des": {"chunk_samples": 32, "batches": 20,
                                            "warmup_batches": 2, "prefetch_batches": 1,
                                            "max_events": 10000000,
                                            "reference_allocator": false}}}"#;
    let body = format!("{{\"template\": {slow_template}}}");
    let mut first = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "POST /sweep HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    first.write_all(req.as_bytes()).expect("send");
    // Read just the response head: the sweep is now active and holds the
    // only slot while its DES point runs.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        first.read_exact(&mut byte).expect("head byte");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).unwrap();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");

    let quick = format!("{{\"template\": {TEMPLATE}}}");
    let (status, shed_head, resp) = http(addr, "POST", "/sweep", &quick);
    assert_eq!(status, 429, "{resp}");
    assert!(resp.contains("too many active sweeps"), "{resp}");
    assert!(shed_head.contains("retry-after: "), "{shed_head}");

    // The first stream still completes cleanly.
    let mut rest = String::new();
    first.read_to_string(&mut rest).expect("stream tail");
    let lines = dechunk(&rest);
    let done = json(lines.last().expect("done line"));
    assert_eq!(done.get("done").and_then(|d| d.as_bool()), Some(true), "{rest}");

    handle.shutdown();
}

#[test]
fn sweep_points_dedupe_into_the_shared_cache() {
    let (addr, handle) = start(ServeConfig::default());
    // Two axes that collapse to the same question: batch 512 × accels 256
    // twice over. 4 grid points, 1 distinct simulation.
    let body = format!(
        r#"{{"template": {TEMPLATE},
            "grid": {{"batch_size": [512, 512], "n_accels": [256, 256]}}}}"#
    );
    let (status, _, raw) = http(addr, "POST", "/sweep", &body);
    assert_eq!(status, 200, "{raw}");
    let lines = dechunk(&raw);
    assert_eq!(lines.len(), 5);
    let first = response_bytes(&lines[0]).to_owned();
    for line in &lines[1..4] {
        assert_eq!(response_bytes(line), first, "duplicate points must answer identically");
    }

    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    let m = json(&metrics);
    let hits = m.get("cache_hits").and_then(|v| v.as_f64()).unwrap();
    let coalesced = m.get("coalesced_waits").and_then(|v| v.as_f64()).unwrap();
    let misses = m.get("cache_misses").and_then(|v| v.as_f64()).unwrap();
    assert!(
        hits + coalesced >= 3.0,
        "4 identical points must share one computation: {metrics}"
    );
    assert!(misses - coalesced <= 1.0, "only one point computes: {metrics}");

    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any small grid over any server kind answers every point with bytes
    /// identical to the individual `/simulate` of the same question.
    #[test]
    fn sweep_matches_individual_simulate_byte_for_byte(
        kind_idx in 0usize..3,
        batch_idxs in collection::vec(0usize..4, 1..3usize),
        accel_idxs in collection::vec(0usize..3, 1..3usize),
    ) {
        let kind = ["TrainBox", "TrainBoxNoPool", "Baseline"][kind_idx];
        let batches: Vec<u64> = batch_idxs.iter().map(|&i| [32u64, 128, 512, 2048][i]).collect();
        let accels: Vec<usize> = accel_idxs.iter().map(|&i| [16usize, 64, 256][i]).collect();
        let (addr, handle) = start(ServeConfig::default());
        let template = format!(
            r#"{{"server": {{"kind": "{kind}", "n_accels": 8}}, "workload": "Inception-v4"}}"#
        );
        let body = format!(
            r#"{{"template": {template},
                "grid": {{"batch_size": {batches:?}, "n_accels": {accels:?}}}}}"#
        );
        let (status, _, raw) = http(addr, "POST", "/sweep", &body);
        prop_assert_eq!(status, 200, "{}", raw);
        let lines = dechunk(&raw);
        prop_assert_eq!(lines.len(), batches.len() * accels.len() + 1);

        for (i, line) in lines[..lines.len() - 1].iter().enumerate() {
            let individual = format!(
                r#"{{"server": {{"kind": "{kind}", "n_accels": {}, "batch_size": {}}},
                    "workload": "Inception-v4"}}"#,
                accels[i % accels.len()],
                batches[i / accels.len()]
            );
            let (istatus, _, ibody) = http(addr, "POST", "/simulate", &individual);
            prop_assert_eq!(istatus, 200, "{}", ibody);
            prop_assert_eq!(response_bytes(line), ibody, "point {} diverged", i);
        }
        handle.shutdown();
    }
}
